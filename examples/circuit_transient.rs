//! Transient circuit simulation (the paper's §V-F motivation): a SPICE
//! style time-stepping loop generates a long sequence of matrices with
//! the same structure but different values. A `SolveSession` owns the
//! whole lifecycle — symbolic reuse, the value-only refactorization fast
//! path, the fall back to fresh pivoting when quality degrades, and
//! iterative refinement on every solve — so the loop body is two calls
//! and the steady state allocates nothing per step.
//!
//! Run with: `cargo run --release --example circuit_transient [steps]`

use basker_repro::prelude::*;
use std::time::Instant;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    // A moderately sized circuit with switching devices.
    let seq = XyceSequence::new(&XyceSequenceParams {
        circuit: CircuitParams {
            nsub: 8,
            sub_size: 80,
            feedthrough: 0.7,
            ..CircuitParams::default()
        },
        nsteps: steps,
        switching_fraction: 0.05,
        seed: 2024,
    });
    let a0 = seq.pattern().clone();
    println!(
        "transient run: {} steps, n = {}, |A| = {}",
        steps,
        a0.nrows(),
        a0.nnz()
    );

    let cfg = SessionConfig::new()
        .engine(Engine::Auto)
        .threads(2)
        .policy(ReusePolicy::adaptive())
        .target_residual(1e-10);
    let mut session = SolveSession::new(&a0, &cfg).expect("analyze");
    println!("Engine::Auto selected `{}`", session.engine());

    // The "simulation": each step refreshes the Jacobian and solves.
    // The session decides factor vs refactor vs re-pivot; each solve is
    // refined to the residual target.
    let t0 = Instant::now();
    let b = vec![1e-3; a0.ncols()];
    let mut x = vec![0.0; a0.ncols()];
    for s in 0..steps {
        let m = seq.matrix_at(s);
        session.step(&m).expect("step");
        x.copy_from_slice(&b);
        session.solve_refined(&mut x).expect("solve");
    }
    let total = t0.elapsed().as_secs_f64();

    let st = session.stats();
    println!(
        "{} fast refactors + {} scheduled factors + {} fallback/gate \
         re-pivots in {:.2}s ({:.2} ms/step, {} refinement sweeps)",
        st.refactors,
        st.factors - st.repivot_fallbacks - st.quality_repivots,
        st.repivot_fallbacks + st.quality_repivots,
        total,
        1e3 * total / steps as f64,
        st.refine_iterations,
    );
    println!(
        "worst relative residual over the run: {:.2e}",
        st.worst_residual
    );
    assert!(
        st.worst_residual < 1e-8,
        "losing accuracy across the sequence"
    );
    println!("ok");
}
