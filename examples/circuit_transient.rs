//! Transient circuit simulation (the paper's §V-F motivation): a SPICE
//! style time-stepping loop generates a long sequence of matrices with
//! the same structure but different values; the solver reuses its
//! symbolic analysis across the whole run, takes the value-only
//! refactorization fast path, and falls back to a fresh pivoting
//! factorization only when a pivot collapses. The whole loop runs
//! through the engine-agnostic `LinearSolver` API with one reused
//! `SolveWorkspace`, so the steady state allocates nothing per step.
//!
//! Run with: `cargo run --release --example circuit_transient [steps]`

use basker_repro::prelude::*;
use std::time::Instant;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    // A moderately sized circuit with switching devices.
    let seq = XyceSequence::new(&XyceSequenceParams {
        circuit: CircuitParams {
            nsub: 8,
            sub_size: 80,
            feedthrough: 0.7,
            ..CircuitParams::default()
        },
        nsteps: steps,
        switching_fraction: 0.05,
        seed: 2024,
    });
    let a0 = seq.pattern().clone();
    println!(
        "transient run: {} steps, n = {}, |A| = {}",
        steps,
        a0.nrows(),
        a0.nnz()
    );

    let cfg = SolverConfig::new().engine(Engine::Auto).threads(2);
    let solver = LinearSolver::analyze(&a0, &cfg).expect("analyze");
    println!("Engine::Auto selected `{}`", solver.engine());

    let t0 = Instant::now();
    let mut num = solver.factor(&a0).expect("first factor");
    let mut ws = SolveWorkspace::for_dim(a0.ncols());
    let mut refactors = 0usize;
    let mut repivots = 0usize;
    let mut worst_resid = 0.0f64;

    // The "simulation": each step solves with the current Jacobian.
    let b = vec![1e-3; a0.ncols()];
    let mut x = vec![0.0; a0.ncols()];
    for s in 1..steps {
        let m = seq.matrix_at(s);
        match num.refactor(&m) {
            Ok(()) => refactors += 1,
            Err(e) => {
                // value drift invalidated the pivot sequence: re-pivot
                assert!(e.is_pivot_failure(), "unexpected failure: {e}");
                num = solver.factor(&m).expect("re-pivot factor");
                repivots += 1;
            }
        }
        x.copy_from_slice(&b);
        num.solve_in_place(&mut x, &mut ws).expect("solve");
        worst_resid = worst_resid.max(relative_residual(&m, &x, &b));
    }
    let total = t0.elapsed().as_secs_f64();

    println!(
        "{} fast refactors + {} pivot-refresh factors in {:.2}s \
         ({:.2} ms/step)",
        refactors,
        repivots,
        total,
        1e3 * total / steps as f64
    );
    println!("worst relative residual over the run: {worst_resid:.2e}");
    assert!(worst_resid < 1e-8, "losing accuracy across the sequence");
    println!("ok");
}
