//! Solver face-off: run all three engines through the *same* unified
//! `LinearSolver` lifecycle on one low-fill circuit matrix and one
//! high-fill mesh matrix — the crossover the whole paper is about, in
//! miniature — and show which engine `Engine::Auto` picks for each.
//!
//! Run with: `cargo run --release --example solver_faceoff`

use basker_repro::prelude::*;
use std::time::Instant;

fn time_factor<F: FnMut()>(mut f: F) -> f64 {
    // best of 3
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let circuit_mat = circuit(&CircuitParams {
        nsub: 16,
        sub_size: 96,
        feedthrough: 0.3,
        ..CircuitParams::default()
    });
    let mesh_mat = mesh2d(44, 3);

    println!("| matrix | engine | numeric time | |L+U| | residual |");
    println!("|---|---|---|---|---|");
    let mut ws = SolveWorkspace::new();
    for (name, a) in [
        ("circuit (low fill)", &circuit_mat),
        ("mesh (high fill)", &mesh_mat),
    ] {
        let b: Vec<f64> = (0..a.ncols()).map(|i| 1.0 + (i % 3) as f64).collect();

        for engine in [Engine::Klu, Engine::Basker, Engine::Snlu] {
            let cfg = SolverConfig::new().engine(engine).threads(2);
            let solver = LinearSolver::analyze(a, &cfg).expect("analyze");
            let t = time_factor(|| {
                solver.factor(a).expect("factor");
            });
            let num = solver.factor(a).expect("factor");
            let mut x = b.clone();
            num.solve_in_place(&mut x, &mut ws).expect("solve");
            println!(
                "| {name} | {engine}(2) | {:.2} ms | {} | {:.1e} |",
                t * 1e3,
                num.stats().lu_nnz,
                relative_residual(a, &x, &b)
            );
        }

        let auto = LinearSolver::analyze(a, &SolverConfig::new().threads(2)).expect("analyze");
        println!("| {name} | **Auto → {}** | | | |", auto.engine());
    }
    println!();
    println!(
        "Expected shape (paper Figs. 5-7): Basker/KLU win the circuit; the \
         supernodal solver closes the gap (or wins) on the mesh — which is \
         exactly the split Engine::Auto makes."
    );
}
