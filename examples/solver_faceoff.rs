//! Solver face-off: run Basker, KLU and the supernodal comparator on one
//! low-fill circuit matrix and one high-fill mesh matrix — the crossover
//! the whole paper is about, in miniature.
//!
//! Run with: `cargo run --release --example solver_faceoff`

use basker_repro::prelude::*;
use std::time::Instant;

fn time_factor<F: FnMut()>(mut f: F) -> f64 {
    // best of 3
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let circuit_mat = circuit(&CircuitParams {
        nsub: 16,
        sub_size: 96,
        feedthrough: 0.3,
        ..CircuitParams::default()
    });
    let mesh_mat = mesh2d(44, 3);

    println!("| matrix | solver | numeric time | |L+U| | residual |");
    println!("|---|---|---|---|---|");
    for (name, a) in [
        ("circuit (low fill)", &circuit_mat),
        ("mesh (high fill)", &mesh_mat),
    ] {
        let b: Vec<f64> = (0..a.ncols()).map(|i| 1.0 + (i % 3) as f64).collect();

        // KLU
        let klu = KluSymbolic::analyze(a, &KluOptions::default()).unwrap();
        let t = time_factor(|| {
            klu.factor(a).unwrap();
        });
        let num = klu.factor(a).unwrap();
        let x = num.solve(&b);
        println!(
            "| {name} | KLU | {:.2} ms | {} | {:.1e} |",
            t * 1e3,
            num.lu_nnz(),
            relative_residual(a, &x, &b)
        );

        // Basker
        let bsk = Basker::analyze(
            a,
            &BaskerOptions {
                nthreads: 2,
                ..BaskerOptions::default()
            },
        )
        .unwrap();
        let t = time_factor(|| {
            bsk.factor(a).unwrap();
        });
        let num = bsk.factor(a).unwrap();
        let x = num.solve(&b);
        println!(
            "| {name} | Basker(2) | {:.2} ms | {} | {:.1e} |",
            t * 1e3,
            num.lu_nnz(),
            relative_residual(a, &x, &b)
        );

        // Supernodal comparator
        let sn = Snlu::analyze(
            a,
            &SnluOptions {
                nthreads: 2,
                ..SnluOptions::default()
            },
        )
        .unwrap();
        let t = time_factor(|| {
            sn.factor(a).unwrap();
        });
        let num = sn.factor(a).unwrap();
        let x = num.solve(a, &b);
        println!(
            "| {name} | PMKL-like(2) | {:.2} ms | {} | {:.1e} |",
            t * 1e3,
            num.lu_nnz,
            relative_residual(a, &x, &b)
        );
    }
    println!();
    println!(
        "Expected shape (paper Figs. 5-7): Basker/KLU win the circuit; the \
         supernodal solver closes the gap (or wins) on the mesh."
    );
}
