//! Quickstart: assemble a small circuit matrix, drive it through the
//! unified `LinearSolver` lifecycle, and inspect what the solver chose.
//!
//! Run with: `cargo run --release --example quickstart`

use basker_repro::prelude::*;

fn main() {
    // --- assemble a tiny MNA system by stamping devices ---------------
    // Nodes 0..5: a resistor ladder with one controlled source, the kind
    // of pattern SPICE produces.
    let n = 6;
    let mut t = TripletMat::new(n, n);
    let resistor = |t: &mut TripletMat, a: usize, b: usize, g: f64| {
        t.push(a, a, g);
        t.push(b, b, g);
        t.push(a, b, -g);
        t.push(b, a, -g);
    };
    for i in 0..n {
        t.push(i, i, 0.5); // ground leak
    }
    resistor(&mut t, 0, 1, 2.0);
    resistor(&mut t, 1, 2, 1.0);
    resistor(&mut t, 2, 3, 3.0);
    resistor(&mut t, 3, 4, 1.5);
    resistor(&mut t, 4, 5, 2.5);
    // a VCCS makes the matrix unsymmetric
    t.push(5, 0, 0.7);
    let a = t.to_csc();
    println!("A: {} x {}, {} nonzeros", a.nrows(), a.ncols(), a.nnz());

    // --- one lifecycle, any engine: analyze once, factor, solve -------
    let cfg = SolverConfig::new().engine(Engine::Auto).threads(2);
    let solver = LinearSolver::analyze(&a, &cfg).expect("analyze");
    println!("Engine::Auto selected the `{}` engine", solver.engine());

    let num = solver.factor(&a).expect("factor");
    let stats = num.stats();
    println!(
        "factored: |L+U| = {}, {:.0} flops, {} BTF block(s), {} thread(s)",
        stats.lu_nnz, stats.flops, stats.btf_blocks, stats.threads
    );

    // Repeated solves reuse one workspace: zero allocation per call.
    let mut ws = SolveWorkspace::for_dim(n);
    let b = vec![1.0, 0.0, 0.0, 0.0, 0.0, -1.0]; // inject 1A at node 0, draw at node 5
    let mut x = b.clone();
    num.solve_in_place(&mut x, &mut ws).expect("solve");
    println!("node voltages: {x:?}");
    let resid = relative_residual(&a, &x, &b);
    println!("relative residual: {resid:.2e}");
    assert!(resid < 1e-12);

    // --- values change (new operating point): open a session ----------
    // For a *stream* of same-pattern matrices, `SolveSession` owns the
    // factor/refactor lifecycle: its policy takes the value-only fast
    // path here and would re-pivot on its own if a pivot collapsed.
    // SAFETY: pattern arrays are copied from the valid matrix `a`; values
    // map 1:1.
    let a2 = unsafe {
        CscMat::from_parts_unchecked(
            a.nrows(),
            a.ncols(),
            a.colptr().to_vec(),
            a.rowind().to_vec(),
            a.values().iter().map(|v| v * 1.3).collect(),
        )
    };
    let mut session = SolveSession::new(&a, &SessionConfig::new().threads(2)).expect("analyze");
    session.step(&a).expect("factor");
    session.step(&a2).expect("refactor");
    println!(
        "session states: {} refactor(s), {} fresh factor(s)",
        session.stats().refactors,
        session.stats().factors
    );
    let mut x2 = b.clone();
    let quality = session.solve_refined(&mut x2).expect("solve");
    println!("after refactor, node 0 voltage: {:.4}", x2[0]);
    assert!(quality.converged && quality.residual < 1e-12);
    println!("ok");
}
