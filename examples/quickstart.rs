//! Quickstart: assemble a small circuit matrix, factor it with Basker,
//! solve, and inspect the structure the solver found.
//!
//! Run with: `cargo run --release --example quickstart`

use basker_repro::prelude::*;

fn main() {
    // --- assemble a tiny MNA system by stamping devices ---------------
    // Nodes 0..5: a resistor ladder with one controlled source, the kind
    // of pattern SPICE produces.
    let n = 6;
    let mut t = TripletMat::new(n, n);
    let resistor = |t: &mut TripletMat, a: usize, b: usize, g: f64| {
        t.push(a, a, g);
        t.push(b, b, g);
        t.push(a, b, -g);
        t.push(b, a, -g);
    };
    for i in 0..n {
        t.push(i, i, 0.5); // ground leak
    }
    resistor(&mut t, 0, 1, 2.0);
    resistor(&mut t, 1, 2, 1.0);
    resistor(&mut t, 2, 3, 3.0);
    resistor(&mut t, 3, 4, 1.5);
    resistor(&mut t, 4, 5, 2.5);
    // a VCCS makes the matrix unsymmetric
    t.push(5, 0, 0.7);
    let a = t.to_csc();
    println!("A: {} x {}, {} nonzeros", a.nrows(), a.ncols(), a.nnz());

    // --- analyze once, factor, solve ----------------------------------
    let opts = BaskerOptions {
        nthreads: 2,
        ..BaskerOptions::default()
    };
    let solver = Basker::analyze(&a, &opts).expect("analyze");
    println!(
        "structure: {} BTF block(s), {:.0}% of rows in small blocks, {} threads",
        solver.structure().nblocks(),
        100.0 * solver.structure().small_block_fraction(),
        solver.threads()
    );

    let num = solver.factor(&a).expect("factor");
    println!(
        "factored: |L+U| = {}, {:.0} flops, {:.3} ms numeric",
        num.lu_nnz(),
        num.stats.flops,
        num.stats.numeric_seconds * 1e3
    );

    let b = vec![1.0, 0.0, 0.0, 0.0, 0.0, -1.0]; // inject 1A at node 0, draw at node 5
    let x = num.solve(&b);
    println!("node voltages: {x:?}");
    let resid = relative_residual(&a, &x, &b);
    println!("relative residual: {resid:.2e}");
    assert!(resid < 1e-12);

    // --- values change (new operating point): refactor ----------------
    let a2 = CscMat::from_parts_unchecked(
        a.nrows(),
        a.ncols(),
        a.colptr().to_vec(),
        a.rowind().to_vec(),
        a.values().iter().map(|v| v * 1.3).collect(),
    );
    let mut num = num;
    num.refactor(&a2).expect("refactor");
    let x2 = num.solve(&b);
    println!("after refactor, node 0 voltage: {:.4}", x2[0]);
    assert!(relative_residual(&a2, &x2, &b) < 1e-12);
    println!("ok");
}
