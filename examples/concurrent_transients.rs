//! Serving many transient simulations at once: eight independent
//! Xyce-style sequences multiplexed over one shared worker team through
//! [`SolverService`].
//!
//! Each "tenant" is a circuit with its own matrix pattern, engine and
//! reuse policy; the service interleaves their factor/refactor/solve
//! jobs onto the team ranks — no per-stream thread pools, no OS threads
//! spawned after warm-up. One tenant is fed a numerically singular
//! matrix mid-run to show failure isolation: its step errors, its
//! neighbours never notice, and it recovers on the next healthy step.
//!
//! Run with `cargo run --example concurrent_transients`.

use basker_repro::basker_runtime::os_threads_spawned;
use basker_repro::prelude::*;

fn main() {
    let nstreams = 8usize;
    let nsteps = 30usize;

    // Eight tenants: Xyce-like sequences with different seeds, engines
    // cycling through all three, everyone on the adaptive reuse policy.
    let seqs: Vec<XyceSequence> = (0..nstreams)
        .map(|k| {
            XyceSequence::new(&XyceSequenceParams {
                circuit: CircuitParams {
                    nsub: 3,
                    sub_size: 24,
                    feedthrough: 0.7,
                    ..CircuitParams::default()
                },
                nsteps,
                switching_fraction: 0.04,
                seed: 7 + k as u64,
            })
        })
        .collect();

    let service = SolverService::new(&ServiceConfig::new().threads(4));
    let mut handles: Vec<StreamHandle> = seqs
        .iter()
        .enumerate()
        .map(|(k, seq)| {
            let engine = [Engine::Basker, Engine::Klu, Engine::Snlu][k % 3];
            let cfg = SessionConfig::new()
                .engine(engine)
                .policy(ReusePolicy::adaptive())
                .target_residual(1e-9);
            service.stream(seq.pattern(), &cfg).expect("analyze")
        })
        .collect();
    let n = handles[0].dim();
    println!("serving {nstreams} transient streams (n = {n} each) over one team of 4\n");

    // Warm-up step, then note the thread count: it must not move again.
    for (k, h) in handles.iter_mut().enumerate() {
        h.step_refined(&seqs[k].matrix_at(0), vec![1.0; n])
            .expect("warm-up");
    }
    let warm_threads = os_threads_spawned();

    let mut isolated_error: Option<String> = None;
    for s in 1..nsteps {
        // Pipeline: enqueue every tenant's step, then collect results.
        // Stream 4 — a KLU tenant; the pivoting engines report hard
        // collapses — is fed an all-zero matrix at step 10: only its
        // own ticket errors.
        let tickets: Vec<(usize, StepTicket)> = handles
            .iter_mut()
            .enumerate()
            .map(|(k, h)| {
                let m = if k == 4 && s == 10 {
                    let p = seqs[k].pattern();
                    // SAFETY: pattern arrays are copied from the valid
                    // pattern matrix; the zero vector matches its nnz.
                    unsafe {
                        CscMat::from_parts_unchecked(
                            n,
                            n,
                            p.colptr().to_vec(),
                            p.rowind().to_vec(),
                            vec![0.0; p.nnz()],
                        )
                    }
                } else {
                    seqs[k].matrix_at(s)
                };
                (k, h.submit_refined(&m, vec![1.0; n]).expect("submit"))
            })
            .collect();
        for (k, t) in tickets {
            match t.wait() {
                Ok(r) => assert!(
                    r.quality[0].residual < 1e-7,
                    "stream {k} step {s}: residual {}",
                    r.quality[0].residual
                ),
                Err(e) => {
                    assert_eq!(k, 4, "only the sabotaged stream may fail");
                    isolated_error = Some(format!("step {s}: {e}"));
                }
            }
        }
    }

    println!(
        "isolated failure on stream 4 -> {}",
        isolated_error.as_deref().unwrap_or("(none)")
    );
    println!(
        "OS threads spawned during steady-state serving: {}\n",
        os_threads_spawned() - warm_threads
    );

    let stats = service.stats();
    println!("| stream | engine | steps | errors | factors | refactors | worst residual |");
    println!("|---|---|---|---|---|---|---|");
    for s in &stats.per_stream {
        println!(
            "| {} | {} | {} | {} | {} | {} | {:.1e} |",
            s.id,
            s.engine,
            s.steps,
            s.errors,
            s.session.factors,
            s.session.refactors,
            s.session.worst_residual
        );
    }
    println!(
        "\nservice: {} jobs in {} batches, occupancy {:.2}, {} errors total",
        stats.steps, stats.batches, stats.occupancy, stats.errors
    );
    assert_eq!(stats.errors, 1, "exactly the sabotaged step failed");
    assert_eq!(
        os_threads_spawned(),
        warm_threads,
        "zero spawns after warm-up"
    );
}
