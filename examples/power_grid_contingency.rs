//! Power-grid contingency screening: repeatedly solve a grid system with
//! single-branch outages. Power grids are the extreme BTF case (100 % of
//! rows in tiny blocks — paper Table I's `RS_*` rows), so `Engine::Auto`
//! routes them to a Gilbert–Peierls engine, which factors them almost
//! entirely through the embarrassingly parallel fine-BTF path.
//!
//! Run with: `cargo run --release --example power_grid_contingency`

use basker_repro::prelude::*;
use std::time::Instant;

fn main() {
    let grid = powergrid(&PowergridParams {
        nfeeders: 60,
        feeder_len: 40,
        loop_prob: 0.2,
        seed: 11,
    });
    let n = grid.nrows();
    println!("grid: n = {n}, |A| = {}", grid.nnz());

    let cfg = SessionConfig::new().engine(Engine::Auto).threads(2);
    let mut session = SolveSession::new(&grid, &cfg).expect("analyze");
    println!("Engine::Auto selected `{}`", session.engine());

    session.step(&grid).expect("base factor");
    let stats = session.stats().last_factor.clone();
    println!(
        "base case factored: |L+U| = {} (fill density {:.2}), {} BTF blocks",
        stats.lu_nnz,
        stats.fill_density(grid.nnz()),
        stats.btf_blocks
    );

    // Nominal injections.
    let b: Vec<f64> = (0..n)
        .map(|i| if i % 17 == 0 { 1.0 } else { 0.0 })
        .collect();
    let mut x0 = b.clone();
    session.solve(&mut x0).expect("base solve");

    // Contingencies: weaken one feeder-coupling entry at a time (same
    // pattern, new values) and re-solve — the session takes the
    // refactor fast path and re-pivots on its own if an outage ever
    // collapses a pivot.
    let t0 = Instant::now();
    let ncontingencies = 25usize;
    let mut worst_shift = 0.0f64;
    let mut x = vec![0.0; n];
    for c in 0..ncontingencies {
        let mut vals = grid.values().to_vec();
        // scale the c-th "branch" (an off-diagonal entry) toward an outage
        let mut seen = 0usize;
        for (k, &r) in grid.rowind().iter().enumerate() {
            let col = grid.colptr().partition_point(|&p| p <= k).saturating_sub(1);
            if r != col {
                if seen == c * 7 {
                    vals[k] *= 1e-3;
                    break;
                }
                seen += 1;
            }
        }
        // SAFETY: pattern arrays are copied from the valid `grid` matrix;
        // `vals` maps its values 1:1.
        let outage = unsafe {
            CscMat::from_parts_unchecked(n, n, grid.colptr().to_vec(), grid.rowind().to_vec(), vals)
        };
        session.step(&outage).expect("step");
        x.copy_from_slice(&b);
        let q = session.solve_refined(&mut x).expect("solve");
        assert!(
            q.residual < 1e-10,
            "contingency {c}: residual {}",
            q.residual
        );
        let shift = x
            .iter()
            .zip(x0.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        worst_shift = worst_shift.max(shift);
    }
    println!(
        "{} contingencies screened in {:.2} ms; worst voltage shift {:.3e}",
        ncontingencies,
        t0.elapsed().as_secs_f64() * 1e3,
        worst_shift
    );
    println!("ok");
}
