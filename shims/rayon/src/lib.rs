//! Minimal in-tree stand-in for the `rayon` crate (the build environment
//! has no registry access). Provides real OS-thread parallelism for the
//! surface this workspace uses:
//!
//! * [`ThreadPoolBuilder`] / [`ThreadPool`] with `install`, `broadcast`
//!   and `current_num_threads`;
//! * `prelude::*` with `.par_iter()` on slices/`Vec`s supporting
//!   `.map(..).collect()`, `.for_each(..)` and `.for_each_init(..)`.
//!
//! `broadcast` genuinely runs one concurrently-live thread per pool slot
//! — the Basker point-to-point synchronization (spin-wait slots) relies
//! on every team member making progress at once, so a sequential
//! fallback would deadlock. Threads are spawned per call via
//! `std::thread::scope` rather than kept hot; for the factorization
//! workloads here the spawn cost is noise compared to the numeric work.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;

thread_local! {
    /// Width installed by [`ThreadPool::install`]; 0 = none installed.
    static INSTALLED_WIDTH: Cell<usize> = const { Cell::new(0) };
}

fn default_width() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn current_width() -> usize {
    let w = INSTALLED_WIDTH.with(|c| c.get());
    if w == 0 {
        default_width()
    } else {
        w
    }
}

/// Error from [`ThreadPoolBuilder::build`]. The shim pool cannot
/// actually fail to build; the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (machine-sized) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool width; 0 means "number of cores".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Accepted for API compatibility; the shim spawns scoped threads
    /// per call and does not name them.
    pub fn thread_name<F>(self, _name: F) -> Self
    where
        F: Fn(usize) -> String,
    {
        self
    }

    /// Builds the pool. Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_width()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { width: n })
    }
}

/// A logical pool of `width` worker slots. Workers are materialized as
/// scoped OS threads on demand.
pub struct ThreadPool {
    width: usize,
}

/// Per-thread context handed to [`ThreadPool::broadcast`] closures.
pub struct BroadcastContext<'a> {
    index: usize,
    num_threads: usize,
    _scope: PhantomData<&'a ()>,
}

impl BroadcastContext<'_> {
    /// This worker's rank in `0..num_threads()`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Team size of the broadcast.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }
}

impl ThreadPool {
    /// The pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }

    /// Runs `op` with this pool's width installed, so nested
    /// `par_iter()` calls split work across `width` threads.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        // Restore on drop so a panicking `op` (caught further up, e.g.
        // by a test harness) cannot leak this pool's width onto the
        // calling thread.
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_WIDTH.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(INSTALLED_WIDTH.with(|c| c.replace(self.width)));
        op()
    }

    /// Executes `op` once on every worker slot concurrently and returns
    /// the per-worker results in rank order.
    pub fn broadcast<OP, R>(&self, op: OP) -> Vec<R>
    where
        OP: Fn(BroadcastContext<'_>) -> R + Sync,
        R: Send,
    {
        let n = self.width;
        let op = &op;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    scope.spawn(move || {
                        op(BroadcastContext {
                            index: i,
                            num_threads: n,
                            _scope: PhantomData,
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("broadcast worker panicked"))
                .collect()
        })
    }
}

/// Runs `f` over `items` split into at most [`current_width`] contiguous
/// chunks, one scoped thread per chunk, preserving item order in the
/// result.
fn chunked_run<'a, T, R, F>(items: &'a [T], f: F) -> Vec<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> Vec<R> + Sync,
{
    let width = current_width().max(1);
    if width == 1 || items.len() <= 1 {
        return vec![f(items)];
    }
    let chunk = items.len().div_ceil(width);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(move || f(c)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel iterator worker panicked"))
            .collect()
    })
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T: Sync> {
    items: &'a [T],
}

/// Mapped parallel iterator, terminated by [`ParMap::collect`].
pub struct ParMap<'a, T: Sync, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item; evaluation happens at `collect`.
    pub fn map<F, R>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Calls `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        chunked_run(self.items, |chunk| {
            chunk.iter().for_each(&f);
            Vec::<()>::new()
        });
    }

    /// Calls `f` on every item with a per-worker scratch state created
    /// by `init` (mirrors `rayon`'s `for_each_init`).
    pub fn for_each_init<I, S, F>(self, init: I, f: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) + Sync,
    {
        chunked_run(self.items, |chunk| {
            let mut state = init();
            for item in chunk {
                f(&mut state, item);
            }
            Vec::<()>::new()
        });
    }
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Evaluates the map in parallel and collects results in input
    /// order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        chunked_run(self.items, |chunk| chunk.iter().map(&self.f).collect())
            .into_iter()
            .flatten()
            .collect()
    }
}

/// `use rayon::prelude::*;` surface.
pub mod prelude {
    pub use super::IntoParallelRefIterator;
}

/// Types with a `.par_iter()` borrowing parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by reference.
    type Item: Sync + 'data;

    /// A parallel iterator over `&self`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn broadcast_runs_all_ranks_concurrently() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        // A hand-rolled barrier: only passes if all 4 closures are live
        // at the same time.
        let arrived = AtomicUsize::new(0);
        let ranks = pool.broadcast(|ctx| {
            arrived.fetch_add(1, Ordering::SeqCst);
            while arrived.load(Ordering::SeqCst) < 4 {
                std::hint::spin_loop();
            }
            ctx.index()
        });
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn par_map_collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let input: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = pool.install(|| input.par_iter().map(|&x| x * 2).collect());
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_init_covers_every_item_once() {
        let input: Vec<usize> = (0..257).collect();
        let seen = Mutex::new(Vec::new());
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            input
                .par_iter()
                .for_each_init(Vec::new, |acc: &mut Vec<usize>, &x| {
                    acc.push(x);
                    seen.lock().unwrap().push(x);
                })
        });
        let got: HashSet<usize> = seen.lock().unwrap().iter().copied().collect();
        assert_eq!(got.len(), 257);
        assert_eq!(seen.lock().unwrap().len(), 257);
    }

    #[test]
    fn install_restores_width_after_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = current_width();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"))
        }));
        assert!(caught.is_err());
        assert_eq!(current_width(), before, "width leaked past a panic");
    }

    #[test]
    fn install_restores_previous_width() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        outer.install(|| {
            assert_eq!(current_width(), 2);
            inner.install(|| assert_eq!(current_width(), 5));
            assert_eq!(current_width(), 2);
        });
    }
}
