//! Minimal in-tree stand-in for the `rayon` crate (the build environment
//! has no registry access), rewritten as a thin compatibility façade over
//! the persistent [`basker_runtime::WorkerTeam`]. Provides the surface
//! this workspace uses:
//!
//! * [`ThreadPoolBuilder`] / [`ThreadPool`] with `install`, `broadcast`
//!   and `current_num_threads`;
//! * `prelude::*` with `.par_iter()` on slices/`Vec`s supporting
//!   `.map(..).collect()`, `.for_each(..)` and `.for_each_init(..)`.
//!
//! Every `ThreadPool` is backed by a **hot, process-shared** team from
//! [`basker_runtime::shared_team`]: building a pool of a width that was
//! seen before spawns zero new OS threads, and workers park between jobs
//! instead of burning CPU. `broadcast` genuinely runs one
//! concurrently-live thread per pool slot — the Basker point-to-point
//! synchronization (spin-wait slots) relies on every team member making
//! progress at once, so a sequential fallback would deadlock. Parallel
//! iterators dispatch chunks onto the installed pool's team; without an
//! installed pool they fall back to the shared machine-width team (or
//! run serially when that team is this thread itself).
//!
//! Beyond the upstream API, [`ThreadPoolBuilder::pin_threads`] requests
//! core pinning for the backing team (a Basker extension; real `rayon`
//! callers simply never invoke it).

use basker_runtime::{shared_team, WorkerTeam};
use std::cell::RefCell;
use std::fmt;
use std::sync::{Arc, Mutex};

thread_local! {
    /// Team installed by [`ThreadPool::install`]; `None` = no pool.
    static INSTALLED: RefCell<Option<Arc<WorkerTeam>>> = const { RefCell::new(None) };
}

fn default_width() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error from [`ThreadPoolBuilder::build`]. The shim pool cannot
/// actually fail to build; the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
    pin_threads: bool,
}

impl ThreadPoolBuilder {
    /// A builder with the default (machine-sized) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool width; 0 means "number of cores".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Requests that the backing team pin worker `r` to core `r` (a
    /// Basker extension over the upstream `rayon` API; best-effort).
    pub fn pin_threads(mut self, pin: bool) -> Self {
        self.pin_threads = pin;
        self
    }

    /// Accepted for API compatibility; the backing team names its own
    /// threads (`basker-worker-N`).
    pub fn thread_name<F>(self, _name: F) -> Self
    where
        F: Fn(usize) -> String,
    {
        self
    }

    /// Builds the pool, attaching it to the shared persistent team of
    /// the requested width. Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_width()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            team: shared_team(n, self.pin_threads),
        })
    }
}

/// A logical pool of worker slots, backed by a persistent
/// [`WorkerTeam`] shared across all pools of the same width.
pub struct ThreadPool {
    team: Arc<WorkerTeam>,
}

/// Per-thread context handed to [`ThreadPool::broadcast`] closures.
pub struct BroadcastContext<'a> {
    index: usize,
    num_threads: usize,
    _scope: std::marker::PhantomData<&'a ()>,
}

impl BroadcastContext<'_> {
    /// This worker's rank in `0..num_threads()`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Team size of the broadcast.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }
}

impl ThreadPool {
    /// The pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.team.width()
    }

    /// The persistent team backing this pool (Basker extension).
    pub fn team(&self) -> &Arc<WorkerTeam> {
        &self.team
    }

    /// Runs `op` with this pool installed, so nested `par_iter()` calls
    /// dispatch their chunks onto this pool's team.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        // Restore on drop so a panicking `op` (caught further up, e.g.
        // by a test harness) cannot leak this pool's team onto the
        // calling thread.
        struct Restore(Option<Arc<WorkerTeam>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED.with(|c| *c.borrow_mut() = self.0.take());
            }
        }
        let _restore = Restore(INSTALLED.with(|c| c.borrow_mut().replace(self.team.clone())));
        op()
    }

    /// Executes `op` once on every worker slot concurrently and returns
    /// the per-worker results in rank order.
    pub fn broadcast<OP, R>(&self, op: OP) -> Vec<R>
    where
        OP: Fn(BroadcastContext<'_>) -> R + Sync,
        R: Send,
    {
        self.team.broadcast(|ctx| {
            op(BroadcastContext {
                index: ctx.rank(),
                num_threads: ctx.width(),
                _scope: std::marker::PhantomData,
            })
        })
    }
}

/// Runs `f` over `items` split into at most team-width contiguous
/// chunks, preserving item order in the result. Falls back to a serial
/// call when no parallel execution is possible (width 1 or a single
/// chunk).
///
/// The chunks are dispatched as one **assistable worklist task** over
/// the team — the same atomically-claimed work loop that runs broadcast
/// ranks and `SolverService` jobs — so chunks are claimed by whichever
/// rank is free first, and a thread blocked elsewhere in the process
/// (e.g. on a pipeline column) can assist the remaining chunks.
fn chunked_run<'a, T, R, F>(items: &'a [T], f: F) -> Vec<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> Vec<R> + Sync,
{
    let team = INSTALLED
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| shared_team(default_width(), false));
    let width = team.width();
    if width == 1 || items.len() <= 1 {
        return vec![f(items)];
    }
    let chunk = items.len().div_ceil(width);
    let chunks: Vec<&'a [T]> = items.chunks(chunk).collect();
    let cells: Vec<Mutex<Option<Vec<R>>>> = (0..chunks.len()).map(|_| Mutex::new(None)).collect();
    team.run_worklist(chunks.len(), |i| {
        *cells[i].lock().unwrap() = Some(f(chunks[i]));
    });
    cells
        .into_iter()
        .map(|c| c.into_inner().unwrap().expect("worklist chunk missing"))
        .collect()
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T: Sync> {
    items: &'a [T],
}

/// Mapped parallel iterator, terminated by [`ParMap::collect`].
pub struct ParMap<'a, T: Sync, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item; evaluation happens at `collect`.
    pub fn map<F, R>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Calls `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        chunked_run(self.items, |chunk| {
            chunk.iter().for_each(&f);
            Vec::<()>::new()
        });
    }

    /// Calls `f` on every item with a per-worker scratch state created
    /// by `init` (mirrors `rayon`'s `for_each_init`).
    pub fn for_each_init<I, S, F>(self, init: I, f: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) + Sync,
    {
        chunked_run(self.items, |chunk| {
            let mut state = init();
            for item in chunk {
                f(&mut state, item);
            }
            Vec::<()>::new()
        });
    }
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Evaluates the map in parallel and collects results in input
    /// order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        chunked_run(self.items, |chunk| chunk.iter().map(&self.f).collect())
            .into_iter()
            .flatten()
            .collect()
    }
}

/// `use rayon::prelude::*;` surface.
pub mod prelude {
    pub use super::IntoParallelRefIterator;
}

/// Types with a `.par_iter()` borrowing parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by reference.
    type Item: Sync + 'data;

    /// A parallel iterator over `&self`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn broadcast_runs_all_ranks_concurrently() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        // A hand-rolled barrier: only passes if all 4 closures are live
        // at the same time.
        let arrived = AtomicUsize::new(0);
        let ranks = pool.broadcast(|ctx| {
            arrived.fetch_add(1, Ordering::SeqCst);
            while arrived.load(Ordering::SeqCst) < 4 {
                std::thread::yield_now();
            }
            ctx.index()
        });
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pools_of_equal_width_share_one_team() {
        let a = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = basker_runtime::os_threads_spawned();
        let b = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert!(std::sync::Arc::ptr_eq(a.team(), b.team()));
        assert_eq!(
            basker_runtime::os_threads_spawned(),
            before,
            "second pool of the same width must not spawn threads"
        );
    }

    #[test]
    fn par_map_collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let input: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = pool.install(|| input.par_iter().map(|&x| x * 2).collect());
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_without_install_still_covers_everything() {
        let input: Vec<usize> = (0..37).collect();
        let out: Vec<usize> = input.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, (1..38).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_init_covers_every_item_once() {
        let input: Vec<usize> = (0..257).collect();
        let seen = Mutex::new(Vec::new());
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            input
                .par_iter()
                .for_each_init(Vec::new, |acc: &mut Vec<usize>, &x| {
                    acc.push(x);
                    seen.lock().unwrap().push(x);
                })
        });
        let got: HashSet<usize> = seen.lock().unwrap().iter().copied().collect();
        assert_eq!(got.len(), 257);
        assert_eq!(seen.lock().unwrap().len(), 257);
    }

    #[test]
    fn install_restores_team_after_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"))
        }));
        assert!(caught.is_err());
        assert!(
            INSTALLED.with(|c| c.borrow().is_none()),
            "installed team leaked past a panic"
        );
    }

    #[test]
    fn install_restores_previous_team() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let width = || INSTALLED.with(|c| c.borrow().as_ref().map(|t| t.width()));
        outer.install(|| {
            assert_eq!(width(), Some(2));
            inner.install(|| assert_eq!(width(), Some(5)));
            assert_eq!(width(), Some(2));
        });
        assert_eq!(width(), None);
    }
}
