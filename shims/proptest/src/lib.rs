//! Minimal in-tree stand-in for the `proptest` crate (the build
//! environment has no registry access). Supports the surface the
//! workspace's property tests use: range and tuple strategies,
//! `prop_map`, `collection::vec`, the `proptest!` macro with a
//! `proptest_config` attribute, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Each test case draws from a deterministic RNG seeded from the test
//! name and case index, so failures reproduce exactly on re-run. Unlike
//! real proptest there is no shrinking — a failing case panics with its
//! seed instead.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};
use std::ops::Range;

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Ranges are uniform strategies over their contents.
impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with uniformly drawn length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index, so every
    // (test, case) pair has a stable, distinct stream.
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37))
}

/// Shim of proptest's test macro: runs each body `cases` times with
/// values drawn from the given strategy.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($pat:pat in $strat:expr) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = $strat;
            for case in 0..config.cases {
                let mut rng = $crate::__case_rng(stringify!($name), case);
                let $pat = $crate::Strategy::generate(&strategy, &mut rng);
                $body
            }
        }
    )*};
}

/// Shim of `prop_assert!`: panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Shim of `prop_assert_eq!`: panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use crate as proptest;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let strat = (3usize..10, -1.0f64..1.0, 0u64..5);
        let mut rng = super::__case_rng("bounds", 0);
        for _ in 0..200 {
            let (a, b, c) = Strategy::generate(&strat, &mut rng);
            assert!((3..10).contains(&a));
            assert!((-1.0..1.0).contains(&b));
            assert!(c < 5);
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let strat = proptest::collection::vec(0usize..4, 2..7);
        let mut rng = super::__case_rng("sizes", 1);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn seeds_are_stable_per_test_and_case() {
        let a = Strategy::generate(&(0u64..u64::MAX), &mut super::__case_rng("t", 3));
        let b = Strategy::generate(&(0u64..u64::MAX), &mut super::__case_rng("t", 3));
        let c = Strategy::generate(&(0u64..u64::MAX), &mut super::__case_rng("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_expands_and_runs(x in (1usize..50).prop_map(|v| v * 2)) {
            prop_assert!((2..100).contains(&x));
            prop_assert_eq!(x % 2, 0);
        }
    }
}
