//! Minimal in-tree stand-in for the `criterion` crate (the build
//! environment has no registry access). Implements the subset the
//! workspace's benches use — `benchmark_group`, `sample_size`,
//! `measurement_time`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter` and the `criterion_group!` /
//! `criterion_main!` macros — with straightforward wall-clock timing:
//! per sample, the closure runs in a timed batch, and the per-iteration
//! mean / min / max over all samples is printed.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark manager handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark (outside any group).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into_benchmark_id(), 100, Duration::from_secs(5), &mut f);
        self
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report output is per-benchmark, so this is a
    /// no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Two-part benchmark identifier, `<function>/<parameter>`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id labelled `<function_name>/<parameter>`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Conversion of the various accepted id types to a display label.
pub trait IntoBenchmarkId {
    /// The label under which results are reported.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f` over one batch of iterations, recording one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        let total = start.elapsed().as_nanos() as f64;
        self.sample_ns.push(total / self.iters_per_sample as f64);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    // Calibration sample: one iteration, also serves as warm-up.
    let mut b = Bencher {
        iters_per_sample: 1,
        sample_ns: Vec::new(),
    };
    f(&mut b);
    let calib_ns = b.sample_ns.first().copied().unwrap_or(1.0).max(1.0);

    // Size batches so `sample_size` samples roughly fill the time
    // budget, like criterion's linear sampling mode.
    let budget_ns = measurement_time.as_nanos() as f64;
    let iters = (budget_ns / (calib_ns * sample_size as f64)).floor() as u64;
    let mut b = Bencher {
        iters_per_sample: iters.max(1),
        sample_ns: Vec::new(),
    };
    let deadline = Instant::now() + 2 * measurement_time;
    for _ in 0..sample_size {
        f(&mut b);
        if Instant::now() > deadline {
            break;
        }
    }

    let samples = &b.sample_ns;
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{label:<40} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        samples.len(),
        b.iters_per_sample,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} us", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(2).measurement_time(Duration::from_millis(5));
        g.bench_function("id", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with", 7), &7u64, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }

    #[test]
    fn id_formats_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("f", 32).into_benchmark_id(), "f/32");
    }
}
