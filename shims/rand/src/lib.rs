//! Minimal in-tree stand-in for the `rand` crate (the build environment
//! has no registry access). Implements exactly the surface this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges, and `Rng::gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! deterministic per seed, and statistically solid for test-matrix
//! generation. Streams do NOT match crates.io `rand`; nothing in the
//! workspace depends on specific draws, only on seeds being
//! reproducible.

use std::ops::{Range, RangeInclusive};

/// Core of any generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range (as crates.io `rand`
    /// does).
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

// f64 only: an f32 impl would make bare `0.0..0.3` literals ambiguous,
// and nothing in the workspace samples f32.
impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.gen_range(0u64..1 << 40) == c.gen_range(0u64..1 << 40));
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let w = r.gen_range(3usize..=7);
            assert!((3..=7).contains(&w));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} of 10000");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
