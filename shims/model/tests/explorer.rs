//! Self-tests for the model checker: correct protocols pass
//! exhaustively, each failure class (race / lost update / lost wakeup
//! / livelock / panic) is detected, and failing seeds replay.

use basker_model as model;
use model::{FailureKind, Outcome};
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn cfg() -> model::Config {
    model::Config::default()
}

/// Two threads increment a shared counter with atomic RMWs: every
/// interleaving sums to 2, and the explorer actually visits more than
/// one interleaving.
#[test]
fn atomic_increments_pass_exhaustively() {
    let outcome = model::check(cfg(), || {
        let n = Arc::new(model::sync::AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                model::thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    match outcome {
        Outcome::Pass { executions } => assert!(executions > 1, "expected real branching"),
        other => panic!("expected pass, got {other:?}"),
    }
}

/// A torn read-modify-write (load; add; store) loses updates in some
/// interleavings; the root assertion catches it as a Panic failure.
#[test]
fn lost_update_detected_as_panic() {
    let outcome = model::check(cfg(), || {
        let n = Arc::new(model::sync::AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                model::thread::spawn(move || {
                    let v = n.load(Ordering::Relaxed);
                    n.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
    });
    let report = outcome.failure().expect("lost update must be found");
    assert!(
        matches!(&report.kind, FailureKind::Panic { message, .. } if message.contains("lost update"))
    );
}

/// Release/Acquire flag hand-off over an unsynchronized cell is
/// race-free in every interleaving.
#[test]
fn release_acquire_handoff_passes() {
    let outcome = model::check(cfg(), || {
        let flag = Arc::new(model::sync::AtomicU8::new(0));
        let cell = Arc::new(model::cell::ValueCell::new());
        let (f2, c2) = (flag.clone(), cell.clone());
        let producer = model::thread::spawn(move || {
            // SAFETY: sole producer; ordered before readers by the
            // Release store below.
            unsafe { c2.set(7u64) };
            f2.store(1, Ordering::Release);
        });
        while flag.load(Ordering::Acquire) == 0 {
            model::thread::yield_now();
        }
        // SAFETY: Acquire observed the Release store, so the write
        // happens-before this read.
        assert_eq!(unsafe { cell.get_ref() }, Some(&7));
        producer.join().unwrap();
    });
    assert!(outcome.is_pass(), "got {outcome:?}");
}

/// The same hand-off with a Relaxed publish is a data race (the write
/// is not ordered before the read), and the failing seed replays to
/// the same failure class.
#[test]
fn relaxed_publish_races_and_seed_replays() {
    let run = |seeded: Option<&str>| {
        let body = || {
            let flag = Arc::new(model::sync::AtomicU8::new(0));
            let cell = Arc::new(model::cell::ValueCell::new());
            let (f2, c2) = (flag.clone(), cell.clone());
            let producer = model::thread::spawn(move || {
                // SAFETY: deliberately wrong — the Relaxed store below
                // publishes nothing, so this write races with the read.
                unsafe { c2.set(7u64) };
                f2.store(1, Ordering::Relaxed);
            });
            while flag.load(Ordering::Acquire) == 0 {
                model::thread::yield_now();
            }
            // SAFETY: deliberately unsound (that is the test).
            let _ = unsafe { cell.get_ref() };
            producer.join().unwrap();
        };
        match seeded {
            None => model::check(cfg(), body),
            Some(seed) => model::replay(cfg(), seed, body),
        }
    };
    let outcome = run(None);
    let report = outcome.failure().expect("race must be found");
    assert!(matches!(report.kind, FailureKind::DataRace { .. }));
    let seed = report.schedule.seed();
    let replayed = run(Some(&seed));
    let rr = replayed.failure().expect("seed must reproduce the race");
    assert!(matches!(rr.kind, FailureKind::DataRace { .. }));
}

/// A waiter whose producer sets the flag but never notifies is a lost
/// wakeup: some schedule parks the waiter after the flag check and
/// nothing ever wakes it.
#[test]
fn missing_notify_detected_as_deadlock() {
    let outcome = model::check(cfg(), || {
        let state = Arc::new((model::sync::Mutex::new(false), model::sync::Condvar::new()));
        let s2 = state.clone();
        let producer = model::thread::spawn(move || {
            let (m, _cv) = &*s2;
            *m.lock().unwrap() = true;
            // Bug under test: no notify.
        });
        {
            let (m, cv) = &*state;
            let mut done = m.lock().unwrap();
            while !*done {
                done = cv.wait(done).unwrap();
            }
        }
        producer.join().unwrap();
    });
    let report = outcome.failure().expect("lost wakeup must be found");
    assert!(matches!(report.kind, FailureKind::Deadlock { .. }));
}

/// The corrected protocol — notify under the lock — passes.
#[test]
fn notify_under_lock_passes() {
    let outcome = model::check(cfg(), || {
        let state = Arc::new((model::sync::Mutex::new(false), model::sync::Condvar::new()));
        let s2 = state.clone();
        let producer = model::thread::spawn(move || {
            let (m, cv) = &*s2;
            *m.lock().unwrap() = true;
            cv.notify_all();
        });
        {
            let (m, cv) = &*state;
            let mut done = m.lock().unwrap();
            while !*done {
                done = cv.wait(done).unwrap();
            }
        }
        producer.join().unwrap();
    });
    assert!(outcome.is_pass(), "got {outcome:?}");
}

/// A spin loop no peer can ever release trips the step budget.
#[test]
fn unreleasable_spin_detected_as_livelock() {
    let outcome = model::check(
        model::Config {
            max_steps: 200,
            ..cfg()
        },
        || {
            let flag = model::sync::AtomicU8::new(0);
            while flag.load(Ordering::Acquire) == 0 {
                model::thread::yield_now();
            }
        },
    );
    let report = outcome.failure().expect("livelock must be found");
    assert!(matches!(report.kind, FailureKind::Livelock { .. }));
}

/// A panic in a *spawned* thread is delivered through join (std
/// semantics), so a protocol that expects exactly one of two racing
/// claimants to fail can assert that.
#[test]
fn spawned_panic_delivered_through_join() {
    let outcome = model::check(cfg(), || {
        let winner = Arc::new(model::sync::AtomicU8::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let w = winner.clone();
                model::thread::spawn(move || {
                    w.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
                        .expect("claimed twice");
                })
            })
            .collect();
        let failures = handles
            .into_iter()
            .map(|h| h.join().is_err() as usize)
            .sum::<usize>();
        assert_eq!(failures, 1, "exactly one claimant must lose");
    });
    assert!(outcome.is_pass(), "got {outcome:?}");
}
