//! Model threads: spawn/join with deterministic ids, plus the yield
//! primitive that makes spin loops explorable.
//!
//! Mirrors the slice of `std::thread` the sync core's model tests
//! need. A panic in a spawned thread is delivered through
//! [`JoinHandle::join`] as `Err(payload)` — std semantics — so tests
//! can assert "exactly one of the racing publishers panics" by
//! catching at the join. A panic that instead escapes the *root*
//! closure is reported as a [`FailureKind::Panic`] execution failure.
//!
//! [`FailureKind::Panic`]: crate::FailureKind::Panic

use crate::exec::{ctx, spawn_model_thread, ModelAbort};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

type ThreadResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<StdMutex<Option<ThreadResult<T>>>>,
}

/// Spawns a model thread running `f`. The child's vector clock starts
/// as the parent's (spawn is a happens-before edge); the spawn itself
/// is a schedule point, so the child may run before the parent's next
/// operation.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let c = ctx();
    let result: Arc<StdMutex<Option<ThreadResult<T>>>> = Arc::new(StdMutex::new(None));
    let slot = result.clone();
    let body = Box::new(move || {
        let outcome = match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => Ok(v),
            Err(p) => {
                if p.downcast_ref::<ModelAbort>().is_some() {
                    // Execution teardown, not a user panic: keep
                    // unwinding so the scheduler reaps this thread.
                    resume_unwind(p);
                }
                Err(p)
            }
        };
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
    });
    let tid = spawn_model_thread(&c, body);
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Blocks (through the scheduler) until the thread finishes;
    /// returns its value, or `Err(payload)` if it panicked. Joining
    /// establishes happens-before from everything the child did.
    pub fn join(self) -> ThreadResult<T> {
        let c = ctx();
        c.exec.join_thread(c.tid, self.tid);
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("model thread finished without storing a result")
    }
}

/// Cooperative yield: the caller is descheduled until some *other*
/// thread passes a schedule point. This is what keeps
/// `while !ready { yield_now() }` loops finite under exploration — the
/// spinner only retries after a peer has had a chance to make the
/// condition true, and a spin no peer can ever release trips the step
/// budget as a livelock.
pub fn yield_now() {
    let c = ctx();
    c.exec.yield_point(c.tid);
}
