//! Race-checked unsynchronized storage.
//!
//! [`ValueCell`] is the model stand-in for the `UnsafeCell<Option<T>>`
//! payload inside `Slot`: plain non-atomic storage whose accesses are
//! checked against the happens-before relation instead of being
//! schedule points. Every write records the writer's vector clock;
//! every read records the reader's. An access races with a prior one
//! iff the prior clock is not ≤ the current thread's clock — exactly
//! the condition under which the real `UnsafeCell` access would be UB.
//! Detection needs no simultaneity: even in a fully sequential
//! interleaving, a write that was not *ordered* before a read (by a
//! release/acquire pair, a mutex, a join, ...) is flagged.

use crate::clock::Clock;
use crate::exec::{ctx, FailureKind};
use std::cell::UnsafeCell;
use std::sync::Mutex as StdMutex;

struct CellState {
    last_write: Option<(usize, Clock)>,
    reads: Vec<(usize, Clock)>,
}

/// Non-atomic `Option<T>` storage with vector-clock race detection.
pub struct ValueCell<T> {
    value: UnsafeCell<Option<T>>,
    state: StdMutex<CellState>,
}

// SAFETY: the race checker aborts the execution on any pair of
// accesses not ordered by happens-before, so accesses that *do*
// proceed are data-race-free by construction; `T: Send` moves the
// value between threads along those edges.
unsafe impl<T: Send> Sync for ValueCell<T> {}

impl<T> Default for ValueCell<T> {
    fn default() -> ValueCell<T> {
        ValueCell::new()
    }
}

impl<T> ValueCell<T> {
    /// Creates an empty cell.
    pub fn new() -> ValueCell<T> {
        ValueCell {
            value: UnsafeCell::new(None),
            state: StdMutex::new(CellState {
                last_write: None,
                reads: Vec::new(),
            }),
        }
    }

    /// Stores `Some(value)`, checking for write-write and read-write
    /// races against every access not ordered before this one.
    ///
    /// # Safety
    ///
    /// Caller asserts exclusive logical ownership of the cell for this
    /// write (the same contract as writing the real `UnsafeCell`); the
    /// checker verifies the assertion and aborts the execution with a
    /// [`FailureKind::DataRace`] if it is wrong.
    pub unsafe fn set(&self, value: T) {
        let c = ctx();
        let my = c.exec.clock_of(c.tid);
        let race = {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let conflict = st
                .last_write
                .as_ref()
                .filter(|(_, w)| !w.le(&my))
                .map(|(t, _)| (*t, "write"))
                .or_else(|| {
                    st.reads
                        .iter()
                        .find(|(_, r)| !r.le(&my))
                        .map(|(t, _)| (*t, "read"))
                });
            if conflict.is_none() {
                st.last_write = Some((c.tid, my.clone()));
                st.reads.clear();
            }
            conflict
        };
        if let Some((prior_thread, prior_access)) = race {
            c.exec.fail_now(FailureKind::DataRace {
                current_thread: c.tid,
                current_access: "write",
                prior_thread,
                prior_access,
            });
        }
        // Checked: no unordered access exists, so this write is
        // exclusive along happens-before.
        unsafe { *self.value.get() = Some(value) };
    }

    /// Reads the cell, checking that the last write (if any) is
    /// ordered before this read.
    ///
    /// # Safety
    ///
    /// Caller asserts no concurrent writer exists (the contract of
    /// reading the real `UnsafeCell`); the checker verifies it and
    /// aborts with a [`FailureKind::DataRace`] if violated.
    pub unsafe fn get_ref(&self) -> Option<&T> {
        let c = ctx();
        let my = c.exec.clock_of(c.tid);
        let race = {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let conflict = st
                .last_write
                .as_ref()
                .filter(|(_, w)| !w.le(&my))
                .map(|(t, _)| *t);
            if conflict.is_none() {
                st.reads.push((c.tid, my));
            }
            conflict
        };
        if let Some(prior_thread) = race {
            c.exec.fail_now(FailureKind::DataRace {
                current_thread: c.tid,
                current_access: "read",
                prior_thread,
                prior_access: "write",
            });
        }
        // Checked: the last write happens-before this read.
        unsafe { (*self.value.get()).as_ref() }
    }

    /// Consumes the cell, returning the value (no race check needed:
    /// ownership proves exclusivity).
    pub fn into_inner(self) -> Option<T> {
        self.value.into_inner()
    }
}
