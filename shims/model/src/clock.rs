//! Vector clocks for happens-before tracking.
//!
//! Every model thread carries a clock; synchronization edges (Release
//! stores observed by Acquire loads, mutex release/acquire, spawn,
//! join, condvar notify) join clocks. Two accesses to the same
//! unsynchronized location race iff neither access's clock is ≤ the
//! other thread's clock at its access — the classic vector-clock race
//! criterion (FastTrack without the epoch compression; executions here
//! have a handful of threads, so full clocks are cheap).

/// A vector clock: component `i` counts schedule points executed by
/// model thread `i` (plus joins). Missing components are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Clock(Vec<u32>);

impl Clock {
    /// The zero clock (const so atomics can embed one in a `static`).
    pub const fn new() -> Clock {
        Clock(Vec::new())
    }

    /// Advances this clock's own component for thread `tid`.
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Component-wise maximum (the happens-before join).
    pub fn join(&mut self, other: &Clock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// True when `self` ≤ `other` component-wise: everything known at
    /// `self` happens-before the point `other` was taken.
    pub fn le(&self, other: &Clock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.0.get(i).copied().unwrap_or(0))
    }

    /// Resets to the zero clock (a Relaxed store clears the location's
    /// release clock — it publishes nothing).
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_le() {
        let mut a = Clock::new();
        a.tick(0);
        a.tick(0);
        let mut b = Clock::new();
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
        j.clear();
        assert!(j.le(&a));
    }
}
