//! `basker_model` — deterministic interleaving model checker for the
//! lock-free sync core.
//!
//! A dependency-free, in-tree analogue of `loom`: run a closure that
//! exercises a concurrency protocol on *model* primitives
//! ([`sync::AtomicU8`], [`sync::Mutex`], [`cell::ValueCell`],
//! [`thread::spawn`], ...) under [`check`], and the explorer executes
//! it once per distinct interleaving of those primitives' operations,
//! depth-first over the schedule tree, until the tree is exhausted or
//! a failure surfaces:
//!
//! - **data race** — two `ValueCell` accesses with no happens-before
//!   edge between them (vector-clock criterion; this is what the real
//!   `UnsafeCell` code would call UB),
//! - **deadlock / lost wakeup** — unfinished threads, none runnable,
//! - **livelock** — a spin loop no peer can release (step budget),
//! - **panic** — an assertion failure escaping the root closure.
//!
//! On failure the scheduler prints a **seed** (the decision sequence,
//! e.g. `1.0.2`) that [`replay`] turns back into the exact failing
//! execution — attach a debugger, add prints, it's deterministic.
//!
//! How this differs from real hardware is deliberate and documented in
//! [`sync`]: values are sequentially consistent (store buffering /
//! load reordering are not simulated) and `SeqCst` is modeled as
//! `AcqRel`; what *is* modeled precisely is the happens-before
//! structure of Acquire/Release/Relaxed — which is exactly what the
//! `Slot` publish/claim and `TaskCore` assist protocols rely on, and
//! exactly what a wrong `Ordering` breaks. A protocol that passes here
//! is race-free in its synchronization skeleton; the orderings it uses
//! are thereby *proven necessary-or-sufficient* against the explored
//! schedules (see the ordering-audit tests in `basker::sync`).
//!
//! The production crates swap onto these primitives under
//! `--cfg basker_model` (never in a normal build); this crate itself
//! builds and tests everywhere.
//!
//! ```
//! use basker_model as model;
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! let outcome = model::check(model::Config::default(), || {
//!     let flag = Arc::new(model::sync::AtomicU8::new(0));
//!     let cell = Arc::new(model::cell::ValueCell::new());
//!     let (f2, c2) = (flag.clone(), cell.clone());
//!     let producer = model::thread::spawn(move || {
//!         // SAFETY: single producer; the Release store below orders
//!         // this write before any reader that Acquire-loads the flag.
//!         unsafe { c2.set(42u32) };
//!         f2.store(1, Ordering::Release);
//!     });
//!     while flag.load(Ordering::Acquire) == 0 {
//!         model::thread::yield_now();
//!     }
//!     // SAFETY: the Acquire load observed the Release store, so the
//!     // producer's write happens-before this read.
//!     assert_eq!(unsafe { cell.get_ref() }, Some(&42));
//!     producer.join().unwrap();
//! });
//! assert!(outcome.is_pass());
//! ```

mod clock;
mod exec;

pub mod cell;
pub mod sync;
pub mod thread;

pub use exec::{check, replay, Config, FailureKind, FailureReport, Outcome, Schedule};
