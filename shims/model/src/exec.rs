//! The execution engine: one cooperative lock-step scheduler per
//! explored execution, plus the bounded-DFS explorer that enumerates
//! schedules.
//!
//! Model threads are real OS threads, but exactly **one** is ever
//! runnable: every model operation (atomic access, mutex acquire,
//! condvar notify, yield, spawn, join) first calls [`Exec::point`],
//! which hands control to the scheduler. The scheduler picks the next
//! thread from the runnable set; when more than one thread is runnable
//! the pick is a *decision*, recorded in the execution's trace. The
//! explorer replays a trace prefix and takes the next untried
//! alternative at the deepest incompletely-explored decision —
//! depth-first over the schedule tree, visiting every interleaving of
//! the recorded decision points exactly once.
//!
//! Yield semantics make spin loops explorable: a thread that calls
//! `yield_now` is descheduled until some *other* thread passes a
//! schedule point, so `while !ready { yield }` loops add only a
//! bounded number of interleavings per producer step instead of
//! diverging. A spin loop whose exit condition no other thread can
//! ever satisfy runs into the per-execution step budget and is
//! reported as a livelock.

use crate::clock::Clock;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as AOrd};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Identity source for model mutexes/condvars (process-wide; only
/// uniqueness matters, not density).
static OBJECT_IDS: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh id for a model sync object.
pub(crate) fn next_object_id() -> u64 {
    // ORDER: Relaxed — id generation only needs uniqueness.
    OBJECT_IDS.fetch_add(1, AOrd::Relaxed)
}

/// Bounds for one [`check`] call.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Schedule points allowed per execution before the run is
    /// declared a livelock (a spin loop no peer can release).
    pub max_steps: usize,
    /// Executions (schedules) explored before giving up with
    /// [`Outcome::Exhausted`]. The protocols under test here fully
    /// enumerate in far fewer.
    pub max_executions: usize,
    /// Hard cap on live model threads per execution.
    pub max_threads: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_steps: 20_000,
            max_executions: 500_000,
            max_threads: 8,
        }
    }
}

/// Why an execution failed.
#[derive(Debug, Clone)]
pub enum FailureKind {
    /// Two accesses to the same unsynchronized cell without a
    /// happens-before edge between them.
    DataRace {
        /// Thread performing the racing access.
        current_thread: usize,
        /// Kind of the racing access (`"write"` / `"read"`).
        current_access: &'static str,
        /// Thread that performed the unordered prior access.
        prior_thread: usize,
        /// Kind of the prior access.
        prior_access: &'static str,
    },
    /// A model thread panicked (assertion failure or an unexpected
    /// library panic).
    Panic {
        /// The panicking thread.
        thread: usize,
        /// Rendered panic payload.
        message: String,
    },
    /// Unfinished threads with nothing runnable — a lost wakeup or
    /// circular wait.
    Deadlock {
        /// The threads stuck blocked.
        waiting: Vec<usize>,
    },
    /// The per-execution step budget ran out — a spin loop no peer
    /// could release.
    Livelock {
        /// Steps executed when the budget tripped.
        steps: usize,
    },
}

/// A recorded schedule: the decision sequence that reproduces one
/// execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// At each decision point (>1 runnable thread), the index chosen
    /// from the sorted runnable set.
    pub choices: Vec<usize>,
    /// The thread ids those choices resolved to (diagnostic only; the
    /// seed encodes `choices`).
    pub threads: Vec<usize>,
}

impl Schedule {
    /// Encodes the schedule as a replayable seed string, e.g. `"0.2.1"`.
    pub fn seed(&self) -> String {
        if self.choices.is_empty() {
            return "-".to_string();
        }
        let parts: Vec<String> = self.choices.iter().map(|c| c.to_string()).collect();
        parts.join(".")
    }

    /// Parses a seed produced by [`Schedule::seed`].
    pub fn from_seed(seed: &str) -> Option<Schedule> {
        let seed = seed.trim();
        if seed == "-" {
            return Some(Schedule {
                choices: Vec::new(),
                threads: Vec::new(),
            });
        }
        let mut choices = Vec::new();
        for part in seed.split('.') {
            choices.push(part.parse().ok()?);
        }
        Some(Schedule {
            choices,
            threads: Vec::new(),
        })
    }
}

/// A failing execution: what went wrong and the schedule to replay it.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The failure class.
    pub kind: FailureKind,
    /// The schedule that produced it (feed [`Schedule::seed`] to
    /// [`replay`]).
    pub schedule: Schedule,
    /// How many executions had been explored when it surfaced.
    pub executions: usize,
}

/// Result of a [`check`] or [`replay`] call.
#[derive(Debug)]
pub enum Outcome {
    /// Every schedule explored, no failure: the protocol is correct
    /// under the model's semantics for this closure.
    Pass {
        /// Number of distinct schedules executed.
        executions: usize,
    },
    /// The execution budget ran out before the schedule tree was
    /// exhausted (no failure seen so far).
    Exhausted {
        /// Number of schedules executed.
        executions: usize,
    },
    /// A schedule failed.
    Fail(Box<FailureReport>),
}

impl Outcome {
    /// True for [`Outcome::Pass`].
    pub fn is_pass(&self) -> bool {
        matches!(self, Outcome::Pass { .. })
    }

    /// The failure report, if any.
    pub fn failure(&self) -> Option<&FailureReport> {
        match self {
            Outcome::Fail(r) => Some(r),
            _ => None,
        }
    }
}

/// Marker payload used to unwind model threads when an execution
/// aborts (failure detected elsewhere). Never surfaces to callers.
pub(crate) struct ModelAbort;

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum TState {
    Runnable,
    /// Descheduled until another thread passes a schedule point.
    Yielded,
    /// Waiting to acquire the mutex with this id.
    BlockedMutex(u64),
    /// Parked on the condvar with this id.
    BlockedCond(u64),
    /// Waiting for this thread id to finish.
    BlockedJoin(usize),
    Finished,
}

struct SchedState {
    threads: Vec<TState>,
    clocks: Vec<Clock>,
    active: Option<usize>,
    steps: usize,
    /// Decision indices taken this execution (into the sorted runnable
    /// set at each decision point).
    trace: Vec<usize>,
    /// Alternatives available at each decision.
    alts: Vec<usize>,
    /// Thread ids the decisions resolved to.
    picked: Vec<usize>,
    /// Prefix to replay before exploring fresh choices.
    replay: Vec<usize>,
    failure: Option<FailureKind>,
    aborting: bool,
}

pub(crate) struct Exec {
    sched: Mutex<SchedState>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    max_steps: usize,
    max_threads: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    /// Set while this OS thread runs as a model thread — the wrapped
    /// panic hook stays quiet for these (panics are part of the
    /// exploration, reported through [`FailureReport`] instead).
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

/// The calling thread's model identity.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Exec>,
    pub(crate) tid: usize,
}

/// The current model context; panics when called from outside
/// [`check`]/[`replay`] (model primitives are only meaningful under
/// the explorer).
pub(crate) fn ctx() -> Ctx {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("basker_model primitive used outside model::check / model::replay")
    })
}

impl Exec {
    fn new(config: &Config, replay: Vec<usize>) -> Exec {
        Exec {
            sched: Mutex::new(SchedState {
                threads: Vec::new(),
                clocks: Vec::new(),
                active: None,
                steps: 0,
                trace: Vec::new(),
                alts: Vec::new(),
                picked: Vec::new(),
                replay,
                failure: None,
                aborting: false,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            max_steps: config.max_steps,
            max_threads: config.max_threads,
        }
    }

    /// Locks the scheduler, shrugging off poisoning (a panicking model
    /// thread is a normal explored outcome, not corruption: all state
    /// transitions are single-field writes).
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Picks the next thread to run. `Err(())` means a failure was
    /// recorded (deadlock or replay divergence).
    fn choose_locked(&self, st: &mut SchedState) -> Result<Option<usize>, ()> {
        loop {
            let runnable: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| **t == TState::Runnable)
                .map(|(i, _)| i)
                .collect();
            if !runnable.is_empty() {
                let k = if runnable.len() == 1 {
                    0
                } else {
                    let d = st.trace.len();
                    let k = if d < st.replay.len() { st.replay[d] } else { 0 };
                    assert!(
                        k < runnable.len(),
                        "schedule replay diverged (non-deterministic model closure?)"
                    );
                    st.trace.push(k);
                    st.alts.push(runnable.len());
                    st.picked.push(runnable[k]);
                    k
                };
                return Ok(Some(runnable[k]));
            }
            let yielded: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| **t == TState::Yielded)
                .map(|(i, _)| i)
                .collect();
            if !yielded.is_empty() {
                // Everyone still alive has yielded: let them all retry
                // (progress is re-checked against the step budget).
                for y in yielded {
                    st.threads[y] = TState::Runnable;
                }
                continue;
            }
            let waiting: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t, TState::Finished))
                .map(|(i, _)| i)
                .collect();
            if waiting.is_empty() {
                return Ok(None);
            }
            self.fail_locked(st, FailureKind::Deadlock { waiting });
            return Err(());
        }
    }

    /// Records the first failure and flips the execution into abort
    /// mode; every thread parked in the scheduler unwinds out at its
    /// next wakeup.
    fn fail_locked(&self, st: &mut SchedState, kind: FailureKind) {
        if st.failure.is_none() {
            st.failure = Some(kind);
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Records a failure from the active thread and unwinds it.
    pub(crate) fn fail_now(&self, kind: FailureKind) -> ! {
        {
            let mut st = self.lock();
            self.fail_locked(&mut st, kind);
        }
        std::panic::panic_any(ModelAbort);
    }

    /// The canonical schedule point: every model operation calls this
    /// first. May deschedule the caller in favor of any other runnable
    /// thread; returns once the caller is scheduled again.
    pub(crate) fn point(&self, me: usize) {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            let steps = st.steps;
            self.fail_locked(&mut st, FailureKind::Livelock { steps });
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        st.clocks[me].tick(me);
        // Another thread has made progress: yielded peers may retry.
        for (i, t) in st.threads.iter_mut().enumerate() {
            if i != me && *t == TState::Yielded {
                *t = TState::Runnable;
            }
        }
        self.handoff(st, me);
    }

    /// Yield point: like [`point`], but the caller is descheduled
    /// until some other thread passes a schedule point.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            let steps = st.steps;
            self.fail_locked(&mut st, FailureKind::Livelock { steps });
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        st.clocks[me].tick(me);
        for (i, t) in st.threads.iter_mut().enumerate() {
            if i != me && *t == TState::Yielded {
                *t = TState::Runnable;
            }
        }
        st.threads[me] = TState::Yielded;
        self.handoff(st, me);
    }

    /// Deschedules the caller in state `blocked` until a peer wakes it
    /// (sets it Runnable) and the scheduler picks it.
    pub(crate) fn deschedule(&self, me: usize, blocked: TState) {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        st.threads[me] = blocked;
        self.handoff(st, me);
    }

    /// Chooses the next active thread and parks the caller until it is
    /// scheduled again.
    fn handoff(&self, mut st: MutexGuard<'_, SchedState>, me: usize) {
        match self.choose_locked(&mut st) {
            Err(()) => {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            Ok(next) => {
                st.active = next;
                if next == Some(me) {
                    return;
                }
                self.cv.notify_all();
                while st.active != Some(me) {
                    if st.aborting {
                        drop(st);
                        std::panic::panic_any(ModelAbort);
                    }
                    st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Registers a new model thread spawned by `parent`; returns its id.
    pub(crate) fn register_thread(&self, parent: Option<usize>) -> usize {
        let mut st = self.lock();
        let tid = st.threads.len();
        assert!(
            tid < self.max_threads,
            "model closure spawned more than max_threads ({}) threads",
            self.max_threads
        );
        st.threads.push(TState::Runnable);
        let mut clock = match parent {
            Some(p) => st.clocks[p].clone(),
            None => Clock::new(),
        };
        clock.tick(tid);
        st.clocks.push(clock);
        if parent.is_none() {
            st.active = Some(tid);
        }
        tid
    }

    pub(crate) fn collect_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(h);
    }

    /// Marks the caller finished, wakes joiners, and hands the
    /// schedule to the next runnable thread.
    fn finish_thread(&self, me: usize, failure: Option<FailureKind>) {
        let mut st = self.lock();
        if let Some(kind) = failure {
            self.fail_locked(&mut st, kind);
        }
        st.clocks[me].tick(me);
        st.threads[me] = TState::Finished;
        for t in st.threads.iter_mut() {
            if *t == TState::BlockedJoin(me) {
                *t = TState::Runnable;
            }
        }
        if st.aborting {
            self.cv.notify_all();
            return;
        }
        if st.active == Some(me) {
            match self.choose_locked(&mut st) {
                Err(()) => {}
                Ok(next) => st.active = next,
            }
        }
        self.cv.notify_all();
    }

    /// Blocks the caller until thread `target` finishes, then joins
    /// its final clock (the join happens-before edge).
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        self.point(me);
        loop {
            {
                let mut st = self.lock();
                if st.aborting {
                    drop(st);
                    std::panic::panic_any(ModelAbort);
                }
                if st.threads[target] == TState::Finished {
                    let final_clock = st.clocks[target].clone();
                    st.clocks[me].join(&final_clock);
                    return;
                }
            }
            self.deschedule(me, TState::BlockedJoin(target));
        }
    }

    // ---- clock plumbing for the sync facades ----

    pub(crate) fn clock_of(&self, tid: usize) -> Clock {
        self.lock().clocks[tid].clone()
    }

    pub(crate) fn join_clock(&self, tid: usize, other: &Clock) {
        self.lock().clocks[tid].join(other);
    }

    // ---- mutex / condvar hooks (state lives in the sync objects;
    //      blocking and wakeups live here) ----

    pub(crate) fn block_on_mutex(&self, me: usize, id: u64) {
        self.deschedule(me, TState::BlockedMutex(id));
    }

    pub(crate) fn wake_mutex_waiters(&self, id: u64) {
        let mut st = self.lock();
        for t in st.threads.iter_mut() {
            if *t == TState::BlockedMutex(id) {
                *t = TState::Runnable;
            }
        }
    }

    pub(crate) fn block_on_cond(&self, me: usize, id: u64) {
        self.deschedule(me, TState::BlockedCond(id));
    }

    /// Wakes waiters on condvar `id` (all, or just the lowest id when
    /// `all` is false), joining the notifier's clock into each.
    pub(crate) fn notify_cond(&self, me: usize, id: u64, all: bool) {
        let mut st = self.lock();
        let notifier_clock = st.clocks[me].clone();
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == TState::BlockedCond(id))
            .map(|(i, _)| i)
            .collect();
        let chosen: Vec<usize> = if all {
            waiters
        } else {
            waiters.into_iter().take(1).collect()
        };
        for w in chosen {
            st.threads[w] = TState::Runnable;
            st.clocks[w].join(&notifier_clock);
        }
    }
}

struct ExecResult {
    trace: Vec<usize>,
    alts: Vec<usize>,
    picked: Vec<usize>,
    failure: Option<FailureKind>,
}

fn payload_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs one model thread: installs the context, waits for its first
/// schedule, runs the body, and reports completion (or a escaped
/// panic) to the scheduler.
pub(crate) fn run_model_thread(exec: Arc<Exec>, tid: usize, body: Box<dyn FnOnce() + Send>) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exec: exec.clone(),
            tid,
        })
    });
    IN_MODEL.with(|c| c.set(true));
    // Wait to be scheduled for the first time.
    let aborted_before_start = {
        let mut st = exec.lock();
        loop {
            if st.aborting {
                break true;
            }
            if st.active == Some(tid) {
                break false;
            }
            st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    };
    let failure = if aborted_before_start {
        None
    } else {
        match catch_unwind(AssertUnwindSafe(body)) {
            Ok(()) => None,
            Err(p) => {
                if p.downcast_ref::<ModelAbort>().is_some() {
                    None
                } else {
                    Some(FailureKind::Panic {
                        thread: tid,
                        message: payload_message(p.as_ref()),
                    })
                }
            }
        }
    };
    exec.finish_thread(tid, failure);
    IN_MODEL.with(|c| c.set(false));
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Spawns a model thread (used by `model::thread::spawn`); returns its
/// tid. The OS thread parks until the scheduler picks it.
pub(crate) fn spawn_model_thread(parent: &Ctx, body: Box<dyn FnOnce() + Send>) -> usize {
    let tid = parent.exec.register_thread(Some(parent.tid));
    let exec = parent.exec.clone();
    let h = std::thread::Builder::new()
        .name(format!("basker-model-{tid}"))
        .spawn(move || run_model_thread(exec, tid, body))
        .expect("failed to spawn model thread");
    parent.exec.collect_handle(h);
    // Spawning is itself a schedule point: the child is now in the
    // runnable set and may be picked before the parent's next op.
    parent.exec.point(parent.tid);
    tid
}

/// Installs (once) a panic hook that stays quiet for panics inside
/// model threads — explored panics are reported via [`FailureReport`],
/// not stderr spam, and aborts are internal control flow.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(|c| c.get()) {
                return;
            }
            prev(info);
        }));
    });
}

fn run_once(config: &Config, replay: Vec<usize>, f: Arc<dyn Fn() + Send + Sync>) -> ExecResult {
    let exec = Arc::new(Exec::new(config, replay));
    let tid = exec.register_thread(None);
    debug_assert_eq!(tid, 0);
    let exec2 = exec.clone();
    let f2 = f.clone();
    let root = std::thread::Builder::new()
        .name("basker-model-0".to_string())
        .spawn(move || run_model_thread(exec2, tid, Box::new(move || f2())))
        .expect("failed to spawn model root thread");
    // Wait until every model thread has finished, then reap the OS
    // threads (they exit promptly once finished or aborted).
    {
        let mut st = exec.lock();
        while !st.threads.iter().all(|t| *t == TState::Finished) {
            st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    root.join().ok();
    for h in exec
        .handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .drain(..)
    {
        h.join().ok();
    }
    let st = exec.lock();
    ExecResult {
        trace: st.trace.clone(),
        alts: st.alts.clone(),
        picked: st.picked.clone(),
        failure: st.failure.clone(),
    }
}

/// Exhaustively explores every interleaving of `f`'s model operations
/// (bounded by `config`), checking for data races, deadlocks / lost
/// wakeups, livelocks, and assertion failures. On failure the
/// replayable schedule seed is printed to stderr and returned.
pub fn check<F>(config: Config, f: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    // Opt-in progress telemetry for long explorations (CI logs, local
    // debugging): BASKER_MODEL_PROGRESS=<n> prints a line every n
    // executions.
    let progress: usize = std::env::var("BASKER_MODEL_PROGRESS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut replay: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        if progress > 0 && executions % progress == 0 {
            eprintln!("basker_model: {executions} executions explored...");
        }
        let res = run_once(&config, replay.clone(), f.clone());
        if let Some(kind) = res.failure {
            let schedule = Schedule {
                choices: res.trace,
                threads: res.picked,
            };
            eprintln!(
                "basker_model: failure after {executions} execution(s): {kind:?}\n\
                 basker_model: replay seed: {}",
                schedule.seed()
            );
            return Outcome::Fail(Box::new(FailureReport {
                kind,
                schedule,
                executions,
            }));
        }
        // Backtrack: deepest decision with an untried alternative.
        let mut next = None;
        for i in (0..res.trace.len()).rev() {
            if res.trace[i] + 1 < res.alts[i] {
                next = Some(i);
                break;
            }
        }
        match next {
            None => return Outcome::Pass { executions },
            Some(i) => {
                replay = res.trace[..i].to_vec();
                replay.push(res.trace[i] + 1);
            }
        }
        if executions >= config.max_executions {
            return Outcome::Exhausted { executions };
        }
    }
}

/// Replays a single schedule from a seed produced by a failing
/// [`check`] (printed to stderr and available via
/// [`FailureReport::schedule`]). Deterministic: the same seed over the
/// same closure reproduces the same failure.
pub fn replay<F>(config: Config, seed: &str, f: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let schedule = Schedule::from_seed(seed)
        .unwrap_or_else(|| panic!("malformed basker_model seed: {seed:?}"));
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let res = run_once(&config, schedule.choices, f);
    match res.failure {
        Some(kind) => Outcome::Fail(Box::new(FailureReport {
            kind,
            schedule: Schedule {
                choices: res.trace,
                threads: res.picked,
            },
            executions: 1,
        })),
        None => Outcome::Pass { executions: 1 },
    }
}
