//! Model replacements for `std::sync` primitives.
//!
//! Same signatures as the std types (so `cfg(basker_model)` can swap
//! them in with a `use` line), but every operation is a schedule point
//! under the explorer, and every operation maintains the
//! happens-before relation the real primitive would establish:
//!
//! - **Atomics** keep a per-location *release clock*. A `Release`
//!   store snapshots the writer's vector clock into it; an `Acquire`
//!   load joins it into the reader's clock; a `Relaxed` store clears
//!   it (a relaxed write publishes nothing); a read-modify-write
//!   continues the release sequence (a relaxed RMW leaves the release
//!   clock in place, so a later acquire still synchronizes with the
//!   original releasing store — this is what makes the Slot claim
//!   CAS's `Relaxed` orderings provably sufficient).
//! - **`SeqCst` is modeled as `AcqRel`.** The model gives all atomics
//!   sequentially-consistent *value* semantics (one thread runs at a
//!   time), so the extra total-order guarantee of real `SeqCst` is
//!   vacuous here; what the checker verifies is the happens-before
//!   structure, which is exactly the Acquire/Release content. This is
//!   the documented simplification that lets the ordering audit
//!   downgrade `SeqCst` uses the model proves only need
//!   acquire/release edges.
//! - **`Mutex`/`Condvar`** block through the scheduler, so a wait
//!   with no matching notify is reported as a deadlock (lost wakeup)
//!   instead of hanging the test. There are no spurious wakeups: if a
//!   protocol only works because real condvars happen to wake up
//!   spuriously, the model calls it lost.
//!
//! Poisoning is not modeled: `lock()`/`wait()` return `Ok` always, so
//! production `lock().unwrap()` call sites compile unchanged.

use crate::clock::Clock;
use crate::exec::{ctx, next_object_id, Ctx};
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::Mutex as StdMutex;

// ORDER: the predicates below classify the *user's requested*
// ordering: SeqCst maps onto AcqRel edges (the documented modeling
// simplification — value semantics are already sequentially consistent
// because one model thread runs at a time). Every `Ordering::Relaxed`
// handed to a *host* atomic in this file is deliberate: the host
// atomics are storage only, serialized by the scheduler mutex;
// happens-before is modeled by the vector clocks, not host orderings.
fn acquires(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

// ORDER: classification predicate — see the header note above.
fn releases(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn rel_lock(rel: &StdMutex<Clock>) -> std::sync::MutexGuard<'_, Clock> {
    rel.lock().unwrap_or_else(|e| e.into_inner())
}

macro_rules! model_atomic {
    ($(#[$meta:meta])* $name:ident, $std:ident, $prim:ty) => {
        $(#[$meta])*
        pub struct $name {
            v: std::sync::atomic::$std,
            rel: StdMutex<Clock>,
        }

        impl $name {
            /// Creates the atomic (const, like the std type).
            pub const fn new(v: $prim) -> $name {
                $name {
                    v: std::sync::atomic::$std::new(v),
                    rel: StdMutex::new(Clock::new()),
                }
            }

            fn on_load(&self, c: &Ctx, order: Ordering) {
                if acquires(order) {
                    let rel = rel_lock(&self.rel).clone();
                    c.exec.join_clock(c.tid, &rel);
                }
            }

            fn on_store(&self, c: &Ctx, order: Ordering) {
                let mut rel = rel_lock(&self.rel);
                if releases(order) {
                    *rel = c.exec.clock_of(c.tid);
                } else {
                    // A relaxed store breaks the release sequence: a
                    // later acquire of this value synchronizes with
                    // nothing.
                    rel.clear();
                }
            }

            fn on_rmw(&self, c: &Ctx, order: Ordering) {
                if acquires(order) {
                    let rel = rel_lock(&self.rel).clone();
                    c.exec.join_clock(c.tid, &rel);
                }
                if releases(order) {
                    // RMWs continue the release sequence: merge rather
                    // than replace, so readers that acquire after a
                    // relaxed RMW still see the original release.
                    let mine = c.exec.clock_of(c.tid);
                    rel_lock(&self.rel).join(&mine);
                }
                // A fully relaxed RMW leaves the release clock intact
                // (release-sequence rule).
            }

            /// Schedule point + value load + acquire edge if ordered.
            pub fn load(&self, order: Ordering) -> $prim {
                let c = ctx();
                c.exec.point(c.tid);
                // ORDER: Relaxed — storage only (see header).
                let v = self.v.load(Ordering::Relaxed);
                self.on_load(&c, order);
                v
            }

            /// Schedule point + value store + release edge if ordered.
            pub fn store(&self, val: $prim, order: Ordering) {
                let c = ctx();
                c.exec.point(c.tid);
                self.on_store(&c, order);
                // ORDER: Relaxed — storage only (see header).
                self.v.store(val, Ordering::Relaxed);
            }

            /// Schedule point + atomic swap.
            pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                let c = ctx();
                c.exec.point(c.tid);
                self.on_rmw(&c, order);
                // ORDER: Relaxed — storage only (see header).
                self.v.swap(val, Ordering::Relaxed)
            }

            /// Schedule point + atomic add, returning the old value.
            pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                let c = ctx();
                c.exec.point(c.tid);
                self.on_rmw(&c, order);
                // ORDER: Relaxed — storage only (see header).
                self.v.fetch_add(val, Ordering::Relaxed)
            }

            /// Schedule point + atomic subtract, returning the old value.
            pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                let c = ctx();
                c.exec.point(c.tid);
                self.on_rmw(&c, order);
                // ORDER: Relaxed — storage only (see header).
                self.v.fetch_sub(val, Ordering::Relaxed)
            }

            /// Schedule point + compare-exchange. Success applies the
            /// RMW edges for `success`; failure applies the load edge
            /// for `failure`.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                let c = ctx();
                c.exec.point(c.tid);
                // ORDER: Relaxed ×2 — storage only (see header).
                let r = self
                    .v
                    .compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed);
                match r {
                    Ok(_) => self.on_rmw(&c, success),
                    Err(_) => self.on_load(&c, failure),
                }
                r
            }

            /// Identical to [`compare_exchange`](Self::compare_exchange):
            /// the model never fails spuriously (one thread runs at a
            /// time), which only makes the explored set a superset of
            /// weak-CAS behaviors' success paths.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Plain read, no schedule point (for post-execution
            /// assertions on the final state).
            pub fn into_inner(self) -> $prim {
                self.v.into_inner()
            }
        }
    };
}

model_atomic!(
    /// Model stand-in for `std::sync::atomic::AtomicU8`.
    AtomicU8,
    AtomicU8,
    u8
);
model_atomic!(
    /// Model stand-in for `std::sync::atomic::AtomicU64`.
    AtomicU64,
    AtomicU64,
    u64
);
model_atomic!(
    /// Model stand-in for `std::sync::atomic::AtomicUsize`.
    AtomicUsize,
    AtomicUsize,
    usize
);

/// Model stand-in for `std::sync::atomic::AtomicBool` (no arithmetic
/// RMWs; `swap`/`compare_exchange` come from the shared shape).
pub struct AtomicBool {
    v: std::sync::atomic::AtomicBool,
    rel: StdMutex<Clock>,
}

impl AtomicBool {
    /// Creates the atomic (const, like the std type).
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            v: std::sync::atomic::AtomicBool::new(v),
            rel: StdMutex::new(Clock::new()),
        }
    }

    /// Schedule point + value load + acquire edge if ordered.
    pub fn load(&self, order: Ordering) -> bool {
        let c = ctx();
        c.exec.point(c.tid);
        // ORDER: Relaxed — storage only (see header).
        let v = self.v.load(Ordering::Relaxed);
        if acquires(order) {
            let rel = rel_lock(&self.rel).clone();
            c.exec.join_clock(c.tid, &rel);
        }
        v
    }

    /// Schedule point + value store + release edge if ordered.
    pub fn store(&self, val: bool, order: Ordering) {
        let c = ctx();
        c.exec.point(c.tid);
        {
            let mut rel = rel_lock(&self.rel);
            if releases(order) {
                *rel = c.exec.clock_of(c.tid);
            } else {
                rel.clear();
            }
        }
        // ORDER: Relaxed — storage only (see header).
        self.v.store(val, Ordering::Relaxed);
    }

    /// Schedule point + atomic swap.
    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        let c = ctx();
        c.exec.point(c.tid);
        if acquires(order) {
            let rel = rel_lock(&self.rel).clone();
            c.exec.join_clock(c.tid, &rel);
        }
        if releases(order) {
            let mine = c.exec.clock_of(c.tid);
            rel_lock(&self.rel).join(&mine);
        }
        // ORDER: Relaxed — storage only (see header).
        self.v.swap(val, Ordering::Relaxed)
    }
}

/// Model mutex: blocking goes through the scheduler, acquire/release
/// carry happens-before edges, poisoning is not modeled (`lock`
/// always returns `Ok`).
pub struct Mutex<T: ?Sized> {
    id: u64,
    locked: std::sync::atomic::AtomicBool,
    rel: StdMutex<Clock>,
    data: UnsafeCell<T>,
}

// SAFETY: the scheduler runs exactly one model thread at a time and
// the `locked` flag gives the usual mutual exclusion on top, so `&T`
// / `&mut T` handed out by the guard are never aliased across
// threads; `T: Send` is required to move the value between them.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}
// SAFETY: sending the mutex moves the owned `T` with it.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}

/// Guard for a locked model [`Mutex`]; unlocking on drop is *not* a
/// schedule point (matching std, where unlock has no blocking
/// behavior), and is abort-safe so it can run during execution
/// teardown unwinding.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(data: T) -> Mutex<T> {
        Mutex {
            id: next_object_id(),
            locked: std::sync::atomic::AtomicBool::new(false),
            rel: StdMutex::new(Clock::new()),
            data: UnsafeCell::new(data),
        }
    }

    /// Consumes the mutex, returning the data (no schedule point).
    pub fn into_inner(self) -> Result<T, std::convert::Infallible> {
        Ok(self.data.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking through the scheduler if held.
    /// The `Result` mirrors std's poison signature so production
    /// `lock().unwrap()` sites compile unchanged; it is always `Ok`.
    #[allow(clippy::result_unit_err)]
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, ()> {
        let c = ctx();
        c.exec.point(c.tid);
        loop {
            // ORDER: Relaxed — the flag is storage; lock ordering is
            // modeled by the clock join below and the scheduler.
            if !self.locked.swap(true, std::sync::atomic::Ordering::Relaxed) {
                let rel = rel_lock(&self.rel).clone();
                c.exec.join_clock(c.tid, &rel);
                return Ok(MutexGuard { lock: self });
            }
            c.exec.block_on_mutex(c.tid, self.id);
        }
    }

    /// Releases the raw lock: publish the holder's clock, clear the
    /// flag, wake scheduler-blocked waiters. Shared by guard drop and
    /// `Condvar::wait`'s unlock half. Never panics (may run while
    /// unwinding an aborted execution).
    fn raw_unlock(&self, c: &Ctx) {
        *rel_lock(&self.rel) = c.exec.clock_of(c.tid);
        // ORDER: Relaxed — storage; the release clock above carries
        // the happens-before edge.
        self.locked
            .store(false, std::sync::atomic::Ordering::Relaxed);
        c.exec.wake_mutex_waiters(self.id);
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves this thread holds the lock, so no
        // other model thread can alias the data.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive by lock ownership.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let c = ctx();
        self.lock.raw_unlock(&c);
    }
}

/// Model condvar. No spurious wakeups: a wait that no notify ever
/// reaches is reported as a deadlock (that *is* the lost-wakeup bug
/// class this exists to catch).
pub struct Condvar {
    id: u64,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    /// Creates the condvar.
    pub fn new() -> Condvar {
        Condvar {
            id: next_object_id(),
        }
    }

    /// Atomically releases the guard's mutex and parks until
    /// notified, then re-acquires before returning. Always `Ok`
    /// (poisoning is not modeled).
    #[allow(clippy::result_unit_err)]
    pub fn wait<'a, T: ?Sized>(&self, guard: MutexGuard<'a, T>) -> Result<MutexGuard<'a, T>, ()> {
        let c = ctx();
        let mutex = guard.lock;
        c.exec.point(c.tid);
        // Unlock-and-block is atomic with respect to other model
        // threads: none can run between these calls because this
        // thread stays active until `block_on_cond` hands off.
        mutex.raw_unlock(&c);
        std::mem::forget(guard);
        c.exec.block_on_cond(c.tid, self.id);
        // Notified (the notifier's clock was joined into ours by the
        // scheduler); re-acquire the mutex.
        loop {
            // ORDER: Relaxed — storage; see `Mutex::lock`.
            if !mutex
                .locked
                .swap(true, std::sync::atomic::Ordering::Relaxed)
            {
                let rel = rel_lock(&mutex.rel).clone();
                c.exec.join_clock(c.tid, &rel);
                return Ok(MutexGuard { lock: mutex });
            }
            c.exec.block_on_mutex(c.tid, mutex.id);
        }
    }

    /// Wakes one parked waiter (lowest thread id — deterministic).
    pub fn notify_one(&self) {
        let c = ctx();
        c.exec.point(c.tid);
        c.exec.notify_cond(c.tid, self.id, false);
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        let c = ctx();
        c.exec.point(c.tid);
        c.exec.notify_cond(c.tid, self.id, true);
    }
}
