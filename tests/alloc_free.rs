//! Integration: repeated `solve_in_place` calls with a warmed-up
//! `SolveWorkspace` perform **zero heap allocation**, for every engine.
//!
//! A counting global allocator records every `alloc`/`realloc` in the
//! process; the single test in this binary (kept alone so no concurrent
//! test thread can allocate in the measurement window) warms the
//! workspace once per engine, then snapshots the counter around a burst
//! of solves and requires it unchanged.

use basker_repro::prelude::*;
use basker_sparse::spmv::spmv;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn warmed_solves_do_not_allocate_for_any_engine() {
    // Mixed structure so Basker exercises both its small-block and ND
    // solve paths.
    let a = circuit(&CircuitParams {
        nsub: 4,
        sub_size: 48,
        feedthrough: 0.5,
        ..CircuitParams::default()
    });
    let n = a.ncols();
    let xtrue: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
    let b = spmv(&a, &xtrue);
    let mut x = vec![0.0; n];

    for engine in [Engine::Klu, Engine::Basker, Engine::Snlu, Engine::Hybrid] {
        let cfg = SolverConfig::new().engine(engine).threads(2);
        let solver = LinearSolver::analyze(&a, &cfg).unwrap();
        let num = solver.factor(&a).unwrap();
        let mut ws = SolveWorkspace::for_dim(n);

        // Warm-up: first call may size internal state.
        x.copy_from_slice(&b);
        num.solve_in_place(&mut x, &mut ws).unwrap();

        // The counter is process-global, so a runtime thread (test
        // harness watchdog, lazily initialized std state) can bump it
        // once in a window. A per-call leak shows up in *every* window;
        // accept the engine as allocation-free if any window is clean.
        let mut cleanest = u64::MAX;
        for _attempt in 0..3 {
            let before = ALLOC_CALLS.load(Ordering::SeqCst);
            for _ in 0..100 {
                x.copy_from_slice(&b);
                num.solve_in_place(&mut x, &mut ws).unwrap();
            }
            let after = ALLOC_CALLS.load(Ordering::SeqCst);
            cleanest = cleanest.min(after - before);
            if cleanest == 0 {
                break;
            }
        }
        assert_eq!(
            cleanest, 0,
            "{engine}: at least {cleanest} allocation(s) in every 100-solve window"
        );
        assert!(relative_residual(&a, &x, &b) < 1e-8, "{engine}");
    }
}
