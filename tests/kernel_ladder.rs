//! End-to-end checks of the dense kernel ladder: whichever rung
//! `BASKER_KERNEL` selects (the CI matrix runs this suite under
//! `scalar` and `simd`), every engine must still factor and solve to
//! tight residuals, and the selected rung must be reported through
//! `SolverStats`. The selection is once-per-process, so these tests
//! only *observe* the active rung — they never fight over it.

use basker_repro::prelude::*;
use basker_sparse::spmv::spmv;

/// The rung name the process-wide dispatch should have settled on for
/// the current `BASKER_KERNEL` value, where that is predictable.
fn expected_kernel() -> Option<&'static str> {
    match std::env::var("BASKER_KERNEL").as_deref() {
        Ok("scalar") => Some("scalar"),
        Ok("unrolled") => Some("unrolled"),
        Ok("simd") => Some(match basker_repro::basker_kernels::by_name("simd") {
            Some(k) => k.name(),
            // No SIMD on this CPU: the explicit request falls back.
            None => "unrolled",
        }),
        _ => None,
    }
}

#[test]
fn every_engine_solves_tightly_under_the_active_rung() {
    let active = basker_repro::basker_kernels::active().name();
    if let Some(want) = expected_kernel() {
        assert_eq!(active, want, "BASKER_KERNEL not honored");
    }
    assert!(
        ["scalar", "unrolled", "avx2+fma", "neon"].contains(&active),
        "unknown rung '{active}'"
    );

    let problems = [
        ("mesh2d", mesh2d(18, 7)),
        (
            "circuit",
            circuit(&CircuitParams {
                nsub: 5,
                sub_size: 36,
                feedthrough: 0.6,
                ..CircuitParams::default()
            }),
        ),
    ];
    let mut ws = SolveWorkspace::new();
    for engine in [Engine::Klu, Engine::Basker, Engine::Snlu] {
        for (name, a) in &problems {
            let cfg = SolverConfig::default().engine(engine);
            let solver = LinearSolver::analyze(a, &cfg).unwrap();
            let num = solver.factor(a).unwrap();
            assert_eq!(
                num.stats().kernel,
                active,
                "{engine} {name}: stats must report the dispatched rung"
            );
            let xtrue: Vec<f64> = (0..a.ncols())
                .map(|i| 1.0 + (i % 11) as f64 * 0.3)
                .collect();
            let b = spmv(a, &xtrue);
            let mut x = b.clone();
            num.solve_in_place(&mut x, &mut ws).unwrap();
            let r = relative_residual(a, &x, &b);
            assert!(r < 1e-11, "{engine} {name} under '{active}': residual {r}");
        }
    }
}

#[test]
fn refactor_stays_tight_under_the_active_rung() {
    // The steady-state path (refactor + solve) leans hardest on the
    // rewired kernels; drive it through the supernodal engine.
    let a = mesh2d(16, 5);
    let cfg = SolverConfig::default().engine(Engine::Snlu);
    let solver = LinearSolver::analyze(&a, &cfg).unwrap();
    let mut num = solver.factor(&a).unwrap();
    let mut ws = SolveWorkspace::new();
    for step in 0..3 {
        let mut b2 = a.clone();
        for (i, v) in b2.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + 0.01 * ((i + step) % 5) as f64;
        }
        num.refactor(&b2).unwrap();
        let xtrue: Vec<f64> = (0..b2.ncols()).map(|i| 0.5 + (i % 7) as f64).collect();
        let b = spmv(&b2, &xtrue);
        let mut x = b.clone();
        num.solve_in_place(&mut x, &mut ws).unwrap();
        let r = relative_residual(&b2, &x, &b);
        assert!(r < 1e-11, "step {step}: residual {r}");
    }
}
