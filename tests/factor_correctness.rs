//! Integration: every engine factors every workload class and solves to
//! tight residuals through the unified lifecycle.

use basker_repro::prelude::*;
use basker_sparse::spmv::spmv;

fn workloads() -> Vec<(&'static str, CscMat)> {
    vec![
        (
            "powergrid",
            powergrid(&PowergridParams {
                nfeeders: 12,
                feeder_len: 20,
                loop_prob: 0.25,
                seed: 5,
            }),
        ),
        (
            "circuit_flow",
            circuit(&CircuitParams {
                nsub: 6,
                sub_size: 40,
                feedthrough: 0.0,
                ..CircuitParams::default()
            }),
        ),
        (
            "circuit_loaded",
            circuit(&CircuitParams {
                nsub: 6,
                sub_size: 40,
                feedthrough: 1.0,
                ..CircuitParams::default()
            }),
        ),
        ("mesh2d", mesh2d(16, 9)),
        ("mesh3d", mesh3d(7, 9)),
    ]
}

fn rhs_for(a: &CscMat) -> (Vec<f64>, Vec<f64>) {
    let xtrue: Vec<f64> = (0..a.ncols())
        .map(|i| 1.0 + ((i * 7) % 13) as f64 * 0.25)
        .collect();
    let b = spmv(a, &xtrue);
    (xtrue, b)
}

fn check(cfg: &SolverConfig, name: &str, a: &CscMat, tol: f64, ws: &mut SolveWorkspace) {
    let solver = LinearSolver::analyze(a, cfg).unwrap_or_else(|e| panic!("{name}: analyze {e}"));
    let num = solver
        .factor(a)
        .unwrap_or_else(|e| panic!("{name} ({}): factor {e}", solver.engine()));
    let (_, b) = rhs_for(a);
    let mut x = b.clone();
    num.solve_in_place(&mut x, ws).unwrap();
    let r = relative_residual(a, &x, &b);
    assert!(r < tol, "{name} ({}): residual {r}", solver.engine());
}

#[test]
fn basker_all_classes_all_thread_counts() {
    let mut ws = SolveWorkspace::new();
    for (name, a) in workloads() {
        for p in [1usize, 2, 4] {
            let cfg = SolverConfig::new()
                .engine(Engine::Basker)
                .threads(p)
                .nd_threshold(64);
            check(&cfg, name, &a, 1e-10, &mut ws);
        }
    }
}

#[test]
fn klu_all_classes() {
    let mut ws = SolveWorkspace::new();
    for (name, a) in workloads() {
        check(
            &SolverConfig::new().engine(Engine::Klu),
            name,
            &a,
            1e-10,
            &mut ws,
        );
    }
}

#[test]
fn snlu_all_classes_both_modes() {
    let mut ws = SolveWorkspace::new();
    for (name, a) in workloads() {
        for mode in [SnluMode::Pardiso, SnluMode::SluMt] {
            let cfg = SolverConfig::new()
                .engine(Engine::Snlu)
                .threads(2)
                .snlu_mode(mode);
            check(&cfg, name, &a, 1e-8, &mut ws);
        }
    }
}

#[test]
fn auto_engine_all_classes() {
    let mut ws = SolveWorkspace::new();
    for (name, a) in workloads() {
        // Auto pinned explicitly: the default engine honours the
        // BASKER_ENGINE override, and CI runs this suite under pinned
        // engines too.
        check(
            &SolverConfig::new().engine(Engine::Auto).threads(2),
            name,
            &a,
            1e-8,
            &mut ws,
        );
    }
}

#[test]
fn basker_barrier_mode_agrees_with_p2p() {
    let a = mesh2d(14, 1);
    let mk = |sync| {
        let cfg = SolverConfig::new()
            .engine(Engine::Basker)
            .threads(2)
            .nd_threshold(32)
            .sync_mode(sync);
        let solver = LinearSolver::analyze(&a, &cfg).unwrap();
        let num = solver.factor(&a).unwrap();
        let mut x = vec![1.0; a.ncols()];
        num.solve_in_place(&mut x, &mut SolveWorkspace::new())
            .unwrap();
        x
    };
    let x1 = mk(SyncMode::PointToPoint);
    let x2 = mk(SyncMode::Barrier);
    assert_eq!(x1, x2, "sync mode must not change the arithmetic");
}

#[test]
fn table1_suite_factors_at_test_scale() {
    use basker_matgen::table1_suite;
    let mut ws = SolveWorkspace::new();
    for e in table1_suite() {
        let a = e.generate(Scale::Test);
        let cfg = SolverConfig::new().engine(Engine::Basker).threads(2);
        check(&cfg, e.name, &a, 1e-9, &mut ws);
    }
}
