//! Integration: every solver factors every workload class and solves to
//! tight residuals.

use basker_repro::prelude::*;
use basker_sparse::spmv::spmv;

fn workloads() -> Vec<(&'static str, CscMat)> {
    vec![
        (
            "powergrid",
            powergrid(&PowergridParams {
                nfeeders: 12,
                feeder_len: 20,
                loop_prob: 0.25,
                seed: 5,
            }),
        ),
        (
            "circuit_flow",
            circuit(&CircuitParams {
                nsub: 6,
                sub_size: 40,
                feedthrough: 0.0,
                ..CircuitParams::default()
            }),
        ),
        (
            "circuit_loaded",
            circuit(&CircuitParams {
                nsub: 6,
                sub_size: 40,
                feedthrough: 1.0,
                ..CircuitParams::default()
            }),
        ),
        ("mesh2d", mesh2d(16, 9)),
        ("mesh3d", mesh3d(7, 9)),
    ]
}

fn rhs_for(a: &CscMat) -> (Vec<f64>, Vec<f64>) {
    let xtrue: Vec<f64> = (0..a.ncols())
        .map(|i| 1.0 + ((i * 7) % 13) as f64 * 0.25)
        .collect();
    let b = spmv(a, &xtrue);
    (xtrue, b)
}

#[test]
fn basker_all_classes_all_thread_counts() {
    for (name, a) in workloads() {
        for p in [1usize, 2, 4] {
            let opts = BaskerOptions {
                nthreads: p,
                nd_threshold: 64,
                ..BaskerOptions::default()
            };
            let sym = Basker::analyze(&a, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
            let num = sym
                .factor(&a)
                .unwrap_or_else(|e| panic!("{name} p={p}: {e}"));
            let (_, b) = rhs_for(&a);
            let x = num.solve(&b);
            let r = relative_residual(&a, &x, &b);
            assert!(r < 1e-10, "{name} p={p}: residual {r}");
        }
    }
}

#[test]
fn klu_all_classes() {
    for (name, a) in workloads() {
        let sym = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
        let num = sym.factor(&a).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (_, b) = rhs_for(&a);
        let x = num.solve(&b);
        let r = relative_residual(&a, &x, &b);
        assert!(r < 1e-10, "{name}: residual {r}");
    }
}

#[test]
fn snlu_all_classes_both_modes() {
    for (name, a) in workloads() {
        for mode in [SnluMode::Pardiso, SnluMode::SluMt] {
            let sym = Snlu::analyze(
                &a,
                &SnluOptions {
                    nthreads: 2,
                    mode,
                    ..SnluOptions::default()
                },
            )
            .unwrap();
            let num = sym.factor(&a).unwrap();
            let (_, b) = rhs_for(&a);
            let x = num.solve(&a, &b);
            let r = relative_residual(&a, &x, &b);
            assert!(r < 1e-8, "{name} {mode:?}: residual {r}");
        }
    }
}

#[test]
fn basker_barrier_mode_agrees_with_p2p() {
    let a = mesh2d(14, 1);
    let mk = |sync| {
        let sym = Basker::analyze(
            &a,
            &BaskerOptions {
                nthreads: 2,
                nd_threshold: 32,
                sync_mode: sync,
                ..BaskerOptions::default()
            },
        )
        .unwrap();
        let num = sym.factor(&a).unwrap();
        num.solve(&vec![1.0; a.ncols()])
    };
    let x1 = mk(SyncMode::PointToPoint);
    let x2 = mk(SyncMode::Barrier);
    assert_eq!(x1, x2, "sync mode must not change the arithmetic");
}

#[test]
fn table1_suite_factors_at_test_scale() {
    use basker_matgen::table1_suite;
    for e in table1_suite() {
        let a = e.generate(Scale::Test);
        let sym = Basker::analyze(
            &a,
            &BaskerOptions {
                nthreads: 2,
                ..BaskerOptions::default()
            },
        )
        .unwrap_or_else(|err| panic!("{}: analyze {err}", e.name));
        let num = sym
            .factor(&a)
            .unwrap_or_else(|err| panic!("{}: factor {err}", e.name));
        let (_, b) = rhs_for(&a);
        let x = num.solve(&b);
        let r = relative_residual(&a, &x, &b);
        assert!(r < 1e-9, "{}: residual {r}", e.name);
    }
}
