//! Integration: the `SolveSession` lifecycle under adversarial value
//! drift — hard pivot collapse mid-stream (singular-pivot fallback),
//! gradual pivot decay (adaptive quality gates), and iterative
//! refinement rescuing an ill-conditioned solve. No error may escape the
//! session in any of these scenarios.

use basker_repro::prelude::*;

/// A 13×13 matrix of 2×2 BTF blocks plus one **forced-transversal
/// singleton**, with strictly block-upper couplings.
///
/// Two engineered weak spots:
/// * block 0 is `[[d, 2.5], [1, 1]]` — the pivoting engines freeze the
///   `d` pivot at the first factorization (it starts at 10, dominant)
///   and suffer as it drifts; its determinant `d − 2.5` stays nonzero
///   at every drift value used below, so a *fresh* pivoting
///   factorization always recovers;
/// * index 2 is a 1×1 block holding `e`, the **only** entry of its row
///   and column — every transversal must pivot on it, so even the
///   static-pivoting engine (whose MWCM would otherwise route around a
///   decaying entry) is exposed to its drift.
fn drifting(d: f64, e: f64) -> CscMat {
    let n = 13;
    let mut t = TripletMat::new(n, n);
    t.push(0, 0, d);
    t.push(0, 1, 2.5);
    t.push(1, 0, 1.0);
    t.push(1, 1, 1.0);
    t.push(2, 2, e);
    for k in 0..5 {
        let (i, j) = (3 + 2 * k, 4 + 2 * k);
        t.push(i, i, 10.0 + k as f64);
        t.push(j, j, 5.0 + k as f64);
        t.push(i, j, 1.0);
        t.push(j, i, 1.0);
    }
    // strictly block-upper couplings (skipping row/col 2, which must
    // stay a forced singleton): block k → block k+1
    t.push(0, 3, 0.5);
    for k in 0..4 {
        t.push(3 + 2 * k, 5 + 2 * k, 0.5);
    }
    t.to_csc()
}

/// Satellite: a linear drift takes the frozen pivot through **exactly
/// zero** mid-stream. The pivoting engines must take the singular-pivot
/// fallback (a fresh factorization) without the error escaping; the
/// static-pivoting engine never fails a refactor in the first place.
#[test]
fn hard_pivot_collapse_triggers_fallback_without_escaping() {
    for engine in [Engine::Klu, Engine::Basker, Engine::Snlu] {
        let a0 = drifting(10.0, 8.0);
        let cfg = SessionConfig::new()
            .engine(engine)
            .threads(2)
            .policy(ReusePolicy::AlwaysRefactor)
            .target_residual(1e-9);
        let mut session = SolveSession::new(&a0, &cfg).unwrap();
        let b = vec![1.0; 13];
        let mut x = vec![0.0; 13];
        for s in 0..=12 {
            // d = 10 − s: hits 0.0 exactly at s = 10 while the block
            // stays nonsingular (det = 7.5 − s ≠ 0 at integers).
            let m = drifting(10.0 - s as f64, 8.0);
            session
                .step(&m)
                .unwrap_or_else(|e| panic!("{engine} step {s}: {e}"));
            x.copy_from_slice(&b);
            let q = session.solve_refined(&mut x).unwrap();
            assert!(
                q.residual < 1e-8,
                "{engine} step {s}: residual {}",
                q.residual
            );
        }
        let st = session.stats();
        assert_eq!(st.steps, 13, "{engine}");
        if engine == Engine::Snlu {
            // static pivoting perturbs instead of failing
            assert_eq!(st.repivot_fallbacks, 0, "{engine}");
        } else {
            assert!(
                st.repivot_fallbacks >= 1,
                "{engine}: the zero crossing must force a re-pivot fallback \
                 (stats: {st:?})"
            );
        }
    }
}

/// Satellite: an exponential decay makes the frozen pivot *unstable*
/// without ever reaching exact zero — refactorization keeps succeeding,
/// but with explosive pivot growth. The adaptive policy must notice
/// (growth/rcond gates for the pivoting engines, the
/// perturbation/growth gates for the static-pivoting engine) and
/// re-pivot on all three engines, again without any error escaping.
#[test]
fn adaptive_gates_repivot_on_unstable_drift() {
    for engine in [Engine::Klu, Engine::Basker, Engine::Snlu] {
        let a0 = drifting(10.0, 8.0);
        let cfg = SessionConfig::new()
            .engine(engine)
            .threads(2)
            .policy(ReusePolicy::Adaptive {
                growth_limit: 1e4,
                residual_limit: 1e-8,
            })
            .target_residual(1e-10);
        let mut session = SolveSession::new(&a0, &cfg).unwrap();
        let b = vec![1.0; 13];
        let mut x = vec![0.0; 13];
        for s in 0..=12 {
            // d = 10^(1−s): decays to 1e-11, far below any healthy
            // pivot, but never exactly zero.
            let m = drifting(10f64.powi(1 - s), 10f64.powi(1 - s));
            session
                .step(&m)
                .unwrap_or_else(|e| panic!("{engine} step {s}: {e}"));
            x.copy_from_slice(&b);
            let q = session.solve_refined(&mut x).unwrap();
            assert!(
                q.residual < 1e-7,
                "{engine} step {s}: residual {}",
                q.residual
            );
        }
        let st = session.stats();
        assert!(
            st.quality_repivots >= 1,
            "{engine}: decaying pivot must trip an adaptive gate (stats: {st:?})"
        );
        assert_eq!(
            st.repivot_fallbacks, 0,
            "{engine}: the gate must fire before any hard collapse (stats: {st:?})"
        );
    }
}

/// Satellite: an ill-conditioned system where the plain solve misses the
/// residual target but `solve_refined` meets it, with
/// `SolveQuality::iterations > 0`. A tiny pivot tolerance forces the
/// Gilbert–Peierls engines to keep a 1e-12 diagonal pivot, which costs
/// ~8 digits of accuracy that refinement wins back.
#[test]
fn refinement_rescues_ill_conditioned_solve() {
    let n = 6;
    let mut t = TripletMat::new(n, n);
    t.push(0, 0, 1e-12);
    t.push(0, 1, 1.0);
    t.push(1, 0, 1.0);
    t.push(1, 1, 1.0);
    for i in 2..n {
        t.push(i, i, 3.0 + i as f64);
    }
    let a = t.to_csc();

    for engine in [Engine::Klu, Engine::Basker] {
        let cfg = SessionConfig::new()
            .solver(
                SolverConfig::new()
                    .engine(engine)
                    .threads(2)
                    // No BTF/MWCM: the bottleneck transversal would
                    // permute the healthy 1.0 onto the diagonal and
                    // defeat the scenario.
                    .use_btf(false)
                    // keep the 1e-12 diagonal as pivot: |1e-12| >= 1e-13 * 1.0
                    .pivot_tol(1e-13),
            )
            .target_residual(1e-12)
            .max_refine_iterations(4);
        let mut session = SolveSession::new(&a, &cfg).unwrap();
        session.step(&a).unwrap();

        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut x = b.clone();
        let q = session.solve_refined(&mut x).unwrap();
        assert!(
            q.initial_residual > 1e-12,
            "{engine}: the plain solve should miss the target with a frozen \
             tiny pivot (initial residual {})",
            q.initial_residual
        );
        assert!(
            q.iterations > 0,
            "{engine}: refinement must have run ({q:?})"
        );
        assert!(
            q.converged && q.residual <= 1e-12,
            "{engine}: refinement must reach the target ({q:?})"
        );
        assert_eq!(session.stats().refine_iterations, q.iterations);
    }
}

/// The session surfaces the same quality data the policies consume.
#[test]
fn session_exposes_quality_and_stats() {
    let a = drifting(10.0, 8.0);
    let mut session =
        SolveSession::new(&a, &SessionConfig::new().engine(Engine::Basker).threads(2)).unwrap();
    assert!(session.quality().is_none(), "no factors before first step");
    session.step(&a).unwrap();
    let q = session.quality().unwrap();
    assert!(q.min_pivot > 0.0 && q.min_pivot <= q.max_pivot);
    assert!(q.rcond_estimate() > 0.0);
    assert_eq!(session.stats().last_factor.engine, Some(Engine::Basker));
    assert_eq!(session.state(), SessionState::Factored);
    assert_eq!(session.dim(), 13);
}
