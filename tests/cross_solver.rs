//! Integration: the three solvers must agree on the solution — they are
//! different algorithms for the same linear system.

use basker_repro::prelude::*;
use basker_sparse::spmv::spmv;
use basker_sparse::util::approx_eq_vec;

fn agree_on(a: &CscMat, tol: f64) {
    let xtrue: Vec<f64> = (0..a.ncols())
        .map(|i| ((i % 11) as f64 - 5.0) * 0.3)
        .collect();
    let b = spmv(a, &xtrue);

    let bsk = Basker::analyze(
        a,
        &BaskerOptions {
            nthreads: 2,
            nd_threshold: 64,
            ..BaskerOptions::default()
        },
    )
    .unwrap();
    let xb = bsk.factor(a).unwrap().solve(&b);

    let klu = KluSymbolic::analyze(a, &KluOptions::default()).unwrap();
    let xk = klu.factor(a).unwrap().solve(&b);

    let sn = Snlu::analyze(
        a,
        &SnluOptions {
            nthreads: 2,
            ..SnluOptions::default()
        },
    )
    .unwrap();
    let xs = sn.factor(a).unwrap().solve(a, &b);

    assert!(approx_eq_vec(&xb, &xtrue, tol), "basker vs truth");
    assert!(approx_eq_vec(&xk, &xtrue, tol), "klu vs truth");
    assert!(approx_eq_vec(&xs, &xtrue, tol * 100.0), "snlu vs truth");
    assert!(approx_eq_vec(&xb, &xk, tol), "basker vs klu");
}

#[test]
fn agreement_on_circuit() {
    let a = circuit(&CircuitParams {
        nsub: 8,
        sub_size: 48,
        feedthrough: 0.5,
        ..CircuitParams::default()
    });
    agree_on(&a, 1e-8);
}

#[test]
fn agreement_on_powergrid() {
    let a = powergrid(&PowergridParams {
        nfeeders: 15,
        feeder_len: 25,
        loop_prob: 0.2,
        seed: 77,
    });
    agree_on(&a, 1e-8);
}

#[test]
fn agreement_on_mesh() {
    agree_on(&mesh2d(18, 5), 1e-8);
}

#[test]
fn agreement_on_mesh3d() {
    agree_on(&mesh3d(6, 5), 1e-8);
}

#[test]
fn multi_rhs_consistency() {
    let a = mesh2d(12, 2);
    let sym = Basker::analyze(&a, &BaskerOptions::default()).unwrap();
    let num = sym.factor(&a).unwrap();
    let b1 = vec![1.0; a.ncols()];
    let b2: Vec<f64> = (0..a.ncols()).map(|i| i as f64 * 0.01).collect();
    let xs = num.solve_multi(&[b1.clone(), b2.clone()]);
    assert_eq!(xs[0], num.solve(&b1));
    assert_eq!(xs[1], num.solve(&b2));
}
