//! Integration: the three engines must agree on the solution — they are
//! different algorithms for the same linear system — and the unified
//! `LinearSolver` lifecycle must drive each of them identically.

mod common;

use basker_repro::prelude::*;
use basker_sparse::spmv::spmv;
use basker_sparse::util::approx_eq_vec;

fn solve_with(engine: Engine, a: &CscMat, b: &[f64]) -> Vec<f64> {
    let cfg = SolverConfig::new()
        .engine(engine)
        .threads(2)
        .nd_threshold(64);
    let solver = LinearSolver::analyze(a, &cfg).unwrap();
    assert_eq!(solver.engine(), engine);
    common::solve_fresh(&solver.factor(a).unwrap(), b)
}

fn agree_on(a: &CscMat, tol: f64) {
    let xtrue: Vec<f64> = (0..a.ncols())
        .map(|i| ((i % 11) as f64 - 5.0) * 0.3)
        .collect();
    let b = spmv(a, &xtrue);

    let xb = solve_with(Engine::Basker, a, &b);
    let xk = solve_with(Engine::Klu, a, &b);
    let xs = solve_with(Engine::Snlu, a, &b);

    assert!(approx_eq_vec(&xb, &xtrue, tol), "basker vs truth");
    assert!(approx_eq_vec(&xk, &xtrue, tol), "klu vs truth");
    assert!(approx_eq_vec(&xs, &xtrue, tol * 100.0), "snlu vs truth");
    assert!(approx_eq_vec(&xb, &xk, tol), "basker vs klu");

    // Auto must agree too, whichever engine it picks.
    let (picked, xa) = common::analyze_factor_solve(Engine::Auto, a, &b);
    assert!(
        approx_eq_vec(&xa, &xtrue, tol * 100.0),
        "auto ({picked}) vs truth"
    );
}

#[test]
fn agreement_on_circuit() {
    let a = circuit(&CircuitParams {
        nsub: 8,
        sub_size: 48,
        feedthrough: 0.5,
        ..CircuitParams::default()
    });
    agree_on(&a, 1e-8);
}

#[test]
fn agreement_on_powergrid() {
    let a = powergrid(&PowergridParams {
        nfeeders: 15,
        feeder_len: 25,
        loop_prob: 0.2,
        seed: 77,
    });
    agree_on(&a, 1e-8);
}

#[test]
fn agreement_on_mesh() {
    agree_on(&mesh2d(18, 5), 1e-8);
}

#[test]
fn agreement_on_mesh3d() {
    agree_on(&mesh3d(6, 5), 1e-8);
}

#[test]
fn multi_rhs_consistency() {
    let a = mesh2d(12, 2);
    let solver = LinearSolver::analyze(&a, &SolverConfig::new().engine(Engine::Basker)).unwrap();
    let num = solver.factor(&a).unwrap();
    let n = a.ncols();
    let b1 = vec![1.0; n];
    let b2: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();

    let mut ws = SolveWorkspace::for_dim(n);
    let mut packed: Vec<f64> = b1.iter().chain(b2.iter()).copied().collect();
    num.solve_multi_in_place(&mut packed, &mut ws).unwrap();

    let mut x1 = b1.clone();
    num.solve_in_place(&mut x1, &mut ws).unwrap();
    let mut x2 = b2.clone();
    num.solve_in_place(&mut x2, &mut ws).unwrap();
    assert_eq!(&packed[..n], &x1[..]);
    assert_eq!(&packed[n..], &x2[..]);
}
