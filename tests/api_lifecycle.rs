//! Integration: the unified `LinearSolver` lifecycle — engine
//! auto-selection, per-engine refactor-then-solve round-trips, unified
//! singular-pivot reporting with global context, and workspace reuse
//! across engines and dimensions.

use basker_repro::prelude::*;
use basker_sparse::spmv::spmv;

fn scaled_values(a: &CscMat, f: impl Fn(usize, f64) -> f64) -> CscMat {
    // SAFETY: pattern arrays are copied from the valid matrix `a`; values
    // map 1:1.
    unsafe {
        CscMat::from_parts_unchecked(
            a.nrows(),
            a.ncols(),
            a.colptr().to_vec(),
            a.rowind().to_vec(),
            a.values()
                .iter()
                .enumerate()
                .map(|(k, &v)| f(k, v))
                .collect(),
        )
    }
}

#[test]
fn auto_selects_different_engines_for_circuit_vs_mesh() {
    // Power grids are the extreme BTF case (everything in tiny blocks);
    // 2-D meshes are one irreducible block. Auto must split them.
    let circuit_like = powergrid(&PowergridParams {
        nfeeders: 20,
        feeder_len: 25,
        loop_prob: 0.2,
        seed: 9,
    });
    let mesh_like = mesh2d(16, 1);

    // Engine pinned to Auto explicitly: the default honours the
    // BASKER_ENGINE override, and CI runs this suite under pinned
    // engines too.
    let cfg = SolverConfig::new().engine(Engine::Auto).threads(2);
    let c = LinearSolver::analyze(&circuit_like, &cfg).unwrap();
    let m = LinearSolver::analyze(&mesh_like, &cfg).unwrap();
    assert_eq!(c.engine(), Engine::Basker, "powergrid should go to Basker");
    assert_eq!(
        m.engine(),
        Engine::Snlu,
        "mesh should go to the supernodal engine"
    );

    // Serial circuit-like work goes to KLU instead.
    let serial = LinearSolver::analyze(
        &circuit_like,
        &SolverConfig::new().engine(Engine::Auto).threads(1),
    )
    .unwrap();
    assert_eq!(serial.engine(), Engine::Klu);

    // A real circuit matrix also classifies as circuit-like.
    let circ = circuit(&CircuitParams {
        nsub: 8,
        sub_size: 32,
        feedthrough: 0.4,
        ..CircuitParams::default()
    });
    let c2 = LinearSolver::analyze(&circ, &cfg).unwrap();
    assert_ne!(c2.engine(), Engine::Snlu, "circuit must not go supernodal");
}

#[test]
fn refactor_then_solve_round_trip_every_engine() {
    let a = circuit(&CircuitParams {
        nsub: 5,
        sub_size: 30,
        feedthrough: 0.5,
        ..CircuitParams::default()
    });
    let n = a.ncols();
    let xtrue: Vec<f64> = (0..n).map(|i| 0.5 + (i % 4) as f64).collect();
    let mut ws = SolveWorkspace::for_dim(n);

    for engine in [Engine::Klu, Engine::Basker, Engine::Snlu] {
        let cfg = SolverConfig::new().engine(engine).threads(2);
        let solver = LinearSolver::analyze(&a, &cfg).unwrap();
        let mut num = solver.factor(&a).unwrap();

        // Gentle value drift (same pattern) → the refactor fast path.
        let a2 = scaled_values(&a, |k, v| v * 1.05 + 1e-4 * ((k % 3) as f64));
        num.refactor(&a2)
            .unwrap_or_else(|e| panic!("{engine}: refactor {e}"));

        let b = spmv(&a2, &xtrue);
        let mut x = b.clone();
        num.solve_in_place(&mut x, &mut ws).unwrap();
        let r = relative_residual(&a2, &x, &b);
        let tol = if engine == Engine::Snlu { 1e-8 } else { 1e-10 };
        assert!(r < tol, "{engine}: refactor-then-solve residual {r}");

        // The refactored solution must match a fresh factorization's.
        let fresh = solver.factor(&a2).unwrap();
        let mut xf = b.clone();
        fresh.solve_in_place(&mut xf, &mut ws).unwrap();
        for (u, v) in x.iter().zip(xf.iter()) {
            assert!(
                (u - v).abs() < 1e-8 * (1.0 + u.abs()),
                "{engine}: refactor {u} vs fresh {v}"
            );
        }
    }
}

#[test]
fn singular_pivot_error_names_global_column_and_block() {
    // Matrix with two BTF blocks; the *second* block (original columns
    // 3,4) is numerically singular: [1 1; 1 1]. Engines permute
    // internally, but the error must still name original coordinates.
    let mut t = TripletMat::new(5, 5);
    t.push(0, 0, 2.0);
    t.push(1, 1, 3.0);
    t.push(1, 0, -1.0);
    t.push(2, 2, 4.0);
    t.push(3, 3, 1.0);
    t.push(3, 4, 1.0);
    t.push(4, 3, 1.0);
    t.push(4, 4, 1.0);
    let a = t.to_csc();

    for engine in [Engine::Klu, Engine::Basker] {
        let solver = LinearSolver::analyze(&a, &SolverConfig::new().engine(engine)).unwrap();
        let err = solver.factor(&a).unwrap_err();
        let SolverError::SingularPivot {
            engine: reported,
            global_column,
            btf_block,
            ..
        } = err.clone()
        else {
            panic!("{engine}: expected SingularPivot, got {err:?}");
        };
        assert_eq!(reported, engine);
        assert!(
            global_column == 3 || global_column == 4,
            "{engine}: reported global column {global_column}, expected 3 or 4"
        );
        // The message is actionable as-is.
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("global column {global_column}"))
                && msg.contains(&format!("BTF block {btf_block}")),
            "{engine}: uninformative message `{msg}`"
        );
    }
}

#[test]
fn refactor_failure_reports_pivot_context_then_factor_recovers() {
    // Factor a healthy matrix, then refactor with values that zero out
    // one diagonal block: the refactor must fail with global context and
    // a fresh factor of the healthy matrix must still work.
    let mut t = TripletMat::new(3, 3);
    t.push(0, 0, 5.0);
    t.push(1, 1, 6.0);
    t.push(2, 2, 7.0);
    t.push(0, 1, 1.0);
    let a = t.to_csc();

    for engine in [Engine::Klu, Engine::Basker] {
        let solver = LinearSolver::analyze(&a, &SolverConfig::new().engine(engine)).unwrap();
        let mut num = solver.factor(&a).unwrap();
        // zero the (1,1) diagonal value — a 1x1 BTF block collapses
        let bad = scaled_values(&a, |k, v| {
            if (a.rowind()[k], v) == (1, 6.0) {
                0.0
            } else {
                v
            }
        });
        let err = num.refactor(&bad).unwrap_err();
        assert!(err.is_pivot_failure(), "{engine}: {err}");
        assert_eq!(err.singular_column(), Some(1), "{engine}: {err}");

        // The documented recovery: fall back to a pivoting factor of the
        // next healthy matrix.
        num = solver.factor(&a).unwrap();
        let mut x = vec![5.0, 6.0, 7.0];
        num.solve_in_place(&mut x, &mut SolveWorkspace::new())
            .unwrap();
        assert!((x[1] - 1.0).abs() < 1e-12, "{engine}");
    }
}

#[test]
fn one_workspace_serves_every_engine_and_dimension() {
    let small = mesh2d(6, 1);
    let big = circuit(&CircuitParams {
        nsub: 6,
        sub_size: 40,
        feedthrough: 0.3,
        ..CircuitParams::default()
    });
    let mut ws = SolveWorkspace::new();
    for (a, tol) in [(&small, 1e-8), (&big, 1e-8)] {
        for engine in [Engine::Klu, Engine::Basker, Engine::Snlu] {
            let cfg = SolverConfig::new().engine(engine).threads(2);
            let num = LinearSolver::analyze(a, &cfg).unwrap().factor(a).unwrap();
            let xtrue: Vec<f64> = (0..a.ncols()).map(|i| 1.0 + (i % 3) as f64).collect();
            let b = spmv(a, &xtrue);
            let mut x = b.clone();
            num.solve_in_place(&mut x, &mut ws).unwrap();
            assert!(
                relative_residual(a, &x, &b) < tol,
                "{engine} n={}",
                a.ncols()
            );
        }
    }
}

#[test]
fn stats_are_uniform_across_engines() {
    let a = circuit(&CircuitParams {
        nsub: 4,
        sub_size: 30,
        feedthrough: 0.4,
        ..CircuitParams::default()
    });
    for engine in [Engine::Klu, Engine::Basker, Engine::Snlu] {
        let cfg = SolverConfig::new().engine(engine).threads(2);
        let num = LinearSolver::analyze(&a, &cfg).unwrap().factor(&a).unwrap();
        let st = num.stats();
        assert_eq!(st.engine, Some(engine));
        assert_eq!(st.dimension, a.ncols());
        assert!(st.lu_nnz > 0, "{engine}");
        assert!(st.flops > 0.0, "{engine}");
        assert!(st.btf_blocks >= 1, "{engine}");
        assert!(st.threads >= 1, "{engine}");
        assert!(st.factor_seconds > 0.0, "{engine}");
        assert!(st.fill_density(a.nnz()) > 0.0, "{engine}");
    }
}

#[test]
fn native_in_place_paths_match_unified_facade() {
    // The engines' native in-place solves and the type-erased
    // `Factorization` must produce bit-identical results (the facade
    // adds dispatch, never arithmetic). The legacy allocating
    // `solve`/`solve_multi` wrappers are gone; in-place is the only
    // solve surface.
    let a = circuit(&CircuitParams {
        nsub: 3,
        sub_size: 24,
        feedthrough: 0.6,
        ..CircuitParams::default()
    });
    let b: Vec<f64> = (0..a.ncols()).map(|i| 1.0 + (i % 5) as f64).collect();
    let mut ws = SolveWorkspace::for_dim(a.ncols());

    let via_facade = |engine: Engine| -> Vec<f64> {
        let cfg = SolverConfig::new().engine(engine).threads(2);
        let num = LinearSolver::analyze(&a, &cfg).unwrap().factor(&a).unwrap();
        let mut x = b.clone();
        num.solve_in_place(&mut x, &mut SolveWorkspace::new())
            .unwrap();
        x
    };

    let bn = Basker::analyze(
        &a,
        &BaskerOptions {
            nthreads: 2,
            ..BaskerOptions::default()
        },
    )
    .unwrap()
    .factor(&a)
    .unwrap();
    let mut x = b.clone();
    bn.solve_in_place(&mut x, &mut ws);
    assert_eq!(via_facade(Engine::Basker), x);

    let kn = KluSymbolic::analyze(&a, &KluOptions::default())
        .unwrap()
        .factor(&a)
        .unwrap();
    let mut x = b.clone();
    kn.solve_in_place(&mut x, &mut ws);
    assert_eq!(via_facade(Engine::Klu), x);

    let sn = Snlu::analyze(
        &a,
        &SnluOptions {
            nthreads: 2,
            ..SnluOptions::default()
        },
    )
    .unwrap()
    .factor(&a)
    .unwrap();
    let mut x = b.clone();
    sn.solve_in_place(&mut x, &mut ws);
    assert_eq!(via_facade(Engine::Snlu), x);
}

#[test]
fn quality_hook_reports_pivot_extremes_per_engine() {
    let a = circuit(&CircuitParams {
        nsub: 3,
        sub_size: 24,
        feedthrough: 0.6,
        ..CircuitParams::default()
    });
    for engine in [Engine::Klu, Engine::Basker, Engine::Snlu] {
        let cfg = SolverConfig::new().engine(engine).threads(2);
        let num = LinearSolver::analyze(&a, &cfg).unwrap().factor(&a).unwrap();
        let q = num.quality();
        assert!(
            q.min_pivot > 0.0 && q.min_pivot <= q.max_pivot,
            "{engine}: ({}, {})",
            q.min_pivot,
            q.max_pivot
        );
        let rcond = q.rcond_estimate();
        assert!(rcond > 0.0 && rcond <= 1.0, "{engine}: rcond {rcond}");
        if engine != Engine::Snlu {
            assert_eq!(q.perturbed_pivots, 0, "{engine} pivots, never perturbs");
        }
    }
}
