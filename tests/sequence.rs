//! Integration: the Xyce-style matrix sequence — symbolic reuse,
//! refactorization, pivot-collapse fallback — stays accurate end to end,
//! driven for every engine through the `SolveSession` lifecycle: the
//! session's policy makes every factor/refactor/fallback decision, the
//! test only steps and solves.

use basker_repro::prelude::*;

fn sequence(steps: usize) -> XyceSequence {
    XyceSequence::new(&XyceSequenceParams {
        circuit: CircuitParams {
            nsub: 4,
            sub_size: 36,
            feedthrough: 0.6,
            ..CircuitParams::default()
        },
        nsteps: steps,
        switching_fraction: 0.08,
        seed: 31,
    })
}

/// The transient loop every engine must sustain, now two calls per step:
/// the session refactors, falls back to pivoting when needed, and
/// refines each solve to the tolerance.
fn track_sequence(engine: Engine, steps: usize, tol: f64) {
    let seq = sequence(steps);
    let a0 = seq.pattern().clone();
    let cfg = SessionConfig::new()
        .engine(engine)
        .threads(2)
        .policy(ReusePolicy::adaptive())
        .target_residual(tol);
    let mut session = SolveSession::new(&a0, &cfg).unwrap();
    let b = vec![1.0; a0.ncols()];
    let mut x = vec![0.0; a0.ncols()];
    for s in 0..steps {
        let m = seq.matrix_at(s);
        session.step(&m).unwrap();
        x.copy_from_slice(&b);
        let q = session.solve_refined(&mut x).unwrap();
        assert!(
            q.residual < tol * 10.0,
            "{engine} step {s}: residual {} (initial {})",
            q.residual,
            q.initial_residual
        );
    }
    let st = session.stats();
    assert_eq!(st.steps, steps, "{engine}");
    assert_eq!(
        st.factors + st.refactors,
        steps,
        "{engine}: every step must leave usable factors"
    );
    assert!(st.worst_residual < tol * 10.0, "{engine}");
}

#[test]
fn basker_tracks_sequence_with_refactor_and_fallback() {
    track_sequence(Engine::Basker, 40, 1e-9);
}

#[test]
fn klu_tracks_sequence() {
    track_sequence(Engine::Klu, 40, 1e-9);
}

#[test]
fn snlu_tracks_sequence_with_static_pivoting() {
    // Static pivoting + refinement: looser tolerance, but the refactor
    // path never needs the singular-pivot fallback.
    track_sequence(Engine::Snlu, 25, 1e-6);
}

#[test]
fn auto_tracks_sequence() {
    track_sequence(Engine::Auto, 25, 1e-6);
}

#[test]
fn refactor_and_fresh_factor_agree_when_pivots_stable() {
    // gentle value scaling keeps the pivot sequence valid: a session
    // step that refactors and a fresh factorization must then produce
    // identical solutions.
    let seq = sequence(10);
    let a0 = seq.pattern().clone();
    // SAFETY: pattern arrays are copied from the valid matrix `a0`; values
    // map 1:1.
    let gentle = unsafe {
        CscMat::from_parts_unchecked(
            a0.nrows(),
            a0.ncols(),
            a0.colptr().to_vec(),
            a0.rowind().to_vec(),
            a0.values().iter().map(|v| v * 1.01).collect(),
        )
    };
    let cfg = SessionConfig::new()
        .engine(Engine::Basker)
        .policy(ReusePolicy::AlwaysRefactor);
    let mut session = SolveSession::new(&a0, &cfg).unwrap();
    session.step(&a0).unwrap();
    assert_eq!(session.step(&gentle).unwrap(), SessionState::Refactored);

    let solver = LinearSolver::analyze(&a0, &SolverConfig::new().engine(Engine::Basker)).unwrap();
    let fresh = solver.factor(&gentle).unwrap();

    let b = vec![1.0; a0.ncols()];
    let mut xr = b.clone();
    session.solve(&mut xr).unwrap();
    let mut xf = b.clone();
    fresh
        .solve_in_place(&mut xf, &mut SolveWorkspace::new())
        .unwrap();
    for (a, b) in xr.iter().zip(xf.iter()) {
        assert!((a - b).abs() < 1e-9, "refactor {a} vs fresh {b}");
    }
}
