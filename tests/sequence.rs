//! Integration: the Xyce-style matrix sequence — symbolic reuse,
//! refactorization, pivot-collapse fallback — stays accurate end to end,
//! driven for every engine through the unified `LinearSolver` lifecycle
//! with one reused workspace.

use basker_repro::prelude::*;

fn sequence(steps: usize) -> XyceSequence {
    XyceSequence::new(&XyceSequenceParams {
        circuit: CircuitParams {
            nsub: 4,
            sub_size: 36,
            feedthrough: 0.6,
            ..CircuitParams::default()
        },
        nsteps: steps,
        switching_fraction: 0.08,
        seed: 31,
    })
}

/// The transient loop every engine must sustain: refactor each step,
/// fall back to a pivoting factor when the engine reports a singular
/// pivot, solve in place, check the residual.
fn track_sequence(engine: Engine, steps: usize, tol: f64) {
    let seq = sequence(steps);
    let a0 = seq.pattern().clone();
    let cfg = SolverConfig::new().engine(engine).threads(2);
    let solver = LinearSolver::analyze(&a0, &cfg).unwrap();
    let mut num = solver.factor(&a0).unwrap();
    let b = vec![1.0; a0.ncols()];
    let mut x = vec![0.0; a0.ncols()];
    let mut ws = SolveWorkspace::for_dim(a0.ncols());
    for s in 1..steps {
        let m = seq.matrix_at(s);
        if let Err(e) = num.refactor(&m) {
            assert!(
                e.is_pivot_failure(),
                "{engine} step {s}: unexpected refactor failure {e}"
            );
            num = solver.factor(&m).unwrap();
        }
        x.copy_from_slice(&b);
        num.solve_in_place(&mut x, &mut ws).unwrap();
        let r = relative_residual(&m, &x, &b);
        assert!(r < tol, "{engine} step {s}: residual {r}");
    }
}

#[test]
fn basker_tracks_sequence_with_refactor_and_fallback() {
    track_sequence(Engine::Basker, 40, 1e-9);
}

#[test]
fn klu_tracks_sequence() {
    track_sequence(Engine::Klu, 40, 1e-9);
}

#[test]
fn snlu_tracks_sequence_with_static_pivoting() {
    // Static pivoting + refinement: looser tolerance, but the refactor
    // path never needs the pivot fallback.
    track_sequence(Engine::Snlu, 25, 1e-6);
}

#[test]
fn auto_tracks_sequence() {
    track_sequence(Engine::Auto, 25, 1e-6);
}

#[test]
fn refactor_and_fresh_factor_agree_when_pivots_stable() {
    // gentle value scaling keeps the pivot sequence valid: refactor and
    // factor must then produce identical solutions.
    let seq = sequence(10);
    let a0 = seq.pattern().clone();
    let gentle = CscMat::from_parts_unchecked(
        a0.nrows(),
        a0.ncols(),
        a0.colptr().to_vec(),
        a0.rowind().to_vec(),
        a0.values().iter().map(|v| v * 1.01).collect(),
    );
    let solver = LinearSolver::analyze(&a0, &SolverConfig::new().engine(Engine::Basker)).unwrap();
    let mut num = solver.factor(&a0).unwrap();
    num.refactor(&gentle).unwrap();
    let fresh = solver.factor(&gentle).unwrap();
    let b = vec![1.0; a0.ncols()];
    let mut ws = SolveWorkspace::new();
    let mut xr = b.clone();
    num.solve_in_place(&mut xr, &mut ws).unwrap();
    let mut xf = b.clone();
    fresh.solve_in_place(&mut xf, &mut ws).unwrap();
    for (a, b) in xr.iter().zip(xf.iter()) {
        assert!((a - b).abs() < 1e-9, "refactor {a} vs fresh {b}");
    }
}
