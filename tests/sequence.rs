//! Integration: the Xyce-style matrix sequence — symbolic reuse,
//! refactorization, pivot-collapse fallback — stays accurate end to end.

use basker_repro::prelude::*;

fn sequence(steps: usize) -> XyceSequence {
    XyceSequence::new(&XyceSequenceParams {
        circuit: CircuitParams {
            nsub: 4,
            sub_size: 36,
            feedthrough: 0.6,
            ..CircuitParams::default()
        },
        nsteps: steps,
        switching_fraction: 0.08,
        seed: 31,
    })
}

#[test]
fn basker_tracks_sequence_with_refactor_and_fallback() {
    let steps = 40;
    let seq = sequence(steps);
    let a0 = seq.pattern().clone();
    let sym = Basker::analyze(
        &a0,
        &BaskerOptions {
            nthreads: 2,
            ..BaskerOptions::default()
        },
    )
    .unwrap();
    let mut num = sym.factor(&a0).unwrap();
    let b = vec![1.0; a0.ncols()];
    for s in 1..steps {
        let m = seq.matrix_at(s);
        if num.refactor(&m).is_err() {
            num = sym.factor(&m).unwrap();
        }
        let x = num.solve(&b);
        let r = relative_residual(&m, &x, &b);
        assert!(r < 1e-9, "step {s}: residual {r}");
    }
}

#[test]
fn klu_tracks_sequence() {
    let steps = 40;
    let seq = sequence(steps);
    let a0 = seq.pattern().clone();
    let sym = KluSymbolic::analyze(&a0, &KluOptions::default()).unwrap();
    let mut num = sym.factor(&a0).unwrap();
    let b = vec![1.0; a0.ncols()];
    for s in 1..steps {
        let m = seq.matrix_at(s);
        if num.refactor(&m).is_err() {
            num = sym.factor(&m).unwrap();
        }
        let x = num.solve(&b);
        let r = relative_residual(&m, &x, &b);
        assert!(r < 1e-9, "step {s}: residual {r}");
    }
}

#[test]
fn snlu_tracks_sequence_with_static_pivoting() {
    let steps = 25;
    let seq = sequence(steps);
    let a0 = seq.pattern().clone();
    let sym = Snlu::analyze(&a0, &SnluOptions::default()).unwrap();
    let b = vec![1.0; a0.ncols()];
    for s in 0..steps {
        let m = seq.matrix_at(s);
        let num = sym.factor(&m).unwrap();
        let x = num.solve(&m, &b);
        let r = relative_residual(&m, &x, &b);
        assert!(r < 1e-6, "step {s}: residual {r}");
    }
}

#[test]
fn refactor_and_fresh_factor_agree_when_pivots_stable() {
    // gentle value scaling keeps the pivot sequence valid: refactor and
    // factor must then produce identical solutions.
    let seq = sequence(10);
    let a0 = seq.pattern().clone();
    let gentle = CscMat::from_parts_unchecked(
        a0.nrows(),
        a0.ncols(),
        a0.colptr().to_vec(),
        a0.rowind().to_vec(),
        a0.values().iter().map(|v| v * 1.01).collect(),
    );
    let sym = Basker::analyze(&a0, &BaskerOptions::default()).unwrap();
    let mut num = sym.factor(&a0).unwrap();
    num.refactor(&gentle).unwrap();
    let fresh = sym.factor(&gentle).unwrap();
    let b = vec![1.0; a0.ncols()];
    let xr = num.solve(&b);
    let xf = fresh.solve(&b);
    for (a, b) in xr.iter().zip(xf.iter()) {
        assert!((a - b).abs() < 1e-9, "refactor {a} vs fresh {b}");
    }
}
