//! Integration: degenerate and adversarial inputs across the whole stack.

use basker_repro::prelude::*;
use basker_sparse::io::{read_matrix_market, write_matrix_market};
use basker_sparse::spmv::spmv;

#[test]
fn one_by_one_matrix() {
    let a = CscMat::from_dense(&[vec![4.0]]);
    let sym = Basker::analyze(&a, &BaskerOptions::default()).unwrap();
    let num = sym.factor(&a).unwrap();
    assert_eq!(num.solve(&[8.0]), vec![2.0]);
    assert_eq!(num.lu_nnz(), 1);

    let k = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
    assert_eq!(k.factor(&a).unwrap().solve(&[8.0]), vec![2.0]);
}

#[test]
fn diagonal_matrix_all_solvers() {
    let n = 17;
    let mut t = TripletMat::new(n, n);
    for i in 0..n {
        t.push(i, i, (i + 1) as f64);
    }
    let a = t.to_csc();
    let b: Vec<f64> = (0..n).map(|i| (i + 1) as f64 * 3.0).collect();

    let x = Basker::analyze(&a, &BaskerOptions::default())
        .unwrap()
        .factor(&a)
        .unwrap()
        .solve(&b);
    for v in &x {
        assert!((v - 3.0).abs() < 1e-14);
    }
    let x = Snlu::analyze(&a, &SnluOptions::default())
        .unwrap()
        .factor(&a)
        .unwrap()
        .solve(&a, &b);
    for v in &x {
        assert!((v - 3.0).abs() < 1e-10);
    }
}

#[test]
fn dense_column_does_not_break_anyone() {
    // one dense column + dense row (arrow) embedded in a circuit
    let n = 60;
    let mut t = TripletMat::new(n, n);
    for i in 0..n {
        t.push(i, i, 30.0 + i as f64);
        if i > 0 {
            t.push(0, i, 1.0);
            t.push(i, 0, -1.0);
        }
        if i + 1 < n {
            t.push(i, i + 1, 2.0);
        }
    }
    let a = t.to_csc();
    let xtrue: Vec<f64> = (0..n).map(|i| (i % 3) as f64 + 1.0).collect();
    let b = spmv(&a, &xtrue);
    for p in [1usize, 2] {
        let x = Basker::analyze(
            &a,
            &BaskerOptions {
                nthreads: p,
                nd_threshold: 32,
                ..BaskerOptions::default()
            },
        )
        .unwrap()
        .factor(&a)
        .unwrap()
        .solve(&b);
        assert!(relative_residual(&a, &x, &b) < 1e-11, "p={p}");
    }
}

#[test]
fn explicit_zero_entries_are_tolerated() {
    // a stored zero off-diagonal must not confuse pattern handling
    let mut t = TripletMat::new(3, 3);
    t.push(0, 0, 2.0);
    t.push(1, 1, 3.0);
    t.push(2, 2, 4.0);
    t.push(0, 1, 0.0); // explicit zero
    t.push(2, 0, 0.0); // explicit zero
    let a = t.to_csc();
    assert_eq!(a.nnz(), 5);
    let num = Basker::analyze(&a, &BaskerOptions::default())
        .unwrap()
        .factor(&a)
        .unwrap();
    let x = num.solve(&[2.0, 3.0, 4.0]);
    for v in &x {
        assert!((v - 1.0).abs() < 1e-14);
    }
}

#[test]
fn numerically_singular_block_is_an_error_not_garbage() {
    // [1 1; 1 1] is structurally fine, numerically singular
    let a = CscMat::from_dense(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
    assert!(matches!(
        Basker::analyze(&a, &BaskerOptions::default())
            .unwrap()
            .factor(&a),
        Err(SparseError::ZeroPivot { .. })
    ));
    assert!(matches!(
        KluSymbolic::analyze(&a, &KluOptions::default())
            .unwrap()
            .factor(&a),
        Err(SparseError::ZeroPivot { .. })
    ));
}

#[test]
fn rectangular_matrices_rejected_everywhere() {
    let a = CscMat::zero(3, 4);
    assert!(Basker::analyze(&a, &BaskerOptions::default()).is_err());
    assert!(KluSymbolic::analyze(&a, &KluOptions::default()).is_err());
    assert!(Snlu::analyze(&a, &SnluOptions::default()).is_err());
}

#[test]
fn matrix_market_roundtrip_through_solver() {
    let a = circuit(&CircuitParams {
        nsub: 3,
        sub_size: 20,
        ..CircuitParams::default()
    });
    let mut buf = Vec::new();
    write_matrix_market(&a, &mut buf).unwrap();
    let a2 = read_matrix_market(&buf[..]).unwrap();
    assert_eq!(a, a2);
    let b = vec![1.0; a.ncols()];
    let x1 = Basker::analyze(&a, &BaskerOptions::default())
        .unwrap()
        .factor(&a)
        .unwrap()
        .solve(&b);
    let x2 = Basker::analyze(&a2, &BaskerOptions::default())
        .unwrap()
        .factor(&a2)
        .unwrap()
        .solve(&b);
    assert_eq!(x1, x2);
}

#[test]
fn badly_scaled_values_still_solve() {
    // entries spanning 12 orders of magnitude; MWCM + pivoting must cope
    let n = 30;
    let mut t = TripletMat::new(n, n);
    for i in 0..n {
        t.push(i, i, 10f64.powi((i % 13) as i32 - 6));
        if i + 1 < n {
            t.push(i, i + 1, 10f64.powi((i % 7) as i32 - 3));
            t.push(i + 1, i, -10f64.powi((i % 5) as i32 - 2));
        }
    }
    let a = t.to_csc();
    let xtrue = vec![1.0; n];
    let b = spmv(&a, &xtrue);
    let x = Basker::analyze(&a, &BaskerOptions::default())
        .unwrap()
        .factor(&a)
        .unwrap()
        .solve(&b);
    assert!(relative_residual(&a, &x, &b) < 1e-9);
}

#[test]
fn mwcm_toggle_changes_nothing_functionally() {
    let a = circuit(&CircuitParams {
        nsub: 4,
        sub_size: 24,
        ..CircuitParams::default()
    });
    let b = vec![1.0; a.ncols()];
    for use_mwcm in [true, false] {
        let x = Basker::analyze(
            &a,
            &BaskerOptions {
                use_mwcm,
                ..BaskerOptions::default()
            },
        )
        .unwrap()
        .factor(&a)
        .unwrap()
        .solve(&b);
        assert!(relative_residual(&a, &x, &b) < 1e-10, "mwcm={use_mwcm}");
    }
}

#[test]
fn huge_thread_request_is_clamped_and_works() {
    let a = mesh2d(10, 3);
    let sym = Basker::analyze(
        &a,
        &BaskerOptions {
            nthreads: 64,
            nd_threshold: 40,
            ..BaskerOptions::default()
        },
    )
    .unwrap();
    assert_eq!(sym.threads(), 64);
    let num = sym.factor(&a).unwrap();
    let b = vec![1.0; a.ncols()];
    assert!(relative_residual(&a, &num.solve(&b), &b) < 1e-10);
}
