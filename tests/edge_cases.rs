//! Integration: degenerate and adversarial inputs across the whole stack.

mod common;

use basker_repro::prelude::*;
use basker_sparse::io::{read_matrix_market, write_matrix_market};
use basker_sparse::spmv::spmv;
use common::solve_fresh as solved;

#[test]
fn one_by_one_matrix() {
    let a = CscMat::from_dense(&[vec![4.0]]);
    let sym = Basker::analyze(&a, &BaskerOptions::default()).unwrap();
    let num = sym.factor(&a).unwrap();
    assert_eq!(solved(&num, &[8.0]), vec![2.0]);
    assert_eq!(num.lu_nnz(), 1);

    let k = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
    assert_eq!(solved(&k.factor(&a).unwrap(), &[8.0]), vec![2.0]);
}

#[test]
fn diagonal_matrix_all_solvers() {
    let n = 17;
    let mut t = TripletMat::new(n, n);
    for i in 0..n {
        t.push(i, i, (i + 1) as f64);
    }
    let a = t.to_csc();
    let b: Vec<f64> = (0..n).map(|i| (i + 1) as f64 * 3.0).collect();

    let x = solved(
        &Basker::analyze(&a, &BaskerOptions::default())
            .unwrap()
            .factor(&a)
            .unwrap(),
        &b,
    );
    for v in &x {
        assert!((v - 3.0).abs() < 1e-14);
    }
    let x = solved(
        &Snlu::analyze(&a, &SnluOptions::default())
            .unwrap()
            .factor(&a)
            .unwrap(),
        &b,
    );
    for v in &x {
        assert!((v - 3.0).abs() < 1e-10);
    }
}

#[test]
fn dense_column_does_not_break_anyone() {
    // one dense column + dense row (arrow) embedded in a circuit
    let n = 60;
    let mut t = TripletMat::new(n, n);
    for i in 0..n {
        t.push(i, i, 30.0 + i as f64);
        if i > 0 {
            t.push(0, i, 1.0);
            t.push(i, 0, -1.0);
        }
        if i + 1 < n {
            t.push(i, i + 1, 2.0);
        }
    }
    let a = t.to_csc();
    let xtrue: Vec<f64> = (0..n).map(|i| (i % 3) as f64 + 1.0).collect();
    let b = spmv(&a, &xtrue);
    for p in [1usize, 2] {
        let cfg = SolverConfig::new()
            .engine(Engine::Basker)
            .threads(p)
            .nd_threshold(32);
        let num = LinearSolver::analyze(&a, &cfg).unwrap().factor(&a).unwrap();
        let x = solved(&num, &b);
        assert!(relative_residual(&a, &x, &b) < 1e-11, "p={p}");
    }
}

#[test]
fn explicit_zero_entries_are_tolerated() {
    // a stored zero off-diagonal must not confuse pattern handling
    let mut t = TripletMat::new(3, 3);
    t.push(0, 0, 2.0);
    t.push(1, 1, 3.0);
    t.push(2, 2, 4.0);
    t.push(0, 1, 0.0); // explicit zero
    t.push(2, 0, 0.0); // explicit zero
    let a = t.to_csc();
    assert_eq!(a.nnz(), 5);
    let num = Basker::analyze(&a, &BaskerOptions::default())
        .unwrap()
        .factor(&a)
        .unwrap();
    let x = solved(&num, &[2.0, 3.0, 4.0]);
    for v in &x {
        assert!((v - 1.0).abs() < 1e-14);
    }
}

#[test]
fn numerically_singular_block_is_an_error_not_garbage() {
    // [1 1; 1 1] is structurally fine, numerically singular
    let a = CscMat::from_dense(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
    assert!(matches!(
        Basker::analyze(&a, &BaskerOptions::default())
            .unwrap()
            .factor(&a),
        Err(SparseError::ZeroPivot { .. })
    ));
    assert!(matches!(
        KluSymbolic::analyze(&a, &KluOptions::default())
            .unwrap()
            .factor(&a),
        Err(SparseError::ZeroPivot { .. })
    ));
    // ... and through the unified API the same failure carries global
    // context instead of a bare column.
    for engine in [Engine::Basker, Engine::Klu] {
        let solver = LinearSolver::analyze(&a, &SolverConfig::new().engine(engine)).unwrap();
        let err = solver.factor(&a).unwrap_err();
        assert!(err.is_pivot_failure(), "{engine}: {err}");
        assert!(err.singular_column().is_some(), "{engine}: {err}");
    }
}

#[test]
fn rectangular_matrices_rejected_everywhere() {
    let a = CscMat::zero(3, 4);
    assert!(Basker::analyze(&a, &BaskerOptions::default()).is_err());
    assert!(KluSymbolic::analyze(&a, &KluOptions::default()).is_err());
    assert!(Snlu::analyze(&a, &SnluOptions::default()).is_err());
    for engine in [Engine::Auto, Engine::Basker, Engine::Klu, Engine::Snlu] {
        assert!(
            LinearSolver::analyze(&a, &SolverConfig::new().engine(engine)).is_err(),
            "{engine}"
        );
    }
}

#[test]
fn matrix_market_roundtrip_through_solver() {
    let a = circuit(&CircuitParams {
        nsub: 3,
        sub_size: 20,
        ..CircuitParams::default()
    });
    let mut buf = Vec::new();
    write_matrix_market(&a, &mut buf).unwrap();
    let a2 = read_matrix_market(&buf[..]).unwrap();
    assert_eq!(a, a2);
    let b = vec![1.0; a.ncols()];
    let x1 = solved(
        &Basker::analyze(&a, &BaskerOptions::default())
            .unwrap()
            .factor(&a)
            .unwrap(),
        &b,
    );
    let x2 = solved(
        &Basker::analyze(&a2, &BaskerOptions::default())
            .unwrap()
            .factor(&a2)
            .unwrap(),
        &b,
    );
    assert_eq!(x1, x2);
}

#[test]
fn badly_scaled_values_still_solve() {
    // entries spanning 12 orders of magnitude; MWCM + pivoting must cope
    let n = 30;
    let mut t = TripletMat::new(n, n);
    for i in 0..n {
        t.push(i, i, 10f64.powi((i % 13) as i32 - 6));
        if i + 1 < n {
            t.push(i, i + 1, 10f64.powi((i % 7) as i32 - 3));
            t.push(i + 1, i, -10f64.powi((i % 5) as i32 - 2));
        }
    }
    let a = t.to_csc();
    let xtrue = vec![1.0; n];
    let b = spmv(&a, &xtrue);
    let x = solved(
        &Basker::analyze(&a, &BaskerOptions::default())
            .unwrap()
            .factor(&a)
            .unwrap(),
        &b,
    );
    assert!(relative_residual(&a, &x, &b) < 1e-9);
}

#[test]
fn mwcm_toggle_changes_nothing_functionally() {
    let a = circuit(&CircuitParams {
        nsub: 4,
        sub_size: 24,
        ..CircuitParams::default()
    });
    let b = vec![1.0; a.ncols()];
    for use_mwcm in [true, false] {
        let cfg = SolverConfig::new()
            .engine(Engine::Basker)
            .use_mwcm(use_mwcm);
        let num = LinearSolver::analyze(&a, &cfg).unwrap().factor(&a).unwrap();
        let x = solved(&num, &b);
        assert!(relative_residual(&a, &x, &b) < 1e-10, "mwcm={use_mwcm}");
    }
}

#[test]
fn huge_thread_request_is_clamped_and_works() {
    let a = mesh2d(10, 3);
    let sym = Basker::analyze(
        &a,
        &BaskerOptions {
            nthreads: 64,
            nd_threshold: 40,
            ..BaskerOptions::default()
        },
    )
    .unwrap();
    assert_eq!(sym.threads(), 64);
    let num = sym.factor(&a).unwrap();
    let b = vec![1.0; a.ncols()];
    assert!(relative_residual(&a, &solved(&num, &b), &b) < 1e-10);
}
