//! Integration: exercise the interplay of Basker's two execution paths
//! (fine BTF vs fine ND) and the BTF coupling solve across them.

mod common;

use basker_repro::prelude::*;
use basker_sparse::spmv::spmv;
use common::solve_fresh as solved;

/// A matrix engineered to hit both paths: one large irreducible mesh
/// block, dozens of small blocks, and upper-triangular couplings.
fn mixed(nsmall: usize, mesh_k: usize) -> CscMat {
    let g = mesh2d(mesh_k, 3);
    let gn = g.nrows();
    let n = gn + 3 * nsmall;
    let mut t = TripletMat::new(n, n);
    for (i, j, v) in g.iter() {
        t.push(i, j, v);
    }
    // small 3x3 cycles
    for s in 0..nsmall {
        let o = gn + 3 * s;
        for k in 0..3 {
            t.push(o + k, o + k, 6.0 + k as f64);
            t.push(o + k, o + (k + 1) % 3, -1.0);
        }
    }
    // couplings: mesh rows reference small-block columns (upper block)
    for s in 0..nsmall {
        t.push(s % gn, gn + 3 * s, 0.5);
    }
    t.to_csc()
}

#[test]
fn mixed_paths_solve_correctly() {
    let a = mixed(20, 12);
    for p in [1usize, 2, 4] {
        let sym = Basker::analyze(
            &a,
            &BaskerOptions {
                nthreads: p,
                nd_threshold: 100,
                ..BaskerOptions::default()
            },
        )
        .unwrap();
        // both kinds must be present
        let st = sym.structure();
        assert!(st.nblocks() > 10);
        assert!(st.small_block_fraction() > 0.0 && st.small_block_fraction() < 1.0);
        let num = sym.factor(&a).unwrap();
        assert_eq!(num.stats.nd_blocks, 1);
        let xtrue: Vec<f64> = (0..a.ncols()).map(|i| (i % 6) as f64 - 2.0).collect();
        let b = spmv(&a, &xtrue);
        let x = solved(&num, &b);
        assert!(relative_residual(&a, &x, &b) < 1e-10, "p={p}");
    }
}

#[test]
fn nd_threshold_switches_paths() {
    let a = mesh2d(10, 4); // n = 100, irreducible

    // low threshold: ND path
    let sym = Basker::analyze(
        &a,
        &BaskerOptions {
            nthreads: 2,
            nd_threshold: 50,
            ..BaskerOptions::default()
        },
    )
    .unwrap();
    let num = sym.factor(&a).unwrap();
    assert_eq!(num.stats.nd_blocks, 1);
    // high threshold: small path (single serial GP block)
    let sym = Basker::analyze(
        &a,
        &BaskerOptions {
            nthreads: 2,
            nd_threshold: 1000,
            ..BaskerOptions::default()
        },
    )
    .unwrap();
    let num2 = sym.factor(&a).unwrap();
    assert_eq!(num2.stats.nd_blocks, 0);
    // both give the same answer
    let b = vec![1.0; a.ncols()];
    let x1 = solved(&num, &b);
    let x2 = solved(&num2, &b);
    for (u, v) in x1.iter().zip(x2.iter()) {
        assert!((u - v).abs() < 1e-9);
    }
}

#[test]
fn btf_disabled_still_works() {
    let a = mixed(8, 8);
    let sym = Basker::analyze(
        &a,
        &BaskerOptions {
            nthreads: 2,
            use_btf: false,
            nd_threshold: 50,
            ..BaskerOptions::default()
        },
    )
    .unwrap();
    assert_eq!(sym.structure().nblocks(), 1);
    let num = sym.factor(&a).unwrap();
    let b = vec![1.0; a.ncols()];
    let x = solved(&num, &b);
    assert!(relative_residual(&a, &x, &b) < 1e-10);
}

#[test]
fn stats_reflect_structure() {
    let a = mixed(15, 10);
    let sym = Basker::analyze(
        &a,
        &BaskerOptions {
            nthreads: 2,
            nd_threshold: 80,
            ..BaskerOptions::default()
        },
    )
    .unwrap();
    let num = sym.factor(&a).unwrap();
    assert!(num.stats.btf_blocks > 10);
    assert_eq!(num.stats.threads, 2);
    assert!(num.stats.lu_nnz > 0);
    assert!(num.total_storage_nnz() > num.lu_nnz());
    // symbolic estimates exist for the ND block
    let est = sym.estimates();
    assert_eq!(est.nd.iter().filter(|e| e.is_some()).count(), 1);
    assert!(est.nd_total_est > 0);
}
