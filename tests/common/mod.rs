//! Helpers shared by the integration test binaries.

use basker_repro::prelude::*;

/// Convenience allocating solve over any numeric handle implementing the
/// unified trait (engine numerics or `Factorization`): copies `b` into a
/// fresh buffer, runs the in-place path, returns the solution. Test
/// ergonomics — the hot-path idiom is a reused `SolveWorkspace`.
#[allow(dead_code)] // each test binary uses its own subset
pub fn solve_fresh(num: &impl LuNumeric, b: &[f64]) -> Vec<f64> {
    let mut x = b.to_vec();
    num.solve_in_place(&mut x, &mut SolveWorkspace::new())
        .unwrap();
    x
}

/// Analyze + factor + solve through the unified lifecycle with the given
/// engine; returns the resolved engine and the solution.
#[allow(dead_code)] // each test binary uses its own subset
pub fn analyze_factor_solve(engine: Engine, a: &CscMat, b: &[f64]) -> (Engine, Vec<f64>) {
    let cfg = SolverConfig::new().engine(engine).threads(2);
    let solver = LinearSolver::analyze(a, &cfg).unwrap();
    let num = solver.factor(a).unwrap();
    (solver.engine(), solve_fresh(&num, b))
}
