//! Integration: the multi-tenant [`SolverService`] — failure isolation
//! between streams, true concurrent submission from many caller
//! threads, and the zero-OS-threads-after-warm-up property of the
//! shared-team scheduler.

use basker_repro::basker_runtime::os_threads_spawned;
use basker_repro::prelude::*;
use basker_sparse::spmv::spmv;

fn circuitish(n: usize, shift: f64) -> CscMat {
    let mut t = TripletMat::new(n, n);
    for i in 0..n {
        t.push(i, i, 10.0 + shift + (i % 3) as f64);
        if i + 1 < n {
            t.push(i, i + 1, -1.0);
        }
        if i >= 4 {
            t.push(i, i - 4, 0.5);
        }
    }
    t.to_csc()
}

/// Same pattern as `a`, values engineered to an exact numeric
/// singularity (every entry zero): refactorization *and* the re-pivot
/// fallback both fail on the pivoting engines — the hard collapse of
/// `tests/session_lifecycle.rs`, aimed at one stream of a service.
fn collapsed(a: &CscMat) -> CscMat {
    // SAFETY: pattern arrays are copied from the valid matrix `a`; the zero
    // vector matches its nnz.
    unsafe {
        CscMat::from_parts_unchecked(
            a.nrows(),
            a.ncols(),
            a.colptr().to_vec(),
            a.rowind().to_vec(),
            vec![0.0; a.nnz()],
        )
    }
}

fn stream_cfg(engine: Engine) -> SessionConfig {
    SessionConfig::new()
        .engine(engine)
        .policy(ReusePolicy::adaptive())
        .target_residual(1e-9)
}

/// One stream hitting a hard singular pivot must error **only its own
/// handle**; sibling streams on all three engines keep stepping with
/// correct residuals, and the victim recovers on its next healthy step.
#[test]
fn hard_failure_in_one_stream_is_isolated() {
    // The pivoting engines report the collapse as an error; exercise
    // each as the victim while siblings span all three engines.
    for victim_engine in [Engine::Klu, Engine::Basker] {
        let service = SolverService::new(&ServiceConfig::new().threads(2));
        let a = circuitish(20, 0.0);
        let mut victim = service.stream(&a, &stream_cfg(victim_engine)).unwrap();
        let mut siblings: Vec<StreamHandle> = [Engine::Klu, Engine::Basker, Engine::Snlu]
            .into_iter()
            .map(|e| service.stream(&a, &stream_cfg(e)).unwrap())
            .collect();

        // Everyone takes a healthy first step.
        victim.step(&a, vec![]).unwrap();
        for s in siblings.iter_mut() {
            s.step(&a, vec![]).unwrap();
        }

        // The victim collapses; the error comes back on its ticket only.
        let err = victim.step(&collapsed(&a), vec![]).unwrap_err();
        assert!(
            matches!(err, SolverError::SingularPivot { .. }),
            "{victim_engine}: expected a singular pivot, got {err:?}"
        );

        // Siblings are unharmed: they keep stepping and solving to full
        // accuracy on all three engines.
        let xtrue: Vec<f64> = (0..20).map(|i| 1.0 + (i % 5) as f64).collect();
        for (k, s) in siblings.iter_mut().enumerate() {
            let m = circuitish(20, 0.1);
            let b = spmv(&m, &xtrue);
            let r = s.step_refined(&m, b).unwrap();
            assert!(
                r.quality[0].converged && r.quality[0].residual < 1e-8,
                "{victim_engine}: sibling {k} ({}) residual {}",
                s.engine(),
                r.quality[0].residual
            );
            assert_eq!(s.stats().unwrap().errors, 0, "sibling {k}");
        }

        // The victim recovers exactly as a lone session does: a healthy
        // step rebuilds the factors from scratch.
        let b = spmv(&a, &xtrue);
        let r = victim.step_refined(&a, b).unwrap();
        assert!(r.quality[0].converged, "{victim_engine}: victim recovery");
        let vs = victim.stats().unwrap();
        assert_eq!(vs.errors, 1, "{victim_engine}");
        assert!(!vs.poisoned, "{victim_engine}: an error is not a poison");
        let stats = service.stats();
        assert_eq!(stats.errors, 1, "{victim_engine}: exactly one job errored");
    }
}

/// The static-pivoting engine never hard-fails a numeric collapse (it
/// perturbs — see `session_lifecycle`); its per-stream error isolation
/// is exercised through the other escape hatch a tenant can hit: a
/// step whose matrix no longer matches the analyzed pattern.
#[test]
fn snlu_stream_errors_are_isolated_too() {
    let service = SolverService::new(&ServiceConfig::new().threads(2));
    let a = circuitish(16, 0.0);
    let mut victim = service.stream(&a, &stream_cfg(Engine::Snlu)).unwrap();
    let mut sibling = service.stream(&a, &stream_cfg(Engine::Klu)).unwrap();
    victim.step(&a, vec![]).unwrap();
    sibling.step(&a, vec![]).unwrap();

    let mut t = TripletMat::new(16, 16);
    for i in 0..16 {
        t.push(i, i, 2.0);
    }
    let wrong_pattern = t.to_csc();
    let err = victim.step(&wrong_pattern, vec![]).unwrap_err();
    assert!(matches!(err, SolverError::Sparse(_)), "got {err:?}");

    let xtrue: Vec<f64> = (0..16).map(|i| 0.5 + i as f64).collect();
    let b = spmv(&a, &xtrue);
    let r = sibling.step_refined(&a, b).unwrap();
    assert!(r.quality[0].converged, "sibling survived");
    // The snlu victim keeps serving its analyzed pattern.
    let b = spmv(&a, &xtrue);
    let r = victim.step_refined(&a, b).unwrap();
    assert!(r.quality[0].converged, "victim still serves its pattern");
}

/// Many caller threads, one service: each drives its own stream
/// full-speed; the scheduler multiplexes their jobs over the one shared
/// team, spawning **zero** OS threads after warm-up.
#[test]
fn concurrent_callers_share_one_warm_team() {
    let service = SolverService::new(&ServiceConfig::new().threads(2));
    let nstreams = 6usize;
    let nsteps = 8usize;

    // Warm-up: create the streams and take one step each so the team,
    // pool and sessions exist before the measured window.
    let mut handles: Vec<StreamHandle> = (0..nstreams)
        .map(|k| {
            let a = circuitish(18 + k, 0.0);
            let engine = [Engine::Klu, Engine::Basker, Engine::Snlu][k % 3];
            let mut h = service.stream(&a, &stream_cfg(engine)).unwrap();
            h.step(&a, vec![]).unwrap();
            h
        })
        .collect();
    let spawned = os_threads_spawned();

    std::thread::scope(|scope| {
        for (k, mut h) in handles.drain(..).enumerate() {
            let service = service.clone();
            scope.spawn(move || {
                let n = h.dim();
                let xtrue: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
                for s in 1..nsteps {
                    let m = circuitish(n, 0.05 * s as f64);
                    let b = spmv(&m, &xtrue);
                    let r = h
                        .step_refined(&m, b)
                        .unwrap_or_else(|e| panic!("stream {k} step {s}: {e}"));
                    assert!(
                        r.quality[0].residual < 1e-8,
                        "stream {k} step {s}: residual {}",
                        r.quality[0].residual
                    );
                    for (u, v) in r.x.iter().zip(&xtrue) {
                        assert!((u - v).abs() < 1e-6, "stream {k}: {u} vs {v}");
                    }
                }
                // Keep the handle alive till the end of the loop, then
                // let the drop close the stream while the service is
                // still busy elsewhere.
                drop(h);
                let _ = service.stats();
            });
        }
    });

    assert_eq!(
        os_threads_spawned(),
        spawned,
        "steady-state service traffic must not spawn OS threads"
    );
    let stats = service.stats();
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.steps, nstreams * nsteps);
    assert_eq!(stats.streams, 0, "all handles dropped");
}

/// Backpressure + drain from the handle-facing side: a burst of
/// pipelined submissions beyond the queue bound completes in order,
/// and `drain` settles everything a caller never awaited.
#[test]
fn pipelined_bursts_respect_order_and_bounds() {
    let service = SolverService::new(&ServiceConfig::new().threads(2).queue_capacity(2));
    let a = circuitish(14, 0.0);
    let mut h = service.stream(&a, &stream_cfg(Engine::Klu)).unwrap();

    // Steps must apply in submission order: feed matrices whose factors
    // differ and check the last-landed factor matches the last submit.
    let tickets: Vec<_> = (0..6)
        .map(|s| {
            let m = circuitish(14, s as f64);
            h.submit(&m, vec![1.0; 14]).unwrap()
        })
        .collect();
    for (s, t) in tickets.into_iter().enumerate() {
        let r = t.wait().unwrap_or_else(|e| panic!("step {s}: {e}"));
        assert_eq!(r.x.len(), 14);
    }
    let st = h.stats().unwrap();
    assert_eq!(st.session.steps, 6);

    // Fire-and-forget: drop the tickets, drain, everything ran.
    for s in 0..4 {
        let m = circuitish(14, s as f64);
        drop(h.submit(&m, vec![]).unwrap());
    }
    service.drain();
    let stats = service.stats();
    assert_eq!(stats.steps, 10);
    assert_eq!((stats.queued, stats.running), (0, 0));
    assert!(
        stats.max_queue_depth <= 2,
        "bound: {}",
        stats.max_queue_depth
    );
}
