//! Integration: the persistent worker team really reuses its threads.
//!
//! After a warm-up factorization at a given width, repeated
//! `factor`/`refactor`/`solve` calls must create **zero** new OS threads
//! — measured two ways: the runtime's own spawn counter
//! ([`basker_runtime::os_threads_spawned`]) and the kernel's view via
//! `/proc/self/status` `Threads:` (skipped on targets without procfs).
//! The single test in this binary is kept alone so no concurrent test
//! thread can perturb the process thread count in the measurement
//! window.

use basker_repro::prelude::*;
use basker_sparse::spmv::spmv;

/// Kernel-reported thread count of this process, if procfs is available.
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn warm_team_spawns_no_new_threads() {
    let a = mesh2d(16, 7);
    let scaled = |f: f64| {
        // SAFETY: pattern arrays are copied from the valid matrix `a`;
        // values map 1:1.
        unsafe {
            CscMat::from_parts_unchecked(
                a.nrows(),
                a.ncols(),
                a.colptr().to_vec(),
                a.rowind().to_vec(),
                a.values().iter().map(|v| v * f + 0.01).collect(),
            )
        }
    };

    // Warm-up: bring up the teams every later call will reuse (Basker at
    // 4 and 2 threads exercises both widths the loop below touches).
    let cfg4 = SolverConfig::new()
        .engine(Engine::Basker)
        .threads(4)
        .nd_threshold(32);
    let cfg2 = SolverConfig::new()
        .engine(Engine::Basker)
        .threads(2)
        .nd_threshold(32);
    let solver4 = LinearSolver::analyze(&a, &cfg4).unwrap();
    let solver2 = LinearSolver::analyze(&a, &cfg2).unwrap();
    let mut num = solver4.factor(&a).unwrap();
    let _ = solver2.factor(&a).unwrap();

    let spawned_before = basker_repro::basker_runtime::os_threads_spawned();
    let os_before = os_thread_count();

    // The transient-simulation hot loop: value-only refactors, fresh
    // factors, analyze-from-scratch, and solves — all on warm teams.
    let mut ws = SolveWorkspace::for_dim(a.ncols());
    for step in 0..10 {
        let a2 = scaled(1.0 + 0.05 * step as f64);
        num.refactor(&a2).unwrap();
        let mut x = spmv(&a2, &vec![1.0; a.ncols()]);
        num.solve_in_place(&mut x, &mut ws).unwrap();
        let fresh = solver4.factor(&a2).unwrap();
        assert!(fresh.stats().lu_nnz > 0);
        let re = LinearSolver::analyze(&a2, &cfg2).unwrap();
        let n2 = re.factor(&a2).unwrap();
        assert!(n2.stats().lu_nnz > 0);
    }

    assert_eq!(
        basker_repro::basker_runtime::os_threads_spawned(),
        spawned_before,
        "runtime spawned new OS threads after warm-up"
    );
    if let (Some(before), Some(after)) = (os_before, os_thread_count()) {
        assert!(
            after <= before,
            "process thread count grew after warm-up: {before} -> {after}"
        );
    }

    // The per-rank wait stats surface through the unified API: one entry
    // per worker rank of the team.
    let stats = solver4.factor(&a).unwrap().stats();
    assert_eq!(stats.threads, 4);
    assert_eq!(stats.sync_wait_ns.len(), 4);
}
