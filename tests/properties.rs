//! Property-based tests over the full pipeline: random diagonally
//! dominant sparse systems must factor and solve accurately with every
//! engine, all engines (and `Engine::Auto`) must agree on random
//! circuit/mesh/powergrid matrices, orderings must produce valid
//! permutations, and the BTF form must be structurally correct.

mod common;

use basker_ordering::btf::{btf_form, is_upper_block_triangular};
use basker_ordering::matching::max_transversal;
use basker_repro::prelude::*;
use basker_sparse::spmv::spmv;
use common::analyze_factor_solve as unified_solve;
use proptest::prelude::*;

/// Strategy: a random square, structurally nonsingular, diagonally
/// dominant sparse matrix of dimension 5..60.
fn arb_matrix() -> impl Strategy<Value = CscMat> {
    (
        5usize..60,
        proptest::collection::vec((0usize..60, 0usize..60, -2.0f64..2.0), 0..240),
        0u64..1000,
    )
        .prop_map(|(n, entries, _seed)| {
            let mut t = TripletMat::new(n, n);
            let mut rowsum = vec![0.0f64; n];
            let mut offdiag: Vec<(usize, usize, f64)> = Vec::new();
            for (i, j, v) in entries {
                let (i, j) = (i % n, j % n);
                if i != j && v != 0.0 {
                    offdiag.push((i, j, v));
                    rowsum[i] += v.abs();
                }
            }
            for (i, j, v) in offdiag {
                t.push(i, j, v);
            }
            for i in 0..n {
                // strict diagonal dominance => nonsingular, every pivot
                // strategy safe
                t.push(i, i, rowsum[i] + 1.0);
            }
            t.to_csc()
        })
}

/// Strategy: a random instance of one of the paper's three workload
/// families — circuit, mesh, powergrid.
fn arb_workload() -> impl Strategy<Value = CscMat> {
    (0usize..3, 2usize..6, 10usize..32, 0u64..500).prop_map(|(family, scale, size, seed)| {
        match family {
            0 => circuit(&CircuitParams {
                nsub: scale + 1,
                sub_size: size,
                feedthrough: (seed % 10) as f64 / 10.0,
                ..CircuitParams::default()
            }),
            1 => mesh2d(4 + size / 3, seed % 7),
            _ => powergrid(&PowergridParams {
                nfeeders: 2 + scale,
                feeder_len: size,
                loop_prob: 0.2,
                seed,
            }),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn basker_solves_random_dominant_systems(a in arb_matrix()) {
        let n = a.ncols();
        let xtrue: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
        let b = spmv(&a, &xtrue);
        let cfg = SolverConfig::new().engine(Engine::Basker).threads(2).nd_threshold(24);
        let num = LinearSolver::analyze(&a, &cfg).unwrap().factor(&a).unwrap();
        let mut x = b.clone();
        num.solve_in_place(&mut x, &mut SolveWorkspace::new()).unwrap();
        prop_assert!(relative_residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn klu_solves_random_dominant_systems(a in arb_matrix()) {
        let n = a.ncols();
        let xtrue: Vec<f64> = (0..n).map(|i| 0.5 * (i % 7) as f64 - 1.0).collect();
        let b = spmv(&a, &xtrue);
        let (_, x) = unified_solve(Engine::Klu, &a, &b);
        prop_assert!(relative_residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn snlu_solves_random_dominant_systems(a in arb_matrix()) {
        let n = a.ncols();
        let xtrue: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.4).collect();
        let b = spmv(&a, &xtrue);
        let (_, x) = unified_solve(Engine::Snlu, &a, &b);
        prop_assert!(relative_residual(&a, &x, &b) < 1e-8);
    }

    /// Cross-engine agreement on the paper's workload families: all
    /// three engines and whatever `Engine::Auto` picks must solve the
    /// same system to the same answer within tolerance.
    #[test]
    fn engines_agree_on_workload_families(a in arb_workload()) {
        let n = a.ncols();
        let xtrue: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 3) % 7) as f64 * 0.5).collect();
        let b = spmv(&a, &xtrue);
        let (_, xk) = unified_solve(Engine::Klu, &a, &b);
        let (_, xb) = unified_solve(Engine::Basker, &a, &b);
        let (_, xs) = unified_solve(Engine::Snlu, &a, &b);
        let (picked, xa) = unified_solve(Engine::Auto, &a, &b);
        prop_assert!(picked != Engine::Auto, "auto must resolve");
        for i in 0..n {
            let scale = 1.0 + xtrue[i].abs();
            prop_assert!((xk[i] - xtrue[i]).abs() < 1e-7 * scale, "klu at {i}");
            prop_assert!((xb[i] - xk[i]).abs() < 1e-7 * scale, "basker vs klu at {i}");
            prop_assert!((xs[i] - xk[i]).abs() < 1e-5 * scale, "snlu vs klu at {i}");
            prop_assert!((xa[i] - xk[i]).abs() < 1e-5 * scale, "auto({picked}) vs klu at {i}");
        }
    }

    #[test]
    fn btf_form_is_valid(a in arb_matrix()) {
        let f = btf_form(&a).unwrap();
        let p = f.permute(&a);
        prop_assert!(is_upper_block_triangular(&p, &f.bounds));
        for k in 0..a.ncols() {
            prop_assert!(p.get(k, k) != 0.0, "zero diagonal at {k}");
        }
        // bounds partition 0..n
        prop_assert_eq!(*f.bounds.first().unwrap(), 0);
        prop_assert_eq!(*f.bounds.last().unwrap(), a.ncols());
    }

    #[test]
    fn matching_is_maximum_on_dominant_patterns(a in arb_matrix()) {
        // dominant construction guarantees a zero-free diagonal, so the
        // maximum matching must be perfect.
        let m = max_transversal(&a);
        prop_assert!(m.is_perfect());
    }

    #[test]
    fn amd_and_nd_produce_valid_permutations(a in arb_matrix()) {
        let amd = basker_ordering::amd_order(&a);
        prop_assert_eq!(amd.len(), a.ncols());
        let nd = basker_ordering::nested_dissection(&a, 2);
        prop_assert_eq!(nd.perm.len(), a.ncols());
        let total: usize = nd.nodes.iter().map(|n| n.range.len()).sum();
        prop_assert_eq!(total, a.ncols());
    }

    #[test]
    fn solver_agreement(a in arb_matrix()) {
        let n = a.ncols();
        let xtrue: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let b = spmv(&a, &xtrue);
        let (_, xb) = unified_solve(Engine::Basker, &a, &b);
        let (_, xk) = unified_solve(Engine::Klu, &a, &b);
        for (u, v) in xb.iter().zip(xk.iter()) {
            prop_assert!((u - v).abs() < 1e-8 * (1.0 + u.abs()));
        }
    }
}
