//! Integration: the single-thread zero-overhead contract.
//!
//! With `BASKER_NUM_THREADS=1` the whole stack — direct factorization,
//! session-style factor/refactor sequences, and a [`SolverService`]
//! stream — must execute the pure sequential path: **zero** OS threads
//! spawned (runtime counter and, where procfs exists, the kernel's
//! view), zero slot-wait time on every rank, and zero traffic through
//! the assist registry (`steal_attempts == 0` means the wait loop was
//! never even entered). The single test in this binary is kept alone so
//! the env var and the process thread count cannot be perturbed by a
//! concurrent test thread.

use basker_repro::prelude::*;
use basker_sparse::spmv::spmv;

fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn assert_sequential(stats: &SolverStats, what: &str) {
    assert_eq!(stats.threads, 1, "{what}: ran on more than one thread");
    assert!(
        stats.sync_wait_ns.iter().all(|&ns| ns == 0),
        "{what}: non-zero slot-wait time {:?}",
        stats.sync_wait_ns
    );
    assert_eq!(
        stats.steal_attempts, 0,
        "{what}: single-thread run entered the assist wait loop"
    );
    assert_eq!(stats.columns_assisted, 0, "{what}: assisted columns at p=1");
    assert_eq!(stats.tasks_joined, 0, "{what}: joined tasks at p=1");
}

#[test]
fn single_thread_is_pure_sequential() {
    std::env::set_var("BASKER_NUM_THREADS", "1");
    assert_eq!(basker_repro::basker::env_default_threads(), Some(1));

    let spawned_before = basker_repro::basker_runtime::os_threads_spawned();
    let os_before = os_thread_count();

    // --- factor/refactor sequence through the unified API -------------
    // No explicit .threads(): the width must come from the env default.
    let a = mesh2d(16, 7);
    let cfg = SolverConfig::new().engine(Engine::Basker).nd_threshold(32);
    let solver = LinearSolver::analyze(&a, &cfg).unwrap();
    let mut num = solver.factor(&a).unwrap();
    assert_sequential(&num.stats(), "initial factor");

    let mut ws = SolveWorkspace::for_dim(a.ncols());
    for step in 0..6 {
        // SAFETY: pattern arrays are copied from the valid matrix `a`;
        // values map 1:1.
        let a2 = unsafe {
            CscMat::from_parts_unchecked(
                a.nrows(),
                a.ncols(),
                a.colptr().to_vec(),
                a.rowind().to_vec(),
                a.values()
                    .iter()
                    .map(|v| v * (1.0 + 0.05 * step as f64) + 0.01)
                    .collect(),
            )
        };
        num.refactor(&a2).unwrap();
        let mut x = spmv(&a2, &vec![1.0; a.ncols()]);
        num.solve_in_place(&mut x, &mut ws).unwrap();
        assert_sequential(&num.stats(), "refactor step");
        let fresh = solver.factor(&a2).unwrap();
        assert_sequential(&fresh.stats(), "fresh factor");
    }

    // --- a SolverService stream on the width-1 shared team -------------
    let seq = XyceSequence::new(&XyceSequenceParams {
        circuit: CircuitParams {
            nsub: 3,
            sub_size: 24,
            feedthrough: 0.7,
            ..CircuitParams::default()
        },
        nsteps: 5,
        switching_fraction: 0.04,
        seed: 7,
    });
    let service = SolverService::new(&ServiceConfig::new());
    let mut h = service
        .stream(
            seq.pattern(),
            &SessionConfig::new()
                .engine(Engine::Basker)
                .policy(ReusePolicy::adaptive()),
        )
        .unwrap();
    for s in 0..5 {
        let n = h.dim();
        let r = h.step_refined(&seq.matrix_at(s), vec![1.0; n]).unwrap();
        assert!(r.quality[0].residual < 1e-7, "service step residual");
    }
    let sstats = service.stats();
    assert_eq!(sstats.errors, 0);
    assert_eq!(
        sstats.steal_attempts, 0,
        "width-1 service entered the assist wait loop"
    );
    assert_eq!(sstats.columns_assisted, 0, "width-1 service assisted work");

    // --- the headline: nothing above spawned a single OS thread --------
    assert_eq!(
        basker_repro::basker_runtime::os_threads_spawned(),
        spawned_before,
        "BASKER_NUM_THREADS=1 must never spawn OS threads"
    );
    if let (Some(before), Some(after)) = (os_before, os_thread_count()) {
        assert!(
            after <= before,
            "process thread count grew at p=1: {before} -> {after}"
        );
    }
}
