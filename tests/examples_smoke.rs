//! Smoke test: every `examples/` binary must run to completion, so the
//! examples cannot silently rot as the API evolves. Each example is
//! driven through `cargo run --example`, exactly as a user would invoke
//! it (the binaries are already compiled by the time the test target
//! runs, so this adds seconds, not a rebuild).

use std::process::Command;

fn run_example(name: &str) {
    let cargo = env!("CARGO");
    let out = Command::new(cargo)
        .args(["run", "--quiet", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        out.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(!out.stdout.is_empty(), "example {name} produced no output");
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn circuit_transient_runs() {
    run_example("circuit_transient");
}

#[test]
fn power_grid_contingency_runs() {
    run_example("power_grid_contingency");
}

#[test]
fn solver_faceoff_runs() {
    run_example("solver_faceoff");
}

#[test]
fn concurrent_transients_runs() {
    run_example("concurrent_transients");
}
