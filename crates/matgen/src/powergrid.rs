//! Power-grid matrices: feeder trees with local loops.
//!
//! The paper's `RS_b39c30` / `RS_b678c2` / `Power0` rows are power-grid
//! systems whose BTF structure is extreme: **100 %** of rows live in
//! thousands of tiny diagonal blocks and the fill density is *below one*
//! (only diagonal blocks get factored). This generator reproduces that
//! class: a forest of radial feeders (pure tree branches become 1×1
//! blocks after BTF) with occasional small local loops (which become
//! small SCC blocks), coupled through directed measurement/flow rows that
//! never create large SCCs.

use basker_sparse::{CscMat, TripletMat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the power-grid generator.
#[derive(Debug, Clone)]
pub struct PowergridParams {
    /// Number of radial feeders.
    pub nfeeders: usize,
    /// Buses per feeder.
    pub feeder_len: usize,
    /// Probability that a bus starts a small local loop (3–5 buses).
    pub loop_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PowergridParams {
    fn default() -> Self {
        PowergridParams {
            nfeeders: 40,
            feeder_len: 50,
            loop_prob: 0.15,
            seed: 7,
        }
    }
}

/// Generates the grid matrix. Diagonal always present; off-diagonal
/// couplings directed "downstream" (plus loop backedges), so BTF reduces
/// the system to small blocks covering 100 % of the rows.
pub fn powergrid(p: &PowergridParams) -> CscMat {
    let n = p.nfeeders * p.feeder_len;
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut t = TripletMat::with_capacity(n, n, 4 * n);

    for i in 0..n {
        t.push(i, i, 5.0 + rng.gen_range(0.0..2.0));
    }
    for f in 0..p.nfeeders {
        let base = f * p.feeder_len;
        let mut bus = 0usize;
        while bus + 1 < p.feeder_len {
            let u = base + bus;
            let v = base + bus + 1;
            // downstream admittance: directed (upper-triangular-ish after
            // BTF) — the flow equation of bus u references bus v.
            t.push(u, v, -rng.gen_range(0.5..2.0));
            if rng.gen_bool(p.loop_prob) && bus + 4 < p.feeder_len {
                // local loop of 3-5 buses: a small SCC
                let len = rng.gen_range(3..=5.min(p.feeder_len - bus - 1));
                for k in 0..len - 1 {
                    t.push(base + bus + k, base + bus + k + 1, -rng.gen_range(0.2..1.0));
                    t.push(base + bus + k + 1, base + bus + k, -rng.gen_range(0.2..1.0));
                }
                bus += len;
            } else {
                bus += 1;
            }
        }
        // feeder head references the previous feeder's tail (directed):
        // keeps the whole system weakly connected without merging SCCs.
        if f > 0 {
            t.push(base, base - 1, -rng.gen_range(0.1..0.5));
        }
    }
    t.to_csc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_ordering::btf::btf_form;

    #[test]
    fn btf_structure_is_extreme() {
        let a = powergrid(&PowergridParams::default());
        let f = btf_form(&a).unwrap();
        // Paper class: thousands of blocks, all tiny.
        assert!(
            f.nblocks() > a.nrows() / 10,
            "too few blocks: {}",
            f.nblocks()
        );
        assert!(
            f.small_block_fraction(16) > 0.99,
            "BTF% {}",
            f.small_block_fraction(16)
        );
    }

    #[test]
    fn deterministic_and_nonsingular() {
        let p = PowergridParams::default();
        assert_eq!(powergrid(&p), powergrid(&p));
        assert!(btf_form(&powergrid(&p)).is_ok());
    }

    #[test]
    fn size_matches_params() {
        let a = powergrid(&PowergridParams {
            nfeeders: 3,
            feeder_len: 10,
            ..PowergridParams::default()
        });
        assert_eq!(a.nrows(), 30);
    }
}
