//! Finite-difference mesh matrices (the supernodal solver's ideal input).

use basker_sparse::{CscMat, TripletMat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `k x k` five-point stencil with mild unsymmetric perturbations
/// (convection-like terms). Diagonally dominant; fill density grows with
/// `k` under any ordering — the "2/3D mesh problems" of Table II.
pub fn mesh2d(k: usize, seed: u64) -> CscMat {
    let n = k * k;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2d2d);
    let idx = |r: usize, c: usize| r * k + c;
    let mut t = TripletMat::with_capacity(n, n, 5 * n);
    for r in 0..k {
        for c in 0..k {
            let u = idx(r, c);
            t.push(u, u, 4.0 + rng.gen_range(0.0..0.5));
            if r + 1 < k {
                let w = 1.0 + rng.gen_range(0.0..0.3);
                t.push(u, idx(r + 1, c), -w);
                t.push(idx(r + 1, c), u, -(w - rng.gen_range(0.0..0.2)));
            }
            if c + 1 < k {
                let w = 1.0 + rng.gen_range(0.0..0.3);
                t.push(u, idx(r, c + 1), -w);
                t.push(idx(r, c + 1), u, -(w - rng.gen_range(0.0..0.2)));
            }
        }
    }
    t.to_csc()
}

/// `k x k x k` seven-point stencil — the high-fill regime (fill densities
/// in the tens, like `twotone`/`onetone1`/`apache2` in the paper).
pub fn mesh3d(k: usize, seed: u64) -> CscMat {
    let n = k * k * k;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3d3d);
    let idx = |x: usize, y: usize, z: usize| (x * k + y) * k + z;
    let mut t = TripletMat::with_capacity(n, n, 7 * n);
    for x in 0..k {
        for y in 0..k {
            for z in 0..k {
                let u = idx(x, y, z);
                t.push(u, u, 6.0 + rng.gen_range(0.0..0.5));
                if x + 1 < k {
                    let w = 1.0 + rng.gen_range(0.0..0.2);
                    t.push(u, idx(x + 1, y, z), -w);
                    t.push(idx(x + 1, y, z), u, -(w - 0.05));
                }
                if y + 1 < k {
                    let w = 1.0 + rng.gen_range(0.0..0.2);
                    t.push(u, idx(x, y + 1, z), -w);
                    t.push(idx(x, y + 1, z), u, -(w - 0.05));
                }
                if z + 1 < k {
                    let w = 1.0 + rng.gen_range(0.0..0.2);
                    t.push(u, idx(x, y, z + 1), -w);
                    t.push(idx(x, y, z + 1), u, -(w - 0.05));
                }
            }
        }
    }
    t.to_csc()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh2d_shape() {
        let a = mesh2d(10, 1);
        assert_eq!(a.nrows(), 100);
        assert!(a.nnz() > 4 * 100 && a.nnz() < 6 * 100);
        // diagonally dominant
        for j in 0..100 {
            let d = a.get(j, j).abs();
            let off: f64 = a
                .col_iter(j)
                .filter(|&(i, _)| i != j)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(d > off * 0.8, "col {j} not near-dominant");
        }
    }

    #[test]
    fn mesh3d_shape() {
        let a = mesh3d(5, 2);
        assert_eq!(a.nrows(), 125);
        // 125 diagonal + 2 per interior edge (3·k²·(k−1) edges)
        assert_eq!(a.nnz(), 125 + 2 * 3 * 25 * 4);
    }

    #[test]
    fn deterministic() {
        assert_eq!(mesh2d(8, 7), mesh2d(8, 7));
        assert_eq!(mesh3d(4, 7), mesh3d(4, 7));
        assert_ne!(mesh2d(8, 7), mesh2d(8, 8));
    }
}
