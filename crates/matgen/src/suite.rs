//! The benchmark suites: synthetic analogues of the paper's Table I
//! (circuit/powergrid matrices) and Table II (2/3-D mesh problems).
//!
//! Every entry records the paper's reported statistics for the original
//! matrix next to a generator reproducing its *class* — BTF regime, fill
//! regime, pattern irregularity — at a container-friendly size (see
//! DESIGN.md §3 for why class fidelity is the right substitution).

use crate::circuit::{circuit, CircuitParams};
use crate::mesh::{mesh2d, mesh3d};
use crate::powergrid::{powergrid, PowergridParams};
use basker_sparse::{CscMat, TripletMat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny instances for unit/integration tests (n ≈ 200–800).
    Test,
    /// Instances for the benchmark harness (n ≈ 2 000–12 000).
    Bench,
}

impl Scale {
    fn pick(self, test: usize, bench: usize) -> usize {
        match self {
            Scale::Test => test,
            Scale::Bench => bench,
        }
    }
}

/// The paper's reported statistics for the original matrix (Table I).
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Dimension.
    pub n: f64,
    /// Nonzeros of `A`.
    pub nnz: f64,
    /// KLU fill density `|L+U|/|A|`.
    pub fill_klu: f64,
    /// Percent of rows in small BTF blocks.
    pub btf_pct: f64,
    /// Number of BTF blocks.
    pub btf_blocks: f64,
}

/// One suite entry: name, paper statistics, generator.
pub struct SuiteEntry {
    /// Matrix name, suffixed `_like` to signal it is a synthetic analogue.
    pub name: &'static str,
    /// The paper's reported statistics for the original.
    pub paper: PaperRow,
    /// `true` for the high-fill group below Table I's double line.
    pub high_fill: bool,
    /// `true` when the entry is one of the six matrices of Figs. 5/6.
    pub fig56: bool,
    gen: Box<dyn Fn(Scale) -> CscMat + Send + Sync>,
}

impl SuiteEntry {
    /// Generates the analogue at the given scale.
    pub fn generate(&self, scale: Scale) -> CscMat {
        (self.gen)(scale)
    }
}

/// Block-diagonal composition with directed (upper-block) couplings:
/// preserves each part's BTF structure while weakly connecting them.
pub fn compose(parts: &[CscMat], couplings: usize, seed: u64) -> CscMat {
    let n: usize = parts.iter().map(|p| p.nrows()).sum();
    let mut t = TripletMat::with_capacity(
        n,
        n,
        parts.iter().map(|p| p.nnz()).sum::<usize>() + couplings,
    );
    let mut offset = 0usize;
    let mut offsets = Vec::new();
    for p in parts {
        offsets.push(offset);
        for (i, j, v) in p.iter() {
            t.push(offset + i, offset + j, v);
        }
        offset += p.nrows();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0c0);
    for _ in 0..couplings {
        let pi = rng.gen_range(0..parts.len());
        let pj = rng.gen_range(0..parts.len());
        if pi >= pj {
            continue;
        }
        // strictly upper-block entries: row in part pi, col in part pj
        let i = offsets[pi] + rng.gen_range(0..parts[pi].nrows());
        let j = offsets[pj] + rng.gen_range(0..parts[pj].nrows());
        t.push(i, j, rng.gen_range(0.1..1.0));
    }
    t.to_csc()
}

fn cp(
    nsub: usize,
    sub_size: usize,
    feedthrough: f64,
    mesh_like: bool,
    devices: f64,
    seed: u64,
) -> CircuitParams {
    CircuitParams {
        nsub,
        sub_size,
        devices_per_node: devices,
        feedthrough,
        couplings_per_sub: 3.0,
        vccs_fraction: 0.15,
        mesh_like,
        seed,
    }
}

/// The Table I analogue suite, ordered by increasing paper fill density.
pub fn table1_suite() -> Vec<SuiteEntry> {
    let mut v: Vec<SuiteEntry> = Vec::new();
    let mut push = |name: &'static str,
                    paper: PaperRow,
                    high_fill: bool,
                    fig56: bool,
                    gen: Box<dyn Fn(Scale) -> CscMat + Send + Sync>| {
        v.push(SuiteEntry {
            name,
            paper,
            high_fill,
            fig56,
            gen,
        });
    };

    // --- low fill-in group (fill density < 4) ---
    push(
        "RS_b39c30_like",
        PaperRow {
            n: 6.0e4,
            nnz: 1.1e6,
            fill_klu: 0.6,
            btf_pct: 100.0,
            btf_blocks: 3e3,
        },
        false,
        false,
        Box::new(|s| {
            powergrid(&PowergridParams {
                nfeeders: s.pick(20, 300),
                feeder_len: s.pick(16, 48),
                loop_prob: 0.25,
                seed: 101,
            })
        }),
    );
    push(
        "RS_b678c2_like",
        PaperRow {
            n: 3.6e4,
            nnz: 8.8e6,
            fill_klu: 0.7,
            btf_pct: 100.0,
            btf_blocks: 271.0,
        },
        false,
        false,
        Box::new(|s| {
            powergrid(&PowergridParams {
                nfeeders: s.pick(6, 60),
                feeder_len: s.pick(60, 200),
                loop_prob: 0.45,
                seed: 102,
            })
        }),
    );
    push(
        "Power0_like",
        PaperRow {
            n: 9.8e4,
            nnz: 4.8e5,
            fill_klu: 1.3,
            btf_pct: 100.0,
            btf_blocks: 7.7e3,
        },
        false,
        true,
        Box::new(|s| {
            powergrid(&PowergridParams {
                nfeeders: s.pick(24, 400),
                feeder_len: s.pick(20, 60),
                loop_prob: 0.1,
                seed: 103,
            })
        }),
    );
    push(
        "circuit5M_like",
        PaperRow {
            n: 5.6e6,
            nnz: 6.0e7,
            fill_klu: 1.3,
            btf_pct: 0.0,
            btf_blocks: 1.0,
        },
        false,
        false,
        Box::new(|s| circuit(&cp(s.pick(4, 24), s.pick(100, 360), 1.0, true, 2.2, 104))),
    );
    push(
        "memplus_like",
        PaperRow {
            n: 1.2e4,
            nnz: 9.9e4,
            fill_klu: 1.4,
            btf_pct: 0.1,
            btf_blocks: 23.0,
        },
        false,
        false,
        Box::new(|s| circuit(&cp(s.pick(3, 12), s.pick(130, 400), 0.95, true, 2.0, 105))),
    );
    push(
        "rajat21_like",
        PaperRow {
            n: 4.1e5,
            nnz: 1.9e6,
            fill_klu: 1.5,
            btf_pct: 2.0,
            btf_blocks: 5.9e3,
        },
        false,
        true,
        Box::new(|s| {
            let big = circuit(&cp(s.pick(3, 16), s.pick(120, 400), 1.0, true, 2.2, 106));
            let tail = powergrid(&PowergridParams {
                nfeeders: s.pick(4, 16),
                feeder_len: s.pick(8, 16),
                loop_prob: 0.1,
                seed: 106,
            });
            compose(&[big, tail], 30, 106)
        }),
    );
    push(
        "trans5_like",
        PaperRow {
            n: 1.2e5,
            nnz: 7.5e5,
            fill_klu: 1.6,
            btf_pct: 0.0,
            btf_blocks: 1.0,
        },
        false,
        false,
        Box::new(|s| circuit(&cp(s.pick(4, 20), s.pick(90, 320), 1.0, true, 2.4, 107))),
    );
    push(
        "circuit_4_like",
        PaperRow {
            n: 8.0e4,
            nnz: 3.1e5,
            fill_klu: 1.6,
            btf_pct: 34.8,
            btf_blocks: 2.8e4,
        },
        false,
        false,
        Box::new(|s| {
            let big = circuit(&cp(s.pick(3, 12), s.pick(90, 340), 1.0, true, 2.2, 108));
            let tail = powergrid(&PowergridParams {
                nfeeders: s.pick(10, 60),
                feeder_len: s.pick(15, 36),
                loop_prob: 0.1,
                seed: 108,
            });
            compose(&[big, tail], 40, 108)
        }),
    );
    push(
        "Xyce0_like",
        PaperRow {
            n: 6.8e5,
            nnz: 3.9e6,
            fill_klu: 1.8,
            btf_pct: 85.0,
            btf_blocks: 5.8e5,
        },
        false,
        false,
        Box::new(|s| {
            let big = circuit(&cp(2, s.pick(80, 600), 1.0, true, 2.2, 109));
            let tail = powergrid(&PowergridParams {
                nfeeders: s.pick(30, 340),
                feeder_len: s.pick(12, 24),
                loop_prob: 0.08,
                seed: 109,
            });
            compose(&[big, tail], 50, 109)
        }),
    );
    push(
        "Xyce4_like",
        PaperRow {
            n: 6.2e6,
            nnz: 7.3e7,
            fill_klu: 2.0,
            btf_pct: 12.0,
            btf_blocks: 7.5e5,
        },
        false,
        false,
        Box::new(|s| {
            let big = circuit(&cp(s.pick(3, 14), s.pick(100, 360), 1.0, true, 2.6, 122));
            let tail = powergrid(&PowergridParams {
                nfeeders: s.pick(5, 26),
                feeder_len: s.pick(10, 22),
                loop_prob: 0.1,
                seed: 122,
            });
            compose(&[big, tail], 30, 122)
        }),
    );
    push(
        "Xyce1_like",
        PaperRow {
            n: 4.3e5,
            nnz: 2.4e6,
            fill_klu: 2.4,
            btf_pct: 21.0,
            btf_blocks: 9.9e4,
        },
        false,
        false,
        Box::new(|s| {
            let big = circuit(&cp(s.pick(3, 14), s.pick(110, 380), 1.0, true, 2.8, 110));
            let tail = powergrid(&PowergridParams {
                nfeeders: s.pick(8, 40),
                feeder_len: s.pick(12, 28),
                loop_prob: 0.12,
                seed: 110,
            });
            compose(&[big, tail], 35, 110)
        }),
    );
    push(
        "asic_680ks_like",
        PaperRow {
            n: 6.8e5,
            nnz: 1.7e6,
            fill_klu: 2.6,
            btf_pct: 86.0,
            btf_blocks: 5.8e5,
        },
        false,
        true,
        Box::new(|s| {
            let big = circuit(&cp(2, s.pick(70, 600), 1.0, true, 2.6, 111));
            let tail = powergrid(&PowergridParams {
                nfeeders: s.pick(28, 320),
                feeder_len: s.pick(12, 26),
                loop_prob: 0.1,
                seed: 111,
            });
            compose(&[big, tail], 45, 111)
        }),
    );
    push(
        "bcircuit_like",
        PaperRow {
            n: 6.9e4,
            nnz: 3.8e5,
            fill_klu: 2.8,
            btf_pct: 0.0,
            btf_blocks: 1.0,
        },
        false,
        false,
        Box::new(|s| circuit(&cp(s.pick(4, 18), s.pick(100, 330), 1.0, true, 3.0, 112))),
    );
    push(
        "scircuit_like",
        PaperRow {
            n: 1.7e5,
            nnz: 9.6e5,
            fill_klu: 2.8,
            btf_pct: 0.3,
            btf_blocks: 48.0,
        },
        false,
        false,
        Box::new(|s| circuit(&cp(s.pick(4, 18), s.pick(110, 350), 0.97, true, 3.0, 113))),
    );
    push(
        "hvdc2_like",
        PaperRow {
            n: 1.9e5,
            nnz: 1.3e6,
            fill_klu: 2.8,
            btf_pct: 100.0,
            btf_blocks: 67.0,
        },
        false,
        true,
        Box::new(|s| {
            // Dozens of medium blocks, feed-forward coupled.
            let nblk = s.pick(8, 32);
            let parts: Vec<CscMat> = (0..nblk)
                .map(|i| circuit(&cp(1, s.pick(48, 280), 1.0, true, 2.5, 114 + i as u64)))
                .collect();
            compose(&parts, 3 * nblk, 114)
        }),
    );
    push(
        "Freescale1_like",
        PaperRow {
            n: 3.4e6,
            nnz: 1.7e7,
            fill_klu: 4.1,
            btf_pct: 0.0,
            btf_blocks: 1.0,
        },
        false,
        true,
        Box::new(|s| circuit(&cp(s.pick(4, 16), s.pick(110, 400), 1.0, true, 3.6, 115))),
    );

    // --- high fill-in group (fill density > 4) ---
    push(
        "hcircuit_like",
        PaperRow {
            n: 1.1e5,
            nnz: 5.1e5,
            fill_klu: 6.9,
            btf_pct: 13.0,
            btf_blocks: 1.4e3,
        },
        true,
        false,
        Box::new(|s| {
            let big = circuit(&cp(s.pick(2, 6), s.pick(130, 420), 1.0, false, 2.0, 116));
            let tail = powergrid(&PowergridParams {
                nfeeders: s.pick(4, 20),
                feeder_len: s.pick(10, 20),
                loop_prob: 0.1,
                seed: 116,
            });
            compose(&[big, tail], 25, 116)
        }),
    );
    push(
        "Xyce3_like",
        PaperRow {
            n: 1.9e6,
            nnz: 9.5e6,
            fill_klu: 9.2,
            btf_pct: 20.0,
            btf_blocks: 4.0e5,
        },
        true,
        true,
        Box::new(|s| {
            let big = circuit(&cp(s.pick(2, 5), s.pick(160, 520), 1.0, false, 2.4, 117));
            let tail = powergrid(&PowergridParams {
                nfeeders: s.pick(6, 30),
                feeder_len: s.pick(10, 22),
                loop_prob: 0.1,
                seed: 117,
            });
            compose(&[big, tail], 25, 117)
        }),
    );
    push(
        "memchip_like",
        PaperRow {
            n: 2.7e6,
            nnz: 1.3e7,
            fill_klu: 9.9,
            btf_pct: 0.0,
            btf_blocks: 1.0,
        },
        true,
        false,
        Box::new(|s| circuit(&cp(s.pick(2, 5), s.pick(170, 560), 1.0, false, 2.6, 118))),
    );
    push(
        "G2_Circuit_like",
        PaperRow {
            n: 1.5e5,
            nnz: 7.3e5,
            fill_klu: 27.7,
            btf_pct: 0.0,
            btf_blocks: 1.0,
        },
        true,
        false,
        Box::new(|s| mesh2d(s.pick(22, 90), 119)),
    );
    push(
        "twotone_like",
        PaperRow {
            n: 1.2e5,
            nnz: 1.2e6,
            fill_klu: 39.9,
            btf_pct: 0.0,
            btf_blocks: 5.0,
        },
        true,
        false,
        Box::new(|s| mesh3d(s.pick(8, 19), 120)),
    );
    push(
        "onetone1_like",
        PaperRow {
            n: 3.6e4,
            nnz: 3.4e5,
            fill_klu: 40.8,
            btf_pct: 1.1,
            btf_blocks: 203.0,
        },
        true,
        false,
        Box::new(|s| {
            let big = mesh3d(s.pick(7, 17), 121);
            let tail = powergrid(&PowergridParams {
                nfeeders: s.pick(3, 10),
                feeder_len: s.pick(8, 14),
                loop_prob: 0.1,
                seed: 121,
            });
            compose(&[big, tail], 12, 121)
        }),
    );
    v
}

/// The Table II analogue suite: 2/3-D mesh problems, PMKL's ideal inputs.
pub fn mesh_suite() -> Vec<SuiteEntry> {
    let mut v: Vec<SuiteEntry> = Vec::new();
    let mut push = |name: &'static str,
                    n: f64,
                    nnz: f64,
                    lu: f64,
                    gen: Box<dyn Fn(Scale) -> CscMat + Send + Sync>| {
        v.push(SuiteEntry {
            name,
            paper: PaperRow {
                n,
                nnz,
                fill_klu: lu / nnz,
                btf_pct: 0.0,
                btf_blocks: 1.0,
            },
            high_fill: true,
            fig56: false,
            gen,
        });
    };
    push(
        "pwtk_like",
        2.2e5,
        1.2e7,
        9.7e7,
        Box::new(|s| mesh2d(s.pick(24, 95), 201)),
    );
    push(
        "ecology_like",
        1.0e6,
        5.0e6,
        7.1e7,
        Box::new(|s| mesh2d(s.pick(26, 105), 202)),
    );
    push(
        "apache2_like",
        7.2e5,
        4.8e6,
        2.8e8,
        Box::new(|s| mesh3d(s.pick(9, 20), 203)),
    );
    push(
        "bmwcra1_like",
        1.5e5,
        1.1e7,
        1.4e8,
        Box::new(|s| mesh3d(s.pick(8, 18), 204)),
    );
    push(
        "parabolic_fem_like",
        5.3e5,
        3.7e6,
        5.2e7,
        Box::new(|s| mesh2d(s.pick(23, 88), 205)),
    );
    push(
        "helm2d03_like",
        3.9e5,
        2.7e6,
        3.7e7,
        Box::new(|s| mesh2d(s.pick(21, 80), 206)),
    );
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_ordering::matching::max_transversal;

    #[test]
    fn all_table1_entries_generate_and_are_nonsingular() {
        for e in table1_suite() {
            let a = e.generate(Scale::Test);
            assert!(a.nrows() >= 200, "{} too small: {}", e.name, a.nrows());
            assert!(a.nrows() <= 2500, "{} too big: {}", e.name, a.nrows());
            assert!(
                max_transversal(&a).is_perfect(),
                "{} structurally singular",
                e.name
            );
        }
    }

    #[test]
    fn suite_has_expected_structure() {
        let s = table1_suite();
        assert_eq!(s.len(), 22);
        assert_eq!(s.iter().filter(|e| e.fig56).count(), 6);
        assert!(s.iter().filter(|e| e.high_fill).count() >= 6);
        // paper fill densities ascend (the table's sort order)
        for w in s.windows(2) {
            assert!(w[0].paper.fill_klu <= w[1].paper.fill_klu);
        }
    }

    #[test]
    fn mesh_suite_generates() {
        for e in mesh_suite() {
            let a = e.generate(Scale::Test);
            assert!(max_transversal(&a).is_perfect(), "{}", e.name);
        }
    }

    #[test]
    fn compose_preserves_upper_block_structure() {
        let a = CscMat::identity(3);
        let b = CscMat::identity(2);
        let c = compose(&[a, b], 10, 1);
        assert_eq!(c.nrows(), 5);
        // no entries below the block diagonal
        for (i, j, _) in c.iter() {
            assert!(!(i >= 3 && j < 3), "lower-block entry ({i},{j})");
        }
    }
}
