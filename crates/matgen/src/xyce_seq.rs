//! Xyce-style transient matrix sequences (paper §V-F).
//!
//! During transient analysis a circuit simulator produces a long sequence
//! of coefficient matrices with **identical structure and significantly
//! different values** — device conductances drift with the operating
//! point, and switching events change entry magnitudes by orders of
//! magnitude, so "each factorization may require a different permutation
//! due to pivoting". Solvers must reuse the symbolic factorization across
//! the whole sequence.
//!
//! [`XyceSequence`] freezes a circuit pattern and produces the matrix at
//! any step: values follow smooth per-device trajectories, and a
//! configurable fraction of devices "switch" (scale by ~10³) on a duty
//! cycle, perturbing pivot choices exactly the way the paper describes.

use crate::circuit::{circuit, CircuitParams};
use basker_sparse::CscMat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the sequence generator.
#[derive(Debug, Clone)]
pub struct XyceSequenceParams {
    /// The underlying circuit.
    pub circuit: CircuitParams,
    /// Number of steps the sequence nominally covers.
    pub nsteps: usize,
    /// Fraction of entries that switch magnitude on a duty cycle.
    pub switching_fraction: f64,
    /// RNG seed for the trajectories.
    pub seed: u64,
}

impl Default for XyceSequenceParams {
    fn default() -> Self {
        XyceSequenceParams {
            circuit: CircuitParams::default(),
            nsteps: 1000,
            switching_fraction: 0.05,
            seed: 99,
        }
    }
}

/// A frozen-pattern matrix sequence.
pub struct XyceSequence {
    base: CscMat,
    /// per-entry trajectory parameters: (amplitude, frequency, phase)
    traj: Vec<(f64, f64, f64)>,
    /// per-entry switching: Some((period, duty_phase, factor))
    switching: Vec<Option<(usize, usize, f64)>>,
    nsteps: usize,
}

impl XyceSequence {
    /// Builds the sequence.
    pub fn new(p: &XyceSequenceParams) -> XyceSequence {
        let base = circuit(&p.circuit);
        let mut rng = StdRng::seed_from_u64(p.seed);
        let nnz = base.nnz();
        let traj: Vec<(f64, f64, f64)> = (0..nnz)
            .map(|_| {
                (
                    rng.gen_range(0.05..0.4),
                    rng.gen_range(0.5..4.0),
                    rng.gen_range(0.0..std::f64::consts::TAU),
                )
            })
            .collect();
        let switching: Vec<Option<(usize, usize, f64)>> = (0..nnz)
            .map(|_| {
                if rng.gen_bool(p.switching_fraction) {
                    Some((
                        rng.gen_range(20..200),
                        rng.gen_range(0..200),
                        10f64.powf(rng.gen_range(1.5..3.0)),
                    ))
                } else {
                    None
                }
            })
            .collect();
        XyceSequence {
            base,
            traj,
            switching,
            nsteps: p.nsteps,
        }
    }

    /// The fixed pattern (step-0 values).
    pub fn pattern(&self) -> &CscMat {
        &self.base
    }

    /// Number of steps the sequence covers.
    pub fn len(&self) -> usize {
        self.nsteps
    }

    /// True when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.nsteps == 0
    }

    /// The matrix at `step`: same pattern as [`pattern`](Self::pattern),
    /// new values.
    pub fn matrix_at(&self, step: usize) -> CscMat {
        let t = step as f64 / self.nsteps.max(1) as f64 * std::f64::consts::TAU;
        let vals: Vec<f64> = self
            .base
            .values()
            .iter()
            .enumerate()
            .map(|(k, &v)| {
                let (amp, freq, phase) = self.traj[k];
                let mut x = v * (1.0 + amp * (freq * t + phase).sin());
                if let Some((period, duty, factor)) = self.switching[k] {
                    if (step + duty) % period < period / 2 {
                        x *= factor;
                    }
                }
                x
            })
            .collect();
        // SAFETY: pattern arrays are copied from the valid `base` matrix;
        // `vals` maps its values 1:1.
        unsafe {
            CscMat::from_parts_unchecked(
                self.base.nrows(),
                self.base.ncols(),
                self.base.colptr().to_vec(),
                self.base.rowind().to_vec(),
                vals,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> XyceSequenceParams {
        XyceSequenceParams {
            circuit: CircuitParams {
                nsub: 4,
                sub_size: 16,
                ..CircuitParams::default()
            },
            nsteps: 50,
            ..XyceSequenceParams::default()
        }
    }

    #[test]
    fn pattern_is_frozen_values_vary() {
        let seq = XyceSequence::new(&small_params());
        let m0 = seq.matrix_at(0);
        let m25 = seq.matrix_at(25);
        assert_eq!(m0.colptr(), m25.colptr());
        assert_eq!(m0.rowind(), m25.rowind());
        assert_ne!(m0.values(), m25.values());
    }

    #[test]
    fn switching_changes_magnitudes_substantially() {
        let seq = XyceSequence::new(&small_params());
        let m0 = seq.matrix_at(0);
        let mut max_ratio = 1.0f64;
        for step in [10usize, 20, 30, 40] {
            let m = seq.matrix_at(step);
            for (a, b) in m0.values().iter().zip(m.values().iter()) {
                if *a != 0.0 && *b != 0.0 {
                    max_ratio = max_ratio.max((b / a).abs());
                }
            }
        }
        assert!(max_ratio > 10.0, "no switching observed: {max_ratio}");
    }

    #[test]
    fn deterministic() {
        let p = small_params();
        let s1 = XyceSequence::new(&p);
        let s2 = XyceSequence::new(&p);
        assert_eq!(s1.matrix_at(17), s2.matrix_at(17));
    }
}
