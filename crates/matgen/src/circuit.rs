//! Modified-nodal-analysis style circuit matrix generator.
//!
//! Real SPICE matrices are unions of device *stamps* over a netlist. This
//! generator reproduces the structural features Table I varies:
//!
//! * **subcircuit structure** — the netlist is a collection of subcircuit
//!   instances; couplings between them are either *directed* (signal
//!   flow: output feeds input, keeping subcircuits in separate BTF
//!   blocks) or *bidirectional* (loading: merges SCCs into one large
//!   irreducible block). `feedthrough` interpolates between the two.
//! * **internal topology** — `mesh_like` subcircuits sit on a local grid
//!   (low fill under AMD, the classic circuit regime); otherwise internal
//!   nets connect randomly (higher fill, the `G2_Circuit`/`twotone`
//!   regime).
//! * **unsymmetry** — a fraction of devices are controlled sources
//!   (VCCS), stamping one-directional conductances.

use basker_sparse::{CscMat, TripletMat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the circuit generator.
#[derive(Debug, Clone)]
pub struct CircuitParams {
    /// Number of subcircuit instances.
    pub nsub: usize,
    /// Nodes per subcircuit.
    pub sub_size: usize,
    /// Average internal devices (two-terminal stamps) per node.
    pub devices_per_node: f64,
    /// Fraction of inter-subcircuit couplings that are bidirectional
    /// (resistive loading) rather than directed (signal flow). 0.0 keeps
    /// every subcircuit its own BTF block; 1.0 merges everything into one
    /// irreducible block.
    pub feedthrough: f64,
    /// Number of inter-subcircuit couplings per subcircuit.
    pub couplings_per_sub: f64,
    /// Fraction of devices that are unsymmetric controlled sources.
    pub vccs_fraction: f64,
    /// Lay subcircuit nodes on a local 2-D grid (low fill) instead of a
    /// random internal graph (high fill).
    pub mesh_like: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CircuitParams {
    fn default() -> Self {
        CircuitParams {
            nsub: 16,
            sub_size: 64,
            devices_per_node: 2.5,
            feedthrough: 0.5,
            couplings_per_sub: 2.0,
            vccs_fraction: 0.15,
            mesh_like: true,
            seed: 42,
        }
    }
}

/// Generates an MNA-style circuit matrix. Structurally nonsingular by
/// construction: every node has a ground-leak stamp on the diagonal.
pub fn circuit(p: &CircuitParams) -> CscMat {
    let n = p.nsub * p.sub_size;
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut t = TripletMat::with_capacity(n, n, (n as f64 * p.devices_per_node * 4.0) as usize);

    // Ground leak keeps the diagonal present and the matrix dominant-ish.
    for i in 0..n {
        t.push(i, i, 1.0 + rng.gen_range(0.0..0.5));
    }

    let stamp_resistor = |t: &mut TripletMat, a: usize, b: usize, g: f64| {
        t.push(a, a, g);
        t.push(b, b, g);
        t.push(a, b, -g);
        t.push(b, a, -g);
    };
    // VCCS: current into (out) controlled by voltage at (inp): stamps only
    // the one-directional entries — the unsymmetric part of SPICE matrices.
    let stamp_vccs = |t: &mut TripletMat, out: usize, inp: usize, gm: f64| {
        t.push(out, inp, gm);
        t.push(out, out, gm.abs() * 0.1);
    };

    for s in 0..p.nsub {
        let base = s * p.sub_size;
        let m = p.sub_size;
        // internal devices
        let ndev = (m as f64 * p.devices_per_node) as usize;
        if p.mesh_like {
            // local grid topology: nodes on a ceil(sqrt(m)) grid
            let k = (m as f64).sqrt().ceil() as usize;
            for i in 0..m {
                let c = i % k;
                let right = if c + 1 < k && i + 1 < m {
                    Some(i + 1)
                } else {
                    None
                };
                let down = if i + k < m { Some(i + k) } else { None };
                for nb in [right, down].into_iter().flatten() {
                    let g = 10f64.powf(rng.gen_range(-1.0..1.0));
                    if rng.gen_bool(p.vccs_fraction) {
                        stamp_vccs(&mut t, base + i, base + nb, g);
                    } else {
                        stamp_resistor(&mut t, base + i, base + nb, g);
                    }
                }
            }
            // a few medium-range devices roughen the pattern; kept local
            // (within a few grid rows) the way placed netlists are
            for _ in 0..m / 24 {
                let a = rng.gen_range(0..m);
                let hop = rng.gen_range(2..=(3 * k).min(m - 1));
                let b = (a + hop) % m;
                if a != b {
                    stamp_resistor(
                        &mut t,
                        base + a,
                        base + b,
                        10f64.powf(rng.gen_range(-1.0..0.5)),
                    );
                }
            }
        } else {
            // random internal graph: higher fill under factorization
            for _ in 0..ndev {
                let a = base + rng.gen_range(0..m);
                let b = base + rng.gen_range(0..m);
                if a == b {
                    continue;
                }
                let g = 10f64.powf(rng.gen_range(-1.0..1.0));
                if rng.gen_bool(p.vccs_fraction) {
                    stamp_vccs(&mut t, a, b, g);
                } else {
                    stamp_resistor(&mut t, a, b, g);
                }
            }
        }
    }

    // inter-subcircuit couplings: mostly between neighbouring instances
    // (chip placement gives circuit graphs strong locality)
    let ncouple = (p.nsub as f64 * p.couplings_per_sub) as usize;
    for _ in 0..ncouple {
        let s1 = rng.gen_range(0..p.nsub);
        let hop = 1 + rng.gen_range(0..2usize);
        let s2 = if rng.gen_bool(0.9) {
            (s1 + hop) % p.nsub
        } else {
            rng.gen_range(0..p.nsub)
        };
        if s1 == s2 {
            continue;
        }
        let a = s1 * p.sub_size + rng.gen_range(0..p.sub_size);
        let b = s2 * p.sub_size + rng.gen_range(0..p.sub_size);
        let g = 10f64.powf(rng.gen_range(-1.0..0.0));
        if rng.gen_bool(p.feedthrough) {
            stamp_resistor(&mut t, a, b, g);
        } else {
            // directed signal flow: later subcircuit listens to earlier
            let (from, to) = if s1 < s2 { (a, b) } else { (b, a) };
            stamp_vccs(&mut t, to, from, g);
        }
    }

    t.to_csc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_ordering::btf::btf_form;
    use basker_ordering::matching::max_transversal;

    #[test]
    fn structurally_nonsingular() {
        let a = circuit(&CircuitParams::default());
        assert!(max_transversal(&a).is_perfect());
    }

    #[test]
    fn deterministic() {
        let p = CircuitParams::default();
        assert_eq!(circuit(&p), circuit(&p));
        let p2 = CircuitParams { seed: 43, ..p };
        assert_ne!(circuit(&p2), circuit(&CircuitParams::default()));
    }

    #[test]
    fn feedthrough_controls_btf_blocks() {
        let flow = circuit(&CircuitParams {
            feedthrough: 0.0,
            nsub: 8,
            sub_size: 24,
            seed: 7,
            ..CircuitParams::default()
        });
        let loaded = circuit(&CircuitParams {
            feedthrough: 1.0,
            nsub: 8,
            sub_size: 24,
            couplings_per_sub: 6.0,
            seed: 7,
            ..CircuitParams::default()
        });
        let bf = btf_form(&flow).unwrap();
        let bl = btf_form(&loaded).unwrap();
        assert!(
            bf.nblocks() > bl.nblocks(),
            "directed {} vs loaded {}",
            bf.nblocks(),
            bl.nblocks()
        );
    }

    #[test]
    fn sizes_scale() {
        let a = circuit(&CircuitParams {
            nsub: 4,
            sub_size: 10,
            ..CircuitParams::default()
        });
        assert_eq!(a.nrows(), 40);
        assert!(a.nnz() > 40);
    }
}
