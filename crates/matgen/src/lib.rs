//! Deterministic workload generators for the Basker reproduction.
//!
//! The paper evaluates on University of Florida collection matrices and
//! proprietary Xyce circuit matrices (Table I), which cannot be shipped
//! here. This crate generates synthetic analogues *by structural class*:
//! what drives the paper's comparisons is (a) the fraction of the matrix
//! in small BTF blocks, (b) the fill-in density under factorization, and
//! (c) the irregularity of the nonzero pattern — all of which these
//! generators control directly (see DESIGN.md §3).
//!
//! * [`circuit()`] — modified-nodal-analysis style circuit matrices built
//!   from weakly coupled subcircuits (controls BTF block structure and
//!   fill).
//! * [`powergrid()`] — feeder-tree power grids with local loops: 100 %
//!   BTF, thousands of tiny blocks, fill density < 1 (the
//!   `RS_*`/`Power0` class).
//! * [`mesh`] — 2-D/3-D finite-difference meshes: the high-fill regime
//!   where supernodal solvers shine (Table II; also the `G2_Circuit` /
//!   `twotone` fill class).
//! * [`xyce_seq`] — a 1000-matrix transient sequence with a fixed pattern
//!   and drifting values (paper §V-F).
//! * [`suite`] — the Table I / Table II analogue suites.

#![warn(missing_docs)]

pub mod circuit;
pub mod mesh;
pub mod powergrid;
pub mod suite;
pub mod xyce_seq;

pub use circuit::{circuit, CircuitParams};
pub use mesh::{mesh2d, mesh3d};
pub use powergrid::{powergrid, PowergridParams};
pub use suite::{mesh_suite, table1_suite, Scale, SuiteEntry};
pub use xyce_seq::{XyceSequence, XyceSequenceParams};
