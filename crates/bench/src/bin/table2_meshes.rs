//! **Table II reproduction** — the 2/3-D mesh problems used to measure
//! the supernodal comparator at its best (paper §V-E).
//!
//! Usage: `table2_meshes [test|bench] [--json PATH]` (default `bench`).
//! `--json` additionally writes the deterministic memory statistics as a
//! JSON array (used for the checked-in `BENCH_table2.json` baseline).

use basker_bench::{analyze, fmt_eng, print_markdown_table, BenchArgs, SolverKind};
use basker_matgen::mesh_suite;

fn main() {
    let args = BenchArgs::parse("table2_meshes", false);
    let (scale, json_path) = (args.scale, args.json);
    println!("# Table II analogue: 2/3D mesh problems (PMKL's ideal inputs)\n");
    let mut rows = Vec::new();
    let mut jrows: Vec<(String, usize, usize, f64)> = Vec::new();
    for e in mesh_suite() {
        let a = e.generate(scale);
        let lu = analyze(&a, SolverKind::Pmkl { threads: 2 })
            .and_then(|h| h.factor(&a).map_err(|e| e.to_string()))
            .map(|n| n.stats().lu_nnz as f64)
            .unwrap_or(f64::NAN);
        jrows.push((e.name.to_string(), a.nrows(), a.nnz(), lu));
        rows.push(vec![
            e.name.to_string(),
            a.nrows().to_string(),
            fmt_eng(a.nnz() as f64),
            fmt_eng(lu),
            format!("{:.1}", lu / a.nnz() as f64),
            format!(
                "paper: n={} |A|={} |L+U|={}",
                fmt_eng(e.paper.n),
                fmt_eng(e.paper.nnz),
                fmt_eng(e.paper.fill_klu * e.paper.nnz)
            ),
        ]);
    }
    print_markdown_table(
        &[
            "matrix",
            "n",
            "|A|",
            "|L+U| (PMKL)",
            "fill",
            "paper reference",
        ],
        &rows,
    );

    if let Some(path) = json_path {
        let mut out = String::from("[\n");
        for (i, (matrix, n, nnz, lu)) in jrows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"matrix\": \"{matrix}\", \"n\": {n}, \"nnz\": {nnz}, \
                 \"pmkl_lu_nnz\": {lu:.0}}}{}\n",
                if i + 1 < jrows.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }
}
