//! **Table II reproduction** — the 2/3-D mesh problems used to measure
//! the supernodal comparator at its best (paper §V-E).
//!
//! Usage: `table2_meshes [test|bench]` (default `bench`).

use basker_bench::{analyze, fmt_eng, print_markdown_table, SolverKind};
use basker_matgen::mesh_suite;

fn main() {
    let scale = basker_bench::scale_from_args("table2_meshes");
    println!("# Table II analogue: 2/3D mesh problems (PMKL's ideal inputs)\n");
    let mut rows = Vec::new();
    for e in mesh_suite() {
        let a = e.generate(scale);
        let lu = analyze(&a, SolverKind::Pmkl { threads: 2 })
            .and_then(|h| h.factor(&a).map_err(|e| e.to_string()))
            .map(|n| n.stats().lu_nnz as f64)
            .unwrap_or(f64::NAN);
        rows.push(vec![
            e.name.to_string(),
            a.nrows().to_string(),
            fmt_eng(a.nnz() as f64),
            fmt_eng(lu),
            format!("{:.1}", lu / a.nnz() as f64),
            format!(
                "paper: n={} |A|={} |L+U|={}",
                fmt_eng(e.paper.n),
                fmt_eng(e.paper.nnz),
                fmt_eng(e.paper.fill_klu * e.paper.nnz)
            ),
        ]);
    }
    print_markdown_table(
        &[
            "matrix",
            "n",
            "|A|",
            "|L+U| (PMKL)",
            "fill",
            "paper reference",
        ],
        &rows,
    );
}
