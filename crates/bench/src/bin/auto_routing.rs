//! **Per-block routing harness** — measures the hybrid engine's
//! feedback-driven `Engine::Auto` routing against the single-strategy
//! global engines on a deliberately heterogeneous BTF structure (one
//! large irreducible mesh block plus a long tail of tiny chain blocks).
//!
//! Three questions, answered with multi-step [`SolveSession`] runs over
//! the same drifting-value sequence:
//!
//! 1. **Does the classifier mix strategies?** The executed plan
//!    (visible in `SolverStats::routing`) must route the mesh block and
//!    the tiny tail differently — a mixed plan with ≥ 2 distinct
//!    strategies.
//! 2. **Does the learner settle?** The first hybrid session of the
//!    pattern spends its leading factorizations probing candidate
//!    plans (`routing_probes > 0`), then installs the measured winner.
//! 3. **Do siblings inherit?** A second session over the same pattern
//!    must pull the settled plan from the process-wide routing cache
//!    (`routing_from_cache`, zero probes) and execute the identical
//!    per-block plan.
//!
//! Every step is solved with iterative refinement and the residual
//! recorded, so the JSON rows carry a hard `residual_ok` invariant at
//! any scale.
//!
//! Usage: `auto_routing [nsteps] [test|bench] [--json PATH]`
//! (defaults: 6, bench). `test` runs a smaller matrix and additionally
//! hard-asserts the three properties above; `--json` writes the
//! measured rows (the checked-in `BENCH_auto.json` baseline is produced
//! this way).

use basker_api::{
    routing, BlockStrategy, Engine, SessionConfig, SessionStats, SolveSession, SolverConfig,
};
use basker_sparse::metrics::pattern_hash;
use basker_sparse::{CscMat, TripletMat};
use std::time::Instant;

/// One large 5-point `k x k` mesh block (irreducible, ND-friendly)
/// followed by `tiny` decoupled-downward chain rows (each its own BTF
/// block): the heterogeneous shape the per-block router exists for.
fn heterogeneous(k: usize, tiny: usize) -> CscMat {
    let n0 = k * k;
    let idx = |r: usize, c: usize| r * k + c;
    let mut t = TripletMat::new(n0 + tiny, n0 + tiny);
    for r in 0..k {
        for c in 0..k {
            let u = idx(r, c);
            t.push(u, u, 8.0 + (u % 3) as f64);
            if r + 1 < k {
                t.push(u, idx(r + 1, c), -1.0);
                t.push(idx(r + 1, c), u, -2.0);
            }
            if c + 1 < k {
                t.push(u, idx(r, c + 1), -1.5);
                t.push(idx(r, c + 1), u, -0.5);
            }
        }
    }
    for q in n0..n0 + tiny {
        t.push(q, q, 5.0 + (q % 4) as f64);
        if q + 1 < n0 + tiny {
            t.push(q, q + 1, -0.25);
        }
    }
    t.to_csc()
}

/// Same pattern, values scaled by `f` — one step of the drifting-value
/// sequence.
fn scaled(a: &CscMat, f: f64) -> CscMat {
    // SAFETY: pattern arrays are copied from the valid matrix `a`;
    // values map 1:1.
    unsafe {
        CscMat::from_parts_unchecked(
            a.nrows(),
            a.ncols(),
            a.colptr().to_vec(),
            a.rowind().to_vec(),
            a.values().iter().map(|v| v * f).collect(),
        )
    }
}

struct Row {
    solver: &'static str,
    seconds: f64,
    stats: SessionStats,
    worst_residual: f64,
    residual_ok: bool,
    gp_blocks: usize,
    sn_blocks: usize,
    nd_blocks: usize,
    distinct: usize,
}

/// Drives one engine config through `nsteps` drifting-value steps,
/// refining and residual-checking every solve.
fn run(solver: &'static str, cfg: SolverConfig, a: &CscMat, nsteps: usize) -> Row {
    let scfg = SessionConfig::new().solver(cfg).target_residual(1e-9);
    let mut s = SolveSession::new(a, &scfg).expect("analyze");
    let mut worst_residual = 0.0f64;
    let mut residual_ok = true;
    let t0 = Instant::now();
    for k in 0..nsteps {
        let m = scaled(a, 1.0 + 0.01 * k as f64);
        s.step(&m).expect("step");
        let mut x = vec![1.0; a.nrows()];
        let q = s.solve_refined(&mut x).expect("solve");
        worst_residual = worst_residual.max(q.residual);
        residual_ok &= q.converged;
    }
    let seconds = t0.elapsed().as_secs_f64();
    let stats = s.stats().clone();
    let (mut gp_blocks, mut sn_blocks, mut nd_blocks) = (0usize, 0usize, 0usize);
    for r in &stats.last_factor.routing {
        match r.strategy {
            BlockStrategy::Gp => gp_blocks += 1,
            BlockStrategy::Supernodal => sn_blocks += 1,
            BlockStrategy::Nd => nd_blocks += 1,
        }
    }
    let distinct = [gp_blocks, sn_blocks, nd_blocks]
        .iter()
        .filter(|&&c| c > 0)
        .count();
    Row {
        solver,
        seconds,
        stats,
        worst_residual,
        residual_ok,
        gp_blocks,
        sn_blocks,
        nd_blocks,
        distinct,
    }
}

fn main() {
    let mut nsteps: usize = 6;
    let mut scale_test = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "test" => scale_test = true,
            "bench" => scale_test = false,
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("usage: auto_routing [nsteps] [test|bench] [--json PATH]");
                    std::process::exit(2);
                }))
            }
            s => match s.parse() {
                Ok(n) => nsteps = n,
                Err(_) => {
                    eprintln!("usage: auto_routing [nsteps] [test|bench] [--json PATH]");
                    std::process::exit(2);
                }
            },
        }
    }

    let (k, tiny) = if scale_test { (12, 40) } else { (18, 96) };
    let a = heterogeneous(k, tiny);
    println!(
        "# per-block routing: {nsteps} steps, n = {} ({k}x{k} mesh block + {tiny} tiny blocks), \
         |A| = {}\n",
        a.nrows(),
        a.nnz()
    );

    // The harness may share a process with nothing, but start from a
    // clean slate anyway so `hybrid_first` always measures and
    // `hybrid_sibling` always inherits.
    routing::forget(pattern_hash(&a));

    let hybrid = || SolverConfig::new().engine(Engine::Hybrid).threads(2);
    let rows = vec![
        run("klu", SolverConfig::new().engine(Engine::Klu), &a, nsteps),
        run(
            "basker",
            SolverConfig::new().engine(Engine::Basker).threads(2),
            &a,
            nsteps,
        ),
        run(
            "snlu",
            SolverConfig::new().engine(Engine::Snlu).threads(2),
            &a,
            nsteps,
        ),
        run("hybrid_first", hybrid(), &a, nsteps),
        run("hybrid_sibling", hybrid(), &a, nsteps),
    ];

    println!(
        "| session | seconds | factors | refactors | probes | from cache | gp/sn/nd blocks | \
         worst residual |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} | {:.4} | {} | {} | {} | {} | {}/{}/{} | {:.2e} |",
            r.solver,
            r.seconds,
            r.stats.factors,
            r.stats.refactors,
            r.stats.routing_probes,
            r.stats.routing_from_cache,
            r.gp_blocks,
            r.sn_blocks,
            r.nd_blocks,
            r.worst_residual,
        );
    }

    let first = rows.iter().find(|r| r.solver == "hybrid_first").unwrap();
    let sibling = rows.iter().find(|r| r.solver == "hybrid_sibling").unwrap();
    println!(
        "\nhybrid settled a {}-strategy plan after {} probe factorization(s); \
         the sibling inherited it from the routing cache: {}",
        first.distinct, first.stats.routing_probes, sibling.stats.routing_from_cache
    );

    assert!(
        rows.iter().all(|r| r.residual_ok),
        "a refined solve missed the 1e-9 target"
    );
    if scale_test {
        assert!(
            first.stats.routing_probes > 0,
            "first hybrid session must probe contested blocks"
        );
        assert!(!first.stats.routing_from_cache);
        assert!(
            first.distinct >= 2,
            "expected a mixed per-block plan, got {}/{}/{}",
            first.gp_blocks,
            first.sn_blocks,
            first.nd_blocks
        );
        assert!(
            sibling.stats.routing_from_cache && sibling.stats.routing_probes == 0,
            "sibling must inherit the settled plan without re-measuring"
        );
        assert_eq!(
            (sibling.gp_blocks, sibling.sn_blocks, sibling.nd_blocks),
            (first.gp_blocks, first.sn_blocks, first.nd_blocks),
            "sibling must execute the measured plan"
        );
        println!("\nall routing invariants hold at test scale");
    }

    if let Some(path) = json_path {
        let mut out = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"solver\": \"{}\", \"nsteps\": {nsteps}, \"n\": {}, \
                 \"seconds\": {:.6}, \"factors\": {}, \"refactors\": {}, \
                 \"routing_probes\": {}, \"from_cache\": {}, \
                 \"btf_blocks\": {}, \"gp_blocks\": {}, \"sn_blocks\": {}, \
                 \"nd_blocks\": {}, \"distinct\": {}, \
                 \"worst_residual\": {:.3e}, \"residual_ok\": {}}}{}\n",
                r.solver,
                a.nrows(),
                r.seconds,
                r.stats.factors,
                r.stats.refactors,
                r.stats.routing_probes,
                r.stats.routing_from_cache,
                r.stats.last_factor.btf_blocks,
                r.gp_blocks,
                r.sn_blocks,
                r.nd_blocks,
                r.distinct,
                r.worst_residual,
                r.residual_ok,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }
}
