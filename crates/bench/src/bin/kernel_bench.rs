//! **Dense kernel-ladder microbenchmark** — measures the flop rate of
//! every rung this host supports (`scalar`, `unrolled`, and the SIMD
//! rung where available) on the four dense primitives the factorization
//! hot paths lean on: `axpy`, `dot`, the cache-blocked rank-k panel
//! update (`gemm_sub`), and the small unit-lower triangular solve.
//!
//! Usage: `kernel_bench [test|bench] [--json PATH]` (default `bench`).
//! `--json` writes one row per rung with GF/s per op plus a `dispatch`
//! flag marking the rung runtime detection actually selected — the
//! checked-in `BENCH_kernels.json` baseline gated by
//! `bench_check --kind kernels` (dispatched rank-k must beat scalar by
//! 2× wherever a SIMD rung dispatches).

use basker_bench::{print_markdown_table, BenchArgs};
use basker_kernels::Kernels;
use std::hint::black_box;
use std::time::Instant;

/// Measures one op: pilots a single rep, scales the rep count to reach
/// `target` seconds, and returns GF/s over the timed batch.
fn gflops(flops_per_rep: f64, target: f64, mut f: impl FnMut()) -> f64 {
    f(); // warm caches and the dispatch cell
    let t0 = Instant::now();
    f();
    let pilot = t0.elapsed().as_secs_f64().max(1e-7);
    let reps = ((target / pilot) as usize).clamp(3, 2_000_000);
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    flops_per_rep * reps as f64 / t0.elapsed().as_secs_f64() / 1e9
}

struct Row {
    kernel: &'static str,
    dispatch: bool,
    axpy: f64,
    dot: f64,
    rank_k: f64,
    trsv: f64,
}

fn bench_rung(ks: &'static Kernels, dispatch: bool, test_scale: bool) -> Row {
    let (nv, m, k, n, nt, target) = if test_scale {
        (4096usize, 128usize, 16usize, 128usize, 64usize, 0.01f64)
    } else {
        (65536, 768, 32, 768, 512, 0.15)
    };

    // Vector ops. Tiny alpha keeps repeated accumulation bounded.
    let x: Vec<f64> = (0..nv).map(|i| 0.5 + (i % 13) as f64 * 0.01).collect();
    let mut y = vec![1.0f64; nv];
    let axpy = gflops(2.0 * nv as f64, target, || ks.axpy(&mut y, 1e-6, &x));
    let mut sink = 0.0f64;
    let dot = gflops(2.0 * nv as f64, target, || sink += ks.dot(&x, &y));
    black_box(sink);

    // Cache-blocked rank-k panel update: C (m×n) −= A (m×k) · B (k×n).
    // Entries are small so linear accumulation never overflows.
    let a: Vec<f64> = (0..m * k).map(|i| 1e-4 * (1 + i % 7) as f64).collect();
    let b: Vec<f64> = (0..k * n).map(|i| 1e-4 * (1 + i % 5) as f64).collect();
    let mut c = vec![0.0f64; m * n];
    let rank_k = gflops(2.0 * (m * n * k) as f64, target, || {
        ks.gemm_sub(&mut c, m, &a, m, &b, k, m, n, k)
    });
    black_box(&c);

    // Small unit-lower triangular solve (column-major, lda = nt). The
    // rhs is re-seeded each rep so values stay bounded; the copy is
    // noise next to the O(n²) solve.
    let mut l = vec![0.0f64; nt * nt];
    for j in 0..nt {
        for i in j + 1..nt {
            l[j * nt + i] = -0.01 * (1 + (i + j) % 3) as f64;
        }
    }
    let rhs: Vec<f64> = (0..nt).map(|i| 1.0 + (i % 9) as f64 * 0.125).collect();
    let mut xt = rhs.clone();
    let trsv = gflops((nt * (nt - 1)) as f64, target, || {
        xt.copy_from_slice(&rhs);
        ks.trsv_lower_unit(&mut xt, &l, nt);
    });
    black_box(&xt);

    Row {
        kernel: ks.name(),
        dispatch,
        axpy,
        dot,
        rank_k,
        trsv,
    }
}

fn main() {
    let args = BenchArgs::parse("kernel_bench", false);
    let test_scale = matches!(args.scale, basker_matgen::Scale::Test);
    let active = basker_kernels::active().name();
    println!("# Dense kernel ladder (dispatched: {active})\n");

    let rows: Vec<Row> = basker_kernels::supported()
        .into_iter()
        .map(|ks| bench_rung(ks, ks.name() == active, test_scale))
        .collect();

    print_markdown_table(
        &[
            "kernel",
            "dispatch",
            "axpy GF/s",
            "dot GF/s",
            "rank-k GF/s",
            "trsv GF/s",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.kernel.to_string(),
                    if r.dispatch { "*" } else { "" }.to_string(),
                    format!("{:.2}", r.axpy),
                    format!("{:.2}", r.dot),
                    format!("{:.2}", r.rank_k),
                    format!("{:.2}", r.trsv),
                ]
            })
            .collect::<Vec<_>>(),
    );
    if let Some(scalar) = rows.iter().find(|r| r.kernel == "scalar") {
        if let Some(d) = rows.iter().find(|r| r.dispatch) {
            println!(
                "\ndispatched rank-k vs scalar: {:.2}x",
                d.rank_k / scalar.rank_k
            );
        }
    }

    if let Some(path) = args.json {
        let mut out = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"kernel\": \"{}\", \"dispatch\": {}, \"axpy_gflops\": {:.3}, \
                 \"dot_gflops\": {:.3}, \"rank_k_gflops\": {:.3}, \"trsv_gflops\": {:.3}}}{}\n",
                r.kernel,
                r.dispatch,
                r.axpy,
                r.dot,
                r.rank_k,
                r.trsv,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }
}
