//! Diagnostic: ND structure quality and per-phase cost on a given suite
//! entry (not part of the paper reproduction; a development tool).

use basker::structure::BlockKind;
use basker::{Basker, BaskerOptions, SyncMode};
use basker_klu::{KluOptions, KluSymbolic};
use basker_matgen::{table1_suite, Scale};
use std::time::Instant;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Freescale1_like".into());
    let entry = table1_suite()
        .into_iter()
        .find(|e| e.name == name)
        .expect("unknown entry");
    let a = entry.generate(Scale::Bench);
    println!("{}: n = {}, nnz = {}", name, a.nrows(), a.nnz());

    let t = Instant::now();
    let klu = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
    println!(
        "klu analyze: {:.3}s, blocks = {}",
        t.elapsed().as_secs_f64(),
        klu.nblocks()
    );
    let t = Instant::now();
    let knum = klu.factor(&a).unwrap();
    println!(
        "klu factor: {:.3}s, |L+U| = {}, flops = {:.2e}",
        t.elapsed().as_secs_f64(),
        knum.lu_nnz(),
        knum.flops()
    );

    for p in [1usize, 2, 4] {
        let t = Instant::now();
        let sym = Basker::analyze(
            &a,
            &BaskerOptions {
                nthreads: p,
                sync_mode: SyncMode::PointToPoint,
                ..BaskerOptions::default()
            },
        )
        .unwrap();
        let analyze_s = t.elapsed().as_secs_f64();
        for (b, kind) in sym.structure().kinds.iter().enumerate() {
            if let BlockKind::NdBig(nds) = kind {
                let sizes: Vec<usize> = nds.nd.nodes.iter().map(|n| n.len()).collect();
                println!(
                    "p={p} ND block {b}: node sizes {sizes:?} (total {})",
                    sizes.iter().sum::<usize>()
                );
            }
        }
        let t = Instant::now();
        let num = sym.factor(&a).unwrap();
        println!(
            "p={p}: analyze {:.3}s, factor {:.3}s, |L+U| = {}, flops = {:.2e}, sync = {:.1}%",
            analyze_s,
            t.elapsed().as_secs_f64(),
            num.lu_nnz(),
            num.stats.flops,
            100.0 * num.stats.sync_fraction()
        );
    }
}
