//! **Serving-layer harness** — N concurrent transient streams
//! multiplexed over one shared worker team through [`SolverService`].
//!
//! This is the workload the service exists for: many independent
//! Xyce-style sequences (different seeds, mixed engines) stepping at
//! once. The harness measures the multiplexed run against a serial
//! baseline (the same sequences through plain `SolveSession`s, one
//! after another), checks every refined solve's residual, and asserts
//! the serving layer's headline property: **zero OS threads spawned
//! after warm-up**, no matter how many streams are in flight
//! ([`basker_runtime::os_threads_spawned`]).
//!
//! On the 1-CPU CI container the service cannot beat the serial
//! baseline on wall clock (there is nothing to overlap onto); what the
//! numbers there establish is that the multiplexing overhead is small
//! and the thread/residual invariants hold. On a multicore host the
//! service additionally overlaps independent factorizations across
//! ranks.
//!
//! Usage: `multi_stream [nstreams] [nsteps] [test|bench] [--json PATH]`
//! (defaults: 8 streams, 50 steps, bench scale). `test` runs small
//! matrices and hard-asserts every residual; `--json` writes the
//! measured summary (the checked-in `BENCH_streams.json` baseline is
//! produced this way).

use basker_api::{
    Engine, ReusePolicy, ServiceConfig, SessionConfig, SolveSession, SolverService, StepTicket,
};
use basker_matgen::{CircuitParams, Scale, XyceSequence, XyceSequenceParams};
use basker_runtime::os_threads_spawned;
use std::time::Instant;

const RESIDUAL_LIMIT: f64 = 1e-7;

fn sequence(k: usize, nsteps: usize, scale: Scale) -> XyceSequence {
    let (nsub, sub_size) = match scale {
        Scale::Test => (3, 24),
        Scale::Bench => (6, 64),
    };
    XyceSequence::new(&XyceSequenceParams {
        circuit: CircuitParams {
            nsub,
            sub_size,
            feedthrough: 0.7,
            ..CircuitParams::default()
        },
        nsteps,
        switching_fraction: 0.04,
        seed: 100 + k as u64,
    })
}

/// Mixed tenancy: stream k's engine cycles through all three.
fn engine_for(k: usize) -> Engine {
    match k % 3 {
        0 => Engine::Basker,
        1 => Engine::Klu,
        _ => Engine::Snlu,
    }
}

fn session_config(k: usize) -> SessionConfig {
    SessionConfig::new()
        .engine(engine_for(k))
        .policy(ReusePolicy::adaptive())
        .target_residual(1e-9)
}

fn main() {
    let mut positional: Vec<usize> = Vec::new();
    let mut scale = Scale::Bench;
    let mut json_path: Option<String> = None;
    let usage = || -> ! {
        eprintln!("usage: multi_stream [nstreams] [nsteps] [test|bench] [--json PATH]");
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "test" => scale = Scale::Test,
            "bench" => scale = Scale::Bench,
            "--json" => json_path = Some(args.next().unwrap_or_else(|| usage())),
            s => match s.parse() {
                Ok(n) => positional.push(n),
                Err(_) => usage(),
            },
        }
    }
    if positional.len() > 2 {
        usage();
    }
    let nstreams = positional.first().copied().unwrap_or(8).max(1);
    let nsteps = positional.get(1).copied().unwrap_or(50).max(2);
    // Shared-team width: BASKER_NUM_THREADS when set (the CI matrix runs
    // this harness at widths 1 and 4), 4 otherwise.
    let team_width = basker::env_default_threads().unwrap_or(4);

    let seqs: Vec<XyceSequence> = (0..nstreams).map(|k| sequence(k, nsteps, scale)).collect();
    println!(
        "# Multi-stream service: {nstreams} concurrent transient streams, \
         {nsteps} steps each, team width {team_width}\n"
    );
    println!(
        "streams: n = {} per stream, engines cycle basker/klu/snlu, \
         adaptive reuse policy\n",
        seqs[0].pattern().nrows()
    );

    // ---- the multiplexed run ------------------------------------------
    let service = SolverService::new(&ServiceConfig::new().threads(team_width));
    let mut handles: Vec<_> = seqs
        .iter()
        .enumerate()
        .map(|(k, seq)| {
            service
                .stream(seq.pattern(), &session_config(k))
                .expect("stream analyze")
        })
        .collect();

    // Warm-up: the first step of every stream brings up the team, the
    // workspace pool and each session's factors.
    for (k, h) in handles.iter_mut().enumerate() {
        let n = h.dim();
        let r = h
            .step_refined(&seqs[k].matrix_at(0), vec![1.0; n])
            .expect("warm-up step");
        assert!(r.quality[0].residual < RESIDUAL_LIMIT, "warm-up residual");
    }
    let spawned_after_warmup = os_threads_spawned();

    let mut worst = 0.0f64;
    let t0 = Instant::now();
    for s in 1..nsteps {
        // Pipeline: submit every stream's step, then collect. Waiting on
        // the first ticket makes the caller the dispatcher, so sibling
        // jobs run as batches over the team ranks.
        let tickets: Vec<StepTicket> = handles
            .iter_mut()
            .enumerate()
            .map(|(k, h)| {
                let n = h.dim();
                h.submit_refined(&seqs[k].matrix_at(s), vec![1.0; n])
                    .expect("submit")
            })
            .collect();
        for (k, t) in tickets.into_iter().enumerate() {
            let r = t
                .wait()
                .unwrap_or_else(|e| panic!("stream {k} step {s}: {e}"));
            let q = r.quality[0];
            if scale == Scale::Test {
                assert!(
                    q.residual < RESIDUAL_LIMIT,
                    "stream {k} step {s}: residual {}",
                    q.residual
                );
            }
            worst = worst.max(q.residual);
        }
    }
    let wall_seconds = t0.elapsed().as_secs_f64();
    let threads_delta = os_threads_spawned() - spawned_after_warmup;
    let stats = service.stats();

    // ---- the serial baseline ------------------------------------------
    // The same work without the service: each stream is a plain session
    // (same serial engine config) stepped to completion one after
    // another.
    let mut serial_sessions: Vec<SolveSession> = seqs
        .iter()
        .enumerate()
        .map(|(k, seq)| {
            SolveSession::new(seq.pattern(), &session_config(k).threads(1)).expect("analyze")
        })
        .collect();
    for (k, s) in serial_sessions.iter_mut().enumerate() {
        s.step(&seqs[k].matrix_at(0)).expect("serial warm-up");
    }
    let t1 = Instant::now();
    for s in 1..nsteps {
        for (k, session) in serial_sessions.iter_mut().enumerate() {
            session.step(&seqs[k].matrix_at(s)).expect("serial step");
            let mut x = vec![1.0; session.dim()];
            session.solve_refined(&mut x).expect("serial solve");
        }
    }
    let serial_seconds = t1.elapsed().as_secs_f64();

    // ---- report -------------------------------------------------------
    let total_steps = nstreams * (nsteps - 1);
    let steps_per_second = total_steps as f64 / wall_seconds;
    let residual_ok = worst < RESIDUAL_LIMIT;
    println!("| metric | value |");
    println!("|---|---|");
    println!("| service wall seconds | {wall_seconds:.3} |");
    println!("| serial wall seconds | {serial_seconds:.3} |");
    println!("| steps/second (service) | {steps_per_second:.0} |");
    println!("| OS threads spawned after warm-up | {threads_delta} |");
    println!("| worst refined residual | {worst:.2e} |");
    println!("| scheduler batches | {} |", stats.batches);
    println!("| team occupancy | {:.2} |", stats.occupancy);
    println!("| max queue depth | {} |", stats.max_queue_depth);
    println!(
        "| factors / refactors | {} / {} |",
        stats.factors, stats.refactors
    );
    println!(
        "| assist: columns / tasks / probes | {} / {} / {} |",
        stats.columns_assisted, stats.tasks_joined, stats.steal_attempts
    );
    println!();
    for s in &stats.per_stream {
        println!(
            "stream {}: engine {}, {} steps, {} errors, {} factors, {} refactors, \
             worst residual {:.2e}",
            s.id,
            s.engine,
            s.steps,
            s.errors,
            s.session.factors,
            s.session.refactors,
            s.session.worst_residual
        );
    }

    assert_eq!(
        threads_delta, 0,
        "the service must multiplex on the warm team: zero OS threads after warm-up"
    );
    assert_eq!(stats.errors, 0, "no stream may error in this workload");
    assert_eq!(stats.steps, nstreams * nsteps, "every submitted step ran");
    if scale == Scale::Test {
        assert!(residual_ok, "worst residual {worst:.2e}");
    }
    if team_width == 1 {
        // Zero-overhead single-core contract: a width-1 service runs
        // every job inline on the caller — nothing to assist, nothing to
        // steal, no scheduler atomics beyond task entry.
        assert_eq!(
            stats.steal_attempts, 0,
            "width-1 service must never probe the assist registry"
        );
        assert_eq!(
            stats.columns_assisted, 0,
            "width-1 service must never run assisted work"
        );
    }

    if let Some(path) = json_path {
        let out = format!(
            "{{\n  \"nstreams\": {nstreams},\n  \"nsteps\": {nsteps},\n  \
             \"team_width\": {team_width},\n  \"scale\": \"{}\",\n  \
             \"wall_seconds\": {wall_seconds:.6},\n  \
             \"serial_seconds\": {serial_seconds:.6},\n  \
             \"steps_per_second\": {steps_per_second:.1},\n  \
             \"os_threads_delta\": {threads_delta},\n  \
             \"worst_residual\": {worst:.3e},\n  \
             \"residual_ok\": {residual_ok},\n  \
             \"steps\": {},\n  \"errors\": {},\n  \
             \"factors\": {},\n  \"refactors\": {},\n  \
             \"batches\": {},\n  \"occupancy\": {:.4},\n  \
             \"max_queue_depth\": {},\n  \
             \"columns_assisted\": {},\n  \"tasks_joined\": {},\n  \
             \"steal_attempts\": {}\n}}\n",
            match scale {
                Scale::Test => "test",
                Scale::Bench => "bench",
            },
            stats.steps,
            stats.errors,
            stats.factors,
            stats.refactors,
            stats.batches,
            stats.occupancy,
            stats.max_queue_depth,
            stats.columns_assisted,
            stats.tasks_joined,
            stats.steal_attempts,
        );
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }
}
