//! **§V-F reproduction** — the Xyce transient sequence: a long sequence
//! of matrices with fixed structure and drifting/switching values.
//!
//! The paper's semantics: every solver **reuses its symbolic analysis**
//! across the sequence but redoes the **numeric factorization with
//! pivoting** for every matrix ("Each factorization may require a
//! different permutation due to pivoting... a solver package must reuse
//! the symbolic factorization for all matrices in the sequence").
//!
//! Paper numbers for 1000 matrices: Basker 175.21 s, KLU 914.77 s, PMKL
//! 951.34 s → Basker 5.43× vs PMKL and 5.22× vs KLU on 16 cores. The
//! shape to check here: Basker beats both; the margin compresses with 2
//! cores.
//!
//! A second table reports the *value-only refactorization* fast path
//! (this library's extension; KLU offers the same), which skips pivoting
//! entirely and is the right tool when values drift gently.
//!
//! Usage: `xyce_sequence [nsteps] [test|bench]` (defaults: 200, bench).

use basker::{Basker, BaskerOptions, SyncMode};
use basker_klu::{KluOptions, KluSymbolic};
use basker_matgen::{CircuitParams, XyceSequence, XyceSequenceParams};
use basker_snlu::{Snlu, SnluOptions};
use basker_sparse::util::relative_residual;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nsteps: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let scale_test = args.get(2).map(|s| s == "test").unwrap_or(false);

    let seq = XyceSequence::new(&XyceSequenceParams {
        circuit: CircuitParams {
            nsub: if scale_test { 4 } else { 16 },
            sub_size: if scale_test { 32 } else { 220 },
            feedthrough: 0.7,
            ..CircuitParams::default()
        },
        nsteps,
        switching_fraction: 0.04,
        seed: 99,
    });
    let a0 = seq.pattern().clone();
    println!(
        "# Xyce sequence analogue: {nsteps} matrices, n = {}, |A| = {}\n",
        a0.nrows(),
        a0.nnz()
    );

    // ---- symbolic analyses, once per solver ----
    let bsk = Basker::analyze(
        &a0,
        &BaskerOptions {
            nthreads: 2,
            sync_mode: SyncMode::PointToPoint,
            ..BaskerOptions::default()
        },
    )
    .expect("basker analyze");
    let klu = KluSymbolic::analyze(&a0, &KluOptions::default()).expect("klu analyze");
    let pmkl = Snlu::analyze(
        &a0,
        &SnluOptions {
            nthreads: 2,
            ..SnluOptions::default()
        },
    )
    .expect("snlu analyze");

    // ---- paper semantics: numeric factorization (with pivoting) per step
    let t0 = Instant::now();
    let mut last = None;
    for s in 0..nsteps {
        let m = seq.matrix_at(s);
        last = Some(bsk.factor(&m).expect("basker factor"));
    }
    let basker_secs = t0.elapsed().as_secs_f64();
    let b = vec![1.0; a0.ncols()];
    let lastm = seq.matrix_at(nsteps - 1);
    let resid = relative_residual(&lastm, &last.unwrap().solve(&b), &b);
    assert!(resid < 1e-8, "basker residual {resid}");

    let t0 = Instant::now();
    for s in 0..nsteps {
        let m = seq.matrix_at(s);
        let _ = klu.factor(&m).expect("klu factor");
    }
    let klu_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for s in 0..nsteps {
        let m = seq.matrix_at(s);
        let _ = pmkl.factor(&m).expect("snlu factor");
    }
    let pmkl_secs = t0.elapsed().as_secs_f64();

    println!("## numeric factorization per step (the paper's experiment)\n");
    println!("| solver | total seconds |");
    println!("|---|---|");
    println!("| Basker (2 threads) | {basker_secs:.2} |");
    println!("| KLU | {klu_secs:.2} |");
    println!("| PMKL stand-in (2 threads) | {pmkl_secs:.2} |");
    println!();
    println!(
        "Basker speedup: {:.2}x vs KLU (paper 5.22x on 16 cores), {:.2}x vs \
         PMKL (paper 5.43x). Compressed by the 2-core container.",
        klu_secs / basker_secs,
        pmkl_secs / basker_secs
    );

    // ---- extension: value-only refactorization fast path ----
    let t0 = Instant::now();
    let mut num = bsk.factor(&a0).expect("factor");
    let mut fallbacks = 0usize;
    for s in 1..nsteps {
        let m = seq.matrix_at(s);
        if num.refactor(&m).is_err() {
            num = bsk.factor(&m).expect("re-pivot");
            fallbacks += 1;
        }
    }
    let basker_re = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut knum = klu.factor(&a0).expect("factor");
    let mut kfallbacks = 0usize;
    for s in 1..nsteps {
        let m = seq.matrix_at(s);
        if knum.refactor(&m).is_err() {
            knum = klu.factor(&m).expect("re-pivot");
            kfallbacks += 1;
        }
    }
    let klu_re = t0.elapsed().as_secs_f64();
    println!("\n## value-only refactorization variant (extension)\n");
    println!("| solver | total seconds | pivot fallbacks |");
    println!("|---|---|---|");
    println!("| Basker refactor | {basker_re:.2} | {fallbacks} |");
    println!("| KLU refactor | {klu_re:.2} | {kfallbacks} |");
}
