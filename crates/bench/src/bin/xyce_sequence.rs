//! **§V-F reproduction** — the Xyce transient sequence: a long sequence
//! of matrices with fixed structure and drifting/switching values.
//!
//! The paper's semantics: every solver **reuses its symbolic analysis**
//! across the sequence but redoes the **numeric factorization with
//! pivoting** for every matrix ("Each factorization may require a
//! different permutation due to pivoting... a solver package must reuse
//! the symbolic factorization for all matrices in the sequence").
//!
//! Paper numbers for 1000 matrices: Basker 175.21 s, KLU 914.77 s, PMKL
//! 951.34 s → Basker 5.43× vs PMKL and 5.22× vs KLU on 16 cores. The
//! shape to check here: Basker beats both; the margin compresses with 2
//! cores.
//!
//! A second table reports the *value-only refactorization* fast path
//! (this library's extension; KLU offers the same), which skips pivoting
//! entirely and is the right tool when values drift gently.
//!
//! Every engine runs through the unified `LinearSolver` lifecycle — one
//! loop body serves all of them, and the solve path reuses a single
//! `SolveWorkspace` (zero allocation per solve).
//!
//! Usage: `xyce_sequence [nsteps] [test|bench]` (defaults: 200, bench).

use basker::SyncMode;
use basker_api::{LinearSolver, SolverConfig};
use basker_bench::SolverKind;
use basker_matgen::{CircuitParams, XyceSequence, XyceSequenceParams};
use basker_sparse::util::relative_residual;
use basker_sparse::{CscMat, SolveWorkspace};
use std::time::Instant;

/// Paper semantics: fresh pivoting factorization per step.
fn time_factor_sequence(solver: &LinearSolver, seq: &XyceSequence, nsteps: usize) -> f64 {
    let t0 = Instant::now();
    for s in 0..nsteps {
        let m = seq.matrix_at(s);
        solver.factor(&m).expect("factor");
    }
    t0.elapsed().as_secs_f64()
}

/// Extension semantics: value-only refactor with pivot fallback.
fn time_refactor_sequence(
    solver: &LinearSolver,
    seq: &XyceSequence,
    a0: &CscMat,
    nsteps: usize,
) -> (f64, usize) {
    let t0 = Instant::now();
    let mut num = solver.factor(a0).expect("factor");
    let mut fallbacks = 0usize;
    for s in 1..nsteps {
        let m = seq.matrix_at(s);
        if num.refactor(&m).is_err() {
            num = solver.factor(&m).expect("re-pivot");
            fallbacks += 1;
        }
    }
    (t0.elapsed().as_secs_f64(), fallbacks)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nsteps: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let scale_test = args.get(2).map(|s| s == "test").unwrap_or(false);

    let seq = XyceSequence::new(&XyceSequenceParams {
        circuit: CircuitParams {
            nsub: if scale_test { 4 } else { 16 },
            sub_size: if scale_test { 32 } else { 220 },
            feedthrough: 0.7,
            ..CircuitParams::default()
        },
        nsteps,
        switching_fraction: 0.04,
        seed: 99,
    });
    let a0 = seq.pattern().clone();
    println!(
        "# Xyce sequence analogue: {nsteps} matrices, n = {}, |A| = {}\n",
        a0.nrows(),
        a0.nnz()
    );

    // ---- symbolic analyses, once per solver, one unified entry point ----
    let mk = |kind: SolverKind| -> LinearSolver {
        LinearSolver::analyze(&a0, &kind.config()).expect("analyze")
    };
    let bsk = mk(SolverKind::Basker {
        threads: 2,
        sync: SyncMode::PointToPoint,
    });
    let klu = mk(SolverKind::Klu);
    let pmkl = mk(SolverKind::Pmkl { threads: 2 });
    let auto = LinearSolver::analyze(&a0, &SolverConfig::new().threads(2)).expect("analyze");
    println!(
        "(Engine::Auto classifies this circuit sequence as `{}`)\n",
        auto.engine()
    );

    // ---- paper semantics: numeric factorization (with pivoting) per step
    let basker_secs = time_factor_sequence(&bsk, &seq, nsteps);
    let klu_secs = time_factor_sequence(&klu, &seq, nsteps);
    let pmkl_secs = time_factor_sequence(&pmkl, &seq, nsteps);

    // accuracy spot-check on the last step, allocation-free solve path
    let lastm = seq.matrix_at(nsteps - 1);
    let num = bsk.factor(&lastm).expect("factor");
    let b = vec![1.0; a0.ncols()];
    let mut x = b.clone();
    let mut ws = SolveWorkspace::for_dim(a0.ncols());
    num.solve_in_place(&mut x, &mut ws).expect("solve");
    let resid = relative_residual(&lastm, &x, &b);
    assert!(resid < 1e-8, "basker residual {resid}");

    println!("## numeric factorization per step (the paper's experiment)\n");
    println!("| solver | total seconds |");
    println!("|---|---|");
    println!("| Basker (2 threads) | {basker_secs:.2} |");
    println!("| KLU | {klu_secs:.2} |");
    println!("| PMKL stand-in (2 threads) | {pmkl_secs:.2} |");
    println!();
    println!(
        "Basker speedup: {:.2}x vs KLU (paper 5.22x on 16 cores), {:.2}x vs \
         PMKL (paper 5.43x). Compressed by the 2-core container.",
        klu_secs / basker_secs,
        pmkl_secs / basker_secs
    );

    // ---- extension: value-only refactorization fast path ----
    let (basker_re, fallbacks) = time_refactor_sequence(&bsk, &seq, &a0, nsteps);
    let (klu_re, kfallbacks) = time_refactor_sequence(&klu, &seq, &a0, nsteps);
    println!("\n## value-only refactorization variant (extension)\n");
    println!("| solver | total seconds | pivot fallbacks |");
    println!("|---|---|---|");
    println!("| Basker refactor | {basker_re:.2} | {fallbacks} |");
    println!("| KLU refactor | {klu_re:.2} | {kfallbacks} |");
}
