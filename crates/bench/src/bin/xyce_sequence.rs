//! **§V-F reproduction** — the Xyce transient sequence: a long sequence
//! of matrices with fixed structure and drifting/switching values.
//!
//! The paper's semantics: every solver **reuses its symbolic analysis**
//! across the sequence but redoes the **numeric factorization with
//! pivoting** for every matrix ("Each factorization may require a
//! different permutation due to pivoting... a solver package must reuse
//! the symbolic factorization for all matrices in the sequence").
//!
//! Paper numbers for 1000 matrices: Basker 175.21 s, KLU 914.77 s, PMKL
//! 951.34 s → Basker 5.43× vs PMKL and 5.22× vs KLU on 16 cores. The
//! shape to check here: Basker beats both; the margin compresses with 2
//! cores.
//!
//! A second table reports the *value-only refactorization* fast path
//! (this library's extension; KLU offers the same), which skips pivoting
//! when quality allows.
//!
//! Every engine runs through a [`SolveSession`]: the loop body is
//! `session.step(&m)` (+ `solve_refined` in residual-checked mode) and
//! **all** factor-vs-refactor-vs-re-pivot decisions are made by the
//! session's [`ReusePolicy`] — the harness contains no fallback
//! branching. Per-engine lifecycle decisions come back via
//! [`SessionStats`].
//!
//! Usage: `xyce_sequence [nsteps] [test|bench] [--json PATH]`
//! (defaults: 200, bench). `test` additionally solves and
//! residual-checks every step; `--json` writes the measured rows (the
//! checked-in `BENCH_xyce.json` baseline is produced this way).

use basker::SyncMode;
use basker_api::{ReusePolicy, SessionConfig, SessionStats, SolveSession};
use basker_bench::SolverKind;
use basker_matgen::{CircuitParams, XyceSequence, XyceSequenceParams};
use std::time::Instant;

struct EngineRow {
    label: String,
    factor_seconds: f64,
    refactor_seconds: f64,
    stats: SessionStats,
    worst_residual: f64,
}

/// Drives one engine through the whole sequence under `policy`; in
/// `check` mode every step is solved with refinement and the residual
/// asserted. Returns (wall seconds of the step loop, session stats,
/// worst refined residual).
fn run_sequence(
    kind: SolverKind,
    policy: ReusePolicy,
    seq: &XyceSequence,
    nsteps: usize,
    check: bool,
) -> (f64, SessionStats, f64) {
    let cfg = SessionConfig::new()
        .solver(kind.config())
        .policy(policy)
        .target_residual(1e-9);
    let mut session = SolveSession::new(seq.pattern(), &cfg).expect("analyze");
    let b = vec![1.0; session.dim()];
    let mut x = vec![0.0; session.dim()];
    let mut worst = 0.0f64;
    let t0 = Instant::now();
    for s in 0..nsteps {
        let m = seq.matrix_at(s);
        // The whole §V-F loop body: the session decides factor vs
        // refactor vs re-pivot; no branching here.
        session.step(&m).expect("step");
        if check {
            x.copy_from_slice(&b);
            let q = session.solve_refined(&mut x).expect("solve");
            assert!(
                q.residual < 1e-7,
                "{} step {s}: residual {}",
                kind.label(),
                q.residual
            );
            worst = worst.max(q.residual);
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    (secs, session.stats().clone(), worst)
}

fn main() {
    let mut nsteps: usize = 200;
    let mut scale_test = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "test" => scale_test = true,
            "bench" => scale_test = false,
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("usage: xyce_sequence [nsteps] [test|bench] [--json PATH]");
                    std::process::exit(2);
                }))
            }
            s => match s.parse() {
                Ok(n) => nsteps = n,
                Err(_) => {
                    eprintln!("usage: xyce_sequence [nsteps] [test|bench] [--json PATH]");
                    std::process::exit(2);
                }
            },
        }
    }

    let seq = XyceSequence::new(&XyceSequenceParams {
        circuit: CircuitParams {
            nsub: if scale_test { 4 } else { 16 },
            sub_size: if scale_test { 32 } else { 220 },
            feedthrough: 0.7,
            ..CircuitParams::default()
        },
        nsteps,
        switching_fraction: 0.04,
        seed: 99,
    });
    let a0 = seq.pattern();
    println!(
        "# Xyce sequence analogue: {nsteps} matrices, n = {}, |A| = {}\n",
        a0.nrows(),
        a0.nnz()
    );
    {
        let auto = SolveSession::new(a0, &SessionConfig::new().threads(2)).expect("analyze");
        println!(
            "(Engine::Auto classifies this circuit sequence as `{}`)\n",
            auto.engine()
        );
    }

    let kinds = [
        SolverKind::Basker {
            threads: 2,
            sync: SyncMode::PointToPoint,
        },
        SolverKind::Klu,
        SolverKind::Pmkl { threads: 2 },
    ];

    let rows: Vec<EngineRow> = kinds
        .iter()
        .map(|&kind| {
            // Paper semantics: fresh pivoting per step.
            let (factor_seconds, _, _) =
                run_sequence(kind, ReusePolicy::AlwaysFactor, &seq, nsteps, false);
            // Extension: adaptive value-only reuse with quality gates;
            // residual-checked at test scale.
            let (refactor_seconds, stats, worst_residual) =
                run_sequence(kind, ReusePolicy::adaptive(), &seq, nsteps, scale_test);
            EngineRow {
                label: kind.label(),
                factor_seconds,
                refactor_seconds,
                stats,
                worst_residual,
            }
        })
        .collect();

    println!("## numeric factorization per step (the paper's experiment)\n");
    println!("| solver | total seconds |");
    println!("|---|---|");
    for r in &rows {
        println!("| {} | {:.2} |", r.label, r.factor_seconds);
    }
    let basker = &rows[0];
    println!();
    println!(
        "Basker speedup: {:.2}x vs KLU (paper 5.22x on 16 cores), {:.2}x vs \
         PMKL (paper 5.43x). Compressed by the small-core container.",
        rows[1].factor_seconds / basker.factor_seconds,
        rows[2].factor_seconds / basker.factor_seconds
    );

    println!("\n## adaptive refactor sessions (extension)\n");
    println!(
        "| solver | total seconds | refactors | pivot fallbacks | quality re-pivots | \
         refine iters |"
    );
    println!("|---|---|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} | {:.2} | {} | {} | {} | {} |",
            r.label,
            r.refactor_seconds,
            r.stats.refactors,
            r.stats.repivot_fallbacks,
            r.stats.quality_repivots,
            r.stats.refine_iterations,
        );
    }
    if scale_test {
        let worst = rows.iter().map(|r| r.worst_residual).fold(0.0, f64::max);
        println!("\nresidual-checked mode: worst refined residual {worst:.2e}");
    }

    if let Some(path) = json_path {
        let mut out = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"solver\": \"{}\", \"nsteps\": {nsteps}, \
                 \"factor_seconds\": {:.6}, \"refactor_seconds\": {:.6}, \
                 \"refactors\": {}, \"repivot_fallbacks\": {}, \
                 \"quality_repivots\": {}, \"refine_iterations\": {}}}{}\n",
                r.label,
                r.factor_seconds,
                r.refactor_seconds,
                r.stats.refactors,
                r.stats.repivot_fallbacks,
                r.stats.quality_repivots,
                r.stats.refine_iterations,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }
}
