//! **Figure 7 reproduction** — performance profiles of Basker, the PMKL
//! stand-in and KLU over the full Table I suite, serial and parallel,
//! plus the headline geometric-mean speedups (paper: 5.91× on 16
//! SandyBridge cores, 7.4× on 32 Phi cores, vs PMKL's 1.5× / 5.78×).
//!
//! Usage: `fig7_profiles [test|bench] [--json PATH]` (default `bench`).
//! `--json` additionally writes the per-matrix timings as a JSON array
//! (used for the checked-in `BENCH_fig7.json` baseline).

use basker::SyncMode;
use basker_bench::{
    geometric_mean, performance_profile, print_markdown_table, run_solver, BenchArgs, SolverKind,
};
use basker_matgen::table1_suite;

fn main() {
    let args = BenchArgs::parse("fig7_profiles", false);
    let (scale, json_path) = (args.scale, args.json);
    let pmax = 2usize; // physical cores in this container
    println!("# Figure 7 analogue: performance profiles over the suite\n");

    let suite = table1_suite();
    let mut names = Vec::new();
    let mut klu_t = Vec::new();
    let mut basker1_t = Vec::new();
    let mut pmkl1_t = Vec::new();
    let mut baskerp_t = Vec::new();
    let mut pmklp_t = Vec::new();

    for e in &suite {
        let a = e.generate(scale);
        names.push(e.name);
        let time = |kind| {
            run_solver(&a, kind, 0.15, 4)
                .map(|r| r.factor_seconds)
                .unwrap_or(f64::INFINITY)
        };
        klu_t.push(time(SolverKind::Klu));
        basker1_t.push(time(SolverKind::Basker {
            threads: 1,
            sync: SyncMode::PointToPoint,
        }));
        pmkl1_t.push(time(SolverKind::Pmkl { threads: 1 }));
        baskerp_t.push(time(SolverKind::Basker {
            threads: pmax,
            sync: SyncMode::PointToPoint,
        }));
        pmklp_t.push(time(SolverKind::Pmkl { threads: pmax }));
    }

    // --- (a) serial profile: Basker vs PMKL vs KLU ---
    let taus: Vec<f64> = (0..=20).map(|i| 1.0 + i as f64 * 0.45).collect();
    println!("## (a) serial performance profile\n");
    let prof = performance_profile(&[basker1_t.clone(), pmkl1_t.clone(), klu_t.clone()], &taus);
    let mut rows = Vec::new();
    for (ti, &tau) in taus.iter().enumerate() {
        rows.push(vec![
            format!("{tau:.2}"),
            format!("{:.2}", prof[0][ti]),
            format!("{:.2}", prof[1][ti]),
            format!("{:.2}", prof[2][ti]),
        ]);
    }
    print_markdown_table(&["tau", "Basker(1)", "PMKL(1)", "KLU"], &rows);
    let best_basker = (0..suite.len())
        .filter(|&i| basker1_t[i] <= pmkl1_t[i] && basker1_t[i] <= klu_t[i])
        .count();
    println!(
        "\nBasker serial is the best solver on {best_basker}/{} matrices \
         (paper Fig. 7(a): ~70%).\n",
        suite.len()
    );

    // --- (b) parallel profile ---
    println!("## (b) parallel performance profile ({pmax} cores)\n");
    let prof = performance_profile(&[baskerp_t.clone(), pmklp_t.clone()], &taus);
    let mut rows = Vec::new();
    for (ti, &tau) in taus.iter().enumerate() {
        rows.push(vec![
            format!("{tau:.2}"),
            format!("{:.2}", prof[0][ti]),
            format!("{:.2}", prof[1][ti]),
        ]);
    }
    print_markdown_table(&["tau", "Basker(p)", "PMKL(p)"], &rows);

    // --- headline geometric means ---
    let bsk_speedups: Vec<f64> = klu_t
        .iter()
        .zip(baskerp_t.iter())
        .filter(|(k, b)| k.is_finite() && b.is_finite())
        .map(|(k, b)| k / b)
        .collect();
    let pmk_speedups: Vec<f64> = klu_t
        .iter()
        .zip(pmklp_t.iter())
        .filter(|(k, p)| k.is_finite() && p.is_finite())
        .map(|(k, p)| k / p)
        .collect();
    let faster = klu_t
        .iter()
        .zip(baskerp_t.iter().zip(pmklp_t.iter()))
        .filter(|(_, (b, p))| b < p)
        .count();
    println!();
    println!(
        "Geometric-mean speedup vs KLU on {pmax} cores: Basker {:.2}x, \
         PMKL {:.2}x (paper, 16 cores: 5.91x vs 1.5x — compressed here by \
         the 2-core container).",
        geometric_mean(&bsk_speedups),
        geometric_mean(&pmk_speedups)
    );
    println!(
        "Basker faster than PMKL on {faster}/{} matrices (paper: 17/22 on \
         CPU, 16/22 on Phi).",
        suite.len()
    );
    println!("\nPer-matrix numeric seconds:");
    let mut rows = Vec::new();
    for i in 0..suite.len() {
        rows.push(vec![
            names[i].to_string(),
            format!("{:.4}", klu_t[i]),
            format!("{:.4}", basker1_t[i]),
            format!("{:.4}", baskerp_t[i]),
            format!("{:.4}", pmkl1_t[i]),
            format!("{:.4}", pmklp_t[i]),
        ]);
    }
    print_markdown_table(
        &[
            "matrix",
            "KLU",
            "Basker(1)",
            "Basker(p)",
            "PMKL(1)",
            "PMKL(p)",
        ],
        &rows,
    );

    if let Some(path) = json_path {
        let mut out = String::from("[\n");
        for i in 0..suite.len() {
            out.push_str(&format!(
                "  {{\"matrix\": \"{}\", \"threads\": {pmax}, \
                 \"klu_seconds\": {:.6}, \"basker1_seconds\": {:.6}, \
                 \"baskerp_seconds\": {:.6}, \"pmkl1_seconds\": {:.6}, \
                 \"pmklp_seconds\": {:.6}}}{}\n",
                names[i],
                klu_t[i],
                basker1_t[i],
                baskerp_t[i],
                pmkl1_t[i],
                pmklp_t[i],
                if i + 1 < suite.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }
}
