//! **Figure 8 reproduction** — self-relative speedup scatter on each
//! solver's *ideal* inputs: Basker on the six lowest fill-density circuit
//! matrices vs the PMKL stand-in on the six 2/3-D mesh problems, with
//! least-squares trend lines.
//!
//! Paper claim to check: the two trend lines are similar — parallel
//! Gilbert–Peierls scales on its ideal inputs like a supernodal solver
//! does on meshes.
//!
//! Usage: `fig8_ideal [test|bench] [--json PATH]` (default `bench`).
//! `--json` additionally writes every (solver, matrix, threads) speedup
//! point as a JSON array (used for the checked-in `BENCH_fig8.json`
//! baseline).

use basker::SyncMode;
use basker_bench::{print_markdown_table, run_solver, trend_slope, BenchArgs, SolverKind};
use basker_matgen::{mesh_suite, table1_suite};

fn main() {
    let args = BenchArgs::parse("fig8_ideal", false);
    let (scale, json_path) = (args.scale, args.json);
    let threads = [1usize, 2, 4];
    println!("# Figure 8 analogue: self-relative speedup on ideal inputs\n");

    // Basker's ideal: the six lowest fill-density suite entries.
    let low: Vec<_> = table1_suite().into_iter().take(6).collect();
    // PMKL's ideal: the mesh suite.
    let meshes = mesh_suite();

    let mut rows = Vec::new();
    let mut jrows: Vec<(&str, &str, usize, f64, f64)> = Vec::new();
    let mut xs_b = Vec::new();
    let mut ys_b = Vec::new();
    let mut xs_p = Vec::new();
    let mut ys_p = Vec::new();

    for e in &low {
        let a = e.generate(scale);
        let t1 = run_solver(
            &a,
            SolverKind::Basker {
                threads: 1,
                sync: SyncMode::PointToPoint,
            },
            0.15,
            4,
        )
        .map(|r| r.factor_seconds)
        .unwrap_or(f64::NAN);
        for &p in &threads {
            let tp = run_solver(
                &a,
                SolverKind::Basker {
                    threads: p,
                    sync: SyncMode::PointToPoint,
                },
                0.15,
                4,
            )
            .map(|r| r.factor_seconds)
            .unwrap_or(f64::NAN);
            let s = t1 / tp;
            jrows.push(("Basker", e.name, p, tp, s));
            xs_b.push(p as f64);
            ys_b.push(s);
            rows.push(vec![
                "Basker".into(),
                e.name.to_string(),
                p.to_string(),
                format!("{s:.2}x"),
            ]);
        }
    }
    for e in &meshes {
        let a = e.generate(scale);
        let t1 = run_solver(&a, SolverKind::Pmkl { threads: 1 }, 0.15, 4)
            .map(|r| r.factor_seconds)
            .unwrap_or(f64::NAN);
        for &p in &threads {
            let tp = run_solver(&a, SolverKind::Pmkl { threads: p }, 0.15, 4)
                .map(|r| r.factor_seconds)
                .unwrap_or(f64::NAN);
            let s = t1 / tp;
            jrows.push(("PMKL", e.name, p, tp, s));
            xs_p.push(p as f64);
            ys_p.push(s);
            rows.push(vec![
                "PMKL".into(),
                e.name.to_string(),
                p.to_string(),
                format!("{s:.2}x"),
            ]);
        }
    }
    print_markdown_table(&["solver", "matrix", "threads", "self speedup"], &rows);

    let sb = trend_slope(&xs_b, &ys_b);
    let sp = trend_slope(&xs_p, &ys_p);
    println!();
    println!(
        "Trend slopes (speedup per thread): Basker on low-fill {sb:.2}, \
         PMKL on meshes {sp:.2} (paper Fig. 8(a): similar slopes on \
         SandyBridge; ratio here {:.2}).",
        sb / sp
    );

    if let Some(path) = json_path {
        let mut out = String::from("[\n");
        for (i, (solver, matrix, p, secs, speedup)) in jrows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"solver\": \"{solver}\", \"matrix\": \"{matrix}\", \
                 \"threads\": {p}, \"seconds\": {secs:.6}, \
                 \"speedup\": {speedup:.4}}}{}\n",
                if i + 1 < jrows.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }
}
