//! **Figure 5 reproduction** — raw numeric factorization time (seconds)
//! for the six matrices of varying fill density, comparing Basker, the
//! PMKL stand-in and the SLU-MT stand-in across core counts.
//!
//! Paper claims to check: (a) PMKL is as good or better than SLU-MT,
//! (b) Basker is fastest on 5 of the 6 matrices (all but the
//! highest-fill `Xyce3`).
//!
//! Usage: `fig5_raw_time [test|bench]` (default `bench`).

use basker::SyncMode;
use basker_bench::{fmt_secs, print_markdown_table, run_solver, SolverKind};
use basker_matgen::table1_suite;

fn main() {
    let scale = basker_bench::scale_from_args("fig5_raw_time");
    let threads = [1usize, 2, 4];
    println!("# Figure 5 analogue: raw numeric time, six matrices\n");
    println!("(container: 2 physical cores; 4 threads oversubscribe)\n");

    let entries: Vec<_> = table1_suite().into_iter().filter(|e| e.fig56).collect();
    let mut rows = Vec::new();
    let mut basker_best = 0usize;
    let mut pmkl_ge_slumt = 0usize;
    let mut cells_total = 0usize;

    for e in &entries {
        let a = e.generate(scale);
        for &p in &threads {
            let kinds = [
                SolverKind::Basker {
                    threads: p,
                    sync: SyncMode::PointToPoint,
                },
                SolverKind::Pmkl { threads: p },
                SolverKind::SluMt { threads: p },
            ];
            let times: Vec<f64> = kinds
                .iter()
                .map(|&k| {
                    run_solver(&a, k, 0.2, 5)
                        .map(|r| r.factor_seconds)
                        .unwrap_or(f64::INFINITY)
                })
                .collect();
            if times[0] <= times[1] && times[0] <= times[2] {
                basker_best += 1;
            }
            if times[1] <= times[2] {
                pmkl_ge_slumt += 1;
            }
            cells_total += 1;
            rows.push(vec![
                e.name.to_string(),
                format!("{:.1}", e.paper.fill_klu),
                p.to_string(),
                fmt_secs(times[0]),
                fmt_secs(times[1]),
                fmt_secs(times[2]),
            ]);
        }
    }
    print_markdown_table(
        &[
            "matrix",
            "paper fill",
            "threads",
            "Basker",
            "PMKL",
            "SLU-MT",
        ],
        &rows,
    );
    println!();
    println!(
        "Basker fastest in {basker_best}/{cells_total} cells; \
         PMKL <= SLU-MT in {pmkl_ge_slumt}/{cells_total} cells \
         (paper: Basker best on 5/6 matrices, PMKL always >= SLU-MT)."
    );
}
