//! **Figure 5 reproduction** — raw numeric factorization time (seconds)
//! for the six matrices of varying fill density, comparing Basker, the
//! PMKL stand-in and the SLU-MT stand-in across core counts.
//!
//! Paper claims to check: (a) PMKL is as good or better than SLU-MT,
//! (b) Basker is fastest on 5 of the 6 matrices (all but the
//! highest-fill `Xyce3`).
//!
//! Usage: `fig5_raw_time [test|bench] [--json PATH]` (default `bench`).
//! `--json` writes the measured rows — times plus the deterministic
//! side-channel the CI regression gate (`bench_check --kind fig5`)
//! holds tightly: per-solver `|L+U|` and solve residuals (the
//! checked-in `BENCH_fig5.json` baseline is produced this way).

use basker::SyncMode;
use basker_bench::{fmt_secs, print_markdown_table, run_solver, BenchArgs, RunResult, SolverKind};
use basker_matgen::table1_suite;

struct Cell {
    matrix: String,
    paper_fill: f64,
    threads: usize,
    /// Per solver (basker, pmkl, slumt): the full measured result.
    results: Vec<Result<RunResult, String>>,
}

fn main() {
    let args = BenchArgs::parse("fig5_raw_time", false);
    let threads = [1usize, 2, 4];
    println!("# Figure 5 analogue: raw numeric time, six matrices\n");
    println!("(container: 2 physical cores; 4 threads oversubscribe)\n");

    let entries: Vec<_> = table1_suite().into_iter().filter(|e| e.fig56).collect();
    let mut cells = Vec::new();
    let mut rows = Vec::new();
    let mut basker_best = 0usize;
    let mut pmkl_ge_slumt = 0usize;
    let mut cells_total = 0usize;

    for e in &entries {
        let a = e.generate(args.scale);
        for &p in &threads {
            let kinds = [
                SolverKind::Basker {
                    threads: p,
                    sync: SyncMode::PointToPoint,
                },
                SolverKind::Pmkl { threads: p },
                SolverKind::SluMt { threads: p },
            ];
            let results: Vec<Result<RunResult, String>> =
                kinds.iter().map(|&k| run_solver(&a, k, 0.2, 5)).collect();
            let times: Vec<f64> = results
                .iter()
                .map(|r| {
                    r.as_ref()
                        .map(|x| x.factor_seconds)
                        .unwrap_or(f64::INFINITY)
                })
                .collect();
            if times[0] <= times[1] && times[0] <= times[2] {
                basker_best += 1;
            }
            if times[1] <= times[2] {
                pmkl_ge_slumt += 1;
            }
            cells_total += 1;
            rows.push(vec![
                e.name.to_string(),
                format!("{:.1}", e.paper.fill_klu),
                p.to_string(),
                fmt_secs(times[0]),
                fmt_secs(times[1]),
                fmt_secs(times[2]),
            ]);
            cells.push(Cell {
                matrix: e.name.to_string(),
                paper_fill: e.paper.fill_klu,
                threads: p,
                results,
            });
        }
    }
    print_markdown_table(
        &[
            "matrix",
            "paper fill",
            "threads",
            "Basker",
            "PMKL",
            "SLU-MT",
        ],
        &rows,
    );
    println!();
    println!(
        "Basker fastest in {basker_best}/{cells_total} cells; \
         PMKL <= SLU-MT in {pmkl_ge_slumt}/{cells_total} cells \
         (paper: Basker best on 5/6 matrices, PMKL always >= SLU-MT)."
    );

    if let Some(path) = args.json {
        let mut out = String::from("[\n");
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"matrix\": \"{}\", \"paper_fill\": {:.1}, \"threads\": {}",
                c.matrix, c.paper_fill, c.threads
            ));
            for (solver, r) in ["basker", "pmkl", "slumt"].iter().zip(&c.results) {
                // A failed run records sentinel values the gate rejects.
                let (secs, nnz, resid) = r
                    .as_ref()
                    .map(|x| (x.factor_seconds, x.lu_nnz as f64, x.residual))
                    .unwrap_or((-1.0, -1.0, 1.0));
                out.push_str(&format!(
                    ", \"{solver}_seconds\": {secs:.6}, \"{solver}_lu_nnz\": {nnz:.0}, \
                     \"{solver}_residual\": {resid:.3e}"
                ));
            }
            out.push_str(&format!(
                "}}{}\n",
                if i + 1 < cells.len() { "," } else { "" }
            ));
        }
        out.push_str("]\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }
}
