//! **Figure 6 reproduction** — speedup of Basker and the PMKL stand-in
//! relative to serial KLU, `Speedup(m, s, p) = T(m, KLU, 1) / T(m, s, p)`,
//! on the six matrices of varying fill density.
//!
//! Paper claims to check: Basker beats PMKL everywhere except the
//! highest-fill matrix (`Xyce3`, fill 9.2), where the supernodal method's
//! dense kernels win; PMKL's serial runs lose to KLU (speedup < 1) on the
//! low-fill problems.
//!
//! Usage: `fig6_speedup [test|bench] [--json PATH]` (default `bench`).
//! `--json` additionally writes the measured rows as a JSON array (the
//! checked-in `BENCH_fig6.json` baseline is produced this way). By
//! default each matrix is measured in a **fresh child process** (the
//! binary re-execs itself with `--matrix NAME`): heap and cache state
//! accumulated by one matrix otherwise biases the next one's timings by
//! more than the thread effect being measured.

use basker::SyncMode;
use basker_api::ReusePolicy;
use basker_bench::{fmt_secs, open_session, print_markdown_table, BenchArgs, SolverKind};
use basker_matgen::{table1_suite, Scale};
use std::time::Instant;

struct Row {
    matrix: String,
    paper_fill: f64,
    threads: usize,
    klu_seconds: f64,
    basker_seconds: f64,
    pmkl_seconds: f64,
}

impl Row {
    fn basker_speedup(&self) -> f64 {
        self.klu_seconds / self.basker_seconds
    }

    fn pmkl_speedup(&self) -> f64 {
        self.klu_seconds / self.pmkl_seconds
    }
}

/// Re-runs this binary once per suite entry (fresh process each) and
/// parses the child's JSON rows back.
fn measure_in_child_processes(scale: Scale, entries: &[&str]) -> Vec<Row> {
    let exe = std::env::current_exe().expect("current_exe");
    let scale_arg = match scale {
        Scale::Test => "test",
        Scale::Bench => "bench",
    };
    let mut rows = Vec::new();
    for name in entries {
        let tmp = std::env::temp_dir().join(format!("fig6_{name}_{}.json", std::process::id()));
        let status = std::process::Command::new(&exe)
            .args([scale_arg, "--matrix", name, "--json"])
            .arg(&tmp)
            .stdout(std::process::Stdio::null())
            .status()
            .expect("spawn child measurement");
        assert!(status.success(), "child measurement for {name} failed");
        let text = std::fs::read_to_string(&tmp).expect("child json");
        let _ = std::fs::remove_file(&tmp);
        rows.extend(parse_rows(&text));
    }
    rows
}

/// Minimal parser for the JSON this binary itself writes.
fn parse_rows(text: &str) -> Vec<Row> {
    let field = |obj: &str, key: &str| -> String {
        let pat = format!("\"{key}\": ");
        let start = obj.find(&pat).expect("field present") + pat.len();
        let rest = &obj[start..];
        let end = rest.find([',', '}']).expect("field terminated");
        rest[..end].trim().trim_matches('"').to_string()
    };
    text.split('{')
        .skip(1)
        .map(|obj| Row {
            matrix: field(obj, "matrix"),
            paper_fill: field(obj, "paper_fill").parse().unwrap(),
            threads: field(obj, "threads").parse().unwrap(),
            klu_seconds: field(obj, "klu_seconds").parse().unwrap(),
            basker_seconds: field(obj, "basker_seconds").parse().unwrap(),
            pmkl_seconds: field(obj, "pmkl_seconds").parse().unwrap(),
        })
        .collect()
}

fn main() {
    let args = BenchArgs::parse("fig6_speedup", true);
    let (scale, json_path, only_matrix) = (args.scale, args.json, args.matrix);
    let threads = [1usize, 2, 4];

    let entries: Vec<_> = table1_suite()
        .into_iter()
        .filter(|e| e.fig56 && only_matrix.as_deref().map_or(true, |m| m == e.name))
        .collect();
    if let Some(m) = &only_matrix {
        assert!(!entries.is_empty(), "unknown suite entry {m}");
    } else {
        // Parent mode: fan each matrix out to an isolated child process.
        println!("# Figure 6 analogue: speedup vs serial KLU\n");
        let names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        let rows = measure_in_child_processes(scale, &names);
        report(&rows, json_path);
        return;
    }

    let mut rows = Vec::new();
    for e in &entries {
        let a = e.generate(scale);
        // Open a session per configuration up front (symbolic analysis
        // once), then time ONLY the numeric stepping (what the paper's
        // Fig. 6 compares) under `ReusePolicy::AlwaysFactor` — every
        // step is a fresh pivoting factorization, exactly the paper's
        // per-matrix semantics. Configurations are visited in
        // interleaved rounds, keeping each one's minimum. Two sources of
        // systematic bias are controlled: (1) measuring a config in one
        // contiguous block confounds thread count with process warm-up
        // (allocator and cache drift), so rounds interleave; (2) a
        // neighboring engine with a very different allocation profile
        // perturbs the next measurement, so each engine's thread sweep
        // runs in its own pass, sharing only the serial-KLU baseline.
        const ROUNDS: usize = 48;
        let measure = |kinds: &[SolverKind]| -> Vec<f64> {
            // A failed analyze or step aborts the run: dropping or
            // skipping a config would either shift every later column
            // of the table onto the wrong solver or leave an INFINITY
            // that serializes as invalid JSON in the checked-in
            // baseline.
            let mut configs: Vec<(SolverKind, basker_api::SolveSession, f64)> = kinds
                .iter()
                .map(|&kind| {
                    let s =
                        open_session(&a, kind, ReusePolicy::AlwaysFactor).unwrap_or_else(|err| {
                            panic!("{} on {}: analyze failed: {err}", kind.label(), e.name)
                        });
                    (kind, s, f64::INFINITY)
                })
                .collect();
            for _ in 0..ROUNDS {
                for (kind, session, best) in configs.iter_mut() {
                    let t = Instant::now();
                    match session.step(&a) {
                        Ok(_) => *best = best.min(t.elapsed().as_secs_f64()),
                        Err(err) => {
                            panic!("{} on {}: factor failed: {err}", kind.label(), e.name)
                        }
                    }
                }
            }
            configs.into_iter().map(|(_, _, t)| t).collect()
        };
        let basker_kinds: Vec<SolverKind> = std::iter::once(SolverKind::Klu)
            .chain(threads.iter().map(|&p| SolverKind::Basker {
                threads: p,
                sync: SyncMode::PointToPoint,
            }))
            .collect();
        let pmkl_kinds: Vec<SolverKind> = std::iter::once(SolverKind::Klu)
            .chain(threads.iter().map(|&p| SolverKind::Pmkl { threads: p }))
            .collect();
        let bpass = measure(&basker_kinds);
        let ppass = measure(&pmkl_kinds);
        let klu = bpass[0].min(ppass[0]);
        let bsk = &bpass[1..];
        let pmk = &ppass[1..];
        for (pi, &p) in threads.iter().enumerate() {
            rows.push(Row {
                matrix: e.name.to_string(),
                paper_fill: e.paper.fill_klu,
                threads: p,
                klu_seconds: klu,
                basker_seconds: bsk[pi],
                pmkl_seconds: pmk[pi],
            });
        }
    }

    report(&rows, json_path);
}

fn report(rows: &[Row], json_path: Option<String>) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}({})", r.matrix, fmt_secs(r.klu_seconds)),
                format!("{:.1}", r.paper_fill),
                r.threads.to_string(),
                format!("{:.2}x", r.basker_speedup()),
                format!("{:.2}x", r.pmkl_speedup()),
            ]
        })
        .collect();
    print_markdown_table(
        &[
            "matrix (KLU serial time)",
            "paper fill",
            "threads",
            "Basker speedup",
            "PMKL speedup",
        ],
        &table,
    );
    println!();
    println!(
        "Paper shape: Basker > PMKL on the low-fill matrices at every core \
         count; PMKL wins only on the highest-fill entry; PMKL serial is \
         below 1x on low-fill inputs."
    );

    if let Some(path) = json_path {
        let mut out = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"matrix\": \"{}\", \"paper_fill\": {:.1}, \"threads\": {}, \
                 \"klu_seconds\": {:.6}, \"basker_seconds\": {:.6}, \
                 \"pmkl_seconds\": {:.6}, \"basker_speedup\": {:.3}, \
                 \"pmkl_speedup\": {:.3}}}{}\n",
                r.matrix,
                r.paper_fill,
                r.threads,
                r.klu_seconds,
                r.basker_seconds,
                r.pmkl_seconds,
                r.basker_speedup(),
                r.pmkl_speedup(),
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }
}
