//! **Figure 6 reproduction** — speedup of Basker and the PMKL stand-in
//! relative to serial KLU, `Speedup(m, s, p) = T(m, KLU, 1) / T(m, s, p)`,
//! on the six matrices of varying fill density.
//!
//! Paper claims to check: Basker beats PMKL everywhere except the
//! highest-fill matrix (`Xyce3`, fill 9.2), where the supernodal method's
//! dense kernels win; PMKL's serial runs lose to KLU (speedup < 1) on the
//! low-fill problems.
//!
//! Usage: `fig6_speedup [test|bench]` (default `bench`).

use basker::SyncMode;
use basker_bench::{fmt_secs, print_markdown_table, run_solver, SolverKind};
use basker_matgen::table1_suite;

fn main() {
    let scale = basker_bench::scale_from_args("fig6_speedup");
    let threads = [1usize, 2, 4];
    println!("# Figure 6 analogue: speedup vs serial KLU\n");

    let entries: Vec<_> = table1_suite().into_iter().filter(|e| e.fig56).collect();
    let mut rows = Vec::new();
    for e in &entries {
        let a = e.generate(scale);
        let klu = run_solver(&a, SolverKind::Klu, 0.2, 5)
            .map(|r| r.factor_seconds)
            .unwrap_or(f64::NAN);
        for &p in &threads {
            let bsk = run_solver(
                &a,
                SolverKind::Basker {
                    threads: p,
                    sync: SyncMode::PointToPoint,
                },
                0.2,
                5,
            )
            .map(|r| r.factor_seconds)
            .unwrap_or(f64::INFINITY);
            let pmk = run_solver(&a, SolverKind::Pmkl { threads: p }, 0.2, 5)
                .map(|r| r.factor_seconds)
                .unwrap_or(f64::INFINITY);
            rows.push(vec![
                format!("{}({})", e.name, fmt_secs(klu)),
                format!("{:.1}", e.paper.fill_klu),
                p.to_string(),
                format!("{:.2}x", klu / bsk),
                format!("{:.2}x", klu / pmk),
            ]);
        }
    }
    print_markdown_table(
        &[
            "matrix (KLU serial time)",
            "paper fill",
            "threads",
            "Basker speedup",
            "PMKL speedup",
        ],
        &rows,
    );
    println!();
    println!(
        "Paper shape: Basker > PMKL on the low-fill matrices at every core \
         count; PMKL wins only on the highest-fill entry; PMKL serial is \
         below 1x on low-fill inputs."
    );
}
