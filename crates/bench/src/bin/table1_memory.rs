//! **Table I reproduction** — memory usage (`|L+U|`) of KLU, the PMKL
//! stand-in and Basker over the circuit/powergrid suite, plus BTF
//! statistics and fill densities.
//!
//! Paper claim to check: Basker/KLU need fewer factor nonzeros than the
//! supernodal solver on every matrix with fill density < 4 (often by an
//! order of magnitude on powergrids), while the supernodal solver uses
//! slightly less memory above that line.
//!
//! Usage: `table1_memory [test|bench] [--json PATH]` (default `bench`).
//! `--json` writes the measured rows; memory counts are deterministic,
//! so the CI regression gate (`bench_check --kind table1`) holds the
//! checked-in `BENCH_table1.json` baseline **exactly**.

use basker::SyncMode;
use basker_bench::{analyze, fmt_eng, print_markdown_table, BenchArgs, SolverKind};
use basker_matgen::table1_suite;

struct JsonRow {
    matrix: String,
    n: usize,
    nnz: usize,
    klu_nnz: f64,
    pmkl_nnz: f64,
    basker_nnz: f64,
    btf_pct: f64,
    btf_blocks: f64,
}

fn main() {
    let args = BenchArgs::parse("table1_memory", false);
    let scale = args.scale;
    println!("# Table I analogue: |L+U| memory comparison\n");
    println!(
        "Columns mirror the paper: matrix, n, |A|, |L+U| for KLU / PMKL / \
         Basker, measured BTF% (rows in blocks <= 64), measured BTF blocks, \
         measured KLU fill density, paper fill density.\n"
    );

    let mut rows = Vec::new();
    let mut json_rows: Vec<JsonRow> = Vec::new();
    let mut wins_low = 0usize;
    let mut total_low = 0usize;
    let mut wins_high = 0usize;
    let mut total_high = 0usize;

    for e in table1_suite() {
        let a = e.generate(scale);
        let klu = analyze(&a, SolverKind::Klu)
            .and_then(|h| h.factor(&a).map(|n| (h, n)).map_err(|e| e.to_string()));
        let pmkl = analyze(&a, SolverKind::Pmkl { threads: 2 })
            .and_then(|h| h.factor(&a).map_err(|e| e.to_string()));
        let basker = analyze(
            &a,
            SolverKind::Basker {
                threads: 2,
                sync: SyncMode::PointToPoint,
            },
        )
        .and_then(|h| h.factor(&a).map_err(|e| e.to_string()));

        let (klu_nnz, btf_pct, btf_blocks) = match &klu {
            Ok((h, n)) => {
                let sym = h.as_klu().expect("KLU engine requested");
                (
                    n.stats().lu_nnz as f64,
                    100.0 * sym.small_block_fraction(64),
                    sym.nblocks() as f64,
                )
            }
            Err(_) => (f64::NAN, f64::NAN, f64::NAN),
        };
        let pmkl_nnz = pmkl
            .as_ref()
            .map(|n| n.stats().lu_nnz as f64)
            .unwrap_or(f64::NAN);
        let basker_nnz = basker
            .as_ref()
            .map(|n| n.stats().lu_nnz as f64)
            .unwrap_or(f64::NAN);

        if basker_nnz.is_finite() && pmkl_nnz.is_finite() {
            if e.high_fill {
                total_high += 1;
                if basker_nnz <= pmkl_nnz {
                    wins_high += 1;
                }
            } else {
                total_low += 1;
                if basker_nnz <= pmkl_nnz {
                    wins_low += 1;
                }
            }
        }

        json_rows.push(JsonRow {
            matrix: e.name.to_string(),
            n: a.nrows(),
            nnz: a.nnz(),
            klu_nnz,
            pmkl_nnz,
            basker_nnz,
            btf_pct,
            btf_blocks,
        });

        let fill = klu_nnz / a.nnz() as f64;
        rows.push(vec![
            e.name.to_string(),
            a.nrows().to_string(),
            fmt_eng(a.nnz() as f64),
            fmt_eng(klu_nnz),
            fmt_eng(pmkl_nnz),
            fmt_eng(basker_nnz),
            format!("{btf_pct:.1}"),
            format!("{btf_blocks:.0}"),
            format!("{fill:.2}"),
            format!("{:.1}", e.paper.fill_klu),
        ]);
    }
    print_markdown_table(
        &[
            "matrix",
            "n",
            "|A|",
            "KLU |L+U|",
            "PMKL |L+U|",
            "Basker |L+U|",
            "BTF %",
            "blocks",
            "fill",
            "paper fill",
        ],
        &rows,
    );
    println!();
    println!(
        "Basker memory <= PMKL on {wins_low}/{total_low} low-fill matrices \
         (paper: all of them) and {wins_high}/{total_high} high-fill \
         matrices (paper: PMKL slightly smaller above the line)."
    );

    if let Some(path) = args.json {
        // NaN (a failed solver) serializes as -1 — an impossible count
        // the regression gate will flag.
        let clean = |x: f64| if x.is_finite() { x } else { -1.0 };
        let mut out = String::from("[\n");
        for (i, r) in json_rows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"matrix\": \"{}\", \"n\": {}, \"nnz\": {}, \
                 \"klu_lu_nnz\": {:.0}, \"pmkl_lu_nnz\": {:.0}, \
                 \"basker_lu_nnz\": {:.0}, \"btf_pct\": {:.2}, \
                 \"btf_blocks\": {:.0}}}{}\n",
                r.matrix,
                r.n,
                r.nnz,
                clean(r.klu_nnz),
                clean(r.pmkl_nnz),
                clean(r.basker_nnz),
                clean(r.btf_pct),
                clean(r.btf_blocks),
                if i + 1 < json_rows.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }
}
