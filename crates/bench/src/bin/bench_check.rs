//! **CI perf-regression gate** — compares a freshly measured harness
//! JSON against the checked-in `BENCH_*.json` baseline and fails (exit
//! 1) on regressions.
//!
//! Philosophy: CI hosts are noisy, small and often 1-CPU, so raw
//! wall-clock is gated **loosely** (a 4× blow-up is a build problem, a
//! 40% wobble is weather). What is gated tightly is everything
//! deterministic or scale-free:
//!
//! * **ratios** — refactor-vs-factor time, speedup-vs-KLU — may not
//!   regress by more than the tolerance (default 25%);
//! * **counters** — lifecycle decisions (refactors, fallbacks,
//!   re-pivots) are value-driven and must stay put (±10% / ±2);
//! * **memory** — `|L+U|` and BTF statistics are deterministic and must
//!   match exactly;
//! * **invariants** — residual checks and the serving layer's
//!   zero-threads-after-warm-up property are hard failures at any size.
//!
//! Usage:
//! `bench_check --kind
//! {fig6|xyce|streams|fig5|table1|fig7|fig8|table2|shard|kernels|auto}
//! BASELINE FRESH [--tolerance 0.25] [--summary PATH]`
//!
//! `--summary` appends one markdown table row (pass/fail + the worst
//! ratio drift the gates saw) to `PATH` — pointed at
//! `$GITHUB_STEP_SUMMARY` in CI so every kind's outcome lands in the
//! job summary.

use basker_bench::json::Json;

/// Collected findings; any `fail` flips the exit code.
#[derive(Default)]
struct Report {
    failures: Vec<String>,
    checks: usize,
    /// Largest relative drift `|fresh/base - 1|` the ratio gates saw —
    /// surfaced in the step-summary table so a passing-but-sliding
    /// metric is visible before it trips a tolerance.
    worst_drift: f64,
}

impl Report {
    fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.failures.push(msg());
        }
    }

    fn drift(&mut self, base: f64, fresh: f64) {
        if base.abs() > 1e-12 {
            self.worst_drift = self.worst_drift.max((fresh / base - 1.0).abs());
        }
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_check: cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("bench_check: {path}: {e}"))
}

/// The rows of a harness document: either a bare array, or an object
/// wrapping the array under `key` (the composite `BENCH_fig6.json`
/// layout).
fn rows_of<'j>(doc: &'j Json, key: &str, path: &str) -> &'j [Json] {
    doc.arr()
        .or_else(|| doc.get(key).and_then(Json::arr))
        .unwrap_or_else(|| panic!("bench_check: {path}: no '{key}' rows"))
}

fn num(row: &Json, key: &str, path: &str) -> f64 {
    row.num_field(key)
        .unwrap_or_else(|| panic!("bench_check: {path}: row missing numeric '{key}'"))
}

/// `fresh` must be within `tol` *below* `base` (ratios where bigger is
/// better: speedups, reuse fractions).
fn gate_not_worse_down(r: &mut Report, what: &str, base: f64, fresh: f64, tol: f64) {
    r.drift(base, fresh);
    r.check(fresh >= base * (1.0 - tol), || {
        format!(
            "{what}: {fresh:.4} regressed more than {:.0}% below baseline {base:.4}",
            tol * 100.0
        )
    });
}

/// `fresh` must be within `tol` *above* `base` (ratios where smaller is
/// better: refactor-vs-factor time).
fn gate_not_worse_up(r: &mut Report, what: &str, base: f64, fresh: f64, tol: f64) {
    r.drift(base, fresh);
    r.check(fresh <= base * (1.0 + tol), || {
        format!(
            "{what}: {fresh:.4} regressed more than {:.0}% above baseline {base:.4}",
            tol * 100.0
        )
    });
}

/// Loose wall-clock sanity: 4× the baseline is a build problem, not
/// noise.
fn gate_wall_loose(r: &mut Report, what: &str, base: f64, fresh: f64) {
    r.check(fresh <= base * 4.0 + 1e-9, || {
        format!("{what}: wall {fresh:.4}s blew past 4x baseline {base:.4}s")
    });
}

/// Lifecycle counters are value-driven: allow ±10% or ±2, whichever is
/// larger (parallel summation order can nudge a gate at the margin).
fn gate_counter(r: &mut Report, what: &str, base: f64, fresh: f64) {
    let slack = (0.1 * base.abs()).max(2.0);
    r.check((fresh - base).abs() <= slack, || {
        format!("{what}: counter {fresh} drifted from baseline {base} (slack {slack})")
    });
}

fn gate_exact(r: &mut Report, what: &str, base: f64, fresh: f64) {
    r.check(base == fresh, || {
        format!("{what}: {fresh} != deterministic baseline {base}")
    });
}

fn find_row<'j>(rows: &'j [Json], keys: &[(&str, &str)], nums: &[(&str, f64)]) -> Option<&'j Json> {
    rows.iter().find(|row| {
        keys.iter().all(|(k, v)| row.str_field(k) == Some(*v))
            && nums.iter().all(|(k, v)| row.num_field(k) == Some(*v))
    })
}

// ------------------------------------------------------------- kinds --

fn check_fig6(r: &mut Report, base: &Json, fresh: &Json, tol: f64) {
    let brows = rows_of(base, "fig6_speedup", "baseline");
    let frows = rows_of(fresh, "fig6_speedup", "fresh");
    for b in brows {
        let matrix = b.str_field("matrix").expect("baseline row matrix");
        let threads = num(b, "threads", "baseline");
        let label = format!("fig6 {matrix} p={threads}");
        let Some(f) = find_row(frows, &[("matrix", matrix)], &[("threads", threads)]) else {
            r.check(false, || format!("{label}: row missing from fresh run"));
            continue;
        };
        gate_not_worse_down(
            r,
            &format!("{label} basker_speedup"),
            num(b, "basker_speedup", "baseline"),
            num(f, "basker_speedup", "fresh"),
            tol,
        );
        gate_not_worse_down(
            r,
            &format!("{label} pmkl_speedup"),
            num(b, "pmkl_speedup", "baseline"),
            num(f, "pmkl_speedup", "fresh"),
            tol,
        );
        gate_wall_loose(
            r,
            &format!("{label} basker_seconds"),
            num(b, "basker_seconds", "baseline"),
            num(f, "basker_seconds", "fresh"),
        );
    }
}

fn check_xyce(r: &mut Report, base: &Json, fresh: &Json, tol: f64) {
    let brows = rows_of(base, "xyce_sequence", "baseline");
    let frows = rows_of(fresh, "xyce_sequence", "fresh");
    for b in brows {
        let solver = b.str_field("solver").expect("baseline row solver");
        let label = format!("xyce {solver}");
        let Some(f) = find_row(frows, &[("solver", solver)], &[]) else {
            r.check(false, || format!("{label}: row missing from fresh run"));
            continue;
        };
        // The headline metric: how much cheaper value-only refactor
        // sessions are than fresh pivoting per step.
        let ratio = |row: &Json, which: &str| {
            num(row, "refactor_seconds", which) / num(row, "factor_seconds", which).max(1e-12)
        };
        gate_not_worse_up(
            r,
            &format!("{label} refactor/factor ratio"),
            ratio(b, "baseline"),
            ratio(f, "fresh"),
            tol,
        );
        for counter in ["refactors", "repivot_fallbacks", "quality_repivots"] {
            gate_counter(
                r,
                &format!("{label} {counter}"),
                num(b, counter, "baseline"),
                num(f, counter, "fresh"),
            );
        }
        gate_wall_loose(
            r,
            &format!("{label} factor_seconds"),
            num(b, "factor_seconds", "baseline"),
            num(f, "factor_seconds", "fresh"),
        );
    }
}

fn check_streams(r: &mut Report, base: &Json, fresh: &Json, tol: f64) {
    // Hard invariants of the serving layer, at any scale.
    r.check(num(fresh, "os_threads_delta", "fresh") == 0.0, || {
        "streams: OS threads were spawned after warm-up".into()
    });
    r.check(
        fresh.get("residual_ok").and_then(Json::bool) == Some(true),
        || "streams: a refined residual missed the limit".into(),
    );
    r.check(num(fresh, "errors", "fresh") == 0.0, || {
        "streams: a stream job errored".into()
    });
    let expected = num(fresh, "nstreams", "fresh") * num(fresh, "nsteps", "fresh");
    gate_exact(r, "streams steps", expected, num(fresh, "steps", "fresh"));
    r.check(num(fresh, "occupancy", "fresh") > 0.0, || {
        "streams: scheduler never batched (occupancy 0)".into()
    });
    // Assist-loop observability: the counters must be reported, and a
    // width-1 service must never touch the assist registry (the
    // single-core zero-overhead contract).
    let steals = num(fresh, "steal_attempts", "fresh");
    let assisted = num(fresh, "columns_assisted", "fresh");
    if num(fresh, "team_width", "fresh") == 1.0 {
        r.check(steals == 0.0 && assisted == 0.0, || {
            format!(
                "streams: width-1 run probed the assist registry \
                 (steal_attempts {steals}, columns_assisted {assisted})"
            )
        });
    }
    r.check(assisted <= steals, || {
        format!(
            "streams: columns_assisted {assisted} exceeds steal_attempts \
             {steals} (every assisted item needs a probe)"
        )
    });

    // Scale-dependent comparisons only when the fresh run matches the
    // baseline's shape.
    let same_shape = ["nstreams", "nsteps", "team_width"]
        .iter()
        .all(|k| num(base, k, "baseline") == num(fresh, k, "fresh"))
        && base.str_field("scale") == fresh.str_field("scale");
    if !same_shape {
        eprintln!(
            "bench_check: streams: fresh run shape differs from baseline; skipping ratio gates"
        );
        return;
    }
    let reuse = |row: &Json, which: &str| {
        let f = num(row, "factors", which);
        let rf = num(row, "refactors", which);
        rf / (f + rf).max(1.0)
    };
    gate_not_worse_down(
        r,
        "streams refactor fraction",
        reuse(base, "baseline"),
        reuse(fresh, "fresh"),
        tol,
    );
    gate_wall_loose(
        r,
        "streams wall_seconds",
        num(base, "wall_seconds", "baseline"),
        num(fresh, "wall_seconds", "fresh"),
    );
}

fn check_fig5(r: &mut Report, base: &Json, fresh: &Json, _tol: f64) {
    let brows = rows_of(base, "fig5_raw_time", "baseline");
    let frows = rows_of(fresh, "fig5_raw_time", "fresh");
    for b in brows {
        let matrix = b.str_field("matrix").expect("baseline row matrix");
        let threads = num(b, "threads", "baseline");
        let label = format!("fig5 {matrix} p={threads}");
        let Some(f) = find_row(frows, &[("matrix", matrix)], &[("threads", threads)]) else {
            r.check(false, || format!("{label}: row missing from fresh run"));
            continue;
        };
        for solver in ["basker", "pmkl", "slumt"] {
            gate_exact(
                r,
                &format!("{label} {solver}_lu_nnz"),
                num(b, &format!("{solver}_lu_nnz"), "baseline"),
                num(f, &format!("{solver}_lu_nnz"), "fresh"),
            );
            r.check(
                num(f, &format!("{solver}_residual"), "fresh") < 1e-8,
                || format!("{label}: {solver} residual check failed"),
            );
            gate_wall_loose(
                r,
                &format!("{label} {solver}_seconds"),
                num(b, &format!("{solver}_seconds"), "baseline"),
                num(f, &format!("{solver}_seconds"), "fresh"),
            );
        }
    }
}

fn check_table1(r: &mut Report, base: &Json, fresh: &Json, _tol: f64) {
    let brows = rows_of(base, "table1_memory", "baseline");
    let frows = rows_of(fresh, "table1_memory", "fresh");
    for b in brows {
        let matrix = b.str_field("matrix").expect("baseline row matrix");
        let label = format!("table1 {matrix}");
        let Some(f) = find_row(frows, &[("matrix", matrix)], &[]) else {
            r.check(false, || format!("{label}: row missing from fresh run"));
            continue;
        };
        // Memory statistics are deterministic: gate tightly.
        for key in [
            "n",
            "nnz",
            "klu_lu_nnz",
            "pmkl_lu_nnz",
            "basker_lu_nnz",
            "btf_blocks",
        ] {
            gate_exact(
                r,
                &format!("{label} {key}"),
                num(b, key, "baseline"),
                num(f, key, "fresh"),
            );
        }
    }
}

/// The wall-clock-only fig7 profile rows: every timing is host weather,
/// so each solver column gets only the loose 4× build-problem gate, plus
/// a hard failure when a solver stopped finishing at all (`inf`).
fn check_fig7(r: &mut Report, base: &Json, fresh: &Json, _tol: f64) {
    let brows = rows_of(base, "fig7_profiles", "baseline");
    let frows = rows_of(fresh, "fig7_profiles", "fresh");
    for b in brows {
        let matrix = b.str_field("matrix").expect("baseline row matrix");
        let label = format!("fig7 {matrix}");
        let Some(f) = find_row(frows, &[("matrix", matrix)], &[]) else {
            r.check(false, || format!("{label}: row missing from fresh run"));
            continue;
        };
        for key in [
            "klu_seconds",
            "basker1_seconds",
            "baskerp_seconds",
            "pmkl1_seconds",
            "pmklp_seconds",
        ] {
            let fv = num(f, key, "fresh");
            r.check(fv.is_finite(), || {
                format!("{label} {key}: solver failed (non-finite time)")
            });
            gate_wall_loose(r, &format!("{label} {key}"), num(b, key, "baseline"), fv);
        }
    }
}

/// Self-relative speedups on ideal inputs. On a small/1-CPU CI host the
/// p>1 self-speedup is dominated by scheduler weather (back-to-back
/// runs of the same binary swing 2x), so the speedup gate uses the same
/// loose 4x build-problem band as the wall gates: it catches a parallel
/// path that collapses (deadlocked assist loop, serialized pipeline)
/// without flagging host noise.
fn check_fig8(r: &mut Report, base: &Json, fresh: &Json, _tol: f64) {
    let brows = rows_of(base, "fig8_ideal", "baseline");
    let frows = rows_of(fresh, "fig8_ideal", "fresh");
    for b in brows {
        let solver = b.str_field("solver").expect("baseline row solver");
        let matrix = b.str_field("matrix").expect("baseline row matrix");
        let threads = num(b, "threads", "baseline");
        let label = format!("fig8 {solver} {matrix} p={threads}");
        let Some(f) = find_row(
            frows,
            &[("solver", solver), ("matrix", matrix)],
            &[("threads", threads)],
        ) else {
            r.check(false, || format!("{label}: row missing from fresh run"));
            continue;
        };
        let bs = num(b, "speedup", "baseline");
        let fs = num(f, "speedup", "fresh");
        r.check(fs.is_finite() && fs > 0.0, || {
            format!("{label} speedup: non-positive ({fs})")
        });
        r.check(fs >= bs / 4.0, || {
            format!("{label} speedup: {fs:.3} collapsed below 1/4 of baseline {bs:.3}")
        });
        gate_wall_loose(
            r,
            &format!("{label} seconds"),
            num(b, "seconds", "baseline"),
            num(f, "seconds", "fresh"),
        );
    }
}

/// Mesh-suite memory statistics are deterministic: exact gates only.
fn check_table2(r: &mut Report, base: &Json, fresh: &Json, _tol: f64) {
    let brows = rows_of(base, "table2_meshes", "baseline");
    let frows = rows_of(fresh, "table2_meshes", "fresh");
    for b in brows {
        let matrix = b.str_field("matrix").expect("baseline row matrix");
        let label = format!("table2 {matrix}");
        let Some(f) = find_row(frows, &[("matrix", matrix)], &[]) else {
            r.check(false, || format!("{label}: row missing from fresh run"));
            continue;
        };
        for key in ["n", "nnz", "pmkl_lu_nnz"] {
            gate_exact(
                r,
                &format!("{label} {key}"),
                num(b, key, "baseline"),
                num(f, key, "fresh"),
            );
        }
    }
}

fn check_shard(r: &mut Report, base: &Json, fresh: &Json, tol: f64) {
    // Hard invariants of the sharded tier, at any scale. The baseline
    // run is crash-free, so the accounting must be airtight: every
    // request answered, nothing errored, nothing respawned.
    gate_exact(
        r,
        "shard tickets_lost",
        0.0,
        num(fresh, "tickets_lost", "fresh"),
    );
    gate_exact(
        r,
        "shard requests == responses",
        num(fresh, "requests", "fresh"),
        num(fresh, "responses", "fresh"),
    );
    gate_exact(
        r,
        "shard clean_errors",
        0.0,
        num(fresh, "clean_errors", "fresh"),
    );
    gate_exact(r, "shard respawns", 0.0, num(fresh, "respawns", "fresh"));
    gate_exact(r, "shard reopens", 0.0, num(fresh, "reopens", "fresh"));
    r.check(
        fresh.get("residual_ok").and_then(Json::bool) == Some(true),
        || "shard: a refined residual missed the limit".into(),
    );
    gate_exact(
        r,
        "shard routed_streams",
        num(fresh, "streams", "fresh"),
        num(fresh, "routed_streams", "fresh"),
    );

    // Scale-dependent comparisons only when the fresh run matches the
    // baseline's shape.
    let same_shape = ["shards", "clients", "streams", "steps_per_stream"]
        .iter()
        .all(|k| num(base, k, "baseline") == num(fresh, k, "fresh"))
        && base.str_field("scale") == fresh.str_field("scale");
    if !same_shape {
        eprintln!("bench_check: shard: fresh run shape differs from baseline; skipping perf gates");
        return;
    }
    // Throughput and tail latency through OS processes and sockets are
    // noisy on shared CI hosts: gate them loosely (4x), like wall
    // clock, rather than at the ratio tolerance.
    let _ = tol;
    r.check(
        num(fresh, "steps_per_second", "fresh") >= num(base, "steps_per_second", "baseline") / 4.0,
        || {
            format!(
                "shard: steps/s {:.0} collapsed below 1/4 of baseline {:.0}",
                num(fresh, "steps_per_second", "fresh"),
                num(base, "steps_per_second", "baseline")
            )
        },
    );
    for key in ["p50_us", "p95_us", "p99_us"] {
        gate_wall_loose(
            r,
            &format!("shard {key}"),
            num(base, key, "baseline") / 1e6,
            num(fresh, key, "fresh") / 1e6,
        );
    }
    gate_wall_loose(
        r,
        "shard wall",
        num(base, "wall_seconds", "baseline"),
        num(fresh, "wall_seconds", "fresh"),
    );
}

fn check_kernels(r: &mut Report, base: &Json, fresh: &Json, tol: f64) {
    // Flop rates are host-dependent, so absolute GF/s is gated loosely
    // (4×, like wall clock). What is hard at any size is the shape of
    // the ladder: a scalar rung must exist, exactly one rung must be
    // dispatched, and wherever runtime detection picks a SIMD rung it
    // must actually pay — ≥2× the scalar rank-k flop rate (the
    // tentpole invariant of the dense kernel ladder).
    let _ = tol;
    let brows = rows_of(base, "kernel_ladder", "baseline");
    let frows = rows_of(fresh, "kernel_ladder", "fresh");

    let scalar = find_row(frows, &[("kernel", "scalar")], &[]);
    r.check(scalar.is_some(), || {
        "kernels: scalar rung missing from fresh run".into()
    });
    let dispatched: Vec<&Json> = frows
        .iter()
        .filter(|row| row.get("dispatch").and_then(Json::bool) == Some(true))
        .collect();
    r.check(dispatched.len() == 1, || {
        format!(
            "kernels: expected exactly one dispatched rung, found {}",
            dispatched.len()
        )
    });
    if let (Some(s), [d]) = (scalar, dispatched.as_slice()) {
        if d.str_field("kernel") != Some("scalar") {
            let sr = num(s, "rank_k_gflops", "fresh");
            let dr = num(d, "rank_k_gflops", "fresh");
            r.check(dr >= 2.0 * sr, || {
                format!(
                    "kernels: dispatched rung '{}' rank-k {dr:.2} GF/s is under 2x scalar {sr:.2}",
                    d.str_field("kernel").unwrap_or("?")
                )
            });
        }
    }

    // Per-rung rate comparisons, only for rungs the fresh host also
    // has (the SIMD rung differs across architectures).
    for b in brows {
        let kernel = b.str_field("kernel").expect("baseline row kernel");
        let Some(f) = find_row(frows, &[("kernel", kernel)], &[]) else {
            eprintln!("bench_check: kernels: rung '{kernel}' absent on this host; skipping");
            continue;
        };
        for op in ["axpy_gflops", "dot_gflops", "rank_k_gflops", "trsv_gflops"] {
            let (bv, fv) = (num(b, op, "baseline"), num(f, op, "fresh"));
            r.check(fv >= bv / 4.0, || {
                format!(
                    "kernels {kernel} {op}: {fv:.2} GF/s collapsed below 1/4 of baseline {bv:.2}"
                )
            });
        }
    }
}

/// The per-block routing harness. Functional invariants are hard at
/// any scale: refined residuals converge, the first hybrid session
/// probes then settles a mixed plan, the sibling session inherits that
/// exact plan from the routing cache without re-measuring. Probe
/// counts and block totals are structure-driven (the classifier is
/// deterministic) and gated exactly at matched shape; which strategy
/// wins a contested block is timing-driven, so per-strategy counts are
/// only compared *within* the fresh run (sibling == first), never
/// against the baseline host. Wall clock stays on the loose 4× band.
fn check_auto(r: &mut Report, base: &Json, fresh: &Json, _tol: f64) {
    let brows = rows_of(base, "auto_routing", "baseline");
    let frows = rows_of(fresh, "auto_routing", "fresh");
    for f in frows {
        let solver = f.str_field("solver").unwrap_or("?");
        r.check(
            f.get("residual_ok").and_then(Json::bool) == Some(true),
            || format!("auto {solver}: a refined residual missed the target"),
        );
    }

    let first = find_row(frows, &[("solver", "hybrid_first")], &[]);
    let sibling = find_row(frows, &[("solver", "hybrid_sibling")], &[]);
    r.check(first.is_some(), || {
        "auto: hybrid_first row missing from fresh run".into()
    });
    r.check(sibling.is_some(), || {
        "auto: hybrid_sibling row missing from fresh run".into()
    });
    if let Some(f) = first {
        r.check(num(f, "routing_probes", "fresh") >= 1.0, || {
            "auto hybrid_first: never probed a candidate plan".into()
        });
        r.check(
            f.get("from_cache").and_then(Json::bool) == Some(false),
            || "auto hybrid_first: first session of the pattern claims a cache hit".into(),
        );
        r.check(num(f, "distinct", "fresh") >= 2.0, || {
            "auto hybrid_first: plan is not mixed (fewer than 2 distinct strategies)".into()
        });
        let total = num(f, "gp_blocks", "fresh")
            + num(f, "sn_blocks", "fresh")
            + num(f, "nd_blocks", "fresh");
        gate_exact(
            r,
            "auto hybrid_first per-strategy blocks sum to btf_blocks",
            num(f, "btf_blocks", "fresh"),
            total,
        );
    }
    if let (Some(f), Some(s)) = (first, sibling) {
        gate_exact(
            r,
            "auto hybrid_sibling routing_probes",
            0.0,
            num(s, "routing_probes", "fresh"),
        );
        r.check(
            s.get("from_cache").and_then(Json::bool) == Some(true),
            || "auto hybrid_sibling: did not inherit the plan from the routing cache".into(),
        );
        for key in ["gp_blocks", "sn_blocks", "nd_blocks"] {
            gate_exact(
                r,
                &format!("auto hybrid_sibling {key} == hybrid_first"),
                num(f, key, "fresh"),
                num(s, key, "fresh"),
            );
        }
    }

    // Convergence: a session running the learned plan must not be
    // slower than 4× the best single global engine (the same loose
    // build-problem band as wall clock — routing that *loses* to every
    // global strategy by that much is a broken learner, not noise).
    let best_global = ["klu", "basker", "snlu"]
        .iter()
        .filter_map(|g| find_row(frows, &[("solver", g)], &[]))
        .map(|row| num(row, "seconds", "fresh"))
        .fold(f64::INFINITY, f64::min);
    if let Some(s) = sibling {
        if best_global.is_finite() {
            let sec = num(s, "seconds", "fresh");
            r.check(sec <= best_global * 4.0 + 1e-9, || {
                format!(
                    "auto hybrid_sibling: {sec:.4}s is over 4x the best global \
                     engine's {best_global:.4}s"
                )
            });
        }
    }

    for b in brows {
        let solver = b.str_field("solver").expect("baseline row solver");
        let label = format!("auto {solver}");
        let Some(f) = find_row(frows, &[("solver", solver)], &[]) else {
            r.check(false, || format!("{label}: row missing from fresh run"));
            continue;
        };
        gate_wall_loose(
            r,
            &format!("{label} seconds"),
            num(b, "seconds", "baseline"),
            num(f, "seconds", "fresh"),
        );
        for counter in ["factors", "refactors"] {
            gate_counter(
                r,
                &format!("{label} {counter}"),
                num(b, counter, "baseline"),
                num(f, counter, "fresh"),
            );
        }
        // Structure-driven at matched shape: BTF decomposition and the
        // number of candidate plans the learner measures.
        if num(b, "n", "baseline") == num(f, "n", "fresh") {
            for key in ["btf_blocks", "routing_probes"] {
                gate_exact(
                    r,
                    &format!("{label} {key}"),
                    num(b, key, "baseline"),
                    num(f, key, "fresh"),
                );
            }
        }
    }
}

fn run_kind(kind: &str, r: &mut Report, base: &Json, fresh: &Json, tol: f64) {
    match kind {
        "fig6" => check_fig6(r, base, fresh, tol),
        "xyce" => check_xyce(r, base, fresh, tol),
        "streams" => check_streams(r, base, fresh, tol),
        "fig5" => check_fig5(r, base, fresh, tol),
        "table1" => check_table1(r, base, fresh, tol),
        "fig7" => check_fig7(r, base, fresh, tol),
        "fig8" => check_fig8(r, base, fresh, tol),
        "table2" => check_table2(r, base, fresh, tol),
        "shard" => check_shard(r, base, fresh, tol),
        "kernels" => check_kernels(r, base, fresh, tol),
        "auto" => check_auto(r, base, fresh, tol),
        other => {
            eprintln!("bench_check: unknown kind '{other}'");
            std::process::exit(2);
        }
    }
}

/// Appends one markdown table row for `kind` to the summary file,
/// writing the table header first when the file is new or empty — the
/// shape `$GITHUB_STEP_SUMMARY` renders in the CI job summary.
fn write_summary(path: &str, kind: &str, report: &Report) {
    use std::io::Write;
    let header_needed = std::fs::metadata(path)
        .map(|m| m.len() == 0)
        .unwrap_or(true);
    let mut out = String::new();
    if header_needed {
        out.push_str("| bench kind | checks | result | worst ratio drift |\n");
        out.push_str("|---|---|---|---|\n");
    }
    let result = if report.failures.is_empty() {
        "pass ✅".to_string()
    } else {
        format!("**{} FAIL** ❌", report.failures.len())
    };
    out.push_str(&format!(
        "| {kind} | {} | {result} | {:.1}% |\n",
        report.checks,
        report.worst_drift * 100.0
    ));
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(out.as_bytes()))
        .unwrap_or_else(|e| panic!("bench_check: cannot write summary {path}: {e}"));
}

fn main() {
    let mut kind: Option<String> = None;
    let mut tol = 0.25f64;
    let mut summary: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let usage = || -> ! {
        eprintln!(
            "usage: bench_check --kind \
             {{fig6|xyce|streams|fig5|table1|fig7|fig8|table2|shard|kernels|auto}} \
             BASELINE FRESH [--tolerance 0.25] [--summary PATH]"
        );
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--kind" => kind = Some(args.next().unwrap_or_else(|| usage())),
            "--tolerance" => {
                tol = args
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--summary" => summary = Some(args.next().unwrap_or_else(|| usage())),
            _ => paths.push(a),
        }
    }
    let Some(kind) = kind else { usage() };
    if paths.len() != 2 {
        usage();
    }
    let base = load(&paths[0]);
    let fresh = load(&paths[1]);
    let mut report = Report::default();
    run_kind(&kind, &mut report, &base, &fresh, tol);

    println!(
        "bench_check {kind}: {} checks, {} failures ({} vs {})",
        report.checks,
        report.failures.len(),
        paths[0],
        paths[1]
    );
    for f in &report.failures {
        println!("  FAIL {f}");
    }
    if let Some(path) = summary {
        write_summary(&path, &kind, &report);
    }
    if !report.failures.is_empty() {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_for(kind: &str, base: &str, fresh: &str, tol: f64) -> Report {
        let b = Json::parse(base).unwrap();
        let f = Json::parse(fresh).unwrap();
        let mut r = Report::default();
        run_kind(kind, &mut r, &b, &f, tol);
        r
    }

    const XYCE_BASE: &str = r#"[{"solver": "KLU", "nsteps": 200, "factor_seconds": 1.0,
        "refactor_seconds": 0.30, "refactors": 199, "repivot_fallbacks": 0,
        "quality_repivots": 0, "refine_iterations": 0}]"#;

    #[test]
    fn xyce_passes_identical_and_fails_ratio_regression() {
        let r = report_for("xyce", XYCE_BASE, XYCE_BASE, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert!(r.checks >= 5);

        // refactor/factor ratio 0.30 -> 0.45 is a 50% regression.
        let worse = XYCE_BASE.replace("\"refactor_seconds\": 0.30", "\"refactor_seconds\": 0.45");
        let r = report_for("xyce", XYCE_BASE, &worse, 0.25);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        assert!(r.failures[0].contains("refactor/factor"));
    }

    #[test]
    fn xyce_counter_drift_fails() {
        let worse = XYCE_BASE.replace("\"repivot_fallbacks\": 0", "\"repivot_fallbacks\": 40");
        let r = report_for("xyce", XYCE_BASE, &worse, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("repivot_fallbacks")));
    }

    const FIG6_BASE: &str = r#"{"fig6_speedup": [{"matrix": "hvdc2_like", "paper_fill": 2.8,
        "threads": 2, "klu_seconds": 0.0102, "basker_seconds": 0.0110,
        "pmkl_seconds": 0.0139, "basker_speedup": 0.927, "pmkl_speedup": 0.736}]}"#;

    #[test]
    fn fig6_reads_composite_baseline_and_bare_fresh() {
        let fresh = r#"[{"matrix": "hvdc2_like", "paper_fill": 2.8, "threads": 2,
            "klu_seconds": 0.0102, "basker_seconds": 0.0112, "pmkl_seconds": 0.0140,
            "basker_speedup": 0.91, "pmkl_speedup": 0.73}]"#;
        let r = report_for("fig6", FIG6_BASE, fresh, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn fig6_speedup_collapse_fails_but_noise_passes() {
        let collapsed = r#"[{"matrix": "hvdc2_like", "paper_fill": 2.8, "threads": 2,
            "klu_seconds": 0.0102, "basker_seconds": 0.03, "pmkl_seconds": 0.0140,
            "basker_speedup": 0.34, "pmkl_speedup": 0.73}]"#;
        let r = report_for("fig6", FIG6_BASE, collapsed, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("basker_speedup")));

        let missing = r#"[{"matrix": "other", "paper_fill": 1.0, "threads": 2,
            "klu_seconds": 1.0, "basker_seconds": 1.0, "pmkl_seconds": 1.0,
            "basker_speedup": 1.0, "pmkl_speedup": 1.0}]"#;
        let r = report_for("fig6", FIG6_BASE, missing, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("row missing")));
    }

    const STREAMS_BASE: &str = r#"{"nstreams": 8, "nsteps": 50, "team_width": 4,
        "scale": "bench", "wall_seconds": 0.1, "serial_seconds": 0.09,
        "steps_per_second": 4000.0, "os_threads_delta": 0, "worst_residual": 1e-12,
        "residual_ok": true, "steps": 400, "errors": 0, "factors": 10,
        "refactors": 390, "batches": 120, "occupancy": 0.8, "max_queue_depth": 1,
        "columns_assisted": 12, "tasks_joined": 3, "steal_attempts": 40}"#;

    #[test]
    fn streams_hard_invariants() {
        let r = report_for("streams", STREAMS_BASE, STREAMS_BASE, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);

        let spawned = STREAMS_BASE.replace("\"os_threads_delta\": 0", "\"os_threads_delta\": 3");
        let r = report_for("streams", STREAMS_BASE, &spawned, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("OS threads")));

        let bad_resid = STREAMS_BASE.replace("\"residual_ok\": true", "\"residual_ok\": false");
        let r = report_for("streams", STREAMS_BASE, &bad_resid, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("residual")));
    }

    #[test]
    fn streams_shape_mismatch_keeps_only_invariants() {
        let other_shape = STREAMS_BASE
            .replace("\"nsteps\": 50", "\"nsteps\": 20")
            .replace("\"steps\": 400", "\"steps\": 160");
        let r = report_for("streams", STREAMS_BASE, &other_shape, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    const TABLE1_BASE: &str = r#"[{"matrix": "Power0_like", "n": 1000, "nnz": 5000,
        "klu_lu_nnz": 6000, "pmkl_lu_nnz": 9000, "basker_lu_nnz": 6100,
        "btf_pct": 95.0, "btf_blocks": 800}]"#;

    #[test]
    fn table1_memory_gated_exactly() {
        let r = report_for("table1", TABLE1_BASE, TABLE1_BASE, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        let drift = TABLE1_BASE.replace("\"basker_lu_nnz\": 6100", "\"basker_lu_nnz\": 6101");
        let r = report_for("table1", TABLE1_BASE, &drift, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("basker_lu_nnz")));
    }

    const FIG5_BASE: &str = r#"[{"matrix": "Power0_like", "paper_fill": 1.3, "threads": 1,
        "basker_seconds": 0.01, "pmkl_seconds": 0.02, "slumt_seconds": 0.02,
        "basker_lu_nnz": 6100, "pmkl_lu_nnz": 9000, "slumt_lu_nnz": 9000,
        "basker_residual": 1e-12, "pmkl_residual": 1e-12, "slumt_residual": 1e-12}]"#;

    #[test]
    fn fig5_residual_and_fill_gates() {
        let r = report_for("fig5", FIG5_BASE, FIG5_BASE, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        let bad = FIG5_BASE.replace("\"pmkl_residual\": 1e-12", "\"pmkl_residual\": 1e-3");
        let r = report_for("fig5", FIG5_BASE, &bad, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("pmkl residual")));
        let slow = FIG5_BASE.replace("\"basker_seconds\": 0.01", "\"basker_seconds\": 0.2");
        let r = report_for("fig5", FIG5_BASE, &slow, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("basker_seconds")));
    }

    #[test]
    fn streams_assist_gates() {
        // More assisted columns than probes is impossible by construction.
        let bogus = STREAMS_BASE
            .replace("\"columns_assisted\": 12", "\"columns_assisted\": 50")
            .replace("\"steal_attempts\": 40", "\"steal_attempts\": 10");
        let r = report_for("streams", STREAMS_BASE, &bogus, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("columns_assisted")));

        // A width-1 run must never touch the assist registry.
        let width1 = STREAMS_BASE.replace("\"team_width\": 4", "\"team_width\": 1");
        let r = report_for("streams", STREAMS_BASE, &width1, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("width-1")));
        let width1_clean = width1
            .replace("\"columns_assisted\": 12", "\"columns_assisted\": 0")
            .replace("\"tasks_joined\": 3", "\"tasks_joined\": 0")
            .replace("\"steal_attempts\": 40", "\"steal_attempts\": 0");
        let r = report_for("streams", STREAMS_BASE, &width1_clean, 0.25);
        assert!(!r.failures.iter().any(|f| f.contains("width-1")));
    }

    const FIG7_BASE: &str = r#"[{"matrix": "Power0_like", "threads": 2,
        "klu_seconds": 0.010, "basker1_seconds": 0.012, "baskerp_seconds": 0.009,
        "pmkl1_seconds": 0.020, "pmklp_seconds": 0.015}]"#;

    #[test]
    fn fig7_wall_loose_and_finite_gates() {
        let r = report_for("fig7", FIG7_BASE, FIG7_BASE, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);

        // 10x is past the loose wall gate even on a noisy host.
        let blown = FIG7_BASE.replace("\"baskerp_seconds\": 0.009", "\"baskerp_seconds\": 0.09");
        let r = report_for("fig7", FIG7_BASE, &blown, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("baskerp_seconds")));

        let missing = FIG7_BASE.replace("Power0_like", "other");
        let r = report_for("fig7", FIG7_BASE, &missing, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("row missing")));
    }

    const FIG8_BASE: &str = r#"[{"solver": "basker", "matrix": "mesh_like", "threads": 2,
        "seconds": 0.02, "speedup": 1.6}]"#;

    #[test]
    fn fig8_speedup_collapse_fails_but_host_noise_passes() {
        let r = report_for("fig8", FIG8_BASE, FIG8_BASE, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);

        // 1.6 -> 0.3 is below a quarter of baseline: a collapsed
        // parallel path, not host weather.
        let collapsed = FIG8_BASE.replace("\"speedup\": 1.6", "\"speedup\": 0.3");
        let r = report_for("fig8", FIG8_BASE, &collapsed, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("speedup")));

        // 1.6 -> 0.8 is a 2x swing: routine on a 1-CPU host, passes.
        let noisy = FIG8_BASE.replace("\"speedup\": 1.6", "\"speedup\": 0.8");
        let r = report_for("fig8", FIG8_BASE, &noisy, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    const TABLE2_BASE: &str = r#"[{"matrix": "mesh_like_s1", "n": 900, "nnz": 4400,
        "pmkl_lu_nnz": 21000}]"#;

    #[test]
    fn table2_memory_gated_exactly() {
        let r = report_for("table2", TABLE2_BASE, TABLE2_BASE, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        let drift = TABLE2_BASE.replace("\"pmkl_lu_nnz\": 21000", "\"pmkl_lu_nnz\": 21001");
        let r = report_for("table2", TABLE2_BASE, &drift, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("pmkl_lu_nnz")));
    }

    const KERNELS_BASE: &str = r#"[
        {"kernel": "scalar", "dispatch": false, "axpy_gflops": 3.0,
         "dot_gflops": 4.0, "rank_k_gflops": 6.0, "trsv_gflops": 2.0},
        {"kernel": "unrolled", "dispatch": false, "axpy_gflops": 3.1,
         "dot_gflops": 4.2, "rank_k_gflops": 4.4, "trsv_gflops": 2.1},
        {"kernel": "avx2+fma", "dispatch": true, "axpy_gflops": 6.0,
         "dot_gflops": 8.0, "rank_k_gflops": 17.0, "trsv_gflops": 3.0}]"#;

    #[test]
    fn kernels_dispatch_must_beat_scalar_twofold() {
        let r = report_for("kernels", KERNELS_BASE, KERNELS_BASE, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);

        // Dispatched SIMD rung sagging under 2x scalar is a hard fail.
        let sagged = KERNELS_BASE.replace("\"rank_k_gflops\": 17.0", "\"rank_k_gflops\": 11.0");
        let r = report_for("kernels", KERNELS_BASE, &sagged, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("under 2x scalar")));

        // A scalar-only host (dispatch falls back to scalar) skips it.
        let scalar_only = r#"[
            {"kernel": "scalar", "dispatch": true, "axpy_gflops": 3.0,
             "dot_gflops": 4.0, "rank_k_gflops": 6.0, "trsv_gflops": 2.0}]"#;
        let r = report_for("kernels", scalar_only, scalar_only, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn kernels_ladder_shape_and_loose_rates() {
        // Exactly one rung may be dispatched.
        let doubled = KERNELS_BASE.replace(
            "\"kernel\": \"unrolled\", \"dispatch\": false",
            "\"kernel\": \"unrolled\", \"dispatch\": true",
        );
        let r = report_for("kernels", KERNELS_BASE, &doubled, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("exactly one")));

        // Host noise (half the rate) passes; a 5x collapse fails.
        let noisy = KERNELS_BASE.replace("\"dot_gflops\": 4.0", "\"dot_gflops\": 2.1");
        let r = report_for("kernels", KERNELS_BASE, &noisy, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        let collapsed = KERNELS_BASE.replace("\"axpy_gflops\": 3.0", "\"axpy_gflops\": 0.5");
        let r = report_for("kernels", KERNELS_BASE, &collapsed, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("collapsed")));

        // A different architecture's SIMD rung: the baseline avx2 row
        // has no fresh counterpart (skipped), the neon rung dispatches.
        let other_arch = KERNELS_BASE.replace("avx2+fma", "neon");
        let r = report_for("kernels", KERNELS_BASE, &other_arch, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    const SHARD_BASE: &str = r#"{"shards": 3, "clients": 16, "streams": 1024,
        "steps_per_stream": 4, "scale": "bench", "kill_one": false,
        "wall_seconds": 1.5, "steps_per_second": 2700.0,
        "p50_us": 1500, "p95_us": 12000, "p99_us": 30000,
        "requests": 6144, "responses": 6144, "tickets_lost": 0,
        "clean_errors": 0, "respawns": 0, "reopens": 0, "failovers": 0,
        "routed_streams": 1024, "worst_residual": 1.2e-16, "residual_ok": true}"#;

    #[test]
    fn shard_hard_invariants() {
        let r = report_for("shard", SHARD_BASE, SHARD_BASE, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);

        // A lost ticket is a hard failure at any scale.
        let lost = SHARD_BASE
            .replace("\"tickets_lost\": 0", "\"tickets_lost\": 1")
            .replace("\"responses\": 6144", "\"responses\": 6143");
        let r = report_for("shard", SHARD_BASE, &lost, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("tickets_lost")));
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("requests == responses")));

        // A crash-free baseline run must not have respawned anything.
        let respawned = SHARD_BASE.replace("\"respawns\": 0", "\"respawns\": 1");
        let r = report_for("shard", SHARD_BASE, &respawned, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("respawns")));
    }

    const AUTO_BASE: &str = r#"[
        {"solver": "klu", "nsteps": 6, "n": 420, "seconds": 0.020, "factors": 1,
         "refactors": 5, "routing_probes": 0, "from_cache": false, "btf_blocks": 97,
         "gp_blocks": 0, "sn_blocks": 0, "nd_blocks": 0, "distinct": 0,
         "worst_residual": 1.0e-12, "residual_ok": true},
        {"solver": "basker", "nsteps": 6, "n": 420, "seconds": 0.025, "factors": 1,
         "refactors": 5, "routing_probes": 0, "from_cache": false, "btf_blocks": 97,
         "gp_blocks": 0, "sn_blocks": 0, "nd_blocks": 0, "distinct": 0,
         "worst_residual": 1.0e-12, "residual_ok": true},
        {"solver": "snlu", "nsteps": 6, "n": 420, "seconds": 0.030, "factors": 1,
         "refactors": 5, "routing_probes": 0, "from_cache": false, "btf_blocks": 97,
         "gp_blocks": 0, "sn_blocks": 0, "nd_blocks": 0, "distinct": 0,
         "worst_residual": 1.0e-12, "residual_ok": true},
        {"solver": "hybrid_first", "nsteps": 6, "n": 420, "seconds": 0.040, "factors": 3,
         "refactors": 3, "routing_probes": 2, "from_cache": false, "btf_blocks": 97,
         "gp_blocks": 96, "sn_blocks": 0, "nd_blocks": 1, "distinct": 2,
         "worst_residual": 1.0e-12, "residual_ok": true},
        {"solver": "hybrid_sibling", "nsteps": 6, "n": 420, "seconds": 0.022, "factors": 1,
         "refactors": 5, "routing_probes": 0, "from_cache": true, "btf_blocks": 97,
         "gp_blocks": 96, "sn_blocks": 0, "nd_blocks": 1, "distinct": 2,
         "worst_residual": 1.0e-12, "residual_ok": true}]"#;

    #[test]
    fn auto_routing_invariants_hold_and_break_loudly() {
        let r = report_for("auto", AUTO_BASE, AUTO_BASE, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);

        // A sibling that re-probed did not inherit: hard fail.
        let reprobed = AUTO_BASE.replace(
            r#""solver": "hybrid_sibling", "nsteps": 6, "n": 420, "seconds": 0.022, "factors": 1,
         "refactors": 5, "routing_probes": 0, "from_cache": true"#,
            r#""solver": "hybrid_sibling", "nsteps": 6, "n": 420, "seconds": 0.022, "factors": 3,
         "refactors": 3, "routing_probes": 2, "from_cache": false"#,
        );
        let r = report_for("auto", AUTO_BASE, &reprobed, 0.25);
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("hybrid_sibling routing_probes")));
        assert!(r.failures.iter().any(|f| f.contains("routing cache")));

        // A single-strategy plan means the classifier stopped mixing.
        let unmixed = AUTO_BASE.replace(
            r#""gp_blocks": 96, "sn_blocks": 0, "nd_blocks": 1, "distinct": 2"#,
            r#""gp_blocks": 97, "sn_blocks": 0, "nd_blocks": 0, "distinct": 1"#,
        );
        let r = report_for("auto", AUTO_BASE, &unmixed, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("not mixed")));

        // A missed residual is a hard failure at any scale.
        let bad = AUTO_BASE.replacen("\"residual_ok\": true", "\"residual_ok\": false", 1);
        let r = report_for("auto", AUTO_BASE, &bad, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("residual")));
    }

    #[test]
    fn auto_sibling_must_execute_the_first_sessions_plan() {
        // Sibling routed a contested block differently from what it
        // claims to have inherited — counts diverge within the fresh
        // run, independent of host timing.
        let diverged = AUTO_BASE.replace(
            r#""from_cache": true, "btf_blocks": 97,
         "gp_blocks": 96, "sn_blocks": 0, "nd_blocks": 1"#,
            r#""from_cache": true, "btf_blocks": 97,
         "gp_blocks": 95, "sn_blocks": 1, "nd_blocks": 1"#,
        );
        let r = report_for("auto", AUTO_BASE, &diverged, 0.25);
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("hybrid_sibling gp_blocks == hybrid_first")));

        // A learner that loses 4x to every global engine is broken.
        let slow = AUTO_BASE.replace(
            r#""solver": "hybrid_sibling", "nsteps": 6, "n": 420, "seconds": 0.022"#,
            r#""solver": "hybrid_sibling", "nsteps": 6, "n": 420, "seconds": 0.30"#,
        );
        let r = report_for("auto", AUTO_BASE, &slow, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("best global")));
    }

    #[test]
    fn summary_appends_rows_with_one_header() {
        let path = std::env::temp_dir().join(format!(
            "bench_check_summary_{}_{:?}.md",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);

        let ok = Report {
            checks: 12,
            ..Report::default()
        };
        write_summary(&path, "auto", &ok);
        let mut failing = Report {
            checks: 9,
            worst_drift: 0.183,
            ..Report::default()
        };
        failing.failures.push("xyce KLU: ratio regressed".into());
        write_summary(&path, "xyce", &failing);

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(
            text.matches("| bench kind |").count(),
            1,
            "exactly one header:\n{text}"
        );
        assert!(text.contains("| auto | 12 | pass ✅ | 0.0% |"), "{text}");
        assert!(
            text.contains("| xyce | 9 | **1 FAIL** ❌ | 18.3% |"),
            "{text}"
        );
    }

    #[test]
    fn ratio_gates_record_worst_drift() {
        let mut r = Report::default();
        gate_not_worse_down(&mut r, "x", 1.0, 0.95, 0.25);
        gate_not_worse_up(&mut r, "y", 0.30, 0.33, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert!((r.worst_drift - 0.10).abs() < 1e-9, "{}", r.worst_drift);
    }

    #[test]
    fn shard_perf_gated_loosely_and_shape_mismatch_skips() {
        // 2x latency wobble passes; a collapse past 4x fails.
        let noisy = SHARD_BASE.replace("\"p99_us\": 30000", "\"p99_us\": 55000");
        let r = report_for("shard", SHARD_BASE, &noisy, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);

        let collapsed = SHARD_BASE.replace(
            "\"steps_per_second\": 2700.0",
            "\"steps_per_second\": 500.0",
        );
        let r = report_for("shard", SHARD_BASE, &collapsed, 0.25);
        assert!(r.failures.iter().any(|f| f.contains("steps/s")));

        // A differently-shaped fresh run keeps only the invariants.
        let reshaped = SHARD_BASE
            .replace("\"streams\": 1024", "\"streams\": 16")
            .replace("\"routed_streams\": 1024", "\"routed_streams\": 16")
            .replace("\"steps_per_second\": 2700.0", "\"steps_per_second\": 10.0");
        let r = report_for("shard", SHARD_BASE, &reshaped, 0.25);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }
}
