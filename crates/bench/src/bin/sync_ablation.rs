//! **§IV synchronization ablation** — Basker's point-to-point sync vs a
//! full team barrier at every dependency level, on a `G2_Circuit`-like
//! mesh matrix.
//!
//! Paper numbers (8 cores, G2_Circuit): barrier-style synchronization
//! costs 11 % of total runtime; point-to-point reduces it to 2.3 %
//! (~79 % improvement). The shape to check: the point-to-point sync
//! fraction is a small fraction of the barrier one, and total time drops.
//!
//! Usage: `sync_ablation [test|bench]` (default `bench`).

use basker::{Basker, BaskerOptions, SyncMode};
use basker_matgen::{mesh2d, Scale};
use std::time::Instant;

fn main() {
    let scale = basker_bench::scale_from_args("sync_ablation");
    let k = match scale {
        Scale::Test => 24,
        Scale::Bench => 90,
    };
    let a = mesh2d(k, 119);
    println!(
        "# Sync ablation (G2_Circuit-like mesh, n = {}, |A| = {})\n",
        a.nrows(),
        a.nnz()
    );
    println!("| mode | threads | numeric seconds | sync fraction |");
    println!("|---|---|---|---|");

    let mut fractions = Vec::new();
    for (mode, name) in [
        (SyncMode::Barrier, "barrier"),
        (SyncMode::PointToPoint, "point-to-point"),
    ] {
        for p in [2usize, 4] {
            let sym = Basker::analyze(
                &a,
                &BaskerOptions {
                    nthreads: p,
                    sync_mode: mode,
                    nd_threshold: 64,
                    ..BaskerOptions::default()
                },
            )
            .expect("analyze");
            // best of 3
            let mut best_secs = f64::INFINITY;
            let mut best_frac = 0.0;
            for _ in 0..3 {
                let t = Instant::now();
                let num = sym.factor(&a).expect("factor");
                let secs = t.elapsed().as_secs_f64();
                if secs < best_secs {
                    best_secs = secs;
                    best_frac = num.stats.sync_fraction();
                }
            }
            println!(
                "| {name} | {p} | {best_secs:.4} | {:.1}% |",
                best_frac * 100.0
            );
            fractions.push((name, p, best_frac));
        }
    }
    println!();
    for p in [2usize, 4] {
        let b = fractions
            .iter()
            .find(|(n, q, _)| *n == "barrier" && *q == p)
            .unwrap()
            .2;
        let s = fractions
            .iter()
            .find(|(n, q, _)| *n == "point-to-point" && *q == p)
            .unwrap()
            .2;
        let improvement = if b > 0.0 { 100.0 * (b - s) / b } else { 0.0 };
        println!(
            "{p} threads: barrier {:.1}% -> point-to-point {:.1}% \
             ({improvement:.0}% reduction; paper: 11% -> 2.3%, ~79%).",
            b * 100.0,
            s * 100.0
        );
    }
}
