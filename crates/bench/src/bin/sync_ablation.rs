//! **§IV synchronization ablation** — Basker's point-to-point pipelined
//! sync vs a full team barrier at every dependency level, on a
//! `G2_Circuit`-like mesh matrix.
//!
//! Paper numbers (8 cores, G2_Circuit): barrier-style synchronization
//! costs 11 % of total runtime; point-to-point reduces it to 2.3 %
//! (~79 % improvement). The shape to check: the point-to-point sync
//! fraction is a small fraction of the barrier one, and total time drops.
//!
//! Usage: `sync_ablation [test|bench] [--json PATH]` (default `bench`).
//! `--json` additionally writes the measured rows as a JSON array (used
//! for the checked-in `BENCH_fig6.json` baseline).

use basker::{Basker, BaskerOptions, SyncMode};
use basker_bench::BenchArgs;
use basker_matgen::{mesh2d, Scale};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse("sync_ablation", false);
    let (scale, json_path) = (args.scale, args.json);
    let k = match scale {
        Scale::Test => 24,
        Scale::Bench => 90,
    };
    let a = mesh2d(k, 119);
    println!(
        "# Sync ablation (G2_Circuit-like mesh, n = {}, |A| = {})\n",
        a.nrows(),
        a.nnz()
    );
    println!("| mode | threads | numeric seconds | sync fraction |");
    println!("|---|---|---|---|");

    let threads = [1usize, 2, 4];
    let mut rows: Vec<(&str, usize, f64, f64)> = Vec::new();
    for (mode, name) in [
        (SyncMode::Barrier, "barrier"),
        (SyncMode::PointToPoint, "point-to-point"),
    ] {
        for &p in &threads {
            let sym = Basker::analyze(
                &a,
                &BaskerOptions {
                    nthreads: p,
                    sync_mode: mode,
                    nd_threshold: 64,
                    ..BaskerOptions::default()
                },
            )
            .expect("analyze");
            // best of 3
            let mut best_secs = f64::INFINITY;
            let mut best_frac = 0.0;
            for _ in 0..3 {
                let t = Instant::now();
                let num = sym.factor(&a).expect("factor");
                let secs = t.elapsed().as_secs_f64();
                if secs < best_secs {
                    best_secs = secs;
                    best_frac = num.stats.sync_fraction();
                }
            }
            println!(
                "| {name} | {p} | {best_secs:.4} | {:.1}% |",
                best_frac * 100.0
            );
            rows.push((name, p, best_secs, best_frac));
        }
    }
    println!();
    for &p in &threads[1..] {
        let b = rows
            .iter()
            .find(|(n, q, _, _)| *n == "barrier" && *q == p)
            .unwrap()
            .3;
        let s = rows
            .iter()
            .find(|(n, q, _, _)| *n == "point-to-point" && *q == p)
            .unwrap()
            .3;
        let improvement = if b > 0.0 { 100.0 * (b - s) / b } else { 0.0 };
        println!(
            "{p} threads: barrier {:.1}% -> point-to-point {:.1}% \
             ({improvement:.0}% reduction; paper: 11% -> 2.3%, ~79%).",
            b * 100.0,
            s * 100.0
        );
    }

    if let Some(path) = json_path {
        let mut out = String::from("[\n");
        for (i, (name, p, secs, frac)) in rows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"mode\": \"{name}\", \"threads\": {p}, \
                 \"numeric_seconds\": {secs:.6}, \"sync_fraction\": {frac:.4}}}{}\n",
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }
}
