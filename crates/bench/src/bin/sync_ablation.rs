//! **§IV synchronization ablation** — the work-assisting scheduler's
//! assist-then-wait path vs the legacy escalating backoff vs a full team
//! barrier at every dependency level, on a `G2_Circuit`-like mesh matrix.
//!
//! Paper numbers (8 cores, G2_Circuit): barrier-style synchronization
//! costs 11 % of total runtime; point-to-point reduces it to 2.3 %
//! (~79 % improvement). The shape to check: both point-to-point variants
//! keep the sync fraction a small fraction of the barrier one — and the
//! assist path additionally converts blocked time into executed columns
//! (the `columns_assisted` counter), which the backoff path by
//! construction cannot.
//!
//! Modes measured:
//! * `assist` — [`SyncMode::PointToPoint`]: blocked ranks join in-flight
//!   assistable tasks (the default scheduler path);
//! * `backoff` — [`SyncMode::Backoff`]: the pre-scheduler escalating
//!   spin → yield → sleep loop, kept behind this flag as the transition
//!   ablation;
//! * `barrier` — [`SyncMode::Barrier`]: the naive level-synchronous
//!   baseline.
//!
//! Usage: `sync_ablation [test|bench] [--json PATH]` (default `bench`).
//! `--json` additionally writes the measured rows as a JSON array.

use basker::{Basker, BaskerOptions, SyncMode};
use basker_bench::BenchArgs;
use basker_matgen::{mesh2d, Scale};
use std::time::Instant;

struct Row {
    mode: &'static str,
    threads: usize,
    secs: f64,
    frac: f64,
    columns_assisted: u64,
    tasks_joined: u64,
    steal_attempts: u64,
}

fn main() {
    let args = BenchArgs::parse("sync_ablation", false);
    let (scale, json_path) = (args.scale, args.json);
    let k = match scale {
        Scale::Test => 24,
        Scale::Bench => 90,
    };
    let a = mesh2d(k, 119);
    println!(
        "# Sync ablation (G2_Circuit-like mesh, n = {}, |A| = {})\n",
        a.nrows(),
        a.nnz()
    );
    println!("| mode | threads | numeric seconds | sync fraction | cols assisted | tasks joined | steal attempts |");
    println!("|---|---|---|---|---|---|---|");

    let threads = [1usize, 2, 4];
    let mut rows: Vec<Row> = Vec::new();
    for (mode, name) in [
        (SyncMode::Barrier, "barrier"),
        (SyncMode::Backoff, "backoff"),
        (SyncMode::PointToPoint, "assist"),
    ] {
        for &p in &threads {
            let sym = Basker::analyze(
                &a,
                &BaskerOptions {
                    nthreads: p,
                    sync_mode: mode,
                    nd_threshold: 64,
                    ..BaskerOptions::default()
                },
            )
            .expect("analyze");
            // best of 3
            let mut best: Option<Row> = None;
            for _ in 0..3 {
                let t = Instant::now();
                let num = sym.factor(&a).expect("factor");
                let secs = t.elapsed().as_secs_f64();
                if best.as_ref().map_or(true, |b| secs < b.secs) {
                    best = Some(Row {
                        mode: name,
                        threads: p,
                        secs,
                        frac: num.stats.sync_fraction(),
                        columns_assisted: num.stats.columns_assisted,
                        tasks_joined: num.stats.tasks_joined,
                        steal_attempts: num.stats.steal_attempts,
                    });
                }
            }
            let row = best.expect("at least one rep");
            println!(
                "| {name} | {p} | {:.4} | {:.1}% | {} | {} | {} |",
                row.secs,
                row.frac * 100.0,
                row.columns_assisted,
                row.tasks_joined,
                row.steal_attempts
            );
            // The ablation modes must never probe the assist registry —
            // that is exactly what the flag disables.
            if mode != SyncMode::PointToPoint {
                assert_eq!(
                    (row.columns_assisted, row.steal_attempts),
                    (0, 0),
                    "{name} mode must not assist"
                );
            }
            // Single-thread zero-overhead contract: no waits, no probes.
            if p == 1 {
                assert_eq!(row.steal_attempts, 0, "p=1 must not reach the wait loop");
            }
            rows.push(row);
        }
    }
    println!();
    let frac_of = |mode: &str, p: usize| {
        rows.iter()
            .find(|r| r.mode == mode && r.threads == p)
            .unwrap()
            .frac
    };
    for &p in &threads[1..] {
        let b = frac_of("barrier", p);
        let o = frac_of("backoff", p);
        let s = frac_of("assist", p);
        let improvement = if b > 0.0 { 100.0 * (b - s) / b } else { 0.0 };
        println!(
            "{p} threads: barrier {:.1}% / backoff {:.1}% -> assist {:.1}% \
             ({improvement:.0}% reduction vs barrier; paper: 11% -> 2.3%, ~79%).",
            b * 100.0,
            o * 100.0,
            s * 100.0
        );
    }

    if let Some(path) = json_path {
        let mut out = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"mode\": \"{}\", \"threads\": {}, \
                 \"numeric_seconds\": {:.6}, \"sync_fraction\": {:.4}, \
                 \"columns_assisted\": {}, \"tasks_joined\": {}, \
                 \"steal_attempts\": {}}}{}\n",
                r.mode,
                r.threads,
                r.secs,
                r.frac,
                r.columns_assisted,
                r.tasks_joined,
                r.steal_attempts,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }
}
