//! A minimal JSON reader for the benchmark baselines.
//!
//! The workspace has no registry access, so there is no `serde`; the
//! harnesses *write* JSON with `format!` and this module reads it back
//! for the regression gate (`bench_check`). It parses the full JSON
//! grammar the baselines use — objects, arrays, strings (with escapes),
//! numbers, booleans, null — into a small [`Json`] tree with typed
//! accessors. It is a reader for trusted, machine-written files, not a
//! hardened general-purpose parser — but it must **fail loudly, never
//! panic**, on malformed input: the regression gate and the serving
//! tier's tooling both read files that can be truncated or corrupted on
//! disk, and a garbled baseline should surface as a clean error, not a
//! process abort. Nesting is capped at [`MAX_DEPTH`] so adversarially
//! deep documents error out instead of overflowing the stack.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`, which covers every value the
    /// harnesses emit).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in file order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

/// Maximum container nesting depth accepted by the parser.
pub const MAX_DEPTH: usize = 128;

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        Json::parse_bytes(text.as_bytes())
    }

    /// Parses a document from raw bytes — the entry point for readers
    /// that come straight off a file or a wire frame, where the input
    /// is not yet known to be UTF-8. Invalid UTF-8 inside a string is a
    /// clean error, not a panic; bytes outside strings must be ASCII
    /// JSON syntax to parse at all.
    pub fn parse_bytes(bytes: &[u8]) -> Result<Json, String> {
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric field of an object (`get` + `num`).
    pub fn num_field(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::num)
    }

    /// String field of an object (`get` + `str`).
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::str)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'{' => parse_obj(b, pos, depth),
        b'[' => parse_arr(b, pos, depth),
        b'"' => Ok(Json::Str(parse_string(b, pos)?)),
        b't' => parse_lit(b, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(b, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_num(b, pos),
        _ => Err(format!("unexpected byte {:?} at {}", c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unknown escape \\{}", e as char)),
                }
            }
            _ => {
                // Multi-byte UTF-8 passes through unchanged.
                let len = utf8_len(c);
                let chunk = b
                    .get(*pos - 1..*pos - 1 + len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or("invalid utf-8 in string")?;
                out.push_str(chunk);
                *pos += len - 1;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut out: Vec<(String, Json)> = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos, depth + 1)?;
        if !out.iter().any(|(k, _)| *k == key) {
            out.push((key, val));
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_baseline_shapes() {
        let doc = r#"{
            "generated": "2026-07-30",
            "rows": [
                {"solver": "KLU", "seconds": 0.004692, "ok": true},
                {"solver": "Basker(p=2)", "seconds": 1.2e-3, "ok": false}
            ],
            "note": null
        }"#;
        let j = Json::parse(doc).unwrap();
        assert_eq!(j.str_field("generated"), Some("2026-07-30"));
        let rows = j.get("rows").and_then(Json::arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].str_field("solver"), Some("KLU"));
        assert!((rows[1].num_field("seconds").unwrap() - 1.2e-3).abs() < 1e-12);
        assert_eq!(rows[0].get("ok").and_then(Json::bool), Some(true));
        assert_eq!(j.get("note"), Some(&Json::Null));
    }

    #[test]
    fn escapes_and_numbers() {
        let j = Json::parse(r#"["a\"b\\c\nd", -1.5e-3, 42, "π"]"#).unwrap();
        let a = j.arr().unwrap();
        assert_eq!(a[0].str(), Some("a\"b\\c\nd"));
        assert!((a[1].num().unwrap() + 0.0015).abs() < 1e-15);
        assert_eq!(a[2].num(), Some(42.0));
        assert_eq!(a[3].str(), Some("π"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("[1] junk").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn truncated_objects_error_cleanly() {
        // Every prefix of a valid document must error, never panic —
        // this is what a half-written baseline or a cut-off wire frame
        // looks like.
        let doc = r#"{"rows": [{"solver": "KLU", "seconds": 1.5e-3}], "ok": true}"#;
        for cut in 0..doc.len() {
            let prefix = &doc[..cut];
            if prefix.is_empty() {
                continue;
            }
            // Prefixes that happen to end on a char boundary of a valid
            // sub-document don't exist for this doc: all cuts fail.
            assert!(
                Json::parse(prefix).is_err(),
                "prefix {cut:?} parsed: {prefix}"
            );
        }
        assert!(Json::parse(r#"{"a":"#).is_err());
        assert!(Json::parse(r#"{"a""#).is_err());
        assert!(Json::parse(r#"[{"#).is_err());
        assert!(Json::parse(r#"{"a": 1,"#).is_err());
        assert!(Json::parse(r#"{,}"#).is_err());
    }

    #[test]
    fn bad_escapes_error_cleanly() {
        assert!(Json::parse(r#""\x""#).is_err(), "unknown escape");
        assert!(Json::parse(r#""\"#).is_err(), "escape at end of input");
        assert!(Json::parse(r#""\u12""#).is_err(), "short \\u escape");
        assert!(Json::parse(r#""\u"#).is_err(), "truncated \\u escape");
        assert!(Json::parse(r#""\uZZZZ""#).is_err(), "non-hex \\u escape");
        assert!(Json::parse(r#""unterminated"#).is_err());
        // A \u escape of an unpaired surrogate decodes to the
        // replacement character rather than erroring (lossy, but safe).
        let j = Json::parse(r#""\ud800""#).unwrap();
        assert_eq!(j.str(), Some("\u{fffd}"));
    }

    #[test]
    fn non_utf8_bytes_error_cleanly() {
        // parse_bytes is the entry point for readers that haven't
        // validated UTF-8 yet (files, wire payloads).
        assert!(Json::parse_bytes(br#""a"#).is_err());
        assert!(Json::parse_bytes(b"\"\xff\xfe\"").is_err(), "invalid lead");
        assert!(Json::parse_bytes(b"\"\x80abc\"").is_err(), "stray cont.");
        assert!(
            Json::parse_bytes(b"\"\xe2\x82\"").is_err(),
            "truncated multi-byte sequence"
        );
        assert!(Json::parse_bytes(b"\xef\xbb\xbf{}").is_err(), "BOM");
        // Valid multi-byte UTF-8 still round-trips through parse_bytes.
        let j = Json::parse_bytes("\"π…✓\"".as_bytes()).unwrap();
        assert_eq!(j.str(), Some("π…✓"));
    }

    #[test]
    fn numbers_and_literals_error_cleanly() {
        assert!(Json::parse("-").is_err());
        assert!(Json::parse("1e").is_err());
        assert!(Json::parse("1.2.3").is_err());
        assert!(Json::parse("+1").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("falsey").is_err(), "trailing garbage");
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // 100k open brackets would overflow the stack in a naive
        // recursive-descent parser; the depth cap turns it into an
        // error long before that.
        let deep = "[".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
        let deep_obj = r#"{"a":"#.repeat(10_000);
        assert!(Json::parse(&deep_obj).is_err());
        // ... while the cap stays far above any real baseline's shape.
        let fine = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(Json::parse(&fine).is_ok());
    }
}
