//! Shared harness for the paper-reproduction experiments.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper; this library provides the solver drivers (uniform timing of the
//! *numeric* phase, which is what the paper compares), the synthetic
//! suites (via `basker-matgen`) and markdown table output helpers.
//!
//! Every solver is driven through the unified
//! [`basker_api::LinearSolver`] lifecycle — the harness is exactly the
//! kind of engine-agnostic caller the API exists for: one `analyze`,
//! repeated `factor`/`refactor`, allocation-free `solve_in_place`.

pub mod json;

use basker::SyncMode;
use basker_api::{
    Engine, Factorization, LinearSolver, ReusePolicy, SessionConfig, SolveSession, SolverConfig,
};
use basker_snlu::SnluMode;
use basker_sparse::spmv::spmv;
use basker_sparse::util::relative_residual;
use basker_sparse::{CscMat, SolveWorkspace};
use std::time::Instant;

/// Which solver to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// This paper's solver.
    Basker {
        /// Thread-team size (power of two).
        threads: usize,
        /// Synchronization mode for the ND numeric phase.
        sync: SyncMode,
    },
    /// The serial Gilbert–Peierls baseline (KLU work-alike).
    Klu,
    /// The supernodal comparator in Pardiso-like mode (PMKL stand-in).
    Pmkl {
        /// Level-set worker threads.
        threads: usize,
    },
    /// The supernodal comparator in SuperLU-MT-like 1-D mode.
    SluMt {
        /// Level-set worker threads.
        threads: usize,
    },
    /// Let [`Engine::Auto`] pick from the matrix structure.
    Auto {
        /// Worker threads for whichever engine is chosen.
        threads: usize,
    },
}

impl SolverKind {
    /// Short display name matching the paper's legends.
    pub fn label(&self) -> String {
        match self {
            SolverKind::Basker { threads, sync } => match sync {
                SyncMode::PointToPoint => format!("Basker(p={threads})"),
                SyncMode::Backoff => format!("Basker-backoff(p={threads})"),
                SyncMode::Barrier => format!("Basker-barrier(p={threads})"),
            },
            SolverKind::Klu => "KLU".to_string(),
            SolverKind::Pmkl { threads } => format!("PMKL(p={threads})"),
            SolverKind::SluMt { threads } => format!("SLU-MT(p={threads})"),
            SolverKind::Auto { threads } => format!("Auto(p={threads})"),
        }
    }

    /// The unified configuration that drives this solver kind.
    pub fn config(&self) -> SolverConfig {
        match *self {
            SolverKind::Basker { threads, sync } => SolverConfig::new()
                .engine(Engine::Basker)
                .threads(threads)
                .sync_mode(sync),
            SolverKind::Klu => SolverConfig::new().engine(Engine::Klu),
            SolverKind::Pmkl { threads } => SolverConfig::new()
                .engine(Engine::Snlu)
                .threads(threads)
                .snlu_mode(SnluMode::Pardiso),
            SolverKind::SluMt { threads } => SolverConfig::new()
                .engine(Engine::Snlu)
                .threads(threads)
                .snlu_mode(SnluMode::SluMt),
            SolverKind::Auto { threads } => {
                SolverConfig::new().engine(Engine::Auto).threads(threads)
            }
        }
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Seconds in the symbolic/analysis phase (once).
    pub analyze_seconds: f64,
    /// Best-of-k seconds of the numeric factorization.
    pub factor_seconds: f64,
    /// `|L+U|` as the solver reports it.
    pub lu_nnz: usize,
    /// Relative residual of a solve against a random right-hand side.
    pub residual: f64,
    /// Synchronization overhead fraction (Basker only, 0 otherwise).
    pub sync_fraction: f64,
}

/// Pre-analyzed solver handle so sequences can reuse the symbolic phase.
/// A thin alias over the unified API's symbolic handle.
pub type SolverHandle = LinearSolver;

/// Factored product of one numeric run.
pub type NumericHandle = Factorization;

/// Analyzes once.
pub fn analyze(a: &CscMat, kind: SolverKind) -> Result<SolverHandle, String> {
    LinearSolver::analyze(a, &kind.config()).map_err(|e| e.to_string())
}

/// Opens a [`SolveSession`] for this solver kind under `policy` — the
/// entry point for sequence-style harnesses (`xyce_sequence`,
/// `fig6_speedup`): the session owns every factor/refactor/re-pivot
/// decision, the harness just steps.
pub fn open_session(
    a: &CscMat,
    kind: SolverKind,
    policy: ReusePolicy,
) -> Result<SolveSession, String> {
    let cfg = SessionConfig::new().solver(kind.config()).policy(policy);
    SolveSession::new(a, &cfg).map_err(|e| e.to_string())
}

/// Times the numeric phase: repeats until `min_secs` total or `max_reps`,
/// reports the minimum.
pub fn run_solver(
    a: &CscMat,
    kind: SolverKind,
    min_secs: f64,
    max_reps: usize,
) -> Result<RunResult, String> {
    let t0 = Instant::now();
    let handle = analyze(a, kind)?;
    let analyze_seconds = t0.elapsed().as_secs_f64();

    let mut best = f64::INFINITY;
    let mut reps = 0usize;
    let mut last = None;
    let tstart = Instant::now();
    while reps < max_reps && (reps < 1 || tstart.elapsed().as_secs_f64() < min_secs) {
        let t = Instant::now();
        let num = handle.factor(a).map_err(|e| e.to_string())?;
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(num);
        reps += 1;
    }
    let num = last.expect("at least one rep");

    let xtrue: Vec<f64> = (0..a.ncols())
        .map(|i| 1.0 + (i % 9) as f64 * 0.25)
        .collect();
    let b = spmv(a, &xtrue);
    let mut x = b.clone();
    let mut ws = SolveWorkspace::for_dim(a.ncols());
    num.solve_in_place(&mut x, &mut ws)
        .map_err(|e| e.to_string())?;
    let residual = relative_residual(a, &x, &b);
    let stats = num.stats();

    Ok(RunResult {
        analyze_seconds,
        factor_seconds: best,
        lu_nnz: stats.lu_nnz,
        residual,
        sync_fraction: stats.sync_fraction,
    })
}

/// Geometric mean of a nonempty slice.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Performance-profile points: for each solver (row of `times`), the
/// fraction of problems solved within factor `tau` of the per-problem
/// best, evaluated at each `tau` in `taus`. `f64::INFINITY` marks a
/// failed run (never within any factor).
pub fn performance_profile(times: &[Vec<f64>], taus: &[f64]) -> Vec<Vec<f64>> {
    let nsolvers = times.len();
    let nprobs = times.first().map_or(0, |t| t.len());
    let best: Vec<f64> = (0..nprobs)
        .map(|p| {
            (0..nsolvers)
                .map(|s| times[s][p])
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    (0..nsolvers)
        .map(|s| {
            taus.iter()
                .map(|&tau| {
                    let within = (0..nprobs)
                        .filter(|&p| best[p].is_finite() && times[s][p] <= tau * best[p])
                        .count();
                    within as f64 / nprobs.max(1) as f64
                })
                .collect()
        })
        .collect()
}

/// Parses the common `[test|bench]` scale argument of the bin
/// harnesses. Unknown values abort with a usage message instead of
/// silently running the (expensive) bench scale.
pub fn scale_from_args(bin_name: &str) -> basker_matgen::Scale {
    BenchArgs::parse(bin_name, false).scale
}

/// Common command-line surface of the measurement bins:
/// `[test|bench] [--json PATH]`, plus `--matrix NAME` for bins that
/// support per-matrix isolation.
pub struct BenchArgs {
    /// Problem-size scale.
    pub scale: basker_matgen::Scale,
    /// Write machine-readable rows here as well.
    pub json: Option<String>,
    /// Restrict to one suite entry (only when the bin allows it).
    pub matrix: Option<String>,
}

impl BenchArgs {
    /// Parses `std::env::args()`, exiting with usage on anything
    /// unknown. `with_matrix` enables the `--matrix NAME` flag.
    pub fn parse(bin_name: &str, with_matrix: bool) -> BenchArgs {
        let usage = || -> ! {
            let m = if with_matrix { " [--matrix NAME]" } else { "" };
            eprintln!("usage: {bin_name} [test|bench] [--json PATH]{m}");
            std::process::exit(2);
        };
        let mut out = BenchArgs {
            scale: basker_matgen::Scale::Bench,
            json: None,
            matrix: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "test" => out.scale = basker_matgen::Scale::Test,
                "bench" => out.scale = basker_matgen::Scale::Bench,
                "--json" => out.json = Some(args.next().unwrap_or_else(|| usage())),
                "--matrix" if with_matrix => {
                    out.matrix = Some(args.next().unwrap_or_else(|| usage()))
                }
                _ => usage(),
            }
        }
        out
    }
}

/// Formats seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

/// Formats a count in engineering notation like the paper ("6.9E5").
pub fn fmt_eng(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let exp = x.abs().log10().floor();
    let mant = x / 10f64.powf(exp);
    format!("{mant:.1}E{exp:.0}")
}

/// Prints a markdown table.
pub fn print_markdown_table(headers: &[&str], rows: &[Vec<String>]) {
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Least-squares slope of `y` against `x` through the origin (speedup
/// trend lines of Fig. 8).
pub fn trend_slope(x: &[f64], y: &[f64]) -> f64 {
    let num: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
    let den: f64 = x.iter().map(|a| a * a).sum();
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_matgen::{mesh2d, powergrid, PowergridParams};

    #[test]
    fn run_all_solvers_on_small_inputs() {
        let grid = mesh2d(8, 1);
        let pg = powergrid(&PowergridParams {
            nfeeders: 5,
            feeder_len: 12,
            loop_prob: 0.2,
            seed: 3,
        });
        for a in [&grid, &pg] {
            for kind in [
                SolverKind::Klu,
                SolverKind::Basker {
                    threads: 2,
                    sync: SyncMode::PointToPoint,
                },
                SolverKind::Pmkl { threads: 2 },
                SolverKind::SluMt { threads: 2 },
                SolverKind::Auto { threads: 2 },
            ] {
                let r = run_solver(a, kind, 0.0, 1).unwrap_or_else(|e| {
                    panic!("{} failed: {e}", kind.label());
                });
                assert!(
                    r.residual < 1e-8,
                    "{}: residual {}",
                    kind.label(),
                    r.residual
                );
                assert!(r.lu_nnz > 0);
            }
        }
    }

    #[test]
    fn auto_kind_picks_structurally() {
        let mesh = mesh2d(10, 1);
        let pg = powergrid(&PowergridParams {
            nfeeders: 6,
            feeder_len: 15,
            loop_prob: 0.2,
            seed: 3,
        });
        let m = analyze(&mesh, SolverKind::Auto { threads: 2 }).unwrap();
        let p = analyze(&pg, SolverKind::Auto { threads: 2 }).unwrap();
        assert_ne!(
            m.engine(),
            p.engine(),
            "auto must split mesh vs powergrid (got {} for both)",
            m.engine()
        );
    }

    #[test]
    fn geometric_mean_and_profiles() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        let times = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let prof = performance_profile(&times, &[1.0, 2.0]);
        assert_eq!(prof[0], vec![0.5, 1.0]);
        assert_eq!(prof[1], vec![0.5, 1.0]);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_eng(690000.0), "6.9E5");
        assert_eq!(fmt_secs(2.0), "2.00s");
        assert!(fmt_secs(0.002).contains("ms"));
        assert!((trend_slope(&[1.0, 2.0], &[2.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
