//! Criterion micro-benchmarks: end-to-end numeric factorization per
//! solver per matrix class (small instances; the paper-scale runs live in
//! the `src/bin/` harnesses).

use basker::{Basker, BaskerOptions, SyncMode};
use basker_klu::{KluOptions, KluSymbolic};
use basker_matgen::{circuit, mesh2d, powergrid, CircuitParams, PowergridParams};
use basker_snlu::{Snlu, SnluOptions};
use basker_sparse::CscMat;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn matrices() -> Vec<(&'static str, CscMat)> {
    vec![
        (
            "powergrid",
            powergrid(&PowergridParams {
                nfeeders: 20,
                feeder_len: 24,
                loop_prob: 0.2,
                seed: 1,
            }),
        ),
        (
            "circuit",
            circuit(&CircuitParams {
                nsub: 6,
                sub_size: 80,
                ..CircuitParams::default()
            }),
        ),
        ("mesh2d", mesh2d(24, 2)),
    ]
}

fn bench_factor(c: &mut Criterion) {
    let mut g = c.benchmark_group("factor");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for (name, a) in matrices() {
        let klu = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
        g.bench_with_input(BenchmarkId::new("klu", name), &a, |b, a| {
            b.iter(|| klu.factor(a).unwrap())
        });
        let bsk = Basker::analyze(
            &a,
            &BaskerOptions {
                nthreads: 2,
                nd_threshold: 64,
                sync_mode: SyncMode::PointToPoint,
                ..BaskerOptions::default()
            },
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("basker_p2", name), &a, |b, a| {
            b.iter(|| bsk.factor(a).unwrap())
        });
        let snlu = Snlu::analyze(
            &a,
            &SnluOptions {
                nthreads: 2,
                ..SnluOptions::default()
            },
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("pmkl_p2", name), &a, |b, a| {
            b.iter(|| snlu.factor(a).unwrap())
        });
    }
    g.finish();
}

fn bench_refactor(c: &mut Criterion) {
    let mut g = c.benchmark_group("refactor");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for (name, a) in matrices() {
        let klu = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
        let mut knum = klu.factor(&a).unwrap();
        g.bench_with_input(BenchmarkId::new("klu", name), &a, |b, a| {
            b.iter(|| knum.refactor(a).unwrap())
        });
        let bsk = Basker::analyze(
            &a,
            &BaskerOptions {
                nthreads: 2,
                nd_threshold: 64,
                ..BaskerOptions::default()
            },
        )
        .unwrap();
        let mut bnum = bsk.factor(&a).unwrap();
        g.bench_with_input(BenchmarkId::new("basker", name), &a, |b, a| {
            b.iter(|| bnum.refactor(a).unwrap())
        });
    }
    g.finish();
}

fn bench_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut ws = basker_sparse::SolveWorkspace::new();
    for (name, a) in matrices() {
        let rhs = vec![1.0; a.ncols()];
        let mut x = rhs.clone();
        let klu = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
        let knum = klu.factor(&a).unwrap();
        g.bench_with_input(BenchmarkId::new("klu", name), &rhs, |b, rhs| {
            b.iter(|| {
                x.copy_from_slice(rhs);
                knum.solve_in_place(&mut x, &mut ws);
            })
        });
        let bsk = Basker::analyze(
            &a,
            &BaskerOptions {
                nthreads: 2,
                nd_threshold: 64,
                ..BaskerOptions::default()
            },
        )
        .unwrap();
        let bnum = bsk.factor(&a).unwrap();
        g.bench_with_input(BenchmarkId::new("basker", name), &rhs, |b, rhs| {
            b.iter(|| {
                x.copy_from_slice(rhs);
                bnum.solve_in_place(&mut x, &mut ws);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_factor, bench_refactor, bench_solve);
criterion_main!(benches);
