//! Criterion micro-benchmarks of the computational kernels: the
//! Gilbert–Peierls block factorization, the panel solve, the block
//! reduction, SpMV and the triangular solves.

use basker::reduce::reduce_block;
use basker_klu::gp::{factor_block_column, lsolve_panel, refactor_block_column};
use basker_matgen::mesh2d;
use basker_sparse::blocks::extract_range;
use basker_sparse::spmv::spmv;
use basker_sparse::trisolve::{lower_solve_in_place, upper_solve_in_place};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_gp(c: &mut Criterion) {
    let a = mesh2d(28, 3);
    let mut g = c.benchmark_group("gp_kernel");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("factor_block_column", |b| {
        b.iter(|| factor_block_column(&a, &[], 0.001, 0).unwrap())
    });
    let mut blu = factor_block_column(&a, &[], 0.001, 0).unwrap();
    g.bench_function("refactor_block_column", |b| {
        b.iter(|| refactor_block_column(&mut blu, &a, &[], 0).unwrap())
    });
    let panel_cols = extract_range(&a, 0..a.nrows(), 0..64);
    g.bench_function("lsolve_panel_64cols", |b| {
        b.iter(|| lsolve_panel(&blu, &panel_cols))
    });
    g.finish();
}

fn bench_reduce_and_spmv(c: &mut Criterion) {
    let a = mesh2d(24, 4);
    let blu = factor_block_column(&a, &[], 0.001, 0).unwrap();
    let u = lsolve_panel(&blu, &extract_range(&a, 0..a.nrows(), 0..48));
    let target = extract_range(&a, 0..a.nrows(), 0..48);
    let mut g = c.benchmark_group("kernels");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("reduce_block", |b| {
        b.iter(|| reduce_block(&target, &[(&blu.l, &u)]))
    });
    let x = vec![1.0; a.ncols()];
    g.bench_function("spmv", |b| b.iter(|| spmv(&a, &x)));
    let mut rhs = vec![1.0; a.ncols()];
    g.bench_function("lower_solve", |b| {
        b.iter(|| {
            rhs.fill(1.0);
            lower_solve_in_place(&blu.l, &mut rhs, true);
        })
    });
    g.bench_function("upper_solve", |b| {
        b.iter(|| {
            rhs.fill(1.0);
            upper_solve_in_place(&blu.u, &mut rhs);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_gp, bench_reduce_and_spmv);
criterion_main!(benches);
