//! Criterion micro-benchmarks of the ordering substrates: AMD, BTF
//! (matching + SCC), bottleneck MWCM and nested dissection.

use basker_matgen::{circuit, mesh2d, CircuitParams};
use basker_ordering::amd::amd_order;
use basker_ordering::btf::btf_form;
use basker_ordering::mwcm::mwcm_bottleneck;
use basker_ordering::nd::nested_dissection;
use basker_ordering::scc::strongly_connected_components;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_orderings(c: &mut Criterion) {
    let mesh = mesh2d(28, 5);
    let circ = circuit(&CircuitParams {
        nsub: 8,
        sub_size: 80,
        feedthrough: 0.5,
        ..CircuitParams::default()
    });
    let mut g = c.benchmark_group("orderings");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("amd_mesh", |b| b.iter(|| amd_order(&mesh)));
    g.bench_function("amd_circuit", |b| b.iter(|| amd_order(&circ)));
    g.bench_function("mwcm_circuit", |b| b.iter(|| mwcm_bottleneck(&circ)));
    g.bench_function("scc_circuit", |b| {
        b.iter(|| strongly_connected_components(&circ))
    });
    g.bench_function("btf_circuit", |b| b.iter(|| btf_form(&circ).unwrap()));
    g.bench_function("nd_mesh_4leaves", |b| {
        b.iter(|| nested_dissection(&mesh, 2))
    });
    g.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
