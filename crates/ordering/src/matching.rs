//! Maximum-cardinality bipartite matching (MC21-style transversal search).
//!
//! Sparse LU pre-orderings need a *transversal*: a matching of columns to
//! rows so that the permuted matrix has a zero-free diagonal (paper §II,
//! citing Duff & Koster). This module implements the classic MC21 scheme:
//! per-column depth-first augmenting-path search with a "cheap assignment"
//! fast path that grabs any not-yet-matched row before recursing.

use basker_sparse::CscMat;

/// A (possibly partial) column→row matching.
#[derive(Debug, Clone)]
pub struct Matching {
    /// `row_of_col[j]` = row matched to column `j`, or `usize::MAX`.
    pub row_of_col: Vec<usize>,
    /// `col_of_row[i]` = column matched to row `i`, or `usize::MAX`.
    pub col_of_row: Vec<usize>,
    /// Number of matched pairs (the structural rank when maximum).
    pub size: usize,
}

impl Matching {
    /// True when every column is matched (full structural rank).
    pub fn is_perfect(&self) -> bool {
        self.size == self.row_of_col.len() && self.size == self.col_of_row.len()
    }
}

/// Scratch space reused across matching invocations (the bottleneck MWCM
/// search runs many matchings on the same matrix).
pub struct MatchingWorkspace {
    cheap: Vec<usize>,
    visited: Vec<usize>,
    stamp: usize,
    // Explicit DFS stack of (column, next-edge-position).
    stack: Vec<(usize, usize)>,
}

impl MatchingWorkspace {
    /// Workspace for an `nrows x ncols` problem.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        MatchingWorkspace {
            cheap: vec![0; ncols],
            visited: vec![0; nrows.max(ncols)],
            stamp: 0,
            stack: Vec::with_capacity(64),
        }
    }
}

/// Computes a maximum matching of columns to rows over the nonzero pattern,
/// considering only entries for which `keep(|value|)` is true. The closure
/// lets the bottleneck MWCM search restrict edges by magnitude without
/// copying the matrix.
pub fn max_matching_filtered<F: Fn(f64) -> bool>(
    a: &CscMat,
    keep: F,
    ws: &mut MatchingWorkspace,
) -> Matching {
    let (nrows, ncols) = (a.nrows(), a.ncols());
    let mut row_of_col = vec![usize::MAX; ncols];
    let mut col_of_row = vec![usize::MAX; nrows];
    ws.cheap.iter_mut().for_each(|c| *c = 0);
    let mut size = 0usize;

    for jstart in 0..ncols {
        if row_of_col[jstart] != usize::MAX {
            continue;
        }
        ws.stamp += 1;
        let stamp = ws.stamp;
        ws.stack.clear();
        ws.stack.push((jstart, 0));
        ws.visited[jstart] = stamp;
        // Iterative DFS over alternating paths; the stack holds the current
        // column path so the matching can be flipped when a free row turns
        // up.
        let mut found: Option<usize> = None; // free row found at stack top
        'dfs: while !ws.stack.is_empty() {
            let top = ws.stack.len() - 1;
            let j = ws.stack[top].0;
            let rows = a.col_rows(j);
            let vals = a.col_values(j);
            // Cheap assignment: scan for an unmatched row, resuming from
            // where previous passes left off.
            while ws.cheap[j] < rows.len() {
                let k = ws.cheap[j];
                ws.cheap[j] += 1;
                let r = rows[k];
                if col_of_row[r] == usize::MAX && keep(vals[k].abs()) {
                    found = Some(r);
                    break 'dfs;
                }
            }
            // Recursive step: follow matched rows into their columns.
            let mut advanced = false;
            while ws.stack[top].1 < rows.len() {
                let k = ws.stack[top].1;
                ws.stack[top].1 += 1;
                let r = rows[k];
                if !keep(vals[k].abs()) {
                    continue;
                }
                let j2 = col_of_row[r];
                if j2 != usize::MAX && ws.visited[j2] != stamp {
                    ws.visited[j2] = stamp;
                    ws.stack.push((j2, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                ws.stack.pop();
            }
        }
        if let Some(free_row) = found {
            // Augment along the stack: stack holds the alternating path of
            // columns; the free row attaches to the top column, and each
            // lower column steals the row its successor was matched to.
            let mut r = free_row;
            for idx in (0..ws.stack.len()).rev() {
                let (j, _) = ws.stack[idx];
                let prev = row_of_col[j];
                row_of_col[j] = r;
                col_of_row[r] = j;
                r = prev;
                if r == usize::MAX {
                    break;
                }
            }
            size += 1;
        }
    }
    Matching {
        row_of_col,
        col_of_row,
        size,
    }
}

/// Maximum matching over the full pattern (every stored entry is an edge,
/// including explicit zeros — the *structural* transversal).
pub fn max_transversal(a: &CscMat) -> Matching {
    let mut ws = MatchingWorkspace::new(a.nrows(), a.ncols());
    max_matching_filtered(a, |_| true, &mut ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_sparse::TripletMat;

    fn from_pattern(nrows: usize, ncols: usize, entries: &[(usize, usize)]) -> CscMat {
        let mut t = TripletMat::new(nrows, ncols);
        for &(i, j) in entries {
            t.push(i, j, 1.0);
        }
        t.to_csc()
    }

    fn check_valid(a: &CscMat, m: &Matching) {
        let mut used_rows = std::collections::HashSet::new();
        let mut count = 0;
        for (j, &r) in m.row_of_col.iter().enumerate() {
            if r != usize::MAX {
                assert!(used_rows.insert(r), "row {r} matched twice");
                assert!(a.col_rows(j).contains(&r), "matched pair not an edge");
                assert_eq!(m.col_of_row[r], j);
                count += 1;
            }
        }
        assert_eq!(count, m.size);
    }

    #[test]
    fn identity_matches_trivially() {
        let a = CscMat::identity(5);
        let m = max_transversal(&a);
        assert!(m.is_perfect());
        for j in 0..5 {
            assert_eq!(m.row_of_col[j], j);
        }
    }

    #[test]
    fn needs_augmentation() {
        // Columns prefer row 0; augmenting paths must reshuffle.
        // col0: rows {0,1}; col1: rows {0}; col2: rows {0,2}
        let a = from_pattern(3, 3, &[(0, 0), (1, 0), (0, 1), (0, 2), (2, 2)]);
        let m = max_transversal(&a);
        check_valid(&a, &m);
        assert!(m.is_perfect());
        assert_eq!(m.row_of_col[1], 0); // only option
    }

    #[test]
    fn structurally_singular_detected() {
        // Two columns share the single row 0 and nothing else.
        let a = from_pattern(2, 2, &[(0, 0), (0, 1)]);
        let m = max_transversal(&a);
        check_valid(&a, &m);
        assert_eq!(m.size, 1);
        assert!(!m.is_perfect());
    }

    #[test]
    fn rectangular_matching() {
        let a = from_pattern(2, 3, &[(0, 0), (1, 1), (0, 2), (1, 2)]);
        let m = max_transversal(&a);
        check_valid(&a, &m);
        assert_eq!(m.size, 2);
    }

    #[test]
    fn long_augmenting_chain() {
        // A bidiagonal-like pattern that forces a full-length alternating
        // chain: col j has rows {j, j+1}, last col has only row {n-1}... and
        // col 0..: build so greedy picks wrong row first.
        let n = 50;
        let mut entries = Vec::new();
        for j in 0..n {
            entries.push((j, j));
            if j + 1 < n {
                entries.push((j + 1, j));
            }
        }
        // Add a column that only has row 0, forcing a cascade if 0 is taken.
        let a = from_pattern(n, n, &entries);
        let m = max_transversal(&a);
        check_valid(&a, &m);
        assert!(m.is_perfect());
    }

    #[test]
    fn filtered_matching_respects_threshold() {
        let mut t = TripletMat::new(2, 2);
        t.push(0, 0, 10.0);
        t.push(1, 0, 0.1);
        t.push(0, 1, 5.0);
        t.push(1, 1, 0.2);
        let a = t.to_csc();
        let mut ws = MatchingWorkspace::new(2, 2);
        // With threshold 1.0 only (0,0) and (0,1) survive -> max matching 1.
        let m = max_matching_filtered(&a, |v| v >= 1.0, &mut ws);
        assert_eq!(m.size, 1);
        // With threshold 0.05 all edges survive -> perfect.
        let m = max_matching_filtered(&a, |v| v >= 0.05, &mut ws);
        assert!(m.is_perfect());
    }

    #[test]
    fn empty_matrix() {
        let a = CscMat::zero(0, 0);
        let m = max_transversal(&a);
        assert!(m.is_perfect());
        assert_eq!(m.size, 0);
    }

    #[test]
    fn random_patterns_yield_valid_matchings() {
        // Deterministic pseudo-random pattern; verify validity invariants.
        let mut seed = 12345u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for trial in 0..20 {
            let n = 5 + trial;
            let mut entries = Vec::new();
            for j in 0..n {
                let deg = 1 + rnd() % 4;
                for _ in 0..deg {
                    entries.push((rnd() % n, j));
                }
            }
            let a = from_pattern(n, n, &entries);
            let m = max_transversal(&a);
            check_valid(&a, &m);
        }
    }
}
