//! Elimination trees, postorder and level scheduling.
//!
//! The elimination tree drives both the supernodal comparator's schedule
//! and Basker's per-leaf symbolic counts (paper Alg. 3: "Compute column
//! count and etree_i of LU_ii").

use basker_sparse::CscMat;

/// Sentinel for "no parent" (tree roots).
pub const NONE: usize = usize::MAX;

/// Elimination tree of a matrix with **symmetric pattern** (only entries
/// with `i < j` of each column `j` — the strict upper triangle — are used,
/// so passing `A + Aᵀ` handles the unsymmetric case).
///
/// Classic Liu algorithm with path compression (virtual ancestors).
pub fn etree(a: &CscMat) -> Vec<usize> {
    assert!(a.is_square());
    let n = a.ncols();
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for j in 0..n {
        for &i in a.col_rows(j) {
            if i >= j {
                continue;
            }
            // Walk from i to the root of its current subtree, compressing.
            let mut k = i;
            while ancestor[k] != NONE && ancestor[k] != j {
                let next = ancestor[k];
                ancestor[k] = j;
                k = next;
            }
            if ancestor[k] == NONE {
                ancestor[k] = j;
                parent[k] = j;
            }
        }
    }
    parent
}

/// Column elimination tree of an unsymmetric matrix: the etree of `AᵀA`
/// computed without forming the product (each row of `A` links its columns
/// into a clique through the smallest one).
pub fn col_etree(a: &CscMat) -> Vec<usize> {
    let n = a.ncols();
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    // prev_col[i]: the last column seen containing row i (clique chaining).
    let mut prev_col = vec![NONE; a.nrows()];
    for j in 0..n {
        for &i in a.col_rows(j) {
            // Chain from the previous column containing row i.
            let mut k = prev_col[i];
            prev_col[i] = j;
            if k == NONE {
                continue;
            }
            while ancestor[k] != NONE && ancestor[k] != j {
                let next = ancestor[k];
                ancestor[k] = j;
                k = next;
            }
            if ancestor[k] == NONE && k != j {
                ancestor[k] = j;
                parent[k] = j;
            }
        }
    }
    parent
}

/// Postorder of a forest given as a parent array. Children are visited in
/// ascending index order, so the result is deterministic.
pub fn postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    // Build child lists (reverse push then pop gives ascending order).
    let mut head = vec![NONE; n];
    let mut next = vec![NONE; n];
    for v in (0..n).rev() {
        let p = parent[v];
        if p != NONE {
            next[v] = head[p];
            head[p] = v;
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut stack = Vec::new();
    for root in 0..n {
        if parent[root] != NONE {
            continue;
        }
        stack.push((root, false));
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                order.push(v);
                continue;
            }
            stack.push((v, true));
            // Push children (they come off the stack in ascending order
            // because head/next was built from high to low).
            let mut c = head[v];
            let mut kids = Vec::new();
            while c != NONE {
                kids.push(c);
                c = next[c];
            }
            for &k in kids.iter().rev() {
                stack.push((k, false));
            }
        }
    }
    order
}

/// Partitions forest vertices into levels: level 0 = leaves, level `k` =
/// vertices whose deepest child is at level `k - 1`. All vertices in one
/// level can be processed concurrently once the previous level finished —
/// the level-set schedule used by the supernodal comparator.
pub fn level_sets(parent: &[usize]) -> Vec<Vec<usize>> {
    let n = parent.len();
    let mut level = vec![0usize; n];
    // Process in topological (ascending) order: in an etree parent > child,
    // so a simple forward sweep works.
    let mut maxlevel = 0;
    for v in 0..n {
        let p = parent[v];
        if p != NONE {
            debug_assert!(p > v, "etree parents must have larger indices");
            level[p] = level[p].max(level[v] + 1);
            maxlevel = maxlevel.max(level[p]);
        }
    }
    let mut sets = vec![Vec::new(); maxlevel + 1];
    for v in 0..n {
        sets[level[v]].push(v);
    }
    sets
}

/// Depth of each vertex from its root (root depth 0).
pub fn depths(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let mut depth = vec![0usize; n];
    // parent[v] > v, so sweep from the top down.
    for v in (0..n).rev() {
        let p = parent[v];
        if p != NONE {
            depth[v] = depth[p] + 1;
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_sparse::CscMat;

    fn tridiag(n: usize) -> CscMat {
        let mut d = vec![vec![0.0; n]; n];
        for i in 0..n {
            d[i][i] = 2.0;
            if i + 1 < n {
                d[i][i + 1] = -1.0;
                d[i + 1][i] = -1.0;
            }
        }
        CscMat::from_dense(&d)
    }

    #[test]
    fn tridiagonal_etree_is_a_chain() {
        let a = tridiag(5);
        let p = etree(&a);
        assert_eq!(p, vec![1, 2, 3, 4, NONE]);
    }

    #[test]
    fn diagonal_etree_is_forest_of_roots() {
        let a = CscMat::identity(4);
        let p = etree(&a);
        assert_eq!(p, vec![NONE; 4]);
    }

    #[test]
    fn arrow_matrix_etree() {
        // Arrow pointing to last column: every column connects to n-1.
        let n = 5;
        let mut d = vec![vec![0.0; n]; n];
        for i in 0..n {
            d[i][i] = 4.0;
            d[i][n - 1] = 1.0;
            d[n - 1][i] = 1.0;
        }
        let p = etree(&CscMat::from_dense(&d));
        for v in 0..n - 1 {
            assert_eq!(p[v], n - 1);
        }
        assert_eq!(p[n - 1], NONE);
    }

    #[test]
    fn postorder_is_valid() {
        let a = tridiag(6);
        let parent = etree(&a);
        let po = postorder(&parent);
        assert_eq!(po.len(), 6);
        // Every vertex appears once; children before parents.
        let mut pos = [0usize; 6];
        for (k, &v) in po.iter().enumerate() {
            pos[v] = k;
        }
        for v in 0..6 {
            if parent[v] != NONE {
                assert!(pos[v] < pos[parent[v]]);
            }
        }
    }

    #[test]
    fn level_sets_schedule_chain() {
        let parent = vec![1, 2, 3, NONE];
        let ls = level_sets(&parent);
        assert_eq!(ls.len(), 4);
        assert_eq!(ls[0], vec![0]);
        assert_eq!(ls[3], vec![3]);
    }

    #[test]
    fn level_sets_balanced_tree() {
        // 0,1 -> 2; 3,4 -> 5; 2,5 -> 6
        let parent = vec![2, 2, 6, 5, 5, 6, NONE];
        let ls = level_sets(&parent);
        assert_eq!(ls[0], vec![0, 1, 3, 4]);
        assert_eq!(ls[1], vec![2, 5]);
        assert_eq!(ls[2], vec![6]);
    }

    #[test]
    fn depths_of_chain() {
        let parent = vec![1, 2, NONE];
        assert_eq!(depths(&parent), vec![2, 1, 0]);
    }

    #[test]
    fn col_etree_matches_etree_for_symmetric_spd_pattern() {
        // For a symmetric positive pattern with zero-free diagonal, the
        // column etree of the Cholesky factorization context is a
        // supertree; for tridiagonal they coincide.
        let a = tridiag(5);
        let ce = col_etree(&a);
        assert_eq!(ce, vec![1, 2, 3, 4, NONE]);
    }
}
