//! Orderings and graph algorithms for sparse LU factorization.
//!
//! This crate implements every ordering the Basker paper relies on
//! (paper §II "Orderings" and §III):
//!
//! * [`matching`] — maximum-cardinality bipartite matching (MC21-style),
//!   used to find a zero-free diagonal (a *transversal*).
//! * [`mwcm`] — maximum weight-cardinality matching in the **bottleneck**
//!   sense: among all full transversals, maximize the smallest pivot
//!   magnitude. The paper: "Our MWCM implementation is similar to MC64
//!   bottleneck ordering".
//! * [`scc`] — Tarjan's strongly connected components (iterative).
//! * [`btf`] — permutation to upper **block triangular form** by matching +
//!   SCC condensation (Duff / Pothen–Fan).
//! * [`amd`] — approximate minimum degree fill-reducing ordering on the
//!   symmetrized pattern (quotient graph, element absorption, supervariable
//!   merging, dense-row deferral).
//! * [`nd`] — recursive **nested dissection** with vertex separators (the
//!   Scotch stand-in), producing the binary separator tree Basker's 2-D
//!   structure is built from.
//! * [`etree`] — elimination trees, postorder and level sets.
//! * [`symbolic`] — symbolic Cholesky-style pattern prediction used by the
//!   supernodal comparator, plus symbolic Gilbert–Peierls counts.

#![warn(missing_docs)]

pub mod amd;
pub mod btf;
pub mod etree;
pub mod matching;
pub mod mwcm;
pub mod nd;
pub mod scc;
pub mod symbolic;

pub use amd::amd_order;
pub use btf::{btf_form, BtfForm};
pub use matching::{max_transversal, Matching};
pub use mwcm::mwcm_bottleneck;
pub use nd::{nested_dissection, NdDecomposition, NdNode};
pub use scc::strongly_connected_components;
