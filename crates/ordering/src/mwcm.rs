//! Maximum weight-cardinality matching, bottleneck variant (MC64-style).
//!
//! Among all maximum-cardinality matchings, find one whose *smallest* edge
//! magnitude is as large as possible. Permuting the matched rows onto the
//! diagonal then maximizes the smallest diagonal magnitude, which is what
//! Basker uses to reduce the need for numerical pivoting (paper §III-A:
//! `Pm1`, and §III-C: `Pm2`; §V: "Our MWCM implementation is similar to
//! MC64 bottleneck ordering, unlike SuperLU-Dist's product/sum based MC64").
//!
//! Implementation: binary search over the sorted distinct entry magnitudes;
//! for a candidate threshold `t`, a maximum matching restricted to edges
//! with `|a_ij| >= t` is computed (reusing the MC21 engine); the largest
//! feasible `t` wins.

use crate::matching::{max_matching_filtered, Matching, MatchingWorkspace};
use basker_sparse::CscMat;

/// Result of the bottleneck matching.
#[derive(Debug, Clone)]
pub struct MwcmResult {
    /// The matching achieving the optimal bottleneck value.
    pub matching: Matching,
    /// The optimal bottleneck: the smallest |value| used by the matching.
    pub bottleneck: f64,
}

/// Computes the bottleneck maximum matching of a square (or rectangular)
/// sparse matrix.
///
/// Returns the matching together with the achieved bottleneck value. When
/// the matrix has no full transversal the matching is maximum-cardinality
/// and the bottleneck refers to the best achievable at that cardinality.
pub fn mwcm_bottleneck(a: &CscMat) -> MwcmResult {
    let mut ws = MatchingWorkspace::new(a.nrows(), a.ncols());

    // Distinct magnitudes, ascending. Zero entries can never help a
    // bottleneck matching beat threshold 0, but keep them so structurally
    // full / numerically deficient matrices still get maximum cardinality.
    let mut mags: Vec<f64> = a.values().iter().map(|v| v.abs()).collect();
    mags.sort_by(|x, y| x.partial_cmp(y).unwrap());
    mags.dedup();

    if mags.is_empty() {
        let matching = max_matching_filtered(a, |_| true, &mut ws);
        return MwcmResult {
            matching,
            bottleneck: 0.0,
        };
    }

    // Cardinality achievable with all edges = the target cardinality.
    let full = max_matching_filtered(a, |_| true, &mut ws);
    let target = full.size;

    // Binary search the largest threshold index that still reaches the
    // target cardinality; the predicate "size(matching restricted to
    // |v| >= t) == target" is monotone in t. Threshold mags[0] is always
    // feasible (it admits every edge).
    let mut best = full;
    let mut best_t = mags[0];
    let mut lo_k = 0usize;
    let mut hi_k = mags.len() - 1;
    // Quick accept: try the largest threshold first (cheap when the matrix
    // is diagonally dominant already).
    {
        let t = mags[hi_k];
        let m = max_matching_filtered(a, |v| v >= t, &mut ws);
        if m.size == target {
            return MwcmResult {
                matching: m,
                bottleneck: t,
            };
        }
    }
    while lo_k <= hi_k {
        let mid = lo_k + (hi_k - lo_k) / 2;
        let t = mags[mid];
        let m = max_matching_filtered(a, |v| v >= t, &mut ws);
        if m.size == target {
            best = m;
            best_t = t;
            lo_k = mid + 1;
        } else {
            if mid == 0 {
                break;
            }
            hi_k = mid - 1;
        }
    }
    MwcmResult {
        matching: best,
        bottleneck: best_t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_sparse::TripletMat;

    #[test]
    fn picks_large_diagonal() {
        // [10  1]
        // [ 2 10]  -> identity matching, bottleneck 10.
        let mut t = TripletMat::new(2, 2);
        t.push(0, 0, 10.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 10.0);
        let r = mwcm_bottleneck(&t.to_csc());
        assert!(r.matching.is_perfect());
        assert_eq!(r.bottleneck, 10.0);
        assert_eq!(r.matching.row_of_col, vec![0, 1]);
    }

    #[test]
    fn prefers_off_diagonal_when_better() {
        // [0.1  9 ]
        // [ 8  0.1] -> anti-diagonal matching, bottleneck 8.
        let mut t = TripletMat::new(2, 2);
        t.push(0, 0, 0.1);
        t.push(0, 1, 9.0);
        t.push(1, 0, 8.0);
        t.push(1, 1, 0.1);
        let r = mwcm_bottleneck(&t.to_csc());
        assert!(r.matching.is_perfect());
        assert_eq!(r.bottleneck, 8.0);
        assert_eq!(r.matching.row_of_col, vec![1, 0]);
    }

    #[test]
    fn forced_small_edge_sets_bottleneck() {
        // Column 1 only has a tiny entry; it must be used.
        let mut t = TripletMat::new(2, 2);
        t.push(0, 0, 5.0);
        t.push(1, 0, 6.0);
        t.push(1, 1, 0.01);
        let r = mwcm_bottleneck(&t.to_csc());
        assert!(r.matching.is_perfect());
        assert_eq!(r.bottleneck, 0.01);
        // col1 must take row1, so col0 takes row0.
        assert_eq!(r.matching.row_of_col, vec![0, 1]);
    }

    #[test]
    fn bottleneck_is_optimal_vs_bruteforce() {
        // 4x4 dense-ish: compare against brute force over permutations.
        let vals = [
            [3.0, 7.0, 0.0, 1.0],
            [2.0, 0.0, 5.0, 4.0],
            [0.0, 6.0, 2.0, 8.0],
            [9.0, 1.0, 3.0, 0.0],
        ];
        let mut t = TripletMat::new(4, 4);
        for (i, row) in vals.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    t.push(i, j, v);
                }
            }
        }
        let a = t.to_csc();
        let r = mwcm_bottleneck(&a);
        assert!(r.matching.is_perfect());
        // Brute force all 24 permutations.
        let mut best = 0.0f64;
        let perms = permutations(4);
        for p in perms {
            let mut mn = f64::INFINITY;
            let mut ok = true;
            for (j, &i) in p.iter().enumerate() {
                if vals[i][j] == 0.0 {
                    ok = false;
                    break;
                }
                mn = mn.min(vals[i][j]);
            }
            if ok {
                best = best.max(mn);
            }
        }
        assert_eq!(r.bottleneck, best);
    }

    fn permutations(n: usize) -> Vec<Vec<usize>> {
        if n == 1 {
            return vec![vec![0]];
        }
        let smaller = permutations(n - 1);
        let mut out = Vec::new();
        for p in smaller {
            for pos in 0..n {
                let mut q: Vec<usize> = p
                    .iter()
                    .map(|&x| if x >= pos { x + 1 } else { x })
                    .collect();
                q.insert(0, pos);
                // normalize: we want all perms of 0..n; this builds them
                out.push(q);
            }
        }
        out
    }

    #[test]
    fn structurally_singular_still_returns_partial() {
        let mut t = TripletMat::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        let r = mwcm_bottleneck(&t.to_csc());
        assert_eq!(r.matching.size, 1);
        assert_eq!(r.bottleneck, 2.0); // best single edge for max cardinality
    }

    #[test]
    fn uniform_values_any_perfect_matching() {
        let mut t = TripletMat::new(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                t.push(i, j, 1.0);
            }
        }
        let r = mwcm_bottleneck(&t.to_csc());
        assert!(r.matching.is_perfect());
        assert_eq!(r.bottleneck, 1.0);
    }
}
