//! Permutation to upper block triangular form (BTF).
//!
//! Combines a transversal (zero-free diagonal) with the SCC condensation
//! (paper §III-A: `Pc·Pm1·A·Pcᵀ`). The result permutes `A` so that
//!
//! ```text
//! P·A·Q = [ A11 A12 ... A1k ]
//!         [     A22 ...  :  ]
//!         [          .   :  ]
//!         [             Akk ]
//! ```
//!
//! with all blocks below the diagonal empty. Only the diagonal blocks need
//! factoring; the off-diagonal blocks are used in the block back-solve.

use crate::matching::Matching;
use crate::mwcm::mwcm_bottleneck;
use crate::scc::strongly_connected_components;
use basker_sparse::{CscMat, Perm, Result, SparseError};

/// The BTF decomposition of a square matrix.
#[derive(Debug, Clone)]
pub struct BtfForm {
    /// Row permutation (gather convention: position `k` takes original row
    /// `row_perm[k]`).
    pub row_perm: Perm,
    /// Column permutation.
    pub col_perm: Perm,
    /// Cumulative block boundaries: block `b` spans
    /// `bounds[b]..bounds[b+1]` in the permuted matrix; `bounds[0] == 0`,
    /// `bounds.last() == n`.
    pub bounds: Vec<usize>,
    /// The bottleneck value of the transversal used (diagnostic).
    pub bottleneck: f64,
}

impl BtfForm {
    /// Number of diagonal blocks.
    pub fn nblocks(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Size of block `b`.
    pub fn block_size(&self, b: usize) -> usize {
        self.bounds[b + 1] - self.bounds[b]
    }

    /// Applies the permutations: returns `P·A·Q`.
    pub fn permute(&self, a: &CscMat) -> CscMat {
        Perm::permute_both(&self.row_perm, &self.col_perm, a)
    }

    /// Fraction of rows living in blocks of size `<= small` — the paper's
    /// "BTF %" column of Table I (percent of matrix in small independent
    /// subblocks).
    pub fn small_block_fraction(&self, small: usize) -> f64 {
        let n = *self.bounds.last().unwrap();
        if n == 0 {
            return 0.0;
        }
        let covered: usize = (0..self.nblocks())
            .map(|b| self.block_size(b))
            .filter(|&s| s <= small)
            .sum();
        covered as f64 / n as f64
    }
}

/// Computes the BTF form of `a`, using a bottleneck MWCM transversal
/// (`use_mwcm = true`) or a plain maximum transversal.
///
/// Fails with [`SparseError::StructurallySingular`] when no full
/// transversal exists.
pub fn btf_form_with(a: &CscMat, use_mwcm: bool) -> Result<BtfForm> {
    assert!(a.is_square(), "BTF requires a square matrix");
    let n = a.nrows();

    let (matching, bottleneck): (Matching, f64) = if use_mwcm {
        let r = mwcm_bottleneck(a);
        (r.matching, r.bottleneck)
    } else {
        (crate::matching::max_transversal(a), 0.0)
    };
    if !matching.is_perfect() {
        return Err(SparseError::StructurallySingular {
            rank: matching.size,
        });
    }

    // Matched matrix B = P_match · A has B[j, j] != 0 where row
    // `row_of_col[j]` of A moved to position j. In gather convention the
    // row permutation vector is exactly `row_of_col`.
    let pmatch =
        Perm::from_vec(matching.row_of_col.clone()).expect("perfect matching is a permutation");
    let b = pmatch.permute_rows(a);

    // SCC condensation of B's digraph; completion order = upper BTF order.
    let scc = strongly_connected_components(&b);

    // Column permutation: components in completion order.
    let col_perm = Perm::from_vec(scc.order.clone()).expect("scc order is a permutation");
    // Rows follow their matched columns: row at final position k is the row
    // of A matched to column order[k].
    let row_perm_vec: Vec<usize> = scc.order.iter().map(|&j| matching.row_of_col[j]).collect();
    let row_perm = Perm::from_vec(row_perm_vec).expect("matching rows form a permutation");

    let mut bounds = scc.comp_ptr.clone();
    debug_assert_eq!(*bounds.last().unwrap(), n);
    if bounds.is_empty() {
        bounds.push(0);
    }

    Ok(BtfForm {
        row_perm,
        col_perm,
        bounds,
        bottleneck,
    })
}

/// BTF with the MWCM transversal (Basker's default path).
pub fn btf_form(a: &CscMat) -> Result<BtfForm> {
    btf_form_with(a, true)
}

/// Verifies that `m` is upper block triangular with respect to `bounds`:
/// no stored entry below the diagonal blocks. Exposed for tests.
pub fn is_upper_block_triangular(m: &CscMat, bounds: &[usize]) -> bool {
    // block id lookup per index
    let n = m.nrows();
    let mut block_of = vec![0usize; n];
    for b in 0..bounds.len() - 1 {
        for k in bounds[b]..bounds[b + 1] {
            block_of[k] = b;
        }
    }
    for (i, j, _) in m.iter() {
        if block_of[i] > block_of[j] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_sparse::TripletMat;

    fn circuitish(n: usize, seed: u64) -> CscMat {
        // A connected-but-reducible pattern: strong diagonal plus random
        // upper-biased couplings and a few cycles.
        let mut t = TripletMat::new(n, n);
        let mut s = seed;
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        for i in 0..n {
            t.push(i, i, 10.0 + (i % 7) as f64);
        }
        for _ in 0..2 * n {
            let i = rnd() % n;
            let j = rnd() % n;
            if i != j {
                t.push(i, j, 1.0 + (rnd() % 5) as f64);
            }
        }
        t.to_csc()
    }

    #[test]
    fn identity_is_n_blocks() {
        let a = CscMat::identity(6);
        let f = btf_form(&a).unwrap();
        assert_eq!(f.nblocks(), 6);
        assert!(is_upper_block_triangular(&f.permute(&a), &f.bounds));
    }

    #[test]
    fn full_cycle_is_one_block() {
        // Companion-like cycle: no reduction possible.
        let n = 5;
        let mut t = TripletMat::new(n, n);
        for j in 0..n {
            t.push((j + 1) % n, j, 1.0);
            t.push(j, j, 0.5);
        }
        let a = t.to_csc();
        let f = btf_form(&a).unwrap();
        assert_eq!(f.nblocks(), 1);
    }

    #[test]
    fn triangular_matrix_fully_reduces() {
        let a = CscMat::from_dense(&[
            vec![1.0, 2.0, 3.0],
            vec![0.0, 4.0, 5.0],
            vec![0.0, 0.0, 6.0],
        ]);
        let f = btf_form(&a).unwrap();
        assert_eq!(f.nblocks(), 3);
        let p = f.permute(&a);
        assert!(is_upper_block_triangular(&p, &f.bounds));
        // Diagonal must be zero free.
        for k in 0..3 {
            assert_ne!(p.get(k, k), 0.0);
        }
    }

    #[test]
    fn permuted_matrix_is_upper_btf_with_nonzero_diagonal() {
        for seed in [1u64, 7, 42, 1234] {
            let a = circuitish(40, seed);
            let f = btf_form(&a).unwrap();
            let p = f.permute(&a);
            assert!(is_upper_block_triangular(&p, &f.bounds), "seed {seed}");
            for k in 0..40 {
                assert_ne!(p.get(k, k), 0.0, "zero diag at {k}, seed {seed}");
            }
        }
    }

    #[test]
    fn structurally_singular_rejected() {
        let mut t = TripletMat::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(0, 2, 1.0);
        t.push(1, 0, 1.0);
        let a = t.to_csc();
        match btf_form(&a) {
            Err(SparseError::StructurallySingular { rank }) => assert_eq!(rank, 2),
            other => panic!("expected structural singularity, got {other:?}"),
        }
    }

    #[test]
    fn block_diagonal_input_splits() {
        // Two decoupled 2x2 cycles -> exactly two blocks of size 2.
        let mut t = TripletMat::new(4, 4);
        for (i, j) in [(0, 1), (1, 0), (2, 3), (3, 2)] {
            t.push(i, j, 1.0);
        }
        for i in 0..4 {
            t.push(i, i, 3.0);
        }
        let a = t.to_csc();
        let f = btf_form(&a).unwrap();
        assert_eq!(f.nblocks(), 2);
        assert_eq!(f.block_size(0), 2);
        assert_eq!(f.block_size(1), 2);
    }

    #[test]
    fn small_block_fraction_definition() {
        let a = CscMat::identity(4);
        let f = btf_form(&a).unwrap();
        assert_eq!(f.small_block_fraction(1), 1.0);
        assert_eq!(f.small_block_fraction(0), 0.0);
    }
}
