//! Nested dissection ordering (the Scotch stand-in).
//!
//! Basker reorders its large BTF blocks with a nested-dissection ordering
//! whose binary separator tree has exactly `p` leaves for `p` threads
//! (paper §III-C: "Basker currently limits the number of leafs in the ND
//! tree to the number of threads available... current implementations of ND
//! provide only a binary tree, and therefore, Basker is limited to using a
//! power of two threads").
//!
//! This implementation recursively bisects the symmetrized graph: a BFS
//! level structure from a pseudo-peripheral vertex provides a balanced
//! *edge* bisection, and the vertex separator is extracted as a **minimum
//! vertex cover of the cut edges** (bipartite matching + König's
//! theorem), which keeps separators thin. Leaves and separators are
//! AMD-ordered internally. Two safety valves keep pathological graphs in
//! check: disconnected subgraphs split along components with an empty
//! separator, and expander-like subgraphs whose smallest separator would
//! exceed a quarter of the vertices are not split at all (one thread
//! factors them serially rather than exploding fill).

use crate::amd::amd_order;
use basker_sparse::blocks::extract_general;
use basker_sparse::{CscMat, Perm};
use std::ops::Range;

/// One node of the separator tree, in *recursive block order* (left
/// subtree's nodes, right subtree's nodes, then the separator/leaf itself —
/// the order the blocks appear in the permuted matrix).
#[derive(Debug, Clone)]
pub struct NdNode {
    /// Parent node index (`None` for the root separator).
    pub parent: Option<usize>,
    /// Child node indices `(left, right)`; `None` for leaves.
    pub children: Option<(usize, usize)>,
    /// Depth from the root (root = 0, leaves = `levels`).
    pub depth: usize,
    /// Column/row range of this block in the permuted matrix.
    pub range: Range<usize>,
}

impl NdNode {
    /// True when the node is a leaf domain (no children).
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }

    /// Block size.
    pub fn len(&self) -> usize {
        self.range.end - self.range.start
    }

    /// True for zero-size blocks.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// A nested-dissection decomposition with its separator tree.
#[derive(Debug, Clone)]
pub struct NdDecomposition {
    /// The fill-reducing ND permutation (gather convention).
    pub perm: Perm,
    /// Tree nodes in recursive block order; `nodes.len() == 2p - 1`.
    pub nodes: Vec<NdNode>,
    /// Number of leaves `p = 2^levels`.
    pub p_leaves: usize,
    /// Number of bisection levels (`log2 p`).
    pub levels: usize,
}

impl NdDecomposition {
    /// Indices of the leaf nodes in block order.
    pub fn leaves(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_leaf())
            .map(|(i, _)| i)
            .collect()
    }

    /// The root separator's node index (the last block).
    pub fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Ancestor chain of `node` from its parent up to the root.
    pub fn ancestors(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.nodes[node].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p].parent;
        }
        out
    }

    /// Tree level counted from the leaves (leaves = 0, root = `levels`);
    /// the paper's `treelevel` for separators is `levels - depth`.
    pub fn tree_level(&self, node: usize) -> usize {
        self.levels - self.nodes[node].depth
    }

    /// All node indices in the subtree rooted at `node` (inclusive), in
    /// block order. Because of the recursive numbering these are exactly
    /// the contiguous indices ending at `node`.
    pub fn subtree(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        collect_subtree(&self.nodes, node, &mut out);
        out.sort_unstable();
        out
    }
}

fn collect_subtree(nodes: &[NdNode], node: usize, out: &mut Vec<usize>) {
    out.push(node);
    if let Some((l, r)) = nodes[node].children {
        collect_subtree(nodes, l, out);
        collect_subtree(nodes, r, out);
    }
}

/// Computes a nested-dissection decomposition with `2^levels` leaves.
///
/// `a` must be square; its symmetrized pattern defines the graph.
pub fn nested_dissection(a: &CscMat, levels: usize) -> NdDecomposition {
    assert!(a.is_square(), "nested dissection requires a square matrix");
    let sym = if a.is_pattern_symmetric() {
        a.clone()
    } else {
        a.symmetrize()
    };
    let n = sym.ncols();

    let mut builder = Builder {
        graph: &sym,
        member_stamp: vec![usize::MAX; n],
        stamp: 0,
        perm: Vec::with_capacity(n),
        nodes: Vec::with_capacity((1 << (levels + 1)) - 1),
    };
    let all: Vec<usize> = (0..n).collect();
    builder.dissect(all, levels, 0);

    debug_assert_eq!(builder.perm.len(), n);
    NdDecomposition {
        perm: Perm::from_vec(builder.perm).expect("ND produced an invalid permutation"),
        nodes: builder.nodes,
        p_leaves: 1 << levels,
        levels,
    }
}

struct Builder<'a> {
    graph: &'a CscMat,
    member_stamp: Vec<usize>,
    stamp: usize,
    perm: Vec<usize>,
    nodes: Vec<NdNode>,
}

impl<'a> Builder<'a> {
    /// Recursively dissects `verts`; returns the index of the node created
    /// for this subtree's top block (leaf or separator).
    fn dissect(&mut self, verts: Vec<usize>, levels_left: usize, depth: usize) -> usize {
        if levels_left == 0 {
            let start = self.perm.len();
            self.emit_amd_ordered(&verts);
            self.nodes.push(NdNode {
                parent: None,
                children: None,
                depth,
                range: start..self.perm.len(),
            });
            return self.nodes.len() - 1;
        }

        let (half_a, half_b, sep) = self.bisect(&verts);
        let left = self.dissect(half_a, levels_left - 1, depth + 1);
        let right = self.dissect(half_b, levels_left - 1, depth + 1);
        let start = self.perm.len();
        self.emit_amd_ordered(&sep);
        self.nodes.push(NdNode {
            parent: None,
            children: Some((left, right)),
            depth,
            range: start..self.perm.len(),
        });
        let me = self.nodes.len() - 1;
        self.nodes[left].parent = Some(me);
        self.nodes[right].parent = Some(me);
        me
    }

    /// Appends `verts` to the permutation in AMD order of the induced
    /// subgraph (fill reduction inside the block).
    fn emit_amd_ordered(&mut self, verts: &[usize]) {
        if verts.len() <= 2 {
            self.perm.extend_from_slice(verts);
            return;
        }
        let sub = extract_general(self.graph, verts, verts);
        let p = amd_order(&sub);
        for &local in p.as_slice() {
            self.perm.push(verts[local]);
        }
    }

    /// Splits `verts` into `(A, B, S)`: no edge joins A and B directly.
    fn bisect(&mut self, verts: &[usize]) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        let nv = verts.len();
        if nv == 0 {
            return (Vec::new(), Vec::new(), Vec::new());
        }
        if nv == 1 {
            return (vec![verts[0]], Vec::new(), Vec::new());
        }

        // membership stamp for this subset
        self.stamp += 1;
        let stamp = self.stamp;
        for &v in verts {
            self.member_stamp[v] = stamp;
        }
        let in_set = |ms: &[usize], v: usize| ms[v] == stamp;

        // --- connected components; multi-component graphs split freely ---
        let comps = self.components(verts, stamp);
        if comps.len() > 1 {
            // Greedy balance components into two halves, empty separator.
            let mut sized: Vec<(usize, usize)> = comps
                .iter()
                .enumerate()
                .map(|(i, c)| (c.len(), i))
                .collect();
            sized.sort_unstable_by(|a, b| b.cmp(a));
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for (_, ci) in sized {
                if a.len() <= b.len() {
                    a.extend_from_slice(&comps[ci]);
                } else {
                    b.extend_from_slice(&comps[ci]);
                }
            }
            return (a, b, Vec::new());
        }

        // --- single component: multilevel edge bisection, then the vertex
        // separator is extracted as a *minimum vertex cover* of the cut
        // edges (König), which is what makes separators thin. ---
        let _ = in_set;
        // Materialize the induced local graph (local ids = positions in
        // `verts`), unit weights.
        let mut local_of: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::with_capacity(nv);
        for (li, &v) in verts.iter().enumerate() {
            local_of.insert(v, li);
        }
        let mut ladj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); nv];
        for (li, &v) in verts.iter().enumerate() {
            for &u in self.graph.col_rows(v) {
                if u != v && self.member_stamp[u] == stamp {
                    ladj[li].push((local_of[&u], 1));
                }
            }
        }
        let lvw: Vec<u64> = vec![1; nv];
        let side = crate::nd::multilevel::bisect(&ladj, &lvw);
        let mut a: Vec<usize> = Vec::new();
        let mut b: Vec<usize> = Vec::new();
        for (li, &v) in verts.iter().enumerate() {
            if side[li] {
                b.push(v);
            } else {
                a.push(v);
            }
        }
        if a.is_empty() || b.is_empty() {
            return (verts.to_vec(), Vec::new(), Vec::new());
        }
        let (a, b, s) = self.cover_separator(a, b);
        // Fallback: if the separator is a large fraction of the subgraph
        // (expander-like block), splitting would explode fill — keep the
        // block whole and let one thread factor it serially (the paper
        // relies on Scotch finding good separators; when none exist, 1-D
        // is the honest answer).
        if s.len() > (nv / 4).max(8) {
            return (verts.to_vec(), Vec::new(), Vec::new());
        }
        (a, b, s)
    }

    /// Given an edge bisection `(A, B)`, extracts a minimum vertex cover
    /// of the A–B cut edges via bipartite matching + König's theorem and
    /// removes it from the halves, returning `(A', B', S)` with no edge
    /// between `A'` and `B'`.
    fn cover_separator(
        &mut self,
        a: Vec<usize>,
        b: Vec<usize>,
    ) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        // Stamp sides: bstamp for B membership.
        self.stamp += 1;
        let bstamp = self.stamp;
        for &v in &b {
            self.member_stamp[v] = bstamp;
        }
        self.stamp += 1;
        let astamp = self.stamp;
        for &v in &a {
            self.member_stamp[v] = astamp;
        }
        // Collect boundary vertices and cut edges (local ids).
        let mut x_ids: Vec<usize> = Vec::new(); // A-side boundary verts
        let mut x_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut y_ids: Vec<usize> = Vec::new(); // B-side boundary verts
        let mut y_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut adj: Vec<Vec<usize>> = Vec::new(); // x -> list of y
        for &v in &a {
            let mut nbrs: Vec<usize> = Vec::new();
            for &u in self.graph.col_rows(v) {
                if self.member_stamp[u] == bstamp {
                    let yi = *y_of.entry(u).or_insert_with(|| {
                        y_ids.push(u);
                        y_ids.len() - 1
                    });
                    nbrs.push(yi);
                }
            }
            if !nbrs.is_empty() {
                x_of.insert(v, x_ids.len());
                x_ids.push(v);
                adj.push(nbrs);
            }
        }
        if x_ids.is_empty() {
            return (a, b, Vec::new());
        }
        // Maximum bipartite matching (augmenting DFS with stamps).
        let nx = x_ids.len();
        let ny = y_ids.len();
        let mut match_x = vec![usize::MAX; nx];
        let mut match_y = vec![usize::MAX; ny];
        let mut visited = vec![usize::MAX; ny];
        fn augment(
            x: usize,
            adj: &[Vec<usize>],
            match_x: &mut [usize],
            match_y: &mut [usize],
            visited: &mut [usize],
            round: usize,
        ) -> bool {
            for &y in &adj[x] {
                if visited[y] == round {
                    continue;
                }
                visited[y] = round;
                if match_y[y] == usize::MAX
                    || augment(match_y[y], adj, match_x, match_y, visited, round)
                {
                    match_x[x] = y;
                    match_y[y] = x;
                    return true;
                }
            }
            false
        }
        for x in 0..nx {
            augment(x, &adj, &mut match_x, &mut match_y, &mut visited, x);
        }
        // König: Z = vertices reachable from unmatched X via alternating
        // paths; cover = (X \ Z_X) ∪ (Y ∩ Z_Y).
        let mut zx = vec![false; nx];
        let mut zy = vec![false; ny];
        let mut queue: std::collections::VecDeque<usize> =
            (0..nx).filter(|&x| match_x[x] == usize::MAX).collect();
        for &x in &queue {
            zx[x] = true;
        }
        while let Some(x) = queue.pop_front() {
            for &y in &adj[x] {
                if !zy[y] {
                    zy[y] = true;
                    let x2 = match_y[y];
                    if x2 != usize::MAX && !zx[x2] {
                        zx[x2] = true;
                        queue.push_back(x2);
                    }
                }
            }
        }
        let mut in_cover: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for x in 0..nx {
            if !zx[x] {
                in_cover.insert(x_ids[x]);
            }
        }
        for y in 0..ny {
            if zy[y] {
                in_cover.insert(y_ids[y]);
            }
        }
        let s: Vec<usize> = in_cover.iter().copied().collect();
        let mut s = s;
        s.sort_unstable();
        let a2: Vec<usize> = a.into_iter().filter(|v| !in_cover.contains(v)).collect();
        let b2: Vec<usize> = b.into_iter().filter(|v| !in_cover.contains(v)).collect();
        (a2, b2, s)
    }

    /// Connected components of the stamped subset.
    fn components(&mut self, verts: &[usize], stamp: usize) -> Vec<Vec<usize>> {
        let mut seen_stamp = vec![false; 0];
        let _ = &mut seen_stamp;
        let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut comps = Vec::new();
        for &start in verts {
            if seen.contains(&start) {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(start);
            seen.insert(start);
            while let Some(v) = queue.pop_front() {
                comp.push(v);
                for &u in self.graph.col_rows(v) {
                    if self.member_stamp[u] == stamp && !seen.contains(&u) {
                        seen.insert(u);
                        queue.push_back(u);
                    }
                }
            }
            comps.push(comp);
        }
        comps
    }
}

/// Multilevel edge bisection (the quality core of the Scotch stand-in):
/// heavy-edge-matching coarsening, a BFS initial partition on the coarsest
/// graph, and weighted greedy FM refinement at every level on the way
/// back up. Single vertex moves at coarse levels move whole clusters of
/// the fine graph, which is what lets the cut migrate to a narrow waist
/// (e.g. the sparse couplings between subcircuits of a netlist) that
/// purely local refinement cannot reach.
pub(crate) mod multilevel {
    /// Bisects a weighted undirected local graph (`adj[v]` lists
    /// `(neighbour, edge weight)`, both directions present). Returns side
    /// flags: `false` = A, `true` = B.
    pub fn bisect(adj: &[Vec<(usize, u64)>], vw: &[u64]) -> Vec<bool> {
        let n = adj.len();
        if n <= 1 {
            return vec![false; n];
        }
        if n <= 96 {
            let mut side = initial_partition(adj, vw);
            fm_refine(adj, vw, &mut side, 8);
            return side;
        }
        let (cadj, cvw, map) = coarsen(adj, vw);
        if cadj.len() * 10 > n * 9 {
            // matching stalled (near-clique): stop coarsening
            let mut side = initial_partition(adj, vw);
            fm_refine(adj, vw, &mut side, 8);
            return side;
        }
        let cside = bisect(&cadj, &cvw);
        let mut side: Vec<bool> = (0..n).map(|v| cside[map[v]]).collect();
        fm_refine(adj, vw, &mut side, 4);
        side
    }

    /// One level of heavy-edge-matching coarsening. Returns the coarse
    /// graph, coarse vertex weights and the fine→coarse map.
    fn coarsen(
        adj: &[Vec<(usize, u64)>],
        vw: &[u64],
    ) -> (Vec<Vec<(usize, u64)>>, Vec<u64>, Vec<usize>) {
        let n = adj.len();
        let mut mate = vec![usize::MAX; n];
        // visit lighter vertices first so clusters stay balanced
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&v| (vw[v], v));
        for &v in &order {
            if mate[v] != usize::MAX {
                continue;
            }
            let mut best: Option<(u64, usize)> = None;
            for &(u, w) in &adj[v] {
                if u != v && mate[u] == usize::MAX {
                    let cand = (w, usize::MAX - u); // heaviest edge, then smallest u
                    if best.map_or(true, |b| cand > b) {
                        best = Some(cand);
                    }
                }
            }
            match best {
                Some((_, enc)) => {
                    let u = usize::MAX - enc;
                    mate[v] = u;
                    mate[u] = v;
                }
                None => mate[v] = v, // singleton
            }
        }
        // assign coarse ids
        let mut map = vec![usize::MAX; n];
        let mut nc = 0usize;
        for v in 0..n {
            if map[v] != usize::MAX {
                continue;
            }
            map[v] = nc;
            let m = mate[v];
            if m != v && m != usize::MAX {
                map[m] = nc;
            }
            nc += 1;
        }
        // coarse weights and adjacency (merge parallel edges)
        let mut cvw = vec![0u64; nc];
        for v in 0..n {
            cvw[map[v]] += vw[v];
        }
        let mut cadj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); nc];
        let mut acc: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); nc];
        for v in 0..n {
            members[map[v]].push(v);
        }
        for c in 0..nc {
            acc.clear();
            for &v in &members[c] {
                for &(u, w) in &adj[v] {
                    let cu = map[u];
                    if cu != c {
                        *acc.entry(cu).or_insert(0) += w;
                    }
                }
            }
            let mut list: Vec<(usize, u64)> = acc.iter().map(|(&u, &w)| (u, w)).collect();
            list.sort_unstable();
            cadj[c] = list;
        }
        (cadj, cvw, map)
    }

    /// Initial partition: BFS from a pseudo-peripheral vertex, gathering
    /// vertices until half the total weight is reached.
    fn initial_partition(adj: &[Vec<(usize, u64)>], vw: &[u64]) -> Vec<bool> {
        let n = adj.len();
        let total: u64 = vw.iter().sum();
        // double-sweep pseudo-peripheral
        let mut start = 0usize;
        for _ in 0..2 {
            let order = bfs_order(adj, start);
            start = *order.last().unwrap();
        }
        let order = bfs_order(adj, start);
        let mut side = vec![true; n];
        let mut acc = 0u64;
        for &v in &order {
            if acc * 2 >= total {
                break;
            }
            side[v] = false;
            acc += vw[v];
        }
        side
    }

    fn bfs_order(adj: &[Vec<(usize, u64)>], start: usize) -> Vec<usize> {
        let n = adj.len();
        let mut seen = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        seen[start] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &(u, _) in &adj[v] {
                if !seen[u] {
                    seen[u] = true;
                    queue.push_back(u);
                }
            }
        }
        // cover disconnected remainders (callers pass connected graphs,
        // but coarse graphs of near-disconnected inputs can fragment)
        for v in 0..n {
            if !seen[v] {
                order.push(v);
            }
        }
        order
    }

    /// Greedy weighted FM: move positive-gain boundary vertices while the
    /// balance constraint (each side ≥ 35 % of total weight) holds.
    fn fm_refine(adj: &[Vec<(usize, u64)>], vw: &[u64], side: &mut [bool], passes: usize) {
        let n = adj.len();
        let total: u64 = vw.iter().sum();
        let min_side = (total as f64 * 0.35) as u64;
        let mut wa: u64 = (0..n).filter(|&v| !side[v]).map(|v| vw[v]).sum();
        let mut wb: u64 = total - wa;
        for _ in 0..passes {
            let mut moved_any = false;
            let mut candidates: Vec<(i64, usize)> = Vec::new();
            for v in 0..n {
                let mut gain = 0i64;
                for &(u, w) in &adj[v] {
                    if side[u] != side[v] {
                        gain += w as i64;
                    } else {
                        gain -= w as i64;
                    }
                }
                if gain > 0 {
                    candidates.push((gain, v));
                }
            }
            candidates.sort_unstable_by(|x, y| y.cmp(x));
            for (_, v) in candidates {
                let vb = side[v];
                if (vb && wb.saturating_sub(vw[v]) < min_side)
                    || (!vb && wa.saturating_sub(vw[v]) < min_side)
                {
                    continue;
                }
                // re-verify the gain (earlier moves shift it)
                let mut gain = 0i64;
                for &(u, w) in &adj[v] {
                    if side[u] != side[v] {
                        gain += w as i64;
                    } else {
                        gain -= w as i64;
                    }
                }
                if gain > 0 {
                    side[v] = !vb;
                    if vb {
                        wb -= vw[v];
                        wa += vw[v];
                    } else {
                        wa -= vw[v];
                        wb += vw[v];
                    }
                    moved_any = true;
                }
            }
            if !moved_any {
                break;
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn path_graph(n: usize) -> (Vec<Vec<(usize, u64)>>, Vec<u64>) {
            let mut adj = vec![Vec::new(); n];
            for v in 0..n - 1 {
                adj[v].push((v + 1, 1));
                adj[v + 1].push((v, 1));
            }
            (adj, vec![1; n])
        }

        #[test]
        fn path_graph_cut_is_one_edge() {
            let (adj, vw) = path_graph(200);
            let side = bisect(&adj, &vw);
            // count cut edges
            let mut cut = 0;
            for v in 0..200 {
                for &(u, _) in &adj[v] {
                    if u > v && side[u] != side[v] {
                        cut += 1;
                    }
                }
            }
            assert_eq!(cut, 1, "a path must split at a single edge");
            let na = side.iter().filter(|&&s| !s).count();
            assert!((60..=140).contains(&na), "balance {na}/200");
        }

        #[test]
        fn two_cliques_with_bridge() {
            // two 30-cliques joined by one edge: the cut must be the bridge
            let n = 60;
            let mut adj = vec![Vec::new(); n];
            for a in 0..30 {
                for b in 0..30 {
                    if a != b {
                        adj[a].push((b, 1));
                        adj[30 + a].push((30 + b, 1));
                    }
                }
            }
            adj[29].push((30, 1));
            adj[30].push((29, 1));
            let side = bisect(&adj, &vec![1; n]);
            let mut cut = 0;
            for v in 0..n {
                for &(u, _) in &adj[v] {
                    if u > v && side[u] != side[v] {
                        cut += 1;
                    }
                }
            }
            assert_eq!(cut, 1, "bridge must be the only cut edge");
        }

        #[test]
        fn coarsening_preserves_total_weight() {
            let (adj, vw) = path_graph(100);
            let (cadj, cvw, map) = coarsen(&adj, &vw);
            assert_eq!(cvw.iter().sum::<u64>(), 100);
            assert!(cadj.len() < 100);
            assert!(map.iter().all(|&c| c < cadj.len()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_sparse::TripletMat;

    fn grid2d(k: usize) -> CscMat {
        let n = k * k;
        let idx = |r: usize, c: usize| r * k + c;
        let mut t = TripletMat::new(n, n);
        for r in 0..k {
            for c in 0..k {
                let u = idx(r, c);
                t.push(u, u, 4.0);
                if r + 1 < k {
                    t.push(u, idx(r + 1, c), -1.0);
                    t.push(idx(r + 1, c), u, -1.0);
                }
                if c + 1 < k {
                    t.push(u, idx(r, c + 1), -1.0);
                    t.push(idx(r, c + 1), u, -1.0);
                }
            }
        }
        t.to_csc()
    }

    fn check_separator_property(a: &CscMat, nd: &NdDecomposition) {
        // For every edge (u,v) of the permuted matrix, the blocks must be
        // ancestor-related: no edge between two blocks where neither is an
        // ancestor of the other.
        let p = Perm::permute_both(&nd.perm, &nd.perm, a);
        let n = p.nrows();
        let mut block_of = vec![0usize; n];
        for (bi, node) in nd.nodes.iter().enumerate() {
            for k in node.range.clone() {
                block_of[k] = bi;
            }
        }
        let ancestor_related = |x: usize, y: usize| -> bool {
            if x == y {
                return true;
            }
            nd.ancestors(x).contains(&y) || nd.ancestors(y).contains(&x)
        };
        for (i, j, _) in p.iter() {
            assert!(
                ancestor_related(block_of[i], block_of[j]),
                "edge between unrelated blocks {} and {}",
                block_of[i],
                block_of[j]
            );
        }
    }

    #[test]
    fn tree_shape_and_ranges() {
        let a = grid2d(8);
        let nd = nested_dissection(&a, 2);
        assert_eq!(nd.p_leaves, 4);
        assert_eq!(nd.nodes.len(), 7);
        assert_eq!(nd.root(), 6);
        // Ranges partition 0..n contiguously in block order.
        let mut cursor = 0;
        for node in &nd.nodes {
            assert_eq!(node.range.start, cursor);
            cursor = node.range.end;
        }
        assert_eq!(cursor, 64);
        // Leaves are nodes 0,1,3,4; separators 2,5,6.
        assert!(nd.nodes[0].is_leaf());
        assert!(nd.nodes[1].is_leaf());
        assert!(!nd.nodes[2].is_leaf());
        assert!(nd.nodes[3].is_leaf());
        assert!(nd.nodes[4].is_leaf());
        assert!(!nd.nodes[5].is_leaf());
        assert!(!nd.nodes[6].is_leaf());
        assert_eq!(nd.nodes[2].children, Some((0, 1)));
        assert_eq!(nd.nodes[5].children, Some((3, 4)));
        assert_eq!(nd.nodes[6].children, Some((2, 5)));
        assert_eq!(nd.nodes[0].parent, Some(2));
        assert_eq!(nd.nodes[2].parent, Some(6));
    }

    #[test]
    fn separator_property_holds_on_grid() {
        for levels in [1usize, 2, 3] {
            let a = grid2d(10);
            let nd = nested_dissection(&a, levels);
            check_separator_property(&a, &nd);
        }
    }

    #[test]
    fn separator_property_holds_on_random_graph() {
        let mut s = 77u64;
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        let n = 60;
        let mut t = TripletMat::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
        }
        for _ in 0..3 * n {
            let (i, j) = (rnd() % n, rnd() % n);
            if i != j {
                t.push(i, j, 1.0);
                t.push(j, i, 1.0);
            }
        }
        let a = t.to_csc();
        let nd = nested_dissection(&a, 2);
        check_separator_property(&a, &nd);
    }

    #[test]
    fn disconnected_graph_gets_empty_separators() {
        // Two decoupled chains.
        let n = 20;
        let mut t = TripletMat::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
        }
        for i in 0..9 {
            t.push(i, i + 1, 1.0);
            t.push(i + 1, i, 1.0);
        }
        for i in 10..19 {
            t.push(i, i + 1, 1.0);
            t.push(i + 1, i, 1.0);
        }
        let a = t.to_csc();
        let nd = nested_dissection(&a, 1);
        check_separator_property(&a, &nd);
        // Root separator should be empty: the graph splits cleanly.
        assert_eq!(nd.nodes[nd.root()].len(), 0);
        // Both leaves have 10 vertices.
        assert_eq!(nd.nodes[0].len(), 10);
        assert_eq!(nd.nodes[1].len(), 10);
    }

    #[test]
    fn grid_separator_is_small() {
        let k = 12;
        let a = grid2d(k);
        let nd = nested_dissection(&a, 1);
        let root = &nd.nodes[nd.root()];
        // A good 12x12 grid separator is ~one grid line (12 vertices);
        // allow slack but reject grossly fat separators.
        assert!(
            root.len() <= 3 * k,
            "root separator has {} vertices",
            root.len()
        );
        let balance = nd.nodes[0].len().min(nd.nodes[1].len()) as f64
            / nd.nodes[0].len().max(nd.nodes[1].len()).max(1) as f64;
        assert!(balance > 0.3, "leaves too unbalanced: {balance}");
    }

    #[test]
    fn tiny_graphs() {
        for n in [0usize, 1, 2, 3] {
            let a = CscMat::identity(n);
            let nd = nested_dissection(&a, 1);
            assert_eq!(nd.nodes.len(), 3);
            assert_eq!(nd.perm.len(), n);
            let total: usize = nd.nodes.iter().map(|x| x.len()).sum();
            assert_eq!(total, n);
        }
    }

    #[test]
    fn deeper_than_graph_still_valid() {
        // More levels than vertices: lots of empty blocks, still a valid
        // partition.
        let a = grid2d(2); // n = 4
        let nd = nested_dissection(&a, 3); // 8 leaves
        assert_eq!(nd.nodes.len(), 15);
        let total: usize = nd.nodes.iter().map(|x| x.len()).sum();
        assert_eq!(total, 4);
        check_separator_property(&a, &nd);
    }

    #[test]
    fn subtree_is_contiguous_prefix() {
        let a = grid2d(8);
        let nd = nested_dissection(&a, 2);
        assert_eq!(nd.subtree(2), vec![0, 1, 2]);
        assert_eq!(nd.subtree(5), vec![3, 4, 5]);
        assert_eq!(nd.subtree(6), vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(nd.tree_level(0), 0);
        assert_eq!(nd.tree_level(2), 1);
        assert_eq!(nd.tree_level(6), 2);
    }
}
