//! Symbolic factorization utilities.
//!
//! * [`symbolic_cholesky`] predicts the pattern of the Cholesky factor `L`
//!   of a symmetric-pattern matrix — the static-fill analysis the
//!   supernodal comparator (PMKL stand-in) builds its supernodes on.
//! * [`fundamental_supernodes`] groups columns with nested patterns.
//! * [`symbolic_gp`] is a pattern-only Gilbert–Peierls pass assuming
//!   diagonal pivoting; Basker's leaves use it for exact nonzero counts
//!   (paper Alg. 3, line 5).

use crate::etree::{etree, NONE};
use basker_sparse::CscMat;

/// Pattern of a lower-triangular factor (diagonal included), CSC-like.
#[derive(Debug, Clone)]
pub struct FactorPattern {
    /// Column pointers, length `n + 1`.
    pub colptr: Vec<usize>,
    /// Row indices per column, each column sorted ascending, starting with
    /// the diagonal.
    pub rowind: Vec<usize>,
    /// Elimination-tree parent array.
    pub parent: Vec<usize>,
}

impl FactorPattern {
    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.colptr.len() - 1
    }

    /// Total stored entries.
    pub fn nnz(&self) -> usize {
        self.rowind.len()
    }

    /// Rows of column `j` (sorted, diagonal first).
    pub fn col(&self, j: usize) -> &[usize] {
        &self.rowind[self.colptr[j]..self.colptr[j + 1]]
    }
}

/// Symbolic Cholesky on the pattern of `A` (must have symmetric pattern
/// with a zero-free diagonal; pass `A.symmetrize()` otherwise).
///
/// Left-looking column-merge: `pattern(L(:,j)) = pattern(A(j:n, j)) ∪
/// ⋃ { pattern(L(:,c)) \ {c} : parent(c) == j }`.
pub fn symbolic_cholesky(a: &CscMat) -> FactorPattern {
    assert!(a.is_square());
    let n = a.ncols();
    let parent = etree(a);

    // children lists
    let mut head = vec![NONE; n];
    let mut next = vec![NONE; n];
    for v in (0..n).rev() {
        if parent[v] != NONE {
            next[v] = head[parent[v]];
            head[parent[v]] = v;
        }
    }

    let mut colptr = Vec::with_capacity(n + 1);
    let mut rowind: Vec<usize> = Vec::new();
    colptr.push(0);
    let mut mark = vec![usize::MAX; n];
    // Store each column's pattern as we go; children are merged into
    // parents. Patterns are kept in `rowind` (final storage) directly.
    let mut col_range: Vec<(usize, usize)> = vec![(0, 0); n];
    let mut scratch: Vec<usize> = Vec::new();

    for j in 0..n {
        scratch.clear();
        mark[j] = j;
        scratch.push(j);
        // Rows of A at or below the diagonal.
        for &i in a.col_rows(j) {
            if i > j && mark[i] != j {
                mark[i] = j;
                scratch.push(i);
            }
        }
        // Merge children patterns (minus their diagonal).
        let mut c = head[j];
        while c != NONE {
            let (lo, hi) = col_range[c];
            for k in lo..hi {
                let i = rowind[k];
                if i > j && mark[i] != j {
                    mark[i] = j;
                    scratch.push(i);
                }
            }
            c = next[c];
        }
        scratch.sort_unstable();
        let lo = rowind.len();
        rowind.extend_from_slice(&scratch);
        col_range[j] = (lo, rowind.len());
        colptr.push(rowind.len());
    }

    FactorPattern {
        colptr,
        rowind,
        parent,
    }
}

/// Finds fundamental supernode boundaries from a factor pattern: column
/// `j` extends the supernode of `j - 1` when `parent[j-1] == j` and
/// `pattern(L(:,j-1)) \ {j-1} == pattern(L(:,j))` (nested columns).
///
/// Returns boundaries `s` with `s[0] == 0`, `s.last() == n`; supernode `k`
/// spans columns `s[k]..s[k+1]`. `relax` allows up to that many rows of
/// mismatch, merging nearly nested columns (relaxed supernodes).
pub fn fundamental_supernodes(p: &FactorPattern, relax: usize) -> Vec<usize> {
    let n = p.ncols();
    let mut bounds = vec![0usize];
    for j in 1..n {
        let prev = p.col(j - 1);
        let cur = p.col(j);
        let chained = p.parent[j - 1] == j;
        // prev minus its diagonal should equal cur (within relax slack)
        let nested = chained && !prev.is_empty() && {
            let prev_tail = &prev[1..];
            if prev_tail.len() < cur.len() || prev_tail.len() > cur.len() + relax {
                false
            } else {
                // cur ⊆ prev_tail must hold for a (relaxed) supernode; for
                // fundamental supernodes the sets are equal.
                let mut xi = 0usize;
                let mut ok = true;
                for &r in cur {
                    while xi < prev_tail.len() && prev_tail[xi] < r {
                        xi += 1;
                    }
                    if xi >= prev_tail.len() || prev_tail[xi] != r {
                        ok = false;
                        break;
                    }
                    xi += 1;
                }
                ok && prev_tail.len() - cur.len() <= relax
            }
        };
        if !nested {
            bounds.push(j);
        }
    }
    bounds.push(n);
    bounds
}

/// Pattern-only Gilbert–Peierls factorization assuming no pivoting
/// (diagonal pivots). Returns per-column counts `(nnz_L_col, nnz_U_col)`
/// including the diagonal in `U` (KLU convention: unit-diagonal `L`, the
/// pivot lives in `U`), plus total flops estimate.
pub struct GpCounts {
    /// Per-column L counts (strictly below diagonal).
    pub l_counts: Vec<usize>,
    /// Per-column U counts (including diagonal).
    pub u_counts: Vec<usize>,
    /// Estimated floating-point operations (2·Σ over updates).
    pub flops: f64,
}

/// Symbolic GP on a square matrix with zero-free diagonal.
pub fn symbolic_gp(a: &CscMat) -> GpCounts {
    let n = a.ncols();
    // L patterns built column by column (strictly lower part).
    let mut lcolptr: Vec<usize> = vec![0];
    let mut lrows: Vec<usize> = Vec::new();
    let mut l_counts = vec![0usize; n];
    let mut u_counts = vec![0usize; n];
    let mut flops = 0.0f64;

    // DFS machinery
    let mut mark = vec![usize::MAX; n];
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let mut reach: Vec<usize> = Vec::new(); // all visited
    for j in 0..n {
        reach.clear();
        // Start DFS from each structural entry of A(:, j).
        for &i in a.col_rows(j) {
            if mark[i] == j {
                continue;
            }
            stack.clear();
            stack.push((i, 0));
            mark[i] = j;
            while let Some(&(v, pos)) = stack.last() {
                if v >= j {
                    // At or below diagonal: no outgoing edges (not yet a
                    // pivot column).
                    reach.push(v);
                    stack.pop();
                    continue;
                }
                let lcol = &lrows[lcolptr[v]..lcolptr[v + 1]];
                if pos < lcol.len() {
                    stack.last_mut().unwrap().1 += 1;
                    let w = lcol[pos];
                    if mark[w] != j {
                        mark[w] = j;
                        stack.push((w, 0));
                    }
                } else {
                    reach.push(v);
                    stack.pop();
                }
            }
        }
        // Partition reach into U (indices < j), diag, L (> j).
        let mut lc = 0usize;
        let mut uc = 1usize; // diagonal always present (zero-free diag)
        let mut has_diag = false;
        for &v in &reach {
            if v < j {
                uc += 1;
                // each U entry triggers an update with column v of L
                flops += 2.0 * (lcolptr[v + 1] - lcolptr[v]) as f64;
            } else if v == j {
                has_diag = true;
            } else {
                lc += 1;
            }
        }
        let _ = has_diag;
        l_counts[j] = lc;
        u_counts[j] = uc;
        flops += lc as f64; // the division by the pivot

        // Record L pattern (sorted for future DFS determinism).
        let mut lcol: Vec<usize> = reach.iter().copied().filter(|&v| v > j).collect();
        lcol.sort_unstable();
        lrows.extend_from_slice(&lcol);
        lcolptr.push(lrows.len());
    }
    GpCounts {
        l_counts,
        u_counts,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiag(n: usize) -> CscMat {
        let mut d = vec![vec![0.0; n]; n];
        for i in 0..n {
            d[i][i] = 2.0;
            if i + 1 < n {
                d[i][i + 1] = -1.0;
                d[i + 1][i] = -1.0;
            }
        }
        CscMat::from_dense(&d)
    }

    #[test]
    fn tridiagonal_has_no_fill() {
        let p = symbolic_cholesky(&tridiag(6));
        assert_eq!(p.nnz(), 6 + 5); // diag + one subdiagonal per column
        for j in 0..5 {
            assert_eq!(p.col(j), &[j, j + 1]);
        }
        assert_eq!(p.col(5), &[5]);
    }

    #[test]
    fn fill_in_is_predicted() {
        // A 2D grid point pattern creates fill; the dense arrow check is
        // simpler: arrow with head at column 0 fills everything.
        let n = 5;
        let mut d = vec![vec![0.0; n]; n];
        for i in 0..n {
            d[i][i] = 4.0;
            d[0][i] = 1.0;
            d[i][0] = 1.0;
        }
        let p = symbolic_cholesky(&CscMat::from_dense(&d));
        // L is completely dense below the diagonal.
        assert_eq!(p.nnz(), n * (n + 1) / 2);
    }

    #[test]
    fn supernodes_detected_in_dense_block() {
        // Fully dense 4x4: all columns form one supernode.
        let d = vec![vec![1.0; 4]; 4];
        let p = symbolic_cholesky(&CscMat::from_dense(&d));
        let s = fundamental_supernodes(&p, 0);
        assert_eq!(s, vec![0, 4]);
    }

    #[test]
    fn supernodes_split_in_tridiagonal() {
        let p = symbolic_cholesky(&tridiag(5));
        let s = fundamental_supernodes(&p, 0);
        // Tridiagonal: column j has pattern {j, j+1}; tail {j+1} equals
        // col j+1's pattern {j+1, j+2}? No — {j+1} != {j+1, j+2}: prev_tail
        // shorter than cur -> split everywhere except the last pair.
        assert!(s.len() >= 4, "supernodes {s:?}");
        assert_eq!(*s.last().unwrap(), 5);
    }

    #[test]
    fn symbolic_gp_tridiagonal_counts() {
        let c = symbolic_gp(&tridiag(4));
        // No fill: L has one entry per column except last; U has diag +
        // one superdiagonal per column except first.
        assert_eq!(c.l_counts, vec![1, 1, 1, 0]);
        assert_eq!(c.u_counts, vec![1, 2, 2, 2]);
        assert!(c.flops > 0.0);
    }

    #[test]
    fn symbolic_gp_dense_fill() {
        // Arrow with head at 0: GP with diagonal pivots fills densely.
        let n = 4;
        let mut d = vec![vec![0.0; n]; n];
        for i in 0..n {
            d[i][i] = 4.0;
            d[0][i] = 1.0;
            d[i][0] = 1.0;
        }
        let c = symbolic_gp(&CscMat::from_dense(&d));
        // Column j>0 of L fills rows j+1..n.
        for j in 0..n {
            assert_eq!(c.l_counts[j], n - 1 - j);
        }
    }

    #[test]
    fn symbolic_gp_matches_cholesky_on_symmetric() {
        // For symmetric patterns with diagonal pivoting, L pattern of GP
        // equals symbolic Cholesky's L.
        let a = tridiag(7);
        let gp = symbolic_gp(&a);
        let ch = symbolic_cholesky(&a);
        for j in 0..7 {
            assert_eq!(gp.l_counts[j], ch.col(j).len() - 1, "col {j}");
        }
    }
}
