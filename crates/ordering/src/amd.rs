//! Approximate minimum degree ordering (AMD).
//!
//! A quotient-graph minimum-degree ordering in the style of Amestoy, Davis
//! & Duff (paper §II cites it as the fill-reducing ordering for the BTF
//! subblocks; Alg. 2 line 2 applies it per diagonal block). Implemented
//! features:
//!
//! * quotient graph with **element absorption** (eliminated pivots become
//!   elements; elements adjacent to a new pivot are absorbed by it),
//! * **approximate external degrees** via the shared `|Le \ Lp|` pass,
//! * **mass elimination** (variables whose adjacency collapses into the
//!   pivot's element are ordered immediately),
//! * **supervariable merging** of indistinguishable variables (hash, then
//!   verify),
//! * **dense-row deferral**: rows denser than `10·√n + 16` are ordered
//!   last, which keeps circuit matrices with near-dense columns from
//!   degrading the quotient graph.
//!
//! The ordering operates on the symmetrized pattern `A + Aᵀ` (diagonal
//! ignored), matching how AMD is applied ahead of an LU factorization with
//! pivoting confined to diagonal blocks.

use basker_sparse::{CscMat, Perm};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    /// Alive supervariable.
    Var,
    /// Eliminated pivot now acting as a quotient-graph element.
    Elem,
    /// Variable merged into another supervariable.
    Dead,
    /// Variable already placed in the output order (pivot or mass-elim).
    Ordered,
}

/// Computes an AMD permutation for the square matrix `a`.
///
/// Returns the permutation in gather convention: `perm[k]` is the original
/// index eliminated at step `k`; factorizing `A[perm, perm]` should incur
/// substantially less fill than the natural order.
pub fn amd_order(a: &CscMat) -> Perm {
    assert!(a.is_square(), "AMD requires a square matrix");
    let n = a.ncols();
    if n == 0 {
        return Perm::identity(0);
    }

    // --- build symmetrized adjacency (no diagonal) ---
    let sym = if a.is_pattern_symmetric() {
        a.clone()
    } else {
        a.symmetrize()
    };
    let mut vadj: Vec<Vec<usize>> = (0..n)
        .map(|j| {
            sym.col_rows(j)
                .iter()
                .copied()
                .filter(|&i| i != j)
                .collect()
        })
        .collect();
    let mut velems: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut evars: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut esize: Vec<usize> = vec![0; n];
    let mut weight: Vec<usize> = vec![1; n];
    let mut kind: Vec<Kind> = vec![Kind::Var; n];
    let mut degree: Vec<usize> = vec![0; n];
    let mut merge_children: Vec<Vec<usize>> = vec![Vec::new(); n];

    let dense_threshold = ((10.0 * (n as f64).sqrt()) as usize + 16).min(n);
    let mut deferred: Vec<usize> = Vec::new();
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
    for v in 0..n {
        degree[v] = vadj[v].len();
        if degree[v] >= dense_threshold {
            deferred.push(v);
            kind[v] = Kind::Ordered; // parked; appended at the end
        } else {
            heap.push(Reverse((degree[v], v)));
        }
    }

    // stamps for set membership tests
    let mut in_lp = vec![usize::MAX; n]; // stamp: member of current Lp
    let mut wstamp = vec![usize::MAX; n]; // stamp for the |Le \ Lp| pass
    let mut wval = vec![0usize; n];
    let mut stamp = 0usize;

    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut ordered_weight = 0usize;
    let target_weight = n - deferred.len();

    let mut lp: Vec<usize> = Vec::new();

    while ordered_weight < target_weight {
        // --- select pivot ---
        let p = loop {
            match heap.pop() {
                Some(Reverse((d, v))) => {
                    if kind[v] == Kind::Var && degree[v] == d {
                        break v;
                    }
                }
                None => {
                    // Numerical guard: any still-alive variable works.
                    let v = (0..n).find(|&v| kind[v] == Kind::Var);
                    match v {
                        Some(v) => break v,
                        None => {
                            debug_assert!(false, "ran out of variables early");
                            break usize::MAX;
                        }
                    }
                }
            }
        };
        if p == usize::MAX {
            break;
        }

        stamp += 1;
        // --- build Lp = union of variable neighbours and element members ---
        lp.clear();
        in_lp[p] = stamp;
        for &u in &vadj[p] {
            if kind[u] == Kind::Var && in_lp[u] != stamp {
                in_lp[u] = stamp;
                lp.push(u);
            }
        }
        for &e in &velems[p] {
            if kind[e] != Kind::Elem {
                continue;
            }
            for &u in &evars[e] {
                if kind[u] == Kind::Var && in_lp[u] != stamp {
                    in_lp[u] = stamp;
                    lp.push(u);
                }
            }
            // e is absorbed by the new element p.
            kind[e] = Kind::Dead;
            evars[e] = Vec::new();
        }
        let lp_weight: usize = lp.iter().map(|&u| weight[u]).sum();

        // --- order the pivot ---
        kind[p] = Kind::Elem;
        order.push(p);
        ordered_weight += weight[p];

        // --- |Le \ Lp| pass over elements adjacent to Lp members ---
        for &v in &lp {
            for &e in &velems[v] {
                if kind[e] != Kind::Elem {
                    continue;
                }
                if wstamp[e] != stamp {
                    wstamp[e] = stamp;
                    wval[e] = esize[e];
                }
                wval[e] = wval[e].saturating_sub(weight[v]);
            }
        }

        // --- update each member of Lp ---
        let mut hash_buckets: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for &v in &lp {
            // prune variable adjacency: drop dead/ordered/element nodes,
            // Lp members (covered by element p) and p itself.
            vadj[v].retain(|&u| kind[u] == Kind::Var && in_lp[u] != stamp);
            // prune element list: drop absorbed elements.
            velems[v].retain(|&e| kind[e] == Kind::Elem);

            let ext_vars: usize = vadj[v].iter().map(|&u| weight[u]).sum();
            let ext_elems: usize = velems[v]
                .iter()
                .map(|&e| {
                    if wstamp[e] == stamp {
                        wval[e]
                    } else {
                        esize[e]
                    }
                })
                .sum();

            if ext_vars == 0 && ext_elems == 0 {
                // Mass elimination: v's fill is entirely inside Lp; it can
                // be ordered right after p with no extra fill.
                kind[v] = Kind::Ordered;
                order.push(v);
                ordered_weight += weight[v];
                continue;
            }

            velems[v].push(p);
            let d = ext_vars + ext_elems + (lp_weight - weight[v]);
            degree[v] = d.min(n.saturating_sub(ordered_weight + weight[v]));

            // hash for supervariable detection
            let mut h = 0xcbf29ce484222325u64;
            let mut mix = |x: usize| {
                h ^= x as u64;
                h = h.wrapping_mul(0x100000001b3);
            };
            let mut sv: Vec<usize> = vadj[v].clone();
            sv.sort_unstable();
            for &u in &sv {
                mix(u + 1);
            }
            mix(usize::MAX);
            let mut se: Vec<usize> = velems[v].clone();
            se.sort_unstable();
            for &e in &se {
                mix(e + 1);
            }
            hash_buckets.entry(h).or_default().push(v);
        }

        // --- supervariable merging (verify within buckets) ---
        for bucket in hash_buckets.values() {
            if bucket.len() < 2 {
                continue;
            }
            for idx in 0..bucket.len() {
                let v = bucket[idx];
                if kind[v] != Kind::Var {
                    continue;
                }
                for &w in &bucket[idx + 1..] {
                    if kind[w] != Kind::Var {
                        continue;
                    }
                    if indistinguishable(v, w, &vadj, &velems, &kind) {
                        // merge w into v
                        weight[v] += weight[w];
                        kind[w] = Kind::Dead;
                        let children = std::mem::take(&mut merge_children[w]);
                        merge_children[v].push(w);
                        merge_children[v].extend(children);
                        vadj[w] = Vec::new();
                        velems[w] = Vec::new();
                    }
                }
            }
        }

        // --- finalize element p ---
        let alive: Vec<usize> = lp
            .iter()
            .copied()
            .filter(|&u| kind[u] == Kind::Var)
            .collect();
        esize[p] = alive.iter().map(|&u| weight[u]).sum();
        evars[p] = alive;
        vadj[p] = Vec::new();
        velems[p] = Vec::new();

        // push refreshed degrees
        for &v in &lp {
            if kind[v] == Kind::Var {
                heap.push(Reverse((degree[v], v)));
            }
        }
    }

    // --- expand supervariables into the final order ---
    let mut perm: Vec<usize> = Vec::with_capacity(n);
    for &p in &order {
        perm.push(p);
        // merged children are emitted right after their representative
        let mut stack: Vec<usize> = merge_children[p].clone();
        while let Some(c) = stack.pop() {
            perm.push(c);
            stack.extend(merge_children[c].iter().copied());
        }
    }
    // deferred dense rows last (ascending for determinism)
    deferred.sort_unstable();
    perm.extend(deferred);

    debug_assert_eq!(perm.len(), n, "AMD lost vertices");
    Perm::from_vec(perm).expect("AMD produced an invalid permutation")
}

/// Exact indistinguishability check: `Adj(v) ∪ {v} == Adj(w) ∪ {w}` in the
/// quotient graph (variable and element neighbourhoods both equal).
fn indistinguishable(
    v: usize,
    w: usize,
    vadj: &[Vec<usize>],
    velems: &[Vec<usize>],
    kind: &[Kind],
) -> bool {
    let clean = |x: usize, other: usize| -> Vec<usize> {
        let mut s: Vec<usize> = vadj[x]
            .iter()
            .copied()
            .filter(|&u| kind[u] == Kind::Var && u != other && u != x)
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    if clean(v, w) != clean(w, v) {
        return false;
    }
    let elems = |x: usize| -> Vec<usize> {
        let mut s: Vec<usize> = velems[x]
            .iter()
            .copied()
            .filter(|&e| kind[e] == Kind::Elem)
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    elems(v) == elems(w)
}

/// Counts the fill (nnz of `L`, diagonal included) that symbolic Cholesky
/// would incur on `A[perm, perm]` — a quality metric used by tests and the
/// ordering benchmarks.
pub fn cholesky_fill_with_perm(a: &CscMat, perm: &Perm) -> usize {
    let p = Perm::permute_both(
        perm,
        perm,
        &if a.is_pattern_symmetric() {
            a.clone()
        } else {
            a.symmetrize()
        },
    );
    crate::symbolic::symbolic_cholesky(&p).nnz()
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_sparse::TripletMat;

    fn grid2d(k: usize) -> CscMat {
        // k x k five-point stencil
        let n = k * k;
        let idx = |r: usize, c: usize| r * k + c;
        let mut t = TripletMat::new(n, n);
        for r in 0..k {
            for c in 0..k {
                let u = idx(r, c);
                t.push(u, u, 4.0);
                if r + 1 < k {
                    t.push(u, idx(r + 1, c), -1.0);
                    t.push(idx(r + 1, c), u, -1.0);
                }
                if c + 1 < k {
                    t.push(u, idx(r, c + 1), -1.0);
                    t.push(idx(r, c + 1), u, -1.0);
                }
            }
        }
        t.to_csc()
    }

    #[test]
    fn produces_valid_permutation() {
        for k in [1usize, 2, 3, 5, 8] {
            let a = grid2d(k);
            let p = amd_order(&a);
            assert_eq!(p.len(), k * k);
            // Perm::from_vec validated it already; double-check coverage.
            let mut seen = vec![false; k * k];
            for &x in p.as_slice() {
                assert!(!seen[x]);
                seen[x] = true;
            }
        }
    }

    #[test]
    fn reduces_fill_versus_natural_order_on_grid() {
        let a = grid2d(12);
        let natural = cholesky_fill_with_perm(&a, &Perm::identity(a.ncols()));
        let amd = cholesky_fill_with_perm(&a, &amd_order(&a));
        assert!(
            (amd as f64) < 0.9 * natural as f64,
            "AMD fill {amd} not clearly below natural fill {natural}"
        );
    }

    #[test]
    fn tridiagonal_stays_fill_free() {
        let n = 30;
        let mut t = TripletMat::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        let a = t.to_csc();
        let p = amd_order(&a);
        let fill = cholesky_fill_with_perm(&a, &p);
        // Tridiagonal can be ordered with zero fill: |L| = 2n - 1.
        assert_eq!(fill, 2 * n - 1);
    }

    #[test]
    fn handles_diagonal_matrix() {
        let a = CscMat::identity(7);
        let p = amd_order(&a);
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn handles_dense_matrix() {
        let d = vec![vec![1.0; 9]; 9];
        let a = CscMat::from_dense(&d);
        let p = amd_order(&a);
        assert_eq!(p.len(), 9);
    }

    #[test]
    fn handles_unsymmetric_input() {
        let mut t = TripletMat::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 1.0);
        }
        t.push(0, 4, 1.0);
        t.push(3, 1, 1.0);
        let p = amd_order(&t.to_csc());
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn star_graph_orders_center_last() {
        // Star: vertex 0 adjacent to all others. Minimum degree orders the
        // leaves (degree 1) before the hub (degree n-1).
        let n = 10;
        let mut t = TripletMat::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
        }
        for i in 1..n {
            t.push(0, i, 1.0);
            t.push(i, 0, 1.0);
        }
        let p = amd_order(&t.to_csc());
        // Once all but one leaf are eliminated the hub's degree drops to 1
        // and it may tie with the final leaf, so the hub lands in one of
        // the last two positions.
        let pos = p.as_slice().iter().position(|&v| v == 0).unwrap();
        assert!(pos >= n - 2, "hub ordered at position {pos}");
    }

    #[test]
    fn supervariables_on_block_structure() {
        // Two groups of mutually identical columns (cliques sharing the
        // same external neighbour) exercise the merge path.
        let n = 8;
        let mut t = TripletMat::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
        }
        // clique {0,1,2,3}, clique {4,5,6,7}, bridge 3-4
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    t.push(i, j, 1.0);
                }
            }
        }
        for i in 4..8 {
            for j in 4..8 {
                if i != j {
                    t.push(i, j, 1.0);
                }
            }
        }
        t.push(3, 4, 1.0);
        t.push(4, 3, 1.0);
        let p = amd_order(&t.to_csc());
        assert_eq!(p.len(), n);
        let fill = cholesky_fill_with_perm(&t.to_csc(), &p);
        // Two 4-cliques + bridge: near-perfect elimination possible; fill
        // should stay close to the clique content (4*5/2)*2 = 20 plus the
        // bridge.
        assert!(fill <= 24, "fill {fill} too high for two cliques");
    }
}
