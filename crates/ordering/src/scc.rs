//! Strongly connected components (iterative Tarjan).
//!
//! The BTF coarse structure (paper §III-A) is the SCC condensation of the
//! digraph of the diagonally-matched matrix: each component becomes one
//! diagonal block. Tarjan completes components in reverse topological order
//! of the condensation, which is exactly the block order that yields an
//! *upper* block triangular matrix.

use basker_sparse::CscMat;

/// SCC decomposition of a square matrix's digraph.
///
/// Vertex `u` has an edge to `v` when column `u` stores row `v` (`A[v,u]`
/// nonzero, `u != v`). Components are numbered `0..ncomp` in Tarjan
/// completion order; with that numbering every edge `u → v` satisfies
/// `comp_of[v] <= comp_of[u]`.
#[derive(Debug, Clone)]
pub struct Scc {
    /// Number of components.
    pub ncomp: usize,
    /// Component id of each vertex.
    pub comp_of: Vec<usize>,
    /// Vertices grouped by component: component `c`'s vertices are
    /// `order[comp_ptr[c]..comp_ptr[c + 1]]`.
    pub order: Vec<usize>,
    /// Component boundaries into `order` (length `ncomp + 1`).
    pub comp_ptr: Vec<usize>,
}

/// Computes strongly connected components of the digraph of `a`.
pub fn strongly_connected_components(a: &CscMat) -> Scc {
    assert!(a.is_square(), "SCC requires a square matrix");
    let n = a.nrows();
    const UNSET: usize = usize::MAX;

    let mut index = vec![UNSET; n]; // discovery index
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp_of = vec![UNSET; n];
    let mut tarjan_stack: Vec<usize> = Vec::new();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut comp_ptr: Vec<usize> = vec![0];
    let mut next_index = 0usize;
    let mut ncomp = 0usize;

    // Explicit DFS stack: (vertex, next edge position).
    let mut dfs: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        dfs.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        tarjan_stack.push(start);
        on_stack[start] = true;

        while let Some(&(u, pos)) = dfs.last() {
            let col = a.col_rows(u);
            if pos < col.len() {
                dfs.last_mut().unwrap().1 += 1;
                let v = col[pos];
                if v == u {
                    continue; // self-loop irrelevant to SCC structure
                }
                if index[v] == UNSET {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    tarjan_stack.push(v);
                    on_stack[v] = true;
                    dfs.push((v, 0));
                } else if on_stack[v] {
                    lowlink[u] = lowlink[u].min(index[v]);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[u]);
                }
                if lowlink[u] == index[u] {
                    // u is the root of a component: pop it off.
                    let begin = order.len();
                    loop {
                        let w = tarjan_stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp_of[w] = ncomp;
                        order.push(w);
                        if w == u {
                            break;
                        }
                    }
                    // Keep vertices within a component in ascending index
                    // order for deterministic output.
                    order[begin..].sort_unstable();
                    comp_ptr.push(order.len());
                    ncomp += 1;
                }
            }
        }
    }

    Scc {
        ncomp,
        comp_of,
        order,
        comp_ptr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_sparse::TripletMat;

    fn digraph(n: usize, edges: &[(usize, usize)]) -> CscMat {
        // edge u -> v stored as A[v, u] = 1
        let mut t = TripletMat::new(n, n);
        for &(u, v) in edges {
            t.push(v, u, 1.0);
        }
        t.to_csc()
    }

    #[test]
    fn diagonal_matrix_gives_singletons() {
        let a = CscMat::identity(4);
        let s = strongly_connected_components(&a);
        assert_eq!(s.ncomp, 4);
        for c in 0..4 {
            assert_eq!(s.comp_ptr[c + 1] - s.comp_ptr[c], 1);
        }
    }

    #[test]
    fn simple_cycle_is_one_component() {
        let a = digraph(3, &[(0, 1), (1, 2), (2, 0)]);
        let s = strongly_connected_components(&a);
        assert_eq!(s.ncomp, 1);
        assert_eq!(s.order.len(), 3);
    }

    #[test]
    fn two_components_with_edge_between() {
        // Component {0,1} (cycle), component {2,3} (cycle), edge 0 -> 2.
        let a = digraph(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (0, 2)]);
        let s = strongly_connected_components(&a);
        assert_eq!(s.ncomp, 2);
        // Edge 0->2 means comp(2) <= comp(0): {2,3} completes first.
        assert!(s.comp_of[2] < s.comp_of[0]);
        assert_eq!(s.comp_of[0], s.comp_of[1]);
        assert_eq!(s.comp_of[2], s.comp_of[3]);
    }

    #[test]
    fn completion_order_is_reverse_topological() {
        // Chain of singletons: 0 -> 1 -> 2 -> 3.
        let a = digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = strongly_connected_components(&a);
        assert_eq!(s.ncomp, 4);
        // Every edge u->v must satisfy comp(v) <= comp(u).
        assert!(s.comp_of[1] < s.comp_of[0]);
        assert!(s.comp_of[2] < s.comp_of[1]);
        assert!(s.comp_of[3] < s.comp_of[2]);
    }

    #[test]
    fn nested_cycles() {
        // {0,1,2} cycle with an extra inner edge; {3} alone; 2 -> 3.
        let a = digraph(4, &[(0, 1), (1, 2), (2, 0), (1, 0), (2, 3)]);
        let s = strongly_connected_components(&a);
        assert_eq!(s.ncomp, 2);
        assert!(s.comp_of[3] < s.comp_of[0]);
    }

    #[test]
    fn self_loops_ignored() {
        let a = digraph(2, &[(0, 0), (1, 1)]);
        let s = strongly_connected_components(&a);
        assert_eq!(s.ncomp, 2);
    }

    #[test]
    fn edge_condition_holds_on_random_digraphs() {
        let mut seed = 999u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for trial in 0..10 {
            let n = 10 + 3 * trial;
            let mut edges = Vec::new();
            for _ in 0..3 * n {
                edges.push((rnd() % n, rnd() % n));
            }
            let a = digraph(n, &edges);
            let s = strongly_connected_components(&a);
            // Validate comp_ptr partitions order.
            assert_eq!(*s.comp_ptr.last().unwrap(), n);
            // Every edge u -> v: comp(v) <= comp(u).
            for &(u, v) in &edges {
                if u != v {
                    assert!(
                        s.comp_of[v] <= s.comp_of[u],
                        "edge {u}->{v} violates block order"
                    );
                }
            }
        }
    }
}
