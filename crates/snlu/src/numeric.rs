//! Numeric phase of the supernodal solver: panel factorization over etree
//! level sets, blocked rank-k supernode updates on the dense kernel
//! ladder, static pivot perturbation, and the refined solve.
//!
//! The numeric kernel works on a sparse-accumulator **panel** (`n ×
//! width`, one dense column per supernode column). External updates are
//! grouped per contributing supernode and applied as one triangular
//! solve per receiving column followed by a single rank-k GEMM into the
//! contributor's below rows — the [`basker_kernels`] ladder supplies the
//! `trsv`/GEMM micro-kernels, so the flop-dominant inner loops run on
//! whatever SIMD rung the host dispatched. All per-supernode staging
//! buffers live in a per-worker `SnodeScratch` arena that persists
//! across level sets *and* refactorizations, so a steady-state
//! [`SnluNumeric::refactor`] performs no heap allocation.

use crate::symbolic::Snlu;
use basker_sparse::spmv::spmv_sub;
use basker_sparse::trisolve::{lower_solve_in_place, upper_solve_in_place};
use basker_sparse::util::mat_norm_inf_with;
use basker_sparse::{CscMat, Perm, Result, SolveWorkspace, SparseError};
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::Mutex;

/// One factored supernode: a dense column-major panel plus the `U` row
/// segments of its columns.
struct SnodeFactor {
    d0: usize,
    /// Panel rows: the supernode's own columns `d0..d1` first, then the
    /// below-diagonal row union (ascending).
    rows: Vec<usize>,
    width: usize,
    /// Column-major `rows.len() x width`. Column `c` holds its internal
    /// `U` values in rows `0..c`, the (possibly perturbed) pivot at row
    /// `c`, and the scaled `L` values below.
    panel: Vec<f64>,
    /// Per column: ascending `(tmin, values)` segments of `U(:, j)`; each
    /// segment spans `tmin..tmin+len` rows of one earlier supernode (the
    /// final segment is the internal one at `tmin = d0`).
    u_segments: Vec<Vec<(usize, Vec<f64>)>>,
    /// Per column: the (possibly perturbed) pivot.
    pivots: Vec<f64>,
    /// Dense flops spent on this supernode.
    flops: f64,
    /// Pivots perturbed in this supernode.
    perturbed: usize,
}

/// Per-worker scratch arena for [`Snlu::factor`] /
/// [`SnluNumeric::refactor`]: the sparse-accumulator panel plus the
/// dense staging buffers of the blocked external update. Buffers grow to
/// their high-water marks once and are then reused across supernodes,
/// level sets, and refactorizations.
#[derive(Default)]
struct SnodeScratch {
    /// `n × width` sparse accumulator, column-major; all-zero between
    /// supernodes (each supernode re-clears exactly what it touched).
    spa: Vec<f64>,
    /// Solved `U`-segment block `B` of the current contributor
    /// (`wsp × p`, zero above each column's first active row).
    useg: Vec<f64>,
    /// Staged `−L_below·B` product, scattered after the GEMM (`nb × p`).
    prod: Vec<f64>,
    /// Merged `(sp, c, tmin)` triples of the supernode's external
    /// updates, sorted by contributing supernode.
    updates: Vec<(usize, usize, usize)>,
    /// Per-column `U`-segment cursor (value-refresh passes overwrite the
    /// retained segments in order instead of pushing).
    segc: Vec<usize>,
}

thread_local! {
    /// One arena per worker thread; the rayon shim's teams park workers
    /// between jobs instead of respawning them, so this persists across
    /// level sets and refactorizations.
    static SCRATCH: RefCell<SnodeScratch> = RefCell::new(SnodeScratch::default());
}

fn grown(buf: &mut Vec<f64>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

/// Records one `U` segment: pushed on a first factorization, overwritten
/// in place (same pattern, same order) on a value-only refresh.
fn put_segment(
    segs: &mut Vec<(usize, Vec<f64>)>,
    cursor: &mut usize,
    tmin: usize,
    vals: &[f64],
    recycle: bool,
) {
    if recycle {
        let seg = &mut segs[*cursor];
        debug_assert_eq!(seg.0, tmin, "U segment drifted between refactorizations");
        seg.1.copy_from_slice(vals);
        *cursor += 1;
    } else {
        segs.push((tmin, vals.to_vec()));
    }
}

/// The numeric factorization: assembled triangular factors + metadata.
pub struct SnluNumeric {
    /// The symbolic analysis these factors were built from (shared).
    sym: Snlu,
    /// The factored matrix, retained for iterative refinement (static
    /// pivoting perturbs tiny pivots, so the solve corrects against
    /// `A`). Costs one `O(|A|)` copy per (re)factorization — small next
    /// to the `O(|A|·fill)` numeric work — and buys an engine-agnostic
    /// solve signature (callers no longer pass `A` to every solve).
    a: CscMat,
    /// The permuted matrix the numeric kernels read; its pattern is
    /// fixed by the analysis, so a refactorization only refreshes its
    /// values through `ap_map`.
    ap: CscMat,
    /// Value-position map: `ap.values[k] = a.values[ap_map[k]]`.
    ap_map: Vec<usize>,
    /// Row-sum scratch for the `‖A‖∞` recomputation on refactor.
    rowsum: Vec<f64>,
    /// The factored supernodes, retained so a refactorization rewrites
    /// their panels in place (each slot's lock is uncontended: a
    /// supernode is written once per pass and read only afterwards).
    snodes: Vec<Mutex<Option<SnodeFactor>>>,
    l: CscMat,
    u: CscMat,
    /// `|L+U|` counting dense panel storage (the supernodal memory
    /// footprint reported as the PMKL column of Table I).
    pub lu_nnz: usize,
    /// Dense flops of the factorization.
    pub flops: f64,
    /// Number of statically perturbed pivots.
    pub perturbed_pivots: usize,
    /// Iterative-refinement sweeps applied by
    /// [`solve_in_place`](Self::solve_in_place).
    pub refine_steps: usize,
}

impl Snlu {
    /// Numeric factorization of `a` (same pattern as analyzed).
    pub fn factor(&self, a: &CscMat) -> Result<SnluNumeric> {
        let n = self.n;
        let ap = Perm::permute_both(&self.row_perm, &self.col_perm, a);
        // Record where each permuted value came from, so refactorizations
        // refresh `ap` in place instead of re-permuting a fresh matrix
        // (an f64 holds any nnz index we can store exactly).
        let ap_map: Vec<usize> = {
            let mut idx = a.clone();
            for (k, v) in idx.values_mut().iter_mut().enumerate() {
                *v = k as f64;
            }
            Perm::permute_both(&self.row_perm, &self.col_perm, &idx)
                .values()
                .iter()
                .map(|&v| v as usize)
                .collect()
        };
        let mut rowsum = vec![0.0f64; n];
        let pivot_floor = pivot_floor(self.opts.pivot_eps, &ap, &mut rowsum);

        let nsn = self.nsupernodes();
        let snodes: Vec<Mutex<Option<SnodeFactor>>> = (0..nsn).map(|_| Mutex::new(None)).collect();
        self.run_levels(&ap, pivot_floor, &snodes);

        // ---- assemble L and U, gather stats ----
        let mut lu_nnz = 0usize;
        let mut flops = 0.0f64;
        let mut perturbed = 0usize;
        let mut lcolptr = Vec::with_capacity(n + 1);
        let mut lrows: Vec<usize> = Vec::new();
        let mut lvals: Vec<f64> = Vec::new();
        let mut ucolptr = Vec::with_capacity(n + 1);
        let mut urows: Vec<usize> = Vec::new();
        let mut uvals: Vec<f64> = Vec::new();
        lcolptr.push(0);
        ucolptr.push(0);
        for slot in &snodes {
            let guard = slot.lock().unwrap();
            let f = guard.as_ref().expect("missing supernode");
            flops += f.flops;
            perturbed += f.perturbed;
            let nr = f.rows.len();
            for c in 0..f.width {
                let j = f.d0 + c;
                // L column: unit diagonal + panel entries below the diag.
                lrows.push(j);
                lvals.push(1.0);
                for idx in (c + 1)..nr {
                    lrows.push(f.rows[idx]);
                    lvals.push(f.panel[c * nr + idx]);
                }
                lcolptr.push(lrows.len());
                // U column: ascending segments then the pivot.
                for (tmin, vals) in &f.u_segments[c] {
                    for (k, &v) in vals.iter().enumerate() {
                        urows.push(tmin + k);
                        uvals.push(v);
                    }
                }
                urows.push(j);
                uvals.push(f.pivots[c]);
                ucolptr.push(urows.len());
                lu_nnz += (nr - c) + f.u_segments[c].iter().map(|(_, v)| v.len()).sum::<usize>();
            }
        }
        // SAFETY: U columns emit ascending earlier-supernode segments then
        // the pivot row `j`; `ucolptr` tracks `urows.len()`.
        let l = unsafe { CscMat::from_parts_unchecked(n, n, lcolptr, lrows, lvals) };
        // SAFETY: L columns emit the unit diagonal then the panel's sorted
        // below-diagonal rows; `lcolptr` tracks `lrows.len()`.
        let u = unsafe { CscMat::from_parts_unchecked(n, n, ucolptr, urows, uvals) };

        Ok(SnluNumeric {
            sym: self.clone(),
            a: a.clone(),
            ap,
            ap_map,
            rowsum,
            snodes,
            l,
            u,
            lu_nnz,
            flops,
            perturbed_pivots: perturbed,
            refine_steps: self.opts.refine_steps,
        })
    }

    /// Runs the numeric kernels over the etree level sets; each level's
    /// supernodes factor in parallel against the already-filled slots of
    /// earlier levels.
    fn run_levels(&self, ap: &CscMat, pivot_floor: f64, snodes: &[Mutex<Option<SnodeFactor>>]) {
        for level in &self.levels {
            self.pool.install(|| {
                level.par_iter().for_each(|&s| {
                    SCRATCH.with(|c| {
                        self.factor_snode_into(s, ap, pivot_floor, snodes, &mut c.borrow_mut())
                    });
                });
            });
        }
    }

    /// Factors one supernode (columns `d0..d1`): blocked external
    /// updates from earlier panels, dense internal elimination on the
    /// kernel ladder, static pivoting. Recycles the slot's previous
    /// storage when present (value-only refactorization).
    fn factor_snode_into(
        &self,
        s: usize,
        ap: &CscMat,
        pivot_floor: f64,
        snodes: &[Mutex<Option<SnodeFactor>>],
        ws: &mut SnodeScratch,
    ) {
        let d0 = self.sn_bounds[s];
        let d1 = self.sn_bounds[s + 1];
        let w = d1 - d0;
        let n = self.n;
        let ks = basker_kernels::active();

        let prev = snodes[s].lock().unwrap().take();
        let recycle = prev.is_some();
        let (rows, mut panel, mut u_segments, mut pivots) = match prev {
            Some(f) => (f.rows, f.panel, f.u_segments, f.pivots),
            None => {
                // Panel rows: own columns + below-row union of the L
                // patterns (prefix is strictly increasing and below the
                // tail, so one whole-vector dedup suffices).
                let mut rows: Vec<usize> = (d0..d1).collect();
                for j in d0..d1 {
                    for &r in self.lpat.col(j) {
                        if r >= d1 {
                            rows.push(r);
                        }
                    }
                }
                rows[w..].sort_unstable();
                rows.dedup();
                let nr = rows.len();
                (
                    rows,
                    vec![0.0f64; nr * w],
                    vec![Vec::new(); w],
                    vec![0.0f64; w],
                )
            }
        };
        let nr = rows.len();
        let mut flops = 0.0f64;
        let mut perturbed = 0usize;

        grown(&mut ws.spa, n * w);
        if ws.segc.len() < w {
            ws.segc.resize(w, 0);
        }
        ws.segc[..w].fill(0);

        // ---- scatter A's columns into the accumulator panel ----
        for c in 0..w {
            let col = &mut ws.spa[c * n..(c + 1) * n];
            for (r, v) in ap.col_iter(d0 + c) {
                col[r] = v;
            }
        }

        // ---- merge the columns' external updates by contributor ----
        ws.updates.clear();
        for c in 0..w {
            let j = d0 + c;
            let upat = &self.upat_rows[self.upat_colptr[j]..self.upat_colptr[j + 1]];
            let mut k = 0usize;
            while k < upat.len() {
                let t = upat[k];
                let sp = self.sn_of_col[t];
                if sp == s {
                    break; // own supernode handled internally
                }
                ws.updates.push((sp, c, t));
                while k < upat.len() && self.sn_of_col[upat[k]] == sp {
                    k += 1;
                }
            }
        }
        ws.updates.sort_unstable_by_key(|&(sp, c, _)| (sp, c));

        // ---- blocked external updates, one contributor at a time ----
        let mut gi = 0usize;
        while gi < ws.updates.len() {
            let sp = ws.updates[gi].0;
            let mut ge = gi + 1;
            while ge < ws.updates.len() && ws.updates[ge].0 == sp {
                ge += 1;
            }
            let p = ge - gi;
            let pred = snodes[sp].lock().unwrap();
            let snf = pred.as_ref().expect("dependency not factored");
            let wsp = snf.width;
            let nrp = snf.rows.len();
            let nb = nrp - wsp;
            // Per receiving column: triangular-solve the contributor's
            // diagonal block from its first active row down — this *is*
            // the column's U segment — and stage it (zero-padded) into B.
            grown(&mut ws.useg, wsp * p);
            ws.useg[..wsp * p].fill(0.0);
            for (pi, &(_, c, tmin)) in ws.updates[gi..ge].iter().enumerate() {
                let c0 = tmin - snf.d0;
                let xs = &mut ws.spa[c * n + snf.d0 + c0..c * n + snf.d0 + wsp];
                ks.trsv_lower_unit(xs, &snf.panel[c0 * nrp + c0..], nrp);
                ws.useg[pi * wsp + c0..(pi + 1) * wsp].copy_from_slice(xs);
                put_segment(&mut u_segments[c], &mut ws.segc[c], tmin, xs, recycle);
                let k = wsp - c0;
                flops += (k * (k - 1)) as f64 + 2.0 * (nb * k) as f64;
            }
            // Rank-k update of the contributor's below rows: one GEMM
            // into a zeroed staging block, then a run-detecting scatter
            // per column (`Y = −L_below·B`, `spa[rows] += Y`).
            if nb > 0 {
                grown(&mut ws.prod, nb * p);
                ws.prod[..nb * p].fill(0.0);
                ks.gemm_sub(
                    &mut ws.prod,
                    nb,
                    &snf.panel[wsp..],
                    nrp,
                    &ws.useg,
                    wsp,
                    nb,
                    p,
                    wsp,
                );
                for (pi, &(_, c, _)) in ws.updates[gi..ge].iter().enumerate() {
                    ks.scatter_axpy(
                        &mut ws.spa[c * n..(c + 1) * n],
                        &snf.rows[wsp..],
                        &ws.prod[pi * nb..(pi + 1) * nb],
                        1.0,
                    );
                }
            }
            gi = ge;
        }

        // ---- gather the updated columns into the packed panel ----
        for c in 0..w {
            let spa = &ws.spa[c * n..(c + 1) * n];
            let col = &mut panel[c * nr..(c + 1) * nr];
            col[..w].copy_from_slice(&spa[d0..d1]);
            for (idx, &r) in rows[w..].iter().enumerate() {
                col[w + idx] = spa[r];
            }
        }

        // ---- dense left-looking elimination on the kernel ladder ----
        for c in 0..w {
            let (head, tail) = panel.split_at_mut(c * nr);
            let col = &mut tail[..nr];
            let (ucol, lcol) = col.split_at_mut(c);
            if c > 0 {
                // U(d0..d0+c, j) via the unit-lower diagonal block, then
                // one GEMV clears the update into rows c..nr.
                ks.trsv_lower_unit(ucol, head, nr);
                ks.gemv_sub(lcol, &head[c..], nr, ucol);
                put_segment(&mut u_segments[c], &mut ws.segc[c], d0, ucol, recycle);
                flops += (2 * c * nr - c * c - c) as f64;
            }
            // ---- static pivot + scale ----
            let mut pv = lcol[0];
            if pv.abs() < pivot_floor {
                pv = if pv < 0.0 { -pivot_floor } else { pivot_floor };
                perturbed += 1;
            }
            pivots[c] = pv;
            lcol[0] = pv;
            for v in &mut lcol[1..] {
                *v /= pv;
            }
            flops += (nr - c - 1) as f64;
        }

        // ---- re-zero exactly the accumulator positions we touched ----
        for c in 0..w {
            let spa = &mut ws.spa[c * n..(c + 1) * n];
            spa[d0..d1].fill(0.0);
            for &r in &rows[w..] {
                spa[r] = 0.0;
            }
            for (tmin, vals) in &u_segments[c] {
                if *tmin < d0 {
                    spa[*tmin..*tmin + vals.len()].fill(0.0);
                }
            }
            for (r, _) in ap.col_iter(d0 + c) {
                spa[r] = 0.0;
            }
        }
        if recycle {
            debug_assert!((0..w).all(|c| ws.segc[c] == u_segments[c].len()));
        }

        *snodes[s].lock().unwrap() = Some(SnodeFactor {
            d0,
            rows,
            width: w,
            panel,
            u_segments,
            pivots,
            flops,
            perturbed,
        });
    }
}

/// The static-pivot threshold: `ε·‖A‖∞`, or the smallest positive f64
/// for an all-zero matrix.
fn pivot_floor(eps: f64, ap: &CscMat, rowsum: &mut [f64]) -> f64 {
    let norm = mat_norm_inf_with(ap, rowsum);
    if norm > 0.0 {
        eps * norm
    } else {
        f64::MIN_POSITIVE
    }
}

impl SnluNumeric {
    /// Refreshes the factors against new values on the same pattern.
    ///
    /// The supernodal method pivots **statically** (the MWCM permutation
    /// is fixed at analysis time and tiny pivots are perturbed rather
    /// than exchanged), so a value-only refactorization runs exactly the
    /// numeric kernels of [`Snlu::factor`] — no graph search, no new
    /// permutations — and, unlike the Gilbert–Peierls engines, can never
    /// fail on a collapsed pivot. Every buffer of the previous
    /// factorization (the retained matrices, the supernode panels, the
    /// assembled factors) is rewritten in place, so steady-state calls
    /// perform no heap allocation.
    pub fn refactor(&mut self, a: &CscMat) -> Result<()> {
        if a.nrows() != self.a.nrows()
            || a.ncols() != self.a.ncols()
            || a.colptr() != self.a.colptr()
            || a.rowind() != self.a.rowind()
        {
            return Err(SparseError::InvalidStructure(
                "refactor requires the analyzed sparsity pattern".into(),
            ));
        }
        self.a.values_mut().copy_from_slice(a.values());
        {
            let src = a.values();
            let apv = self.ap.values_mut();
            for (k, &from) in self.ap_map.iter().enumerate() {
                apv[k] = src[from];
            }
        }
        let floor = pivot_floor(self.sym.opts.pivot_eps, &self.ap, &mut self.rowsum);
        self.sym.run_levels(&self.ap, floor, &self.snodes);

        // ---- rewrite the assembled factor values in place ----
        let mut flops = 0.0f64;
        let mut perturbed = 0usize;
        {
            let lvals = self.l.values_mut();
            let mut lp = 0usize;
            let uvals = self.u.values_mut();
            let mut up = 0usize;
            for slot in &self.snodes {
                let guard = slot.lock().unwrap();
                let f = guard.as_ref().expect("missing supernode");
                flops += f.flops;
                perturbed += f.perturbed;
                let nr = f.rows.len();
                for c in 0..f.width {
                    lvals[lp] = 1.0;
                    lp += 1;
                    for idx in (c + 1)..nr {
                        lvals[lp] = f.panel[c * nr + idx];
                        lp += 1;
                    }
                    for (_, vals) in &f.u_segments[c] {
                        uvals[up..up + vals.len()].copy_from_slice(vals);
                        up += vals.len();
                    }
                    uvals[up] = f.pivots[c];
                    up += 1;
                }
            }
            debug_assert_eq!(lp, lvals.len());
            debug_assert_eq!(up, uvals.len());
        }
        self.flops = flops;
        self.perturbed_pivots = perturbed;
        Ok(())
    }

    /// Solves `A·x = b` in place with `refine_steps` sweeps of iterative
    /// refinement against the retained matrix: on entry `x` holds `b`, on
    /// exit the solution. After the workspace's first use at this
    /// dimension the call performs **no heap allocation**.
    pub fn solve_in_place(&self, x: &mut [f64], ws: &mut SolveWorkspace) {
        self.solve_in_place_against(&self.a, x, ws);
    }

    /// The refinement loop against an explicit matrix (always the
    /// retained one; split out so the matrix borrow stays disjoint from
    /// the factor borrows).
    fn solve_in_place_against(&self, a: &CscMat, x: &mut [f64], ws: &mut SolveWorkspace) {
        let n = self.l.ncols();
        assert_eq!(x.len(), n);
        let (b0, work, resid) = ws.split3(n);
        b0.copy_from_slice(x);
        self.solve_once_into(b0, work, x, false);
        for _ in 0..self.refine_steps {
            // r = b - A·x, then x += A⁻¹·r
            resid.copy_from_slice(b0);
            spmv_sub(a, x, resid);
            self.solve_once_into(resid, work, x, true);
        }
    }

    /// Solves several right-hand sides packed column-major in `xs`
    /// (`xs.len()` must be a multiple of `n`); each length-`n` chunk is
    /// overwritten with its solution.
    pub fn solve_multi_in_place(&self, xs: &mut [f64], ws: &mut SolveWorkspace) {
        basker_sparse::workspace::for_each_rhs(self.l.ncols(), xs, |rhs| {
            self.solve_in_place(rhs, ws)
        });
    }

    /// `(min |pivot|, max |pivot|)` over the (possibly perturbed) static
    /// pivots — together with [`perturbed_pivots`](Self::perturbed_pivots)
    /// the quality signal the session layer's adaptive reuse policy
    /// watches. `(∞, 0)` for an empty matrix.
    pub fn pivot_range(&self) -> (f64, f64) {
        basker_sparse::util::u_diag_pivot_range(&self.u)
    }

    /// One triangular-solve pass `out ← (or +=) A⁻¹·rhs` through the
    /// assembled factors; `work` is clobbered. `rhs` and `out` must not
    /// alias (`rhs` is always a workspace buffer here).
    fn solve_once_into(&self, rhs: &[f64], work: &mut [f64], out: &mut [f64], add: bool) {
        self.sym.row_perm.apply_vec_into(rhs, work);
        lower_solve_in_place(&self.l, work, true);
        upper_solve_in_place(&self.u, work);
        for (k, &orig) in self.sym.col_perm.as_slice().iter().enumerate() {
            if add {
                out[orig] += work[k];
            } else {
                out[orig] = work[k];
            }
        }
    }

    /// The assembled unit-lower factor (tests/diagnostics).
    pub fn l(&self) -> &CscMat {
        &self.l
    }

    /// The assembled upper factor.
    pub fn u(&self) -> &CscMat {
        &self.u
    }

    /// The symbolic analysis these factors share.
    pub fn symbolic(&self) -> &Snlu {
        &self.sym
    }

    /// The matrix retained for iterative refinement.
    pub fn matrix(&self) -> &CscMat {
        &self.a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::{SnluMode, SnluOptions};
    use basker_sparse::spmv::spmv;
    use basker_sparse::util::relative_residual;
    use basker_sparse::TripletMat;

    /// Test-side allocating convenience over the in-place path (the
    /// legacy `solve(a, b)` wrapper removed from the public API; the
    /// in-place path refines against the retained matrix).
    fn solve(num: &SnluNumeric, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        num.solve_in_place(&mut x, &mut SolveWorkspace::new());
        x
    }

    fn grid2d(k: usize) -> CscMat {
        let n = k * k;
        let idx = |r: usize, c: usize| r * k + c;
        let mut t = TripletMat::new(n, n);
        for r in 0..k {
            for c in 0..k {
                let u = idx(r, c);
                t.push(u, u, 4.0 + (u % 2) as f64);
                if r + 1 < k {
                    t.push(u, idx(r + 1, c), -1.0);
                    t.push(idx(r + 1, c), u, -1.2);
                }
                if c + 1 < k {
                    t.push(u, idx(r, c + 1), -0.8);
                    t.push(idx(r, c + 1), u, -1.0);
                }
            }
        }
        t.to_csc()
    }

    fn check(a: &CscMat, opts: &SnluOptions) {
        let sym = Snlu::analyze(a, opts).unwrap();
        let num = sym.factor(a).unwrap();
        let xtrue: Vec<f64> = (0..a.ncols()).map(|i| 1.0 + (i % 5) as f64 * 0.5).collect();
        let b = spmv(a, &xtrue);
        let x = solve(&num, &b);
        assert!(
            relative_residual(a, &x, &b) < 1e-10,
            "residual {} too large",
            relative_residual(a, &x, &b)
        );
    }

    #[test]
    fn factor_solve_mesh() {
        for p in [1usize, 2, 4] {
            check(
                &grid2d(8),
                &SnluOptions {
                    nthreads: p,
                    ..SnluOptions::default()
                },
            );
        }
    }

    #[test]
    fn slumt_mode_solves() {
        check(
            &grid2d(7),
            &SnluOptions {
                mode: SnluMode::SluMt,
                ..SnluOptions::default()
            },
        );
    }

    #[test]
    fn relaxed_supernodes_solve() {
        check(
            &grid2d(7),
            &SnluOptions {
                supernode_relax: 4,
                ..SnluOptions::default()
            },
        );
    }

    #[test]
    fn unsymmetric_circuitish_matrix() {
        let n = 40;
        let mut t = TripletMat::new(n, n);
        let mut s = 5u64;
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        for i in 0..n {
            t.push(i, i, 20.0 + (i % 7) as f64);
        }
        for _ in 0..3 * n {
            let (i, j) = (rnd() % n, rnd() % n);
            if i != j {
                t.push(i, j, 1.0 + (rnd() % 3) as f64 * 0.5);
            }
        }
        check(&t.to_csc(), &SnluOptions::default());
    }

    #[test]
    fn perturbation_rescues_zero_pivot() {
        // Structurally fine but numerically singular leading block; static
        // pivoting must perturb and refinement keeps the residual usable
        // for the well-conditioned part. We verify it does not panic and
        // reports the perturbation.
        let mut t = TripletMat::new(3, 3);
        t.push(0, 0, 1e-30);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 1.0);
        t.push(2, 2, 5.0);
        let a = t.to_csc();
        let sym = Snlu::analyze(&a, &SnluOptions::default()).unwrap();
        let num = sym.factor(&a).unwrap();
        // The MWCM avoids the tiny entry, so no perturbation may even be
        // needed; either way the solve must work.
        let b = vec![1.0, 2.0, 5.0];
        let x = solve(&num, &b);
        assert!(relative_residual(&a, &x, &b) < 1e-8);
    }

    #[test]
    fn memory_metric_exceeds_pattern_on_mesh() {
        let a = grid2d(10);
        let sym = Snlu::analyze(&a, &SnluOptions::default()).unwrap();
        let num = sym.factor(&a).unwrap();
        // panel storage counts explicit zeros: >= the sparse pattern count
        assert!(num.lu_nnz >= sym.pattern_nnz() * 9 / 10);
        assert!(num.flops > 0.0);
    }

    #[test]
    fn identity_matrix() {
        let a = CscMat::identity(6);
        let sym = Snlu::analyze(&a, &SnluOptions::default()).unwrap();
        let num = sym.factor(&a).unwrap();
        let x = solve(&num, &[3.0; 6]);
        for v in x {
            assert!((v - 3.0).abs() < 1e-14);
        }
    }

    #[test]
    fn refactor_reuses_storage_and_matches_fresh_factor() {
        let a = grid2d(8);
        let sym = Snlu::analyze(&a, &SnluOptions::default()).unwrap();
        let mut num = sym.factor(&a).unwrap();
        // Same pattern, different values.
        let mut a2 = a.clone();
        for (k, v) in a2.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + 0.01 * (k % 11) as f64;
        }
        num.refactor(&a2).unwrap();
        let fresh = sym.factor(&a2).unwrap();
        // The refactored values must match a from-scratch factorization
        // exactly: both paths run the same kernels in the same order.
        assert_eq!(num.l().values(), fresh.l().values());
        assert_eq!(num.u().values(), fresh.u().values());
        let xtrue: Vec<f64> = (0..a2.ncols()).map(|i| 1.0 + (i % 3) as f64).collect();
        let b = spmv(&a2, &xtrue);
        let x = solve(&num, &b);
        assert!(relative_residual(&a2, &x, &b) < 1e-10);
    }

    #[test]
    fn refactor_rejects_different_pattern() {
        let a = grid2d(5);
        let sym = Snlu::analyze(&a, &SnluOptions::default()).unwrap();
        let mut num = sym.factor(&a).unwrap();
        let other = CscMat::identity(a.ncols());
        assert!(num.refactor(&other).is_err());
    }
}
