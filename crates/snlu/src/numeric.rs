//! Numeric phase of the supernodal solver: panel factorization over etree
//! level sets, dense suffix updates, static pivot perturbation, and the
//! refined solve.

use crate::symbolic::Snlu;
use basker_sparse::spmv::spmv_sub;
use basker_sparse::trisolve::{lower_solve_in_place, upper_solve_in_place};
use basker_sparse::util::mat_norm_inf;
use basker_sparse::{CscMat, Perm, Result, SolveWorkspace};
use rayon::prelude::*;
use std::sync::OnceLock;

/// One factored supernode: a dense column-major panel of `L` values plus
/// the `U` row segments of its columns.
struct SnodeFactor {
    d0: usize,
    /// Panel rows: the supernode's own columns `d0..d1` first, then the
    /// below-diagonal row union (ascending).
    rows: Vec<usize>,
    width: usize,
    /// Column-major `rows.len() x width`; entries at panel positions above
    /// a column's diagonal are zero.
    panel: Vec<f64>,
    /// Per column: ascending `(tmin, values)` segments of `U(:, j)`; each
    /// segment spans `tmin..tmin+len` rows of one earlier supernode.
    u_segments: Vec<Vec<(usize, Vec<f64>)>>,
    /// Per column: the (possibly perturbed) pivot.
    pivots: Vec<f64>,
    /// Dense flops spent on this supernode.
    flops: f64,
    /// Pivots perturbed in this supernode.
    perturbed: usize,
}

/// The numeric factorization: assembled triangular factors + metadata.
pub struct SnluNumeric {
    /// The symbolic analysis these factors were built from (shared).
    sym: Snlu,
    /// The factored matrix, retained for iterative refinement (static
    /// pivoting perturbs tiny pivots, so the solve corrects against
    /// `A`). Costs one `O(|A|)` copy per (re)factorization — small next
    /// to the `O(|A|·fill)` numeric work — and buys an engine-agnostic
    /// solve signature (callers no longer pass `A` to every solve).
    a: CscMat,
    l: CscMat,
    u: CscMat,
    /// `|L+U|` counting dense panel storage (the supernodal memory
    /// footprint reported as the PMKL column of Table I).
    pub lu_nnz: usize,
    /// Dense flops of the factorization.
    pub flops: f64,
    /// Number of statically perturbed pivots.
    pub perturbed_pivots: usize,
    /// Iterative-refinement sweeps applied by
    /// [`solve_in_place`](Self::solve_in_place).
    pub refine_steps: usize,
}

impl Snlu {
    /// Numeric factorization of `a` (same pattern as analyzed).
    pub fn factor(&self, a: &CscMat) -> Result<SnluNumeric> {
        let n = self.n;
        let ap = Perm::permute_both(&self.row_perm, &self.col_perm, a);
        let norm = mat_norm_inf(&ap);
        let pivot_floor = if norm > 0.0 {
            self.opts.pivot_eps * norm
        } else {
            f64::MIN_POSITIVE
        };

        let nsn = self.nsupernodes();
        let slots: Vec<OnceLock<SnodeFactor>> = (0..nsn).map(|_| OnceLock::new()).collect();

        for level in &self.levels {
            self.pool.install(|| {
                level.par_iter().for_each_init(
                    || vec![0.0f64; n],
                    |x, &s| {
                        let f = self.factor_snode(s, &ap, pivot_floor, &slots, x);
                        slots[s].set(f).ok().expect("supernode factored twice");
                    },
                );
            });
        }

        // ---- assemble L and U, gather stats, drop panels ----
        let mut lu_nnz = 0usize;
        let mut flops = 0.0f64;
        let mut perturbed = 0usize;
        let mut lcolptr = Vec::with_capacity(n + 1);
        let mut lrows: Vec<usize> = Vec::new();
        let mut lvals: Vec<f64> = Vec::new();
        let mut ucolptr = Vec::with_capacity(n + 1);
        let mut urows: Vec<usize> = Vec::new();
        let mut uvals: Vec<f64> = Vec::new();
        lcolptr.push(0);
        ucolptr.push(0);
        for s in 0..nsn {
            let f = slots[s].get().expect("missing supernode");
            flops += f.flops;
            perturbed += f.perturbed;
            let nr = f.rows.len();
            for c in 0..f.width {
                let j = f.d0 + c;
                // L column: unit diagonal + panel entries below the diag.
                lrows.push(j);
                lvals.push(1.0);
                for idx in (c + 1)..nr {
                    lrows.push(f.rows[idx]);
                    lvals.push(f.panel[c * nr + idx]);
                }
                lcolptr.push(lrows.len());
                // U column: ascending segments then the pivot.
                for (tmin, vals) in &f.u_segments[c] {
                    for (k, &v) in vals.iter().enumerate() {
                        urows.push(tmin + k);
                        uvals.push(v);
                    }
                }
                urows.push(j);
                uvals.push(f.pivots[c]);
                ucolptr.push(urows.len());
                lu_nnz += (nr - c) + f.u_segments[c].iter().map(|(_, v)| v.len()).sum::<usize>();
            }
        }
        let l = CscMat::from_parts_unchecked(n, n, lcolptr, lrows, lvals);
        let u = CscMat::from_parts_unchecked(n, n, ucolptr, urows, uvals);

        Ok(SnluNumeric {
            sym: self.clone(),
            a: a.clone(),
            l,
            u,
            lu_nnz,
            flops,
            perturbed_pivots: perturbed,
            refine_steps: self.opts.refine_steps,
        })
    }

    /// Factors one supernode (columns `d0..d1`): external dense updates
    /// from earlier panels, internal dense elimination, static pivoting.
    fn factor_snode(
        &self,
        s: usize,
        ap: &CscMat,
        pivot_floor: f64,
        slots: &[OnceLock<SnodeFactor>],
        x: &mut [f64],
    ) -> SnodeFactor {
        let d0 = self.sn_bounds[s];
        let d1 = self.sn_bounds[s + 1];
        let width = d1 - d0;

        // Panel rows: own columns + below-row union of the L patterns.
        let mut below: Vec<usize> = Vec::new();
        for j in d0..d1 {
            for &r in self.lpat.col(j) {
                if r >= d1 {
                    below.push(r);
                }
            }
        }
        below.sort_unstable();
        below.dedup();
        let rows: Vec<usize> = (d0..d1).chain(below.iter().copied()).collect();
        let nr = rows.len();
        let mut panel = vec![0.0f64; nr * width];
        let mut u_segments: Vec<Vec<(usize, Vec<f64>)>> = vec![Vec::new(); width];
        let mut pivots = vec![0.0f64; width];
        let mut flops = 0.0f64;
        let mut perturbed = 0usize;

        for c in 0..width {
            let j = d0 + c;
            // scatter A(:, j)
            for (r, v) in ap.col_iter(j) {
                x[r] = v;
            }
            // ---- external updates: group U-pattern rows by supernode ----
            let upat = &self.upat_rows[self.upat_colptr[j]..self.upat_colptr[j + 1]];
            let mut k = 0usize;
            while k < upat.len() {
                let t = upat[k];
                let sp = self.sn_of_col[t];
                if sp == s {
                    break; // own supernode handled internally
                }
                let snf = slots[sp].get().expect("dependency not factored");
                let tmin = t;
                // skip the rest of this supernode's run
                while k < upat.len() && self.sn_of_col[upat[k]] == sp {
                    k += 1;
                }
                flops += apply_snode_update(snf, tmin, x, &mut u_segments[c]);
            }
            // ---- internal update: own partially built panel ----
            if c > 0 {
                let mut vals = Vec::with_capacity(c);
                for cc in 0..c {
                    let t = d0 + cc;
                    let ut = x[t];
                    vals.push(ut);
                    if ut != 0.0 {
                        for idx in (cc + 1)..nr {
                            x[rows[idx]] -= panel[cc * nr + idx] * ut;
                        }
                        flops += 2.0 * (nr - cc - 1) as f64;
                    }
                }
                u_segments[c].push((d0, vals));
            }
            // ---- static pivot ----
            let mut pv = x[j];
            if pv.abs() < pivot_floor {
                pv = if pv < 0.0 { -pivot_floor } else { pivot_floor };
                perturbed += 1;
            }
            pivots[c] = pv;
            // ---- write the panel column and clear the accumulator ----
            for idx in (c + 1)..nr {
                let r = rows[idx];
                panel[c * nr + idx] = x[r] / pv;
                x[r] = 0.0;
            }
            flops += (nr - c - 1) as f64;
            // clear the upper part (U rows) and A leftovers
            for seg in &u_segments[c] {
                let (tmin, vals) = seg;
                for k2 in 0..vals.len() {
                    x[tmin + k2] = 0.0;
                }
            }
            for (r, _) in ap.col_iter(j) {
                x[r] = 0.0;
            }
            x[j] = 0.0;
        }

        SnodeFactor {
            d0,
            rows,
            width,
            panel,
            u_segments,
            pivots,
            flops,
            perturbed,
        }
    }
}

/// Applies one earlier supernode's panel to the accumulator: dense suffix
/// solve on its diagonal block from `tmin` down, then dense dots into its
/// below rows. Appends the freshly computed `U` segment. Returns flops.
fn apply_snode_update(
    snf: &SnodeFactor,
    tmin: usize,
    x: &mut [f64],
    segments: &mut Vec<(usize, Vec<f64>)>,
) -> f64 {
    let nr = snf.rows.len();
    let width = snf.width;
    let c0 = tmin - snf.d0;
    let mut flops = 0.0f64;
    let mut vals = Vec::with_capacity(width - c0);
    // dense suffix solve within the diagonal block
    for c in c0..width {
        let t = snf.d0 + c;
        let ut = x[t];
        vals.push(ut);
        if ut != 0.0 {
            for idx in (c + 1)..width {
                x[snf.rows[idx]] -= snf.panel[c * nr + idx] * ut;
            }
            flops += 2.0 * (width - c - 1) as f64;
        }
    }
    // dense dot products into the below rows
    for idx in width..nr {
        let r = snf.rows[idx];
        let mut acc = 0.0;
        for (k, &ut) in vals.iter().enumerate() {
            let c = c0 + k;
            acc += snf.panel[c * nr + idx] * ut;
        }
        x[r] -= acc;
    }
    flops += 2.0 * ((nr - width) * (width - c0)) as f64;
    segments.push((tmin, vals));
    flops
}

impl SnluNumeric {
    /// Refreshes the factors against new values on the same pattern.
    ///
    /// The supernodal method pivots **statically** (the MWCM permutation
    /// is fixed at analysis time and tiny pivots are perturbed rather than
    /// exchanged), so a value-only refactorization runs exactly the
    /// numeric kernels of [`Snlu::factor`] — no graph search, no new
    /// permutations — and, unlike the Gilbert–Peierls engines, can never
    /// fail on a collapsed pivot.
    pub fn refactor(&mut self, a: &CscMat) -> Result<()> {
        let sym = self.sym.clone();
        *self = sym.factor(a)?;
        Ok(())
    }

    /// Solves `A·x = b` in place with `refine_steps` sweeps of iterative
    /// refinement against the retained matrix: on entry `x` holds `b`, on
    /// exit the solution. After the workspace's first use at this
    /// dimension the call performs **no heap allocation**.
    pub fn solve_in_place(&self, x: &mut [f64], ws: &mut SolveWorkspace) {
        self.solve_in_place_against(&self.a, x, ws);
    }

    /// The refinement loop against an explicit matrix (always the
    /// retained one; split out so the matrix borrow stays disjoint from
    /// the factor borrows).
    fn solve_in_place_against(&self, a: &CscMat, x: &mut [f64], ws: &mut SolveWorkspace) {
        let n = self.l.ncols();
        assert_eq!(x.len(), n);
        let (b0, work, resid) = ws.split3(n);
        b0.copy_from_slice(x);
        self.solve_once_into(b0, work, x, false);
        for _ in 0..self.refine_steps {
            // r = b - A·x, then x += A⁻¹·r
            resid.copy_from_slice(b0);
            spmv_sub(a, x, resid);
            self.solve_once_into(resid, work, x, true);
        }
    }

    /// Solves several right-hand sides packed column-major in `xs`
    /// (`xs.len()` must be a multiple of `n`); each length-`n` chunk is
    /// overwritten with its solution.
    pub fn solve_multi_in_place(&self, xs: &mut [f64], ws: &mut SolveWorkspace) {
        basker_sparse::workspace::for_each_rhs(self.l.ncols(), xs, |rhs| {
            self.solve_in_place(rhs, ws)
        });
    }

    /// `(min |pivot|, max |pivot|)` over the (possibly perturbed) static
    /// pivots — together with [`perturbed_pivots`](Self::perturbed_pivots)
    /// the quality signal the session layer's adaptive reuse policy
    /// watches. `(∞, 0)` for an empty matrix.
    pub fn pivot_range(&self) -> (f64, f64) {
        basker_sparse::util::u_diag_pivot_range(&self.u)
    }

    /// One triangular-solve pass `out ← (or +=) A⁻¹·rhs` through the
    /// assembled factors; `work` is clobbered. `rhs` and `out` must not
    /// alias (`rhs` is always a workspace buffer here).
    fn solve_once_into(&self, rhs: &[f64], work: &mut [f64], out: &mut [f64], add: bool) {
        self.sym.row_perm.apply_vec_into(rhs, work);
        lower_solve_in_place(&self.l, work, true);
        upper_solve_in_place(&self.u, work);
        for (k, &orig) in self.sym.col_perm.as_slice().iter().enumerate() {
            if add {
                out[orig] += work[k];
            } else {
                out[orig] = work[k];
            }
        }
    }

    /// The assembled unit-lower factor (tests/diagnostics).
    pub fn l(&self) -> &CscMat {
        &self.l
    }

    /// The assembled upper factor.
    pub fn u(&self) -> &CscMat {
        &self.u
    }

    /// The symbolic analysis these factors share.
    pub fn symbolic(&self) -> &Snlu {
        &self.sym
    }

    /// The matrix retained for iterative refinement.
    pub fn matrix(&self) -> &CscMat {
        &self.a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::{SnluMode, SnluOptions};
    use basker_sparse::spmv::spmv;
    use basker_sparse::util::relative_residual;
    use basker_sparse::TripletMat;

    /// Test-side allocating convenience over the in-place path (the
    /// legacy `solve(a, b)` wrapper removed from the public API; the
    /// in-place path refines against the retained matrix).
    fn solve(num: &SnluNumeric, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        num.solve_in_place(&mut x, &mut SolveWorkspace::new());
        x
    }

    fn grid2d(k: usize) -> CscMat {
        let n = k * k;
        let idx = |r: usize, c: usize| r * k + c;
        let mut t = TripletMat::new(n, n);
        for r in 0..k {
            for c in 0..k {
                let u = idx(r, c);
                t.push(u, u, 4.0 + (u % 2) as f64);
                if r + 1 < k {
                    t.push(u, idx(r + 1, c), -1.0);
                    t.push(idx(r + 1, c), u, -1.2);
                }
                if c + 1 < k {
                    t.push(u, idx(r, c + 1), -0.8);
                    t.push(idx(r, c + 1), u, -1.0);
                }
            }
        }
        t.to_csc()
    }

    fn check(a: &CscMat, opts: &SnluOptions) {
        let sym = Snlu::analyze(a, opts).unwrap();
        let num = sym.factor(a).unwrap();
        let xtrue: Vec<f64> = (0..a.ncols()).map(|i| 1.0 + (i % 5) as f64 * 0.5).collect();
        let b = spmv(a, &xtrue);
        let x = solve(&num, &b);
        assert!(
            relative_residual(a, &x, &b) < 1e-10,
            "residual {} too large",
            relative_residual(a, &x, &b)
        );
    }

    #[test]
    fn factor_solve_mesh() {
        for p in [1usize, 2, 4] {
            check(
                &grid2d(8),
                &SnluOptions {
                    nthreads: p,
                    ..SnluOptions::default()
                },
            );
        }
    }

    #[test]
    fn slumt_mode_solves() {
        check(
            &grid2d(7),
            &SnluOptions {
                mode: SnluMode::SluMt,
                ..SnluOptions::default()
            },
        );
    }

    #[test]
    fn relaxed_supernodes_solve() {
        check(
            &grid2d(7),
            &SnluOptions {
                supernode_relax: 4,
                ..SnluOptions::default()
            },
        );
    }

    #[test]
    fn unsymmetric_circuitish_matrix() {
        let n = 40;
        let mut t = TripletMat::new(n, n);
        let mut s = 5u64;
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        for i in 0..n {
            t.push(i, i, 20.0 + (i % 7) as f64);
        }
        for _ in 0..3 * n {
            let (i, j) = (rnd() % n, rnd() % n);
            if i != j {
                t.push(i, j, 1.0 + (rnd() % 3) as f64 * 0.5);
            }
        }
        check(&t.to_csc(), &SnluOptions::default());
    }

    #[test]
    fn perturbation_rescues_zero_pivot() {
        // Structurally fine but numerically singular leading block; static
        // pivoting must perturb and refinement keeps the residual usable
        // for the well-conditioned part. We verify it does not panic and
        // reports the perturbation.
        let mut t = TripletMat::new(3, 3);
        t.push(0, 0, 1e-30);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 1.0);
        t.push(2, 2, 5.0);
        let a = t.to_csc();
        let sym = Snlu::analyze(&a, &SnluOptions::default()).unwrap();
        let num = sym.factor(&a).unwrap();
        // The MWCM avoids the tiny entry, so no perturbation may even be
        // needed; either way the solve must work.
        let b = vec![1.0, 2.0, 5.0];
        let x = solve(&num, &b);
        assert!(relative_residual(&a, &x, &b) < 1e-8);
    }

    #[test]
    fn memory_metric_exceeds_pattern_on_mesh() {
        let a = grid2d(10);
        let sym = Snlu::analyze(&a, &SnluOptions::default()).unwrap();
        let num = sym.factor(&a).unwrap();
        // panel storage counts explicit zeros: >= the sparse pattern count
        assert!(num.lu_nnz >= sym.pattern_nnz() * 9 / 10);
        assert!(num.flops > 0.0);
    }

    #[test]
    fn identity_matrix() {
        let a = CscMat::identity(6);
        let sym = Snlu::analyze(&a, &SnluOptions::default()).unwrap();
        let num = sym.factor(&a).unwrap();
        let x = solve(&num, &[3.0; 6]);
        for v in x {
            assert!((v - 3.0).abs() < 1e-14);
        }
    }
}
