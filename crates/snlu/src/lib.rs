//! A threaded supernodal sparse LU — the paper's comparator stand-in.
//!
//! The Basker paper compares against Intel MKL Pardiso (PMKL) and
//! SuperLU-MT, both supernodal solvers. Neither is open source /
//! linkable here, so this crate implements a representative supernodal LU
//! with their defining characteristics (see DESIGN.md §3):
//!
//! * **static pivoting**: an MWCM transversal permutes large entries onto
//!   the diagonal; tiny pivots are perturbed (à la PARDISO) and repaired
//!   by iterative refinement, instead of row exchanges;
//! * **symmetric fill analysis**: symbolic Cholesky on `A + Aᵀ` fixes the
//!   pattern of `L` (and `U = pattern(L)ᵀ`) up front — the reason
//!   supernodal codes use *more* memory than Gilbert–Peierls codes on
//!   low fill-in circuit matrices (Table I);
//! * **supernode panels**: columns with nested patterns are grouped and
//!   stored as dense column-major panels; updates run as dense
//!   suffix-solves and dense dot products — fast when supernodes are wide
//!   (meshes), pure overhead when they degenerate to single columns
//!   (circuits). This is the crossover the paper's evaluation pivots on;
//! * **level-set threading** over the supernodal elimination tree
//!   (Pardiso-like mode), or a 1-D column variant with supernodes
//!   disabled (SuperLU-MT-like mode).
//!
//! ```
//! use basker_snlu::{Snlu, SnluOptions};
//! use basker_sparse::CscMat;
//!
//! let a = CscMat::from_dense(&[
//!     vec![4.0, 1.0, 0.0],
//!     vec![1.0, 5.0, 2.0],
//!     vec![0.0, 2.0, 6.0],
//! ]);
//! let sym = Snlu::analyze(&a, &SnluOptions::default()).unwrap();
//! let num = sym.factor(&a).unwrap();
//! let mut ws = basker_sparse::SolveWorkspace::new();
//! let mut x = vec![5.0, 8.0, 8.0];
//! num.solve_in_place(&mut x, &mut ws);
//! assert!(basker_sparse::util::relative_residual(&a, &x, &[5.0, 8.0, 8.0]) < 1e-10);
//! ```

#![warn(missing_docs)]

pub mod numeric;
pub mod symbolic;

pub use numeric::SnluNumeric;
pub use symbolic::{Snlu, SnluInner, SnluMode, SnluOptions};
