//! Symbolic phase of the supernodal solver: static orderings, symmetric
//! fill analysis, supernode detection, level-set schedule.

use basker_ordering::amd::amd_order;
use basker_ordering::etree::{level_sets, NONE};
use basker_ordering::mwcm::mwcm_bottleneck;
use basker_ordering::symbolic::{fundamental_supernodes, symbolic_cholesky, FactorPattern};
use basker_sparse::{CscMat, Perm, Result, SparseError};

/// Scheduling / blocking flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnluMode {
    /// Supernode panels + level-set threading (the PMKL stand-in).
    Pardiso,
    /// Single-column "supernodes", 1-D layout (the SuperLU-MT stand-in).
    SluMt,
}

/// Options for the supernodal solver.
#[derive(Debug, Clone)]
pub struct SnluOptions {
    /// Worker threads for the level-set schedule.
    pub nthreads: usize,
    /// Blocking/scheduling flavour.
    pub mode: SnluMode,
    /// Relaxation for supernode merging (rows of slack).
    pub supernode_relax: usize,
    /// Static pivot threshold: pivots smaller than
    /// `pivot_eps · ‖A‖∞` are perturbed to that magnitude.
    pub pivot_eps: f64,
    /// Iterative-refinement sweeps in
    /// [`SnluNumeric::solve_in_place`](crate::SnluNumeric::solve_in_place).
    pub refine_steps: usize,
}

impl Default for SnluOptions {
    fn default() -> Self {
        SnluOptions {
            nthreads: 2,
            mode: SnluMode::Pardiso,
            supernode_relax: 0,
            pivot_eps: 1e-10,
            refine_steps: 2,
        }
    }
}

/// The symbolic analysis: permutations, factor pattern, supernodes and the
/// level-set schedule.
///
/// Cheap to clone (the analysis and thread pool are shared behind an
/// [`std::sync::Arc`]), so numeric factorizations can retain their
/// symbolic handle — the hook [`crate::SnluNumeric::refactor`] needs.
#[derive(Clone)]
pub struct Snlu {
    pub(crate) inner: std::sync::Arc<SnluInner>,
}

impl std::ops::Deref for Snlu {
    type Target = SnluInner;

    fn deref(&self) -> &SnluInner {
        &self.inner
    }
}

/// The owned symbolic-analysis data behind a [`Snlu`] handle.
pub struct SnluInner {
    pub(crate) opts: SnluOptions,
    pub(crate) n: usize,
    /// Row permutation (MWCM ∘ fill ordering).
    pub(crate) row_perm: Perm,
    /// Column permutation (fill ordering).
    pub(crate) col_perm: Perm,
    /// Pattern of `L` (symmetric analysis on the permuted matrix).
    pub(crate) lpat: FactorPattern,
    /// `U` pattern by column: row indices `t < j` with `j ∈ lpat(t)`.
    pub(crate) upat_colptr: Vec<usize>,
    pub(crate) upat_rows: Vec<usize>,
    /// Supernode boundaries (`sn_bounds[k]..sn_bounds[k+1]` = columns).
    pub(crate) sn_bounds: Vec<usize>,
    /// Supernode id per column.
    pub(crate) sn_of_col: Vec<usize>,
    /// Supernode ids grouped by etree level (the parallel schedule).
    pub(crate) levels: Vec<Vec<usize>>,
    pub(crate) pool: rayon::ThreadPool,
}

impl Snlu {
    /// Analyzes `a`: MWCM static pivoting, AMD fill ordering on `A + Aᵀ`,
    /// symbolic Cholesky, supernodes, level sets.
    pub fn analyze(a: &CscMat, opts: &SnluOptions) -> Result<Snlu> {
        if !a.is_square() {
            return Err(SparseError::DimensionMismatch {
                expected: (a.nrows(), a.nrows()),
                found: (a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();

        // Static pivoting: large entries onto the diagonal.
        let m = mwcm_bottleneck(a);
        if !m.matching.is_perfect() {
            return Err(SparseError::StructurallySingular {
                rank: m.matching.size,
            });
        }
        let pm = Perm::from_vec(m.matching.row_of_col.clone()).expect("matching perm");
        let b = pm.permute_rows(a);

        // Fill-reducing symmetric ordering.
        let sym_order = amd_order(&b);
        let row_perm = Perm::from_vec(
            sym_order
                .as_slice()
                .iter()
                .map(|&k| pm.as_slice()[k])
                .collect(),
        )
        .expect("composed row perm");
        let col_perm = sym_order.clone();

        // Symmetric fill analysis on the permuted matrix.
        let c = Perm::permute_both(&row_perm, &col_perm, a);
        let csym = c.symmetrize();
        let lpat = symbolic_cholesky(&csym);

        // U pattern = transpose of L pattern (strictly upper part).
        let mut ucount = vec![0usize; n + 1];
        for j in 0..n {
            for &i in lpat.col(j) {
                if i > j {
                    ucount[i + 1] += 1;
                }
            }
        }
        for j in 0..n {
            ucount[j + 1] += ucount[j];
        }
        let mut upat_rows = vec![0usize; *ucount.last().unwrap()];
        let mut next = ucount.clone();
        for j in 0..n {
            for &i in lpat.col(j) {
                if i > j {
                    upat_rows[next[i]] = j;
                    next[i] += 1;
                }
            }
        }
        let upat_colptr = ucount;

        // Supernodes.
        let sn_bounds = match opts.mode {
            SnluMode::Pardiso => fundamental_supernodes(&lpat, opts.supernode_relax),
            SnluMode::SluMt => (0..=n).collect(),
        };
        let nsn = sn_bounds.len() - 1;
        let mut sn_of_col = vec![0usize; n];
        for s in 0..nsn {
            for c in sn_bounds[s]..sn_bounds[s + 1] {
                sn_of_col[c] = s;
            }
        }

        // Supernode etree: parent snode of the etree parent of the last
        // column. Level sets of that forest give the schedule.
        let mut sn_parent = vec![NONE; nsn];
        for s in 0..nsn {
            let last = sn_bounds[s + 1] - 1;
            let p = lpat.parent[last];
            if p != NONE {
                sn_parent[s] = sn_of_col[p];
            }
        }
        let levels = level_sets(&sn_parent);

        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(opts.nthreads.max(1))
            .thread_name(|i| format!("snlu-{i}"))
            .build()
            .map_err(|e| SparseError::InvalidStructure(format!("thread pool: {e}")))?;

        Ok(Snlu {
            inner: std::sync::Arc::new(SnluInner {
                opts: opts.clone(),
                n,
                row_perm,
                col_perm,
                lpat,
                upat_colptr,
                upat_rows,
                sn_bounds,
                sn_of_col,
                levels,
                pool,
            }),
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The options this analysis was built with.
    pub fn options(&self) -> &SnluOptions {
        &self.opts
    }

    /// Number of supernodes.
    pub fn nsupernodes(&self) -> usize {
        self.sn_bounds.len() - 1
    }

    /// Mean supernode width — the structural quantity that decides whether
    /// a supernodal method pays off (paper §I–II).
    pub fn mean_supernode_width(&self) -> f64 {
        if self.nsupernodes() == 0 {
            return 0.0;
        }
        self.n as f64 / self.nsupernodes() as f64
    }

    /// Predicted `|L+U|` of the static pattern (before panel expansion).
    pub fn pattern_nnz(&self) -> usize {
        2 * self.lpat.nnz() - self.n
    }

    /// Number of levels in the parallel schedule.
    pub fn nlevels(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_sparse::TripletMat;

    fn grid2d(k: usize) -> CscMat {
        let n = k * k;
        let idx = |r: usize, c: usize| r * k + c;
        let mut t = TripletMat::new(n, n);
        for r in 0..k {
            for c in 0..k {
                let u = idx(r, c);
                t.push(u, u, 4.0);
                if r + 1 < k {
                    t.push(u, idx(r + 1, c), -1.0);
                    t.push(idx(r + 1, c), u, -1.0);
                }
                if c + 1 < k {
                    t.push(u, idx(r, c + 1), -1.0);
                    t.push(idx(r, c + 1), u, -1.0);
                }
            }
        }
        t.to_csc()
    }

    #[test]
    fn analyze_produces_consistent_structures() {
        let a = grid2d(6);
        let sym = Snlu::analyze(&a, &SnluOptions::default()).unwrap();
        assert_eq!(sym.n(), 36);
        assert_eq!(*sym.sn_bounds.last().unwrap(), 36);
        // U pattern: column j holds only rows < j.
        for j in 0..36 {
            for &t in &sym.upat_rows[sym.upat_colptr[j]..sym.upat_colptr[j + 1]] {
                assert!(t < j);
            }
        }
        // schedule covers every supernode exactly once
        let mut seen = vec![false; sym.nsupernodes()];
        for level in &sym.levels {
            for &s in level {
                assert!(!seen[s]);
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn mesh_develops_wide_supernodes() {
        let a = grid2d(12);
        let sym = Snlu::analyze(&a, &SnluOptions::default()).unwrap();
        // A mesh must produce some multi-column supernodes.
        assert!(
            sym.mean_supernode_width() > 1.2,
            "width {}",
            sym.mean_supernode_width()
        );
    }

    #[test]
    fn slumt_mode_has_singleton_columns() {
        let a = grid2d(8);
        let sym = Snlu::analyze(
            &a,
            &SnluOptions {
                mode: SnluMode::SluMt,
                ..SnluOptions::default()
            },
        )
        .unwrap();
        assert_eq!(sym.nsupernodes(), 64);
    }

    #[test]
    fn diagonal_only_matrix() {
        let a = CscMat::identity(5);
        let sym = Snlu::analyze(&a, &SnluOptions::default()).unwrap();
        assert_eq!(sym.pattern_nnz(), 5);
        assert_eq!(sym.nlevels(), 1);
    }

    #[test]
    fn rejects_structurally_singular() {
        let mut t = TripletMat::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        let a = t.to_csc();
        assert!(Snlu::analyze(&a, &SnluOptions::default()).is_err());
    }
}
