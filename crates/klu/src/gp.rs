//! The Gilbert–Peierls factorization kernel (paper Algorithm 1).
//!
//! Left-looking sparse LU: for each column, a depth-first search over the
//! pattern of the already-computed `L` discovers the fill pattern in time
//! proportional to arithmetic work, a sparse accumulator applies the
//! updates, and a threshold partial pivot with diagonal preference is
//! selected (KLU's strategy).
//!
//! The kernel factors a **stacked block column**
//!
//! ```text
//! [ A_d  ]   nb x nb   diagonal block — pivots live here
//! [ A_b1 ]   m1 x nb   trailing row blocks — carried through the
//! [ ...  ]             elimination and divided by the pivots, but never
//! [ A_bk ]   mk x nb   pivoted into
//! ```
//!
//! With no trailing blocks this is exactly KLU's per-block factorization;
//! with them it is the primitive from which Basker's 2-D algorithm factors
//! leaf and separator block columns (paper Alg. 4 lines 4–5 and 26–28).

use basker_sparse::{CscMat, Perm, Result, SparseError};

/// LU factors of one stacked block column.
#[derive(Debug, Clone)]
pub struct BlockLu {
    /// Unit lower triangular `nb x nb` factor, **pivotal** row coordinates,
    /// columns sorted, explicit 1.0 diagonal stored first in each column.
    pub l: CscMat,
    /// Upper triangular `nb x nb` factor, columns sorted, diagonal last.
    pub u: CscMat,
    /// Factored trailing row blocks (`L` rows below the diagonal block),
    /// one per input block, rows in the block's own local coordinates.
    pub below: Vec<CscMat>,
    /// `pinv[local row] = pivot position` for the diagonal block.
    pub pinv: Vec<usize>,
    /// Gather row permutation: position `k` holds original local row
    /// `row_perm[k]`.
    pub row_perm: Perm,
    /// Floating-point operations spent in the numeric phase.
    pub flops: f64,
}

impl BlockLu {
    /// Total stored entries in `L + U` (the paper's `|L+U|` metric),
    /// counting the unit diagonal once (it is stored in `L`; the pivot is
    /// in `U`, so subtract the duplicated diagonal).
    pub fn lu_nnz(&self) -> usize {
        let b: usize = self.below.iter().map(|m| m.nnz()).sum();
        // L stores an explicit unit diagonal that KLU does not count twice.
        self.l.nnz() + self.u.nnz() + b - self.l.ncols()
    }

    /// Applies `x ← U⁻¹ L⁻¹ P x` for the diagonal block (dense rhs).
    ///
    /// Allocates a temporary for the pivot permutation; hot paths should
    /// prefer [`BlockLu::solve_in_place_with`] with caller-owned scratch.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        let mut scratch = vec![0.0; x.len()];
        self.solve_in_place_with(x, &mut scratch);
    }

    /// Allocation-free variant of [`BlockLu::solve_in_place`]: `scratch`
    /// must be at least as long as `x` and is clobbered.
    pub fn solve_in_place_with(&self, x: &mut [f64], scratch: &mut [f64]) {
        debug_assert_eq!(x.len(), self.l.ncols());
        let n = x.len();
        self.row_perm.apply_vec_into(x, &mut scratch[..n]);
        x.copy_from_slice(&scratch[..n]);
        basker_sparse::trisolve::lower_solve_in_place(&self.l, x, true);
        basker_sparse::trisolve::upper_solve_in_place(&self.u, x);
    }

    /// Applies `x ← Pᵀ L⁻ᵀ U⁻ᵀ x` (transpose solve for the diagonal block).
    pub fn solve_transpose_in_place(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.l.ncols());
        basker_sparse::trisolve::upper_solve_t_in_place(&self.u, x);
        basker_sparse::trisolve::lower_solve_t_in_place(&self.l, x, true);
        let unpermuted = self.row_perm.apply_inv_vec(x);
        x.copy_from_slice(&unpermuted);
    }
}

/// Factors the stacked block column `[diag; below...]` with threshold
/// partial pivoting confined to `diag`'s rows.
///
/// `pivot_tol` ∈ (0, 1]: the diagonal entry is kept as pivot when its
/// magnitude is at least `pivot_tol` times the column maximum (KLU default
/// 0.001); `pivot_tol = 1.0` forces classic partial pivoting.
pub fn factor_block_column(
    diag: &CscMat,
    below: &[&CscMat],
    pivot_tol: f64,
    col_offset: usize,
) -> Result<BlockLu> {
    let nb = diag.ncols();
    assert_eq!(diag.nrows(), nb, "diagonal block must be square");
    for b in below {
        assert_eq!(b.ncols(), nb, "trailing blocks must share the column count");
    }
    const UNSET: usize = usize::MAX;

    // Growing L (original local row coords until the final renumbering).
    let mut lcolptr: Vec<usize> = Vec::with_capacity(nb + 1);
    let mut lrows: Vec<usize> = Vec::with_capacity(diag.nnz() * 2);
    let mut lvals: Vec<f64> = Vec::with_capacity(diag.nnz() * 2);
    lcolptr.push(0);
    // Growing U (pivotal coords by construction).
    let mut ucolptr: Vec<usize> = Vec::with_capacity(nb + 1);
    let mut urows: Vec<usize> = Vec::with_capacity(diag.nnz() * 2);
    let mut uvals: Vec<f64> = Vec::with_capacity(diag.nnz() * 2);
    ucolptr.push(0);
    // Growing below blocks.
    let mut bcolptr: Vec<Vec<usize>> = below.iter().map(|_| vec![0usize]).collect();
    let mut brows: Vec<Vec<usize>> = below.iter().map(|b| Vec::with_capacity(b.nnz())).collect();
    let mut bvals: Vec<Vec<f64>> = below.iter().map(|b| Vec::with_capacity(b.nnz())).collect();

    let mut pinv = vec![UNSET; nb];
    let mut prow_of = vec![UNSET; nb];

    // Sparse accumulator for the diagonal part.
    let mut xd = vec![0.0f64; nb];
    let mut mark = vec![UNSET; nb];
    let mut topo: Vec<usize> = Vec::with_capacity(nb); // pivotal col indices, reverse topo
    let mut dfs: Vec<(usize, usize)> = Vec::new();
    let mut pattern_rows: Vec<usize> = Vec::with_capacity(nb); // non-pivotal orig rows

    // Accumulators for the below blocks.
    let mut xb: Vec<Vec<f64>> = below.iter().map(|b| vec![0.0f64; b.nrows()]).collect();
    let mut bmark: Vec<Vec<usize>> = below.iter().map(|b| vec![UNSET; b.nrows()]).collect();
    let mut bpat: Vec<Vec<usize>> = below.iter().map(|_| Vec::new()).collect();

    let mut flops = 0.0f64;

    for j in 0..nb {
        topo.clear();
        pattern_rows.clear();
        for p in bpat.iter_mut() {
            p.clear();
        }

        // --- scatter A(:, j) and run the DFS from each diagonal entry ---
        for (i, v) in diag.col_iter(j) {
            xd[i] = v;
            if mark[i] == j {
                continue;
            }
            if pinv[i] == UNSET {
                mark[i] = j;
                pattern_rows.push(i);
                continue;
            }
            // DFS through pivotal columns, original-coordinate storage.
            dfs.clear();
            mark[i] = j;
            dfs.push((i, lcolptr[pinv[i]]));
            while let Some(&(row, pos)) = dfs.last() {
                let t = pinv[row];
                let hi = lcolptr[t + 1];
                if pos < hi {
                    dfs.last_mut().unwrap().1 += 1;
                    let r = lrows[pos];
                    if mark[r] != j {
                        mark[r] = j;
                        if pinv[r] == UNSET {
                            pattern_rows.push(r);
                        } else {
                            dfs.push((r, lcolptr[pinv[r]]));
                        }
                    }
                } else {
                    topo.push(t);
                    dfs.pop();
                }
            }
        }
        for (bi, b) in below.iter().enumerate() {
            for (i, v) in b.col_iter(bi_col(bi, j)) {
                xb[bi][i] = v;
                if bmark[bi][i] != j {
                    bmark[bi][i] = j;
                    bpat[bi].push(i);
                }
            }
        }

        // --- numeric updates in topological order (reverse of finish) ---
        for &t in topo.iter().rev() {
            let xt = xd[prow_of[t]];
            if xt != 0.0 {
                for p in lcolptr[t]..lcolptr[t + 1] {
                    let r = lrows[p];
                    xd[r] -= lvals[p] * xt;
                    flops += 2.0;
                }
                for bi in 0..below.len() {
                    for p in bcolptr[bi][t]..bcolptr[bi][t + 1] {
                        let r = brows[bi][p];
                        if bmark[bi][r] != j {
                            bmark[bi][r] = j;
                            bpat[bi].push(r);
                            xb[bi][r] = 0.0;
                        }
                        xb[bi][r] -= bvals[bi][p] * xt;
                        flops += 2.0;
                    }
                }
            }
        }

        // --- pivot selection (threshold, diagonal preference) ---
        let mut maxabs = 0.0f64;
        let mut argmax = UNSET;
        for &r in &pattern_rows {
            let a = xd[r].abs();
            if a > maxabs || (a == maxabs && argmax != UNSET && r < argmax) {
                maxabs = a;
                argmax = r;
            }
        }
        if argmax == UNSET {
            return Err(SparseError::ZeroPivot {
                column: col_offset + j,
            });
        }
        let mut prow = argmax;
        if pinv[j] == UNSET && mark[j] == j && xd[j].abs() >= pivot_tol * maxabs && xd[j] != 0.0 {
            prow = j; // keep the (block-local) diagonal when acceptable
        }
        let pivot = xd[prow];
        if pivot == 0.0 || maxabs == 0.0 {
            return Err(SparseError::ZeroPivot {
                column: col_offset + j,
            });
        }
        pinv[prow] = j;
        prow_of[j] = prow;

        // --- store U column (pivotal coords; sorted at finalize) ---
        for &t in topo.iter().rev() {
            urows.push(t);
            uvals.push(xd[prow_of[t]]);
        }
        urows.push(j);
        uvals.push(pivot);
        ucolptr.push(urows.len());

        // --- store L column (original coords; renumbered at finalize) ---
        for &r in &pattern_rows {
            if r != prow {
                lrows.push(r);
                lvals.push(xd[r] / pivot);
                flops += 1.0;
            }
        }
        lcolptr.push(lrows.len());
        for bi in 0..below.len() {
            for &r in &bpat[bi] {
                brows[bi].push(r);
                bvals[bi].push(xb[bi][r] / pivot);
                flops += 1.0;
            }
            bcolptr[bi].push(brows[bi].len());
        }

        // --- clear the accumulator (pattern members only) ---
        for &t in &topo {
            xd[prow_of[t]] = 0.0;
        }
        for &r in &pattern_rows {
            xd[r] = 0.0;
        }
        for bi in 0..below.len() {
            for &r in &bpat[bi] {
                xb[bi][r] = 0.0;
            }
        }
    }

    // --- finalize: renumber L into pivotal coords, sort all columns ---
    let row_perm = Perm::from_vec(prow_of).expect("pivot rows form a permutation");
    let mut scratch: Vec<(usize, f64)> = Vec::new();

    let mut flrows: Vec<usize> = Vec::with_capacity(lrows.len() + nb);
    let mut flvals: Vec<f64> = Vec::with_capacity(lvals.len() + nb);
    let mut flcolptr: Vec<usize> = Vec::with_capacity(nb + 1);
    flcolptr.push(0);
    for j in 0..nb {
        scratch.clear();
        scratch.push((j, 1.0)); // explicit unit diagonal
        for p in lcolptr[j]..lcolptr[j + 1] {
            scratch.push((pinv[lrows[p]], lvals[p]));
        }
        scratch.sort_unstable_by_key(|&(r, _)| r);
        for &(r, v) in &scratch {
            flrows.push(r);
            flvals.push(v);
        }
        flcolptr.push(flrows.len());
    }
    let l = CscMat::from_parts_unchecked(nb, nb, flcolptr, flrows, flvals);

    let mut fucolptr: Vec<usize> = Vec::with_capacity(nb + 1);
    let mut furows: Vec<usize> = Vec::with_capacity(urows.len());
    let mut fuvals: Vec<f64> = Vec::with_capacity(uvals.len());
    fucolptr.push(0);
    for j in 0..nb {
        scratch.clear();
        for p in ucolptr[j]..ucolptr[j + 1] {
            scratch.push((urows[p], uvals[p]));
        }
        scratch.sort_unstable_by_key(|&(r, _)| r);
        for &(r, v) in &scratch {
            furows.push(r);
            fuvals.push(v);
        }
        fucolptr.push(furows.len());
    }
    let u = CscMat::from_parts_unchecked(nb, nb, fucolptr, furows, fuvals);

    let mut fbelow = Vec::with_capacity(below.len());
    for bi in 0..below.len() {
        let m = below[bi].nrows();
        let mut cp = Vec::with_capacity(nb + 1);
        let mut rs = Vec::with_capacity(brows[bi].len());
        let mut vs = Vec::with_capacity(bvals[bi].len());
        cp.push(0);
        for j in 0..nb {
            scratch.clear();
            for p in bcolptr[bi][j]..bcolptr[bi][j + 1] {
                scratch.push((brows[bi][p], bvals[bi][p]));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            for &(r, v) in &scratch {
                rs.push(r);
                vs.push(v);
            }
            cp.push(rs.len());
        }
        fbelow.push(CscMat::from_parts_unchecked(m, nb, cp, rs, vs));
    }

    Ok(BlockLu {
        l,
        u,
        below: fbelow,
        pinv,
        row_perm,
        flops,
    })
}

// Column index of trailing block `_bi` for factor column `j`: trailing
// blocks share the diagonal block's column space one-to-one.
#[inline]
fn bi_col(_bi: usize, j: usize) -> usize {
    j
}

/// Refactorizes in place: same pattern and pivot sequence as `factors`,
/// fresh values from `diag` / `below`. Runs without any graph search —
/// this is KLU's fast path for matrix sequences with fixed structure.
pub fn refactor_block_column(
    factors: &mut BlockLu,
    diag: &CscMat,
    below: &[&CscMat],
    col_offset: usize,
) -> Result<()> {
    let nb = diag.ncols();
    assert_eq!(factors.l.ncols(), nb);
    assert_eq!(below.len(), factors.below.len());
    let pinv = &factors.pinv;

    let mut xd = vec![0.0f64; nb];
    let mut xb: Vec<Vec<f64>> = below.iter().map(|b| vec![0.0f64; b.nrows()]).collect();
    let mut flops = 0.0f64;

    for j in 0..nb {
        // scatter in pivotal coordinates
        for (r, v) in diag.col_iter(j) {
            xd[pinv[r]] = v;
        }
        for (bi, b) in below.iter().enumerate() {
            for (r, v) in b.col_iter(j) {
                xb[bi][r] = v;
            }
        }
        // ascending pivotal order is a valid topological order
        let urows = factors.u.col_rows(j);
        let uvals_len = urows.len();
        debug_assert!(uvals_len >= 1 && urows[uvals_len - 1] == j);
        for k in 0..uvals_len - 1 {
            let t = urows[k];
            let xt = xd[t];
            if xt != 0.0 {
                let lr = factors.l.col_rows(t);
                let lv = factors.l.col_values(t);
                for p in 1..lr.len() {
                    xd[lr[p]] -= lv[p] * xt;
                    flops += 2.0;
                }
                for (bi, bm) in factors.below.iter().enumerate() {
                    let br = bm.col_rows(t);
                    let bv = bm.col_values(t);
                    for p in 0..br.len() {
                        xb[bi][br[p]] -= bv[p] * xt;
                        flops += 2.0;
                    }
                }
            }
        }
        let pivot = xd[j];
        if pivot == 0.0 {
            return Err(SparseError::ZeroPivot {
                column: col_offset + j,
            });
        }
        // gather new values into the fixed patterns, clearing as we go
        {
            let lo = factors.u.colptr()[j];
            let rows: Vec<usize> = factors.u.col_rows(j).to_vec();
            let vals = factors.u.values_mut();
            for (k, &t) in rows.iter().enumerate() {
                vals[lo + k] = xd[t];
                xd[t] = 0.0;
            }
        }
        {
            let lo = factors.l.colptr()[j];
            let rows: Vec<usize> = factors.l.col_rows(j).to_vec();
            let vals = factors.l.values_mut();
            for (k, &r) in rows.iter().enumerate() {
                if k == 0 {
                    vals[lo] = 1.0;
                } else {
                    vals[lo + k] = xd[r] / pivot;
                    flops += 1.0;
                }
                xd[r] = 0.0;
            }
        }
        for bi in 0..below.len() {
            let lo = factors.below[bi].colptr()[j];
            let rows: Vec<usize> = factors.below[bi].col_rows(j).to_vec();
            let vals = factors.below[bi].values_mut();
            for (k, &r) in rows.iter().enumerate() {
                vals[lo + k] = xb[bi][r] / pivot;
                xb[bi][r] = 0.0;
                flops += 1.0;
            }
        }
    }
    factors.flops = flops;
    Ok(())
}

/// Sparse panel solve: returns `X = L⁻¹ · P · B` where `L` is the unit
/// lower factor of `blu` (pivotal coordinates) and `B` a sparse block with
/// rows in the diagonal block's *original local* coordinates.
///
/// This is Basker's "factor upper off-diagonal submatrices `A_ij → U_ij`"
/// step (paper Alg. 4 line 14): the DFS over `L` discovers each output
/// column's pattern in time proportional to the arithmetic.
pub fn lsolve_panel(blu: &BlockLu, b: &CscMat) -> CscMat {
    let nb = blu.l.ncols();
    assert_eq!(b.nrows(), nb, "panel rows must match the diagonal block");
    const UNSET: usize = usize::MAX;
    let ncols = b.ncols();
    let l = &blu.l;
    let pinv = &blu.pinv;

    let mut x = vec![0.0f64; nb];
    let mut mark = vec![UNSET; nb];
    let mut topo: Vec<usize> = Vec::new();
    let mut dfs: Vec<(usize, usize)> = Vec::new();

    let mut colptr = Vec::with_capacity(ncols + 1);
    let mut rowind: Vec<usize> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    colptr.push(0);

    for j in 0..ncols {
        topo.clear();
        // scatter P·B(:,j) and DFS on L's column graph (pivotal coords)
        for (r0, v) in b.col_iter(j) {
            let i = pinv[r0];
            x[i] = v;
            if mark[i] == j {
                continue;
            }
            mark[i] = j;
            dfs.clear();
            dfs.push((i, l.colptr()[i]));
            while let Some(&(t, pos)) = dfs.last() {
                let hi = l.colptr()[t + 1];
                if pos < hi {
                    dfs.last_mut().unwrap().1 += 1;
                    let r = l.rowind()[pos];
                    if r != t && mark[r] != j {
                        mark[r] = j;
                        dfs.push((r, l.colptr()[r]));
                    }
                } else {
                    topo.push(t);
                    dfs.pop();
                }
            }
        }
        // numeric sweep in topological order
        for &t in topo.iter().rev() {
            let xt = x[t];
            if xt != 0.0 {
                let lr = l.col_rows(t);
                let lv = l.col_values(t);
                for p in 1..lr.len() {
                    x[lr[p]] -= lv[p] * xt;
                }
            }
        }
        // gather (sorted pattern for a valid CscMat)
        let mut pat: Vec<usize> = topo.clone();
        pat.sort_unstable();
        for &t in &pat {
            rowind.push(t);
            values.push(x[t]);
            x[t] = 0.0;
        }
        colptr.push(rowind.len());
    }
    CscMat::from_parts_unchecked(nb, ncols, colptr, rowind, values)
}

/// Refreshes the values of an existing panel solve result in place, reusing
/// its pattern (the refactorization path for separator panels).
pub fn lsolve_panel_refresh(blu: &BlockLu, b: &CscMat, out: &mut CscMat) {
    let nb = blu.l.ncols();
    let l = &blu.l;
    let pinv = &blu.pinv;
    let mut x = vec![0.0f64; nb];
    for j in 0..b.ncols() {
        for (r0, v) in b.col_iter(j) {
            x[pinv[r0]] = v;
        }
        let lo = out.colptr()[j];
        let rows: Vec<usize> = out.col_rows(j).to_vec();
        // ascending pivotal order is topologically valid
        for (k, &t) in rows.iter().enumerate() {
            let xt = x[t];
            let _ = k;
            if xt != 0.0 {
                let lr = l.col_rows(t);
                let lv = l.col_values(t);
                for p in 1..lr.len() {
                    x[lr[p]] -= lv[p] * xt;
                }
            }
        }
        let vals = out.values_mut();
        for (k, &t) in rows.iter().enumerate() {
            vals[lo + k] = x[t];
            x[t] = 0.0;
        }
    }
}

/// Legacy alias retained for API compatibility in early revisions.
pub type GpWorkspace = ();

/// A factored BTF diagonal block with a fast path for 1×1 blocks.
///
/// Circuit BTF structures are dominated by singleton SCCs (Table I's
/// powergrid rows have thousands of 1×1 blocks); materializing a full
/// [`BlockLu`] (a dozen heap allocations) per scalar is the difference
/// between the fine-BTF path scaling and drowning in allocator traffic.
/// The real KLU special-cases 1×1 blocks the same way.
#[derive(Debug, Clone)]
pub enum BlockFactor {
    /// A genuine LU factorization.
    Full(Box<BlockLu>),
    /// A 1×1 block: just the pivot value.
    Singleton(f64),
}

impl BlockFactor {
    /// Factors the `lo..hi` diagonal block of the permuted matrix `ap`.
    pub fn factor_range(ap: &CscMat, lo: usize, hi: usize, pivot_tol: f64) -> Result<BlockFactor> {
        if hi - lo == 1 {
            let v = ap.get(lo, lo);
            if v == 0.0 {
                return Err(SparseError::ZeroPivot { column: lo });
            }
            return Ok(BlockFactor::Singleton(v));
        }
        let diag = basker_sparse::blocks::extract_range(ap, lo..hi, lo..hi);
        Ok(BlockFactor::Full(Box::new(factor_block_column(
            &diag,
            &[],
            pivot_tol,
            lo,
        )?)))
    }

    /// Refreshes values from the same pattern (fast refactorization).
    pub fn refactor_range(&mut self, ap: &CscMat, lo: usize, hi: usize) -> Result<()> {
        match self {
            BlockFactor::Singleton(v) => {
                let nv = ap.get(lo, lo);
                if nv == 0.0 {
                    return Err(SparseError::ZeroPivot { column: lo });
                }
                *v = nv;
                Ok(())
            }
            BlockFactor::Full(blu) => {
                let diag = basker_sparse::blocks::extract_range(ap, lo..hi, lo..hi);
                refactor_block_column(blu, &diag, &[], lo)
            }
        }
    }

    /// `|L+U|` of this block.
    pub fn lu_nnz(&self) -> usize {
        match self {
            BlockFactor::Singleton(_) => 1,
            BlockFactor::Full(blu) => blu.lu_nnz(),
        }
    }

    /// Numeric flops of the last factorization.
    pub fn flops(&self) -> f64 {
        match self {
            BlockFactor::Singleton(_) => 0.0,
            BlockFactor::Full(blu) => blu.flops,
        }
    }

    /// In-place block solve `x ← (LU)⁻¹ P x`.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        match self {
            BlockFactor::Singleton(v) => x[0] /= v,
            BlockFactor::Full(blu) => blu.solve_in_place(x),
        }
    }

    /// Allocation-free block solve; `scratch` must be at least `x.len()`.
    pub fn solve_in_place_with(&self, x: &mut [f64], scratch: &mut [f64]) {
        match self {
            BlockFactor::Singleton(v) => x[0] /= v,
            BlockFactor::Full(blu) => blu.solve_in_place_with(x, scratch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_sparse::spmv::spmv;
    use basker_sparse::util::relative_residual;
    use basker_sparse::Perm;

    fn check_factorization(a: &CscMat, blu: &BlockLu, tol: f64) {
        // P·A == L·U  (dense comparison, test matrices are small)
        let pa = blu.row_perm.permute_rows(a);
        let n = a.ncols();
        let ld = blu.l.to_dense();
        let ud = blu.u.to_dense();
        let pad = pa.to_dense();
        for i in 0..n {
            for j in 0..n {
                let mut lu = 0.0;
                for k in 0..n {
                    lu += ld[i][k] * ud[k][j];
                }
                assert!(
                    (lu - pad[i][j]).abs() < tol,
                    "mismatch at ({i},{j}): {lu} vs {}",
                    pad[i][j]
                );
            }
        }
    }

    fn dense(a: &[[f64; 4]; 4]) -> CscMat {
        CscMat::from_dense(&a.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn factors_small_dense() {
        let a = dense(&[
            [2.0, 1.0, 0.0, 3.0],
            [4.0, 3.0, 1.0, 0.0],
            [0.0, 2.0, 5.0, 1.0],
            [1.0, 0.0, 2.0, 4.0],
        ]);
        let blu = factor_block_column(&a, &[], 1.0, 0).unwrap();
        check_factorization(&a, &blu, 1e-12);
    }

    #[test]
    fn partial_pivoting_picks_large_rows() {
        // Column 0 has a tiny diagonal; with pivot_tol = 1.0 the 100 wins.
        let a = CscMat::from_dense(&[vec![1e-10, 1.0], vec![100.0, 1.0]]);
        let blu = factor_block_column(&a, &[], 1.0, 0).unwrap();
        assert_eq!(blu.row_perm.as_slice(), &[1, 0]);
        check_factorization(&a, &blu, 1e-12);
    }

    #[test]
    fn diagonal_preference_keeps_acceptable_diagonal() {
        // diag = 50, max = 100: with tol 0.1 the diagonal stays.
        let a = CscMat::from_dense(&[vec![50.0, 1.0], vec![100.0, 1.0]]);
        let blu = factor_block_column(&a, &[], 0.1, 0).unwrap();
        assert_eq!(blu.row_perm.as_slice(), &[0, 1]);
        check_factorization(&a, &blu, 1e-12);
    }

    #[test]
    fn zero_pivot_detected() {
        let a = CscMat::from_dense(&[vec![0.0, 1.0], vec![0.0, 1.0]]);
        match factor_block_column(&a, &[], 1.0, 7) {
            Err(SparseError::ZeroPivot { column }) => assert_eq!(column, 7),
            other => panic!("expected zero pivot, got {other:?}"),
        }
    }

    #[test]
    fn solve_via_factors() {
        let a = dense(&[
            [10.0, 2.0, 0.0, 1.0],
            [3.0, 12.0, 4.0, 0.0],
            [0.0, 1.0, 9.0, 2.0],
            [2.0, 0.0, 1.0, 8.0],
        ]);
        let blu = factor_block_column(&a, &[], 0.001, 0).unwrap();
        let xtrue = [1.0, -2.0, 3.0, 0.5];
        let b = spmv(&a, &xtrue);
        let mut x = b.clone();
        blu.solve_in_place(&mut x);
        assert!(relative_residual(&a, &x, &b) < 1e-13);
    }

    #[test]
    fn transpose_solve() {
        let a = dense(&[
            [10.0, 2.0, 0.0, 1.0],
            [3.0, 12.0, 4.0, 0.0],
            [0.0, 1.0, 9.0, 2.0],
            [2.0, 0.0, 1.0, 8.0],
        ]);
        let blu = factor_block_column(&a, &[], 0.001, 0).unwrap();
        let xtrue = [0.5, 1.5, -1.0, 2.0];
        let at = a.transpose();
        let b = spmv(&at, &xtrue);
        let mut x = b.clone();
        blu.solve_transpose_in_place(&mut x);
        assert!(relative_residual(&at, &x, &b) < 1e-13);
    }

    #[test]
    fn stacked_below_blocks_match_schur_expectation() {
        // Factor [D; B] and verify B_factored == B · U⁻¹ (columnwise):
        // L_below(:,c)·U(c,c) + Σ_{t<c} L_below(:,t)·U(t,c) = B(:,c).
        let d = CscMat::from_dense(&[vec![4.0, 1.0], vec![2.0, 5.0]]);
        let b = CscMat::from_dense(&[vec![1.0, 2.0], vec![3.0, 0.0], vec![0.0, 7.0]]);
        let blu = factor_block_column(&d, &[&b], 0.001, 0).unwrap();
        let lb = &blu.below[0];
        // reconstruct B = L_below · U
        let lbd = lb.to_dense();
        let ud = blu.u.to_dense();
        let bd = b.to_dense();
        for i in 0..3 {
            for j in 0..2 {
                let mut acc = 0.0;
                for k in 0..2 {
                    acc += lbd[i][k] * ud[k][j];
                }
                assert!(
                    (acc - bd[i][j]).abs() < 1e-12,
                    "below mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn refactor_reproduces_fresh_factorization() {
        let a = dense(&[
            [10.0, 2.0, 0.0, 1.0],
            [3.0, 12.0, 4.0, 0.0],
            [0.0, 1.0, 9.0, 2.0],
            [2.0, 0.0, 1.0, 8.0],
        ]);
        let mut blu = factor_block_column(&a, &[], 0.001, 0).unwrap();
        // New values, same pattern.
        let a2 = dense(&[
            [20.0, 1.0, 0.0, 2.0],
            [1.0, 24.0, 2.0, 0.0],
            [0.0, 3.0, 18.0, 1.0],
            [4.0, 0.0, 3.0, 16.0],
        ]);
        refactor_block_column(&mut blu, &a2, &[], 0).unwrap();
        let xtrue = [1.0, 1.0, 1.0, 1.0];
        let b = spmv(&a2, &xtrue);
        let mut x = b.clone();
        blu.solve_in_place(&mut x);
        assert!(relative_residual(&a2, &x, &b) < 1e-13);
    }

    #[test]
    fn refactor_detects_new_zero_pivot() {
        let a = CscMat::from_dense(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let mut blu = factor_block_column(&a, &[], 1.0, 0).unwrap();
        let bad = CscMat::from_dense(&[vec![0.0, 0.0], vec![0.0, 1.0]]);
        // Same pattern? a has entries only on the diagonal; bad stores a
        // structural zero at (0,0).
        assert!(refactor_block_column(&mut blu, &bad, &[], 0).is_err());
    }

    #[test]
    fn lsolve_panel_matches_dense_solve() {
        let d = dense(&[
            [10.0, 2.0, 0.0, 1.0],
            [3.0, 12.0, 4.0, 0.0],
            [0.0, 1.0, 9.0, 2.0],
            [2.0, 0.0, 1.0, 8.0],
        ]);
        let blu = factor_block_column(&d, &[], 1.0, 0).unwrap();
        let b = CscMat::from_dense(&[
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![3.0, 0.0],
            vec![0.0, 0.0],
        ]);
        let x = lsolve_panel(&blu, &b);
        // Verify L·X == P·B column by column.
        let pb = blu.row_perm.permute_rows(&b);
        let ld = blu.l.to_dense();
        let xd = x.to_dense();
        let pbd = pb.to_dense();
        for j in 0..2 {
            for i in 0..4 {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += ld[i][k] * xd[k][j];
                }
                assert!((acc - pbd[i][j]).abs() < 1e-12);
            }
        }
        // Refresh path gives the same values.
        let mut x2 = x.clone();
        lsolve_panel_refresh(&blu, &b, &mut x2);
        assert_eq!(x.values(), x2.values());
    }

    #[test]
    fn empty_block() {
        let a = CscMat::zero(0, 0);
        let blu = factor_block_column(&a, &[], 1.0, 0).unwrap();
        assert_eq!(blu.l.ncols(), 0);
        assert_eq!(blu.row_perm, Perm::identity(0));
    }

    #[test]
    fn one_by_one_block() {
        let a = CscMat::from_dense(&[vec![5.0]]);
        let blu = factor_block_column(&a, &[], 1.0, 0).unwrap();
        assert_eq!(blu.u.get(0, 0), 5.0);
        assert_eq!(blu.l.get(0, 0), 1.0);
        assert!(blu.lu_nnz() == 1);
    }

    #[test]
    fn fill_in_is_created_and_consistent() {
        // A pattern guaranteed to fill: arrow pointing down-right.
        let n = 6;
        let mut d = vec![vec![0.0; n]; n];
        for i in 0..n {
            d[i][i] = 4.0;
            d[n - 1][i] = 1.0;
            d[i][n - 1] = 1.0;
            if i > 0 {
                d[i][0] = 0.5;
                d[0][i] = 0.5;
            }
        }
        let a = CscMat::from_dense(&d);
        let blu = factor_block_column(&a, &[], 0.001, 0).unwrap();
        check_factorization(&a, &blu, 1e-10);
        assert!(blu.lu_nnz() > a.nnz() / 2);
        assert!(blu.flops > 0.0);
    }
}
