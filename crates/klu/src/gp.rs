//! The Gilbert–Peierls factorization kernel (paper Algorithm 1).
//!
//! Left-looking sparse LU: for each column, a depth-first search over the
//! pattern of the already-computed `L` discovers the fill pattern in time
//! proportional to arithmetic work, a sparse accumulator applies the
//! updates, and a threshold partial pivot with diagonal preference is
//! selected (KLU's strategy).
//!
//! The kernel factors a **stacked block column**
//!
//! ```text
//! [ A_d  ]   nb x nb   diagonal block — pivots live here
//! [ A_b1 ]   m1 x nb   trailing row blocks — carried through the
//! [ ...  ]             elimination and divided by the pivots, but never
//! [ A_bk ]   mk x nb   pivoted into
//! ```
//!
//! With no trailing blocks this is exactly KLU's per-block factorization;
//! with them it is the primitive from which Basker's 2-D algorithm factors
//! leaf and separator block columns (paper Alg. 4 lines 4–5 and 26–28).

use basker_sparse::col::cols_to_csc;
use basker_sparse::{CscMat, Perm, Result, SparseCol, SparseError};

/// LU factors of one stacked block column.
#[derive(Debug, Clone)]
pub struct BlockLu {
    /// Unit lower triangular `nb x nb` factor, **pivotal** row coordinates,
    /// columns sorted, explicit 1.0 diagonal stored first in each column.
    pub l: CscMat,
    /// Upper triangular `nb x nb` factor, columns sorted, diagonal last.
    pub u: CscMat,
    /// Factored trailing row blocks (`L` rows below the diagonal block),
    /// one per input block, rows in the block's own local coordinates.
    pub below: Vec<CscMat>,
    /// `pinv[local row] = pivot position` for the diagonal block.
    pub pinv: Vec<usize>,
    /// Gather row permutation: position `k` holds original local row
    /// `row_perm[k]`.
    pub row_perm: Perm,
    /// Floating-point operations spent in the numeric phase.
    pub flops: f64,
}

impl BlockLu {
    /// Total stored entries in `L + U` (the paper's `|L+U|` metric),
    /// counting the unit diagonal once (it is stored in `L`; the pivot is
    /// in `U`, so subtract the duplicated diagonal).
    pub fn lu_nnz(&self) -> usize {
        let b: usize = self.below.iter().map(|m| m.nnz()).sum();
        // L stores an explicit unit diagonal that KLU does not count twice.
        self.l.nnz() + self.u.nnz() + b - self.l.ncols()
    }

    /// `(min |u_jj|, max |u_jj|)` over the pivots of this block — the raw
    /// material of KLU-style condition estimates (`klu_rcond` is exactly
    /// `min/max`) and of pivot-growth gates on the refactorization path.
    /// Returns `(∞, 0)` for an empty block so callers can fold ranges
    /// with `min`/`max`.
    pub fn pivot_range(&self) -> (f64, f64) {
        basker_sparse::util::u_diag_pivot_range(&self.u)
    }

    /// Applies `x ← U⁻¹ L⁻¹ P x` for the diagonal block (dense rhs).
    ///
    /// Allocates a temporary for the pivot permutation; hot paths should
    /// prefer [`BlockLu::solve_in_place_with`] with caller-owned scratch.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        let mut scratch = vec![0.0; x.len()];
        self.solve_in_place_with(x, &mut scratch);
    }

    /// Allocation-free variant of [`BlockLu::solve_in_place`]: `scratch`
    /// must be at least as long as `x` and is clobbered.
    pub fn solve_in_place_with(&self, x: &mut [f64], scratch: &mut [f64]) {
        debug_assert_eq!(x.len(), self.l.ncols());
        let n = x.len();
        self.row_perm.apply_vec_into(x, &mut scratch[..n]);
        x.copy_from_slice(&scratch[..n]);
        basker_sparse::trisolve::lower_solve_in_place(&self.l, x, true);
        basker_sparse::trisolve::upper_solve_in_place(&self.u, x);
    }

    /// Applies `x ← Pᵀ L⁻ᵀ U⁻ᵀ x` (transpose solve for the diagonal block).
    pub fn solve_transpose_in_place(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.l.ncols());
        basker_sparse::trisolve::upper_solve_t_in_place(&self.u, x);
        basker_sparse::trisolve::lower_solve_t_in_place(&self.l, x, true);
        let unpermuted = self.row_perm.apply_inv_vec(x);
        x.copy_from_slice(&unpermuted);
    }
}

const UNSET: usize = usize::MAX;

/// Incremental Gilbert–Peierls factorization of a stacked block column,
/// fed **one column at a time**.
///
/// This is the kernel behind Basker's pipelined separator factorization
/// (paper §IV): the separator owner calls [`factor_col`] with column `c`
/// of the reduced block column as soon as that column's distributed
/// reductions arrive, while the rest of the team is already producing
/// column `c + 1` — no need to wait for the whole block to be reduced.
/// [`factor_block_column`] is the all-at-once wrapper over this type.
///
/// [`factor_col`]: BlockColumnFactorizer::factor_col
pub struct BlockColumnFactorizer {
    nb: usize,
    pivot_tol: f64,
    col_offset: usize,
    next_col: usize,
    // Growing L (original local row coords until the final renumbering).
    lcolptr: Vec<usize>,
    lrows: Vec<usize>,
    lvals: Vec<f64>,
    // Growing U (pivotal coords by construction).
    ucolptr: Vec<usize>,
    urows: Vec<usize>,
    uvals: Vec<f64>,
    // Growing below blocks.
    below_nrows: Vec<usize>,
    bcolptr: Vec<Vec<usize>>,
    brows: Vec<Vec<usize>>,
    bvals: Vec<Vec<f64>>,
    pinv: Vec<usize>,
    prow_of: Vec<usize>,
    // Sparse accumulator for the diagonal part.
    xd: Vec<f64>,
    mark: Vec<usize>,
    topo: Vec<usize>,
    dfs: Vec<(usize, usize)>,
    pattern_rows: Vec<usize>,
    // Accumulators for the below blocks.
    xb: Vec<Vec<f64>>,
    bmark: Vec<Vec<usize>>,
    bpat: Vec<Vec<usize>>,
    flops: f64,
}

impl BlockColumnFactorizer {
    /// Starts a factorization of an `nb x nb` diagonal block stacked on
    /// trailing row blocks with the given row counts.
    ///
    /// `pivot_tol` ∈ (0, 1]: the diagonal entry is kept as pivot when
    /// its magnitude is at least `pivot_tol` times the column maximum
    /// (KLU default 0.001); `1.0` forces classic partial pivoting.
    pub fn new(
        nb: usize,
        below_nrows: &[usize],
        pivot_tol: f64,
        col_offset: usize,
    ) -> BlockColumnFactorizer {
        BlockColumnFactorizer {
            nb,
            pivot_tol,
            col_offset,
            next_col: 0,
            lcolptr: vec![0],
            lrows: Vec::new(),
            lvals: Vec::new(),
            ucolptr: vec![0],
            urows: Vec::new(),
            uvals: Vec::new(),
            below_nrows: below_nrows.to_vec(),
            bcolptr: below_nrows.iter().map(|_| vec![0usize]).collect(),
            brows: below_nrows.iter().map(|_| Vec::new()).collect(),
            bvals: below_nrows.iter().map(|_| Vec::new()).collect(),
            pinv: vec![UNSET; nb],
            prow_of: vec![UNSET; nb],
            xd: vec![0.0; nb],
            mark: vec![UNSET; nb],
            topo: Vec::with_capacity(nb),
            dfs: Vec::new(),
            pattern_rows: Vec::with_capacity(nb),
            xb: below_nrows.iter().map(|&m| vec![0.0; m]).collect(),
            bmark: below_nrows.iter().map(|&m| vec![UNSET; m]).collect(),
            bpat: below_nrows.iter().map(|_| Vec::new()).collect(),
            flops: 0.0,
        }
    }

    /// The index of the next column to be fed.
    pub fn next_col(&self) -> usize {
        self.next_col
    }

    /// Eliminates the next column. `diag_rows`/`diag_vals` hold the
    /// column of the diagonal block (original local row coordinates);
    /// `below_cols[bi]` holds the matching column of trailing block
    /// `bi`. Row indices must be sorted and unique.
    pub fn factor_col(
        &mut self,
        diag_rows: &[usize],
        diag_vals: &[f64],
        below_cols: &[(&[usize], &[f64])],
    ) -> Result<()> {
        let j = self.next_col;
        assert!(j < self.nb, "all {} columns already fed", self.nb);
        assert_eq!(below_cols.len(), self.below_nrows.len());
        let nbelow = below_cols.len();
        self.topo.clear();
        self.pattern_rows.clear();
        for p in self.bpat.iter_mut() {
            p.clear();
        }

        // --- scatter A(:, j) and run the DFS from each diagonal entry ---
        for (&i, &v) in diag_rows.iter().zip(diag_vals) {
            self.xd[i] = v;
            if self.mark[i] == j {
                continue;
            }
            if self.pinv[i] == UNSET {
                self.mark[i] = j;
                self.pattern_rows.push(i);
                continue;
            }
            // DFS through pivotal columns, original-coordinate storage.
            self.dfs.clear();
            self.mark[i] = j;
            self.dfs.push((i, self.lcolptr[self.pinv[i]]));
            while let Some(&(row, pos)) = self.dfs.last() {
                let t = self.pinv[row];
                let hi = self.lcolptr[t + 1];
                if pos < hi {
                    self.dfs.last_mut().unwrap().1 += 1;
                    let r = self.lrows[pos];
                    if self.mark[r] != j {
                        self.mark[r] = j;
                        if self.pinv[r] == UNSET {
                            self.pattern_rows.push(r);
                        } else {
                            self.dfs.push((r, self.lcolptr[self.pinv[r]]));
                        }
                    }
                } else {
                    self.topo.push(t);
                    self.dfs.pop();
                }
            }
        }
        for (bi, (rows, vals)) in below_cols.iter().enumerate() {
            for (&i, &v) in rows.iter().zip(*vals) {
                self.xb[bi][i] = v;
                if self.bmark[bi][i] != j {
                    self.bmark[bi][i] = j;
                    self.bpat[bi].push(i);
                }
            }
        }

        // --- numeric updates in topological order (reverse of finish) ---
        for ti in (0..self.topo.len()).rev() {
            let t = self.topo[ti];
            let xt = self.xd[self.prow_of[t]];
            if xt != 0.0 {
                let (lo, hi) = (self.lcolptr[t], self.lcolptr[t + 1]);
                basker_kernels::active().scatter_axpy(
                    &mut self.xd,
                    &self.lrows[lo..hi],
                    &self.lvals[lo..hi],
                    -xt,
                );
                self.flops += 2.0 * (hi - lo) as f64;
                for bi in 0..nbelow {
                    for p in self.bcolptr[bi][t]..self.bcolptr[bi][t + 1] {
                        let r = self.brows[bi][p];
                        if self.bmark[bi][r] != j {
                            self.bmark[bi][r] = j;
                            self.bpat[bi].push(r);
                            self.xb[bi][r] = 0.0;
                        }
                        self.xb[bi][r] -= self.bvals[bi][p] * xt;
                        self.flops += 2.0;
                    }
                }
            }
        }

        // --- pivot selection (threshold, diagonal preference) ---
        let mut maxabs = 0.0f64;
        let mut argmax = UNSET;
        for &r in &self.pattern_rows {
            let a = self.xd[r].abs();
            if a > maxabs || (a == maxabs && argmax != UNSET && r < argmax) {
                maxabs = a;
                argmax = r;
            }
        }
        if argmax == UNSET {
            return Err(SparseError::ZeroPivot {
                column: self.col_offset + j,
            });
        }
        let mut prow = argmax;
        if self.pinv[j] == UNSET
            && self.mark[j] == j
            && self.xd[j].abs() >= self.pivot_tol * maxabs
            && self.xd[j] != 0.0
        {
            prow = j; // keep the (block-local) diagonal when acceptable
        }
        let pivot = self.xd[prow];
        if pivot == 0.0 || maxabs == 0.0 {
            return Err(SparseError::ZeroPivot {
                column: self.col_offset + j,
            });
        }
        self.pinv[prow] = j;
        self.prow_of[j] = prow;

        // --- store U column (pivotal coords; sorted at finalize) ---
        for ti in (0..self.topo.len()).rev() {
            let t = self.topo[ti];
            self.urows.push(t);
            self.uvals.push(self.xd[self.prow_of[t]]);
        }
        self.urows.push(j);
        self.uvals.push(pivot);
        self.ucolptr.push(self.urows.len());

        // --- store L column (original coords; renumbered at finalize) ---
        for &r in &self.pattern_rows {
            if r != prow {
                self.lrows.push(r);
                self.lvals.push(self.xd[r] / pivot);
                self.flops += 1.0;
            }
        }
        self.lcolptr.push(self.lrows.len());
        for bi in 0..nbelow {
            for &r in &self.bpat[bi] {
                self.brows[bi].push(r);
                self.bvals[bi].push(self.xb[bi][r] / pivot);
                self.flops += 1.0;
            }
            self.bcolptr[bi].push(self.brows[bi].len());
        }

        // --- clear the accumulator (pattern members only) ---
        for &t in &self.topo {
            self.xd[self.prow_of[t]] = 0.0;
        }
        for &r in &self.pattern_rows {
            self.xd[r] = 0.0;
        }
        for bi in 0..nbelow {
            for &r in &self.bpat[bi] {
                self.xb[bi][r] = 0.0;
            }
        }
        self.next_col = j + 1;
        Ok(())
    }

    /// Finalizes the factors: renumbers `L` into pivotal coordinates and
    /// sorts every column. Panics unless all `nb` columns were fed.
    pub fn finish(self) -> BlockLu {
        let nb = self.nb;
        assert_eq!(self.next_col, nb, "factorizer finished early");
        let row_perm = Perm::from_vec(self.prow_of).expect("pivot rows form a permutation");
        let pinv = self.pinv;
        let mut scratch: Vec<(usize, f64)> = Vec::new();

        let mut flrows: Vec<usize> = Vec::with_capacity(self.lrows.len() + nb);
        let mut flvals: Vec<f64> = Vec::with_capacity(self.lvals.len() + nb);
        let mut flcolptr: Vec<usize> = Vec::with_capacity(nb + 1);
        flcolptr.push(0);
        for j in 0..nb {
            scratch.clear();
            scratch.push((j, 1.0)); // explicit unit diagonal
            for p in self.lcolptr[j]..self.lcolptr[j + 1] {
                scratch.push((pinv[self.lrows[p]], self.lvals[p]));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            for &(r, v) in &scratch {
                flrows.push(r);
                flvals.push(v);
            }
            flcolptr.push(flrows.len());
        }
        // SAFETY: each L column was pushed in ascending row order (sorted
        // `scratch`) and `flcolptr` tracks `flrows.len()` per column.
        let l = unsafe { CscMat::from_parts_unchecked(nb, nb, flcolptr, flrows, flvals) };

        let mut fucolptr: Vec<usize> = Vec::with_capacity(nb + 1);
        let mut furows: Vec<usize> = Vec::with_capacity(self.urows.len());
        let mut fuvals: Vec<f64> = Vec::with_capacity(self.uvals.len());
        fucolptr.push(0);
        for j in 0..nb {
            scratch.clear();
            for p in self.ucolptr[j]..self.ucolptr[j + 1] {
                scratch.push((self.urows[p], self.uvals[p]));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            for &(r, v) in &scratch {
                furows.push(r);
                fuvals.push(v);
            }
            fucolptr.push(furows.len());
        }
        // SAFETY: each U column was pushed in ascending row order (sorted
        // `scratch`) and `fucolptr` tracks `furows.len()` per column.
        let u = unsafe { CscMat::from_parts_unchecked(nb, nb, fucolptr, furows, fuvals) };

        let mut fbelow = Vec::with_capacity(self.below_nrows.len());
        for bi in 0..self.below_nrows.len() {
            let m = self.below_nrows[bi];
            let mut cp = Vec::with_capacity(nb + 1);
            let mut rs = Vec::with_capacity(self.brows[bi].len());
            let mut vs = Vec::with_capacity(self.bvals[bi].len());
            cp.push(0);
            for j in 0..nb {
                scratch.clear();
                for p in self.bcolptr[bi][j]..self.bcolptr[bi][j + 1] {
                    scratch.push((self.brows[bi][p], self.bvals[bi][p]));
                }
                scratch.sort_unstable_by_key(|&(r, _)| r);
                for &(r, v) in &scratch {
                    rs.push(r);
                    vs.push(v);
                }
                cp.push(rs.len());
            }
            // SAFETY: each below-block column was pushed in ascending row
            // order (sorted `scratch`), rows are `< m`, and `cp` tracks
            // `rs.len()`.
            fbelow.push(unsafe { CscMat::from_parts_unchecked(m, nb, cp, rs, vs) });
        }

        BlockLu {
            l,
            u,
            below: fbelow,
            pinv,
            row_perm,
            flops: self.flops,
        }
    }
}

/// Factors the stacked block column `[diag; below...]` with threshold
/// partial pivoting confined to `diag`'s rows (the all-at-once wrapper
/// over [`BlockColumnFactorizer`]; trailing blocks share the diagonal
/// block's column space one-to-one).
pub fn factor_block_column(
    diag: &CscMat,
    below: &[&CscMat],
    pivot_tol: f64,
    col_offset: usize,
) -> Result<BlockLu> {
    let nb = diag.ncols();
    assert_eq!(diag.nrows(), nb, "diagonal block must be square");
    for b in below {
        assert_eq!(b.ncols(), nb, "trailing blocks must share the column count");
    }
    let below_nrows: Vec<usize> = below.iter().map(|b| b.nrows()).collect();
    let mut fac = BlockColumnFactorizer::new(nb, &below_nrows, pivot_tol, col_offset);
    let mut below_cols: Vec<(&[usize], &[f64])> = Vec::with_capacity(below.len());
    for j in 0..nb {
        below_cols.clear();
        below_cols.extend(below.iter().map(|b| (b.col_rows(j), b.col_values(j))));
        fac.factor_col(diag.col_rows(j), diag.col_values(j), &below_cols)?;
    }
    Ok(fac.finish())
}

/// Refactorizes in place: same pattern and pivot sequence as `factors`,
/// fresh values from `diag` / `below`. Runs without any graph search —
/// this is KLU's fast path for matrix sequences with fixed structure.
pub fn refactor_block_column(
    factors: &mut BlockLu,
    diag: &CscMat,
    below: &[&CscMat],
    col_offset: usize,
) -> Result<()> {
    let nb = diag.ncols();
    assert_eq!(factors.l.ncols(), nb);
    assert_eq!(below.len(), factors.below.len());
    let pinv = &factors.pinv;

    let mut xd = vec![0.0f64; nb];
    let mut xb: Vec<Vec<f64>> = below.iter().map(|b| vec![0.0f64; b.nrows()]).collect();
    let mut flops = 0.0f64;

    for j in 0..nb {
        // scatter in pivotal coordinates
        for (r, v) in diag.col_iter(j) {
            xd[pinv[r]] = v;
        }
        for (bi, b) in below.iter().enumerate() {
            for (r, v) in b.col_iter(j) {
                xb[bi][r] = v;
            }
        }
        // ascending pivotal order is a valid topological order
        let urows = factors.u.col_rows(j);
        let uvals_len = urows.len();
        debug_assert!(uvals_len >= 1 && urows[uvals_len - 1] == j);
        for k in 0..uvals_len - 1 {
            let t = urows[k];
            let xt = xd[t];
            if xt != 0.0 {
                let ks = basker_kernels::active();
                let lr = factors.l.col_rows(t);
                let lv = factors.l.col_values(t);
                ks.scatter_axpy(&mut xd, &lr[1..], &lv[1..], -xt);
                flops += 2.0 * (lr.len() - 1) as f64;
                for (bi, bm) in factors.below.iter().enumerate() {
                    let br = bm.col_rows(t);
                    let bv = bm.col_values(t);
                    ks.scatter_axpy(&mut xb[bi], br, bv, -xt);
                    flops += 2.0 * br.len() as f64;
                }
            }
        }
        let pivot = xd[j];
        if pivot == 0.0 {
            return Err(SparseError::ZeroPivot {
                column: col_offset + j,
            });
        }
        // gather new values into the fixed patterns, clearing as we go
        {
            let lo = factors.u.colptr()[j];
            let rows: Vec<usize> = factors.u.col_rows(j).to_vec();
            let vals = factors.u.values_mut();
            for (k, &t) in rows.iter().enumerate() {
                vals[lo + k] = xd[t];
                xd[t] = 0.0;
            }
        }
        {
            let lo = factors.l.colptr()[j];
            let rows: Vec<usize> = factors.l.col_rows(j).to_vec();
            let vals = factors.l.values_mut();
            for (k, &r) in rows.iter().enumerate() {
                if k == 0 {
                    vals[lo] = 1.0;
                } else {
                    vals[lo + k] = xd[r] / pivot;
                    flops += 1.0;
                }
                xd[r] = 0.0;
            }
        }
        for bi in 0..below.len() {
            let lo = factors.below[bi].colptr()[j];
            let rows: Vec<usize> = factors.below[bi].col_rows(j).to_vec();
            let vals = factors.below[bi].values_mut();
            for (k, &r) in rows.iter().enumerate() {
                vals[lo + k] = xb[bi][r] / pivot;
                xb[bi][r] = 0.0;
                flops += 1.0;
            }
        }
    }
    factors.flops = flops;
    Ok(())
}

/// Reusable scratch for [`lsolve_col`]: dense accumulator, stamp marks
/// and DFS stacks, sized lazily to the largest diagonal block seen.
/// One instance per worker thread serves every panel and column.
#[derive(Default)]
pub struct LsolveWorkspace {
    x: Vec<f64>,
    mark: Vec<u64>,
    stamp: u64,
    topo: Vec<usize>,
    dfs: Vec<(usize, usize)>,
}

impl LsolveWorkspace {
    /// A fresh, empty workspace.
    pub fn new() -> LsolveWorkspace {
        LsolveWorkspace::default()
    }

    /// Grows to dimension `n` and returns a fresh stamp.
    fn prepare(&mut self, n: usize) -> u64 {
        if self.x.len() < n {
            self.x.resize(n, 0.0);
            self.mark.resize(n, 0);
        }
        self.stamp += 1;
        self.stamp
    }
}

/// Sparse single-column solve: returns `x = L⁻¹ · P · b` where `L` is
/// the unit lower factor of `blu` (pivotal coordinates) and `b` one
/// sparse column with rows in the diagonal block's *original local*
/// coordinates.
///
/// This is the per-column unit of Basker's "factor upper off-diagonal
/// submatrices `A_ij → U_ij`" step (paper Alg. 4 line 14), the
/// granularity at which panels are published in the pipelined schedule:
/// the DFS over `L` discovers the output pattern in time proportional to
/// the arithmetic.
pub fn lsolve_col(
    blu: &BlockLu,
    b_rows: &[usize],
    b_vals: &[f64],
    ws: &mut LsolveWorkspace,
) -> SparseCol {
    let nb = blu.l.ncols();
    let l = &blu.l;
    let pinv = &blu.pinv;
    let stamp = ws.prepare(nb);
    ws.topo.clear();

    // scatter P·b and DFS on L's column graph (pivotal coords)
    for (&r0, &v) in b_rows.iter().zip(b_vals) {
        let i = pinv[r0];
        ws.x[i] = v;
        if ws.mark[i] == stamp {
            continue;
        }
        ws.mark[i] = stamp;
        ws.dfs.clear();
        ws.dfs.push((i, l.colptr()[i]));
        while let Some(&(t, pos)) = ws.dfs.last() {
            let hi = l.colptr()[t + 1];
            if pos < hi {
                ws.dfs.last_mut().unwrap().1 += 1;
                let r = l.rowind()[pos];
                if r != t && ws.mark[r] != stamp {
                    ws.mark[r] = stamp;
                    ws.dfs.push((r, l.colptr()[r]));
                }
            } else {
                ws.topo.push(t);
                ws.dfs.pop();
            }
        }
    }
    // numeric sweep in topological order
    for ti in (0..ws.topo.len()).rev() {
        let t = ws.topo[ti];
        let xt = ws.x[t];
        if xt != 0.0 {
            let lr = l.col_rows(t);
            let lv = l.col_values(t);
            basker_kernels::active().scatter_axpy(&mut ws.x, &lr[1..], &lv[1..], -xt);
        }
    }
    // gather (sorted pattern for a valid column)
    let mut rows: Vec<usize> = ws.topo.clone();
    rows.sort_unstable();
    let mut vals = Vec::with_capacity(rows.len());
    for &t in &rows {
        vals.push(ws.x[t]);
        ws.x[t] = 0.0;
    }
    SparseCol { rows, vals }
}

/// Sparse panel solve: returns `X = L⁻¹ · P · B` (the all-at-once
/// wrapper over [`lsolve_col`], used by the serial refactorization path
/// and tests).
pub fn lsolve_panel(blu: &BlockLu, b: &CscMat) -> CscMat {
    let nb = blu.l.ncols();
    assert_eq!(b.nrows(), nb, "panel rows must match the diagonal block");
    let mut ws = LsolveWorkspace::new();
    let cols: Vec<SparseCol> = (0..b.ncols())
        .map(|j| lsolve_col(blu, b.col_rows(j), b.col_values(j), &mut ws))
        .collect();
    cols_to_csc(nb, cols)
}

/// Refreshes the values of an existing panel solve result in place, reusing
/// its pattern (the refactorization path for separator panels).
pub fn lsolve_panel_refresh(blu: &BlockLu, b: &CscMat, out: &mut CscMat) {
    let nb = blu.l.ncols();
    let l = &blu.l;
    let pinv = &blu.pinv;
    let mut x = vec![0.0f64; nb];
    for j in 0..b.ncols() {
        for (r0, v) in b.col_iter(j) {
            x[pinv[r0]] = v;
        }
        let lo = out.colptr()[j];
        let rows: Vec<usize> = out.col_rows(j).to_vec();
        // ascending pivotal order is topologically valid
        for (k, &t) in rows.iter().enumerate() {
            let xt = x[t];
            let _ = k;
            if xt != 0.0 {
                let lr = l.col_rows(t);
                let lv = l.col_values(t);
                basker_kernels::active().scatter_axpy(&mut x, &lr[1..], &lv[1..], -xt);
            }
        }
        let vals = out.values_mut();
        for (k, &t) in rows.iter().enumerate() {
            vals[lo + k] = x[t];
            x[t] = 0.0;
        }
    }
}

/// Legacy alias retained for API compatibility in early revisions.
pub type GpWorkspace = ();

/// A factored BTF diagonal block with a fast path for 1×1 blocks.
///
/// Circuit BTF structures are dominated by singleton SCCs (Table I's
/// powergrid rows have thousands of 1×1 blocks); materializing a full
/// [`BlockLu`] (a dozen heap allocations) per scalar is the difference
/// between the fine-BTF path scaling and drowning in allocator traffic.
/// The real KLU special-cases 1×1 blocks the same way.
#[derive(Debug, Clone)]
pub enum BlockFactor {
    /// A genuine LU factorization.
    Full(Box<BlockLu>),
    /// A 1×1 block: just the pivot value.
    Singleton(f64),
}

impl BlockFactor {
    /// Factors the `lo..hi` diagonal block of the permuted matrix `ap`.
    pub fn factor_range(ap: &CscMat, lo: usize, hi: usize, pivot_tol: f64) -> Result<BlockFactor> {
        if hi - lo == 1 {
            let v = ap.get(lo, lo);
            if v == 0.0 {
                return Err(SparseError::ZeroPivot { column: lo });
            }
            return Ok(BlockFactor::Singleton(v));
        }
        let diag = basker_sparse::blocks::extract_range(ap, lo..hi, lo..hi);
        Ok(BlockFactor::Full(Box::new(factor_block_column(
            &diag,
            &[],
            pivot_tol,
            lo,
        )?)))
    }

    /// Refreshes values from the same pattern (fast refactorization).
    pub fn refactor_range(&mut self, ap: &CscMat, lo: usize, hi: usize) -> Result<()> {
        match self {
            BlockFactor::Singleton(v) => {
                let nv = ap.get(lo, lo);
                if nv == 0.0 {
                    return Err(SparseError::ZeroPivot { column: lo });
                }
                *v = nv;
                Ok(())
            }
            BlockFactor::Full(blu) => {
                let diag = basker_sparse::blocks::extract_range(ap, lo..hi, lo..hi);
                refactor_block_column(blu, &diag, &[], lo)
            }
        }
    }

    /// `|L+U|` of this block.
    pub fn lu_nnz(&self) -> usize {
        match self {
            BlockFactor::Singleton(_) => 1,
            BlockFactor::Full(blu) => blu.lu_nnz(),
        }
    }

    /// Numeric flops of the last factorization.
    pub fn flops(&self) -> f64 {
        match self {
            BlockFactor::Singleton(_) => 0.0,
            BlockFactor::Full(blu) => blu.flops,
        }
    }

    /// `(min |pivot|, max |pivot|)` of this block (see
    /// [`BlockLu::pivot_range`]).
    pub fn pivot_range(&self) -> (f64, f64) {
        match self {
            BlockFactor::Singleton(v) => (v.abs(), v.abs()),
            BlockFactor::Full(blu) => blu.pivot_range(),
        }
    }

    /// In-place block solve `x ← (LU)⁻¹ P x`.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        match self {
            BlockFactor::Singleton(v) => x[0] /= v,
            BlockFactor::Full(blu) => blu.solve_in_place(x),
        }
    }

    /// Allocation-free block solve; `scratch` must be at least `x.len()`.
    pub fn solve_in_place_with(&self, x: &mut [f64], scratch: &mut [f64]) {
        match self {
            BlockFactor::Singleton(v) => x[0] /= v,
            BlockFactor::Full(blu) => blu.solve_in_place_with(x, scratch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_sparse::spmv::spmv;
    use basker_sparse::util::relative_residual;
    use basker_sparse::Perm;

    fn check_factorization(a: &CscMat, blu: &BlockLu, tol: f64) {
        // P·A == L·U  (dense comparison, test matrices are small)
        let pa = blu.row_perm.permute_rows(a);
        let n = a.ncols();
        let ld = blu.l.to_dense();
        let ud = blu.u.to_dense();
        let pad = pa.to_dense();
        for i in 0..n {
            for j in 0..n {
                let mut lu = 0.0;
                for k in 0..n {
                    lu += ld[i][k] * ud[k][j];
                }
                assert!(
                    (lu - pad[i][j]).abs() < tol,
                    "mismatch at ({i},{j}): {lu} vs {}",
                    pad[i][j]
                );
            }
        }
    }

    fn dense(a: &[[f64; 4]; 4]) -> CscMat {
        CscMat::from_dense(&a.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn factors_small_dense() {
        let a = dense(&[
            [2.0, 1.0, 0.0, 3.0],
            [4.0, 3.0, 1.0, 0.0],
            [0.0, 2.0, 5.0, 1.0],
            [1.0, 0.0, 2.0, 4.0],
        ]);
        let blu = factor_block_column(&a, &[], 1.0, 0).unwrap();
        check_factorization(&a, &blu, 1e-12);
    }

    #[test]
    fn partial_pivoting_picks_large_rows() {
        // Column 0 has a tiny diagonal; with pivot_tol = 1.0 the 100 wins.
        let a = CscMat::from_dense(&[vec![1e-10, 1.0], vec![100.0, 1.0]]);
        let blu = factor_block_column(&a, &[], 1.0, 0).unwrap();
        assert_eq!(blu.row_perm.as_slice(), &[1, 0]);
        check_factorization(&a, &blu, 1e-12);
    }

    #[test]
    fn diagonal_preference_keeps_acceptable_diagonal() {
        // diag = 50, max = 100: with tol 0.1 the diagonal stays.
        let a = CscMat::from_dense(&[vec![50.0, 1.0], vec![100.0, 1.0]]);
        let blu = factor_block_column(&a, &[], 0.1, 0).unwrap();
        assert_eq!(blu.row_perm.as_slice(), &[0, 1]);
        check_factorization(&a, &blu, 1e-12);
    }

    #[test]
    fn zero_pivot_detected() {
        let a = CscMat::from_dense(&[vec![0.0, 1.0], vec![0.0, 1.0]]);
        match factor_block_column(&a, &[], 1.0, 7) {
            Err(SparseError::ZeroPivot { column }) => assert_eq!(column, 7),
            other => panic!("expected zero pivot, got {other:?}"),
        }
    }

    #[test]
    fn solve_via_factors() {
        let a = dense(&[
            [10.0, 2.0, 0.0, 1.0],
            [3.0, 12.0, 4.0, 0.0],
            [0.0, 1.0, 9.0, 2.0],
            [2.0, 0.0, 1.0, 8.0],
        ]);
        let blu = factor_block_column(&a, &[], 0.001, 0).unwrap();
        let xtrue = [1.0, -2.0, 3.0, 0.5];
        let b = spmv(&a, &xtrue);
        let mut x = b.clone();
        blu.solve_in_place(&mut x);
        assert!(relative_residual(&a, &x, &b) < 1e-13);
    }

    #[test]
    fn transpose_solve() {
        let a = dense(&[
            [10.0, 2.0, 0.0, 1.0],
            [3.0, 12.0, 4.0, 0.0],
            [0.0, 1.0, 9.0, 2.0],
            [2.0, 0.0, 1.0, 8.0],
        ]);
        let blu = factor_block_column(&a, &[], 0.001, 0).unwrap();
        let xtrue = [0.5, 1.5, -1.0, 2.0];
        let at = a.transpose();
        let b = spmv(&at, &xtrue);
        let mut x = b.clone();
        blu.solve_transpose_in_place(&mut x);
        assert!(relative_residual(&at, &x, &b) < 1e-13);
    }

    #[test]
    fn stacked_below_blocks_match_schur_expectation() {
        // Factor [D; B] and verify B_factored == B · U⁻¹ (columnwise):
        // L_below(:,c)·U(c,c) + Σ_{t<c} L_below(:,t)·U(t,c) = B(:,c).
        let d = CscMat::from_dense(&[vec![4.0, 1.0], vec![2.0, 5.0]]);
        let b = CscMat::from_dense(&[vec![1.0, 2.0], vec![3.0, 0.0], vec![0.0, 7.0]]);
        let blu = factor_block_column(&d, &[&b], 0.001, 0).unwrap();
        let lb = &blu.below[0];
        // reconstruct B = L_below · U
        let lbd = lb.to_dense();
        let ud = blu.u.to_dense();
        let bd = b.to_dense();
        for i in 0..3 {
            for j in 0..2 {
                let mut acc = 0.0;
                for k in 0..2 {
                    acc += lbd[i][k] * ud[k][j];
                }
                assert!(
                    (acc - bd[i][j]).abs() < 1e-12,
                    "below mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn refactor_reproduces_fresh_factorization() {
        let a = dense(&[
            [10.0, 2.0, 0.0, 1.0],
            [3.0, 12.0, 4.0, 0.0],
            [0.0, 1.0, 9.0, 2.0],
            [2.0, 0.0, 1.0, 8.0],
        ]);
        let mut blu = factor_block_column(&a, &[], 0.001, 0).unwrap();
        // New values, same pattern.
        let a2 = dense(&[
            [20.0, 1.0, 0.0, 2.0],
            [1.0, 24.0, 2.0, 0.0],
            [0.0, 3.0, 18.0, 1.0],
            [4.0, 0.0, 3.0, 16.0],
        ]);
        refactor_block_column(&mut blu, &a2, &[], 0).unwrap();
        let xtrue = [1.0, 1.0, 1.0, 1.0];
        let b = spmv(&a2, &xtrue);
        let mut x = b.clone();
        blu.solve_in_place(&mut x);
        assert!(relative_residual(&a2, &x, &b) < 1e-13);
    }

    #[test]
    fn refactor_detects_new_zero_pivot() {
        let a = CscMat::from_dense(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let mut blu = factor_block_column(&a, &[], 1.0, 0).unwrap();
        let bad = CscMat::from_dense(&[vec![0.0, 0.0], vec![0.0, 1.0]]);
        // Same pattern? a has entries only on the diagonal; bad stores a
        // structural zero at (0,0).
        assert!(refactor_block_column(&mut blu, &bad, &[], 0).is_err());
    }

    #[test]
    fn lsolve_panel_matches_dense_solve() {
        let d = dense(&[
            [10.0, 2.0, 0.0, 1.0],
            [3.0, 12.0, 4.0, 0.0],
            [0.0, 1.0, 9.0, 2.0],
            [2.0, 0.0, 1.0, 8.0],
        ]);
        let blu = factor_block_column(&d, &[], 1.0, 0).unwrap();
        let b = CscMat::from_dense(&[
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![3.0, 0.0],
            vec![0.0, 0.0],
        ]);
        let x = lsolve_panel(&blu, &b);
        // Verify L·X == P·B column by column.
        let pb = blu.row_perm.permute_rows(&b);
        let ld = blu.l.to_dense();
        let xd = x.to_dense();
        let pbd = pb.to_dense();
        for j in 0..2 {
            for i in 0..4 {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += ld[i][k] * xd[k][j];
                }
                assert!((acc - pbd[i][j]).abs() < 1e-12);
            }
        }
        // Refresh path gives the same values.
        let mut x2 = x.clone();
        lsolve_panel_refresh(&blu, &b, &mut x2);
        assert_eq!(x.values(), x2.values());
    }

    #[test]
    fn empty_block() {
        let a = CscMat::zero(0, 0);
        let blu = factor_block_column(&a, &[], 1.0, 0).unwrap();
        assert_eq!(blu.l.ncols(), 0);
        assert_eq!(blu.row_perm, Perm::identity(0));
    }

    #[test]
    fn one_by_one_block() {
        let a = CscMat::from_dense(&[vec![5.0]]);
        let blu = factor_block_column(&a, &[], 1.0, 0).unwrap();
        assert_eq!(blu.u.get(0, 0), 5.0);
        assert_eq!(blu.l.get(0, 0), 1.0);
        assert!(blu.lu_nnz() == 1);
    }

    #[test]
    fn pivot_range_tracks_u_diagonal_extremes() {
        let a = CscMat::from_dense(&[vec![-8.0, 1.0], vec![0.0, 0.5]]);
        let blu = factor_block_column(&a, &[], 0.001, 0).unwrap();
        let (lo, hi) = blu.pivot_range();
        assert_eq!((lo, hi), (0.5, 8.0));
        // Fold semantics for the degenerate cases.
        let empty = factor_block_column(&CscMat::zero(0, 0), &[], 1.0, 0).unwrap();
        assert_eq!(empty.pivot_range(), (f64::INFINITY, 0.0));
        assert_eq!(BlockFactor::Singleton(-3.0).pivot_range(), (3.0, 3.0));
    }

    #[test]
    fn fill_in_is_created_and_consistent() {
        // A pattern guaranteed to fill: arrow pointing down-right.
        let n = 6;
        let mut d = vec![vec![0.0; n]; n];
        for i in 0..n {
            d[i][i] = 4.0;
            d[n - 1][i] = 1.0;
            d[i][n - 1] = 1.0;
            if i > 0 {
                d[i][0] = 0.5;
                d[0][i] = 0.5;
            }
        }
        let a = CscMat::from_dense(&d);
        let blu = factor_block_column(&a, &[], 0.001, 0).unwrap();
        check_factorization(&a, &blu, 1e-10);
        assert!(blu.lu_nnz() > a.nnz() / 2);
        assert!(blu.flops > 0.0);
    }
}
