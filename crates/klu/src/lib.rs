//! A KLU work-alike: the paper's serial baseline solver.
//!
//! KLU (Davis & Palamadai Natarajan, "Algorithm 907") factors circuit
//! matrices by permuting to block triangular form, ordering each diagonal
//! block with AMD, and running the left-looking Gilbert–Peierls
//! factorization (paper Algorithm 1) on each block with partial pivoting.
//! This crate reproduces that pipeline:
//!
//! * [`gp`] — the Gilbert–Peierls kernel: DFS reachability over the
//!   partially built `L`, sparse accumulator updates, threshold partial
//!   pivoting with diagonal preference, *stacked* block-column support
//!   (pivot confined to the diagonal block while trailing row-blocks ride
//!   along — the primitive Basker's 2-D algorithm is built from), and
//!   pattern-reusing refactorization.
//! * [`solver`] — the user-facing `analyze / factor / refactor / solve`
//!   pipeline over the BTF structure.
//!
//! Usage:
//!
//! ```
//! use basker_klu::{KluOptions, KluSymbolic};
//! use basker_sparse::CscMat;
//!
//! let a = CscMat::from_dense(&[
//!     vec![4.0, 1.0, 0.0],
//!     vec![1.0, 5.0, 2.0],
//!     vec![0.0, 2.0, 6.0],
//! ]);
//! let sym = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
//! let num = sym.factor(&a).unwrap();
//! let mut ws = basker_sparse::SolveWorkspace::new();
//! let mut x = vec![5.0, 8.0, 8.0];
//! num.solve_in_place(&mut x, &mut ws);
//! assert!(basker_sparse::util::relative_residual(&a, &x, &[5.0, 8.0, 8.0]) < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod gp;
pub mod solver;

pub use gp::{BlockLu, GpWorkspace};
pub use solver::{KluNumeric, KluOptions, KluSymbolic};
