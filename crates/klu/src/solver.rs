//! The KLU-style solver pipeline: BTF + per-block AMD + Gilbert–Peierls.
//!
//! `analyze` computes the orderings once per sparsity pattern; `factor`
//! produces numeric factors; `refactor` refreshes values against the same
//! pattern **and pivot sequence** without any graph search (the path Xyce
//! exercises across a transient simulation, paper §V-F); `solve` performs
//! the block back-substitution.

use crate::gp::BlockFactor;
use basker_ordering::amd::amd_order;
use basker_ordering::btf::btf_form_with;
use basker_sparse::blocks::extract_range;
use basker_sparse::{CscMat, Perm, Result, SolveWorkspace, SparseError};

/// Tuning options for the KLU pipeline.
#[derive(Debug, Clone)]
pub struct KluOptions {
    /// Threshold partial-pivoting tolerance (diagonal preferred when its
    /// magnitude is at least `pivot_tol`·column max). KLU's default 0.001.
    pub pivot_tol: f64,
    /// Permute to block triangular form first (KLU's defining step).
    pub use_btf: bool,
    /// Use the bottleneck MWCM transversal rather than any maximum
    /// transversal when forming the BTF.
    pub use_mwcm: bool,
    /// Apply AMD to each diagonal block.
    pub use_amd: bool,
}

impl Default for KluOptions {
    fn default() -> Self {
        KluOptions {
            pivot_tol: 0.001,
            use_btf: true,
            use_mwcm: true,
            use_amd: true,
        }
    }
}

/// The symbolic analysis: permutations and block structure for a pattern.
#[derive(Debug, Clone)]
pub struct KluSymbolic {
    n: usize,
    opts: KluOptions,
    row_perm: Perm,
    col_perm: Perm,
    bounds: Vec<usize>,
    /// block id of each permuted index
    block_of: Vec<usize>,
    /// bottleneck value of the transversal (diagnostic)
    pub bottleneck: f64,
}

impl KluSymbolic {
    /// Analyzes the pattern of `a`: BTF + per-block AMD.
    pub fn analyze(a: &CscMat, opts: &KluOptions) -> Result<KluSymbolic> {
        if !a.is_square() {
            return Err(SparseError::DimensionMismatch {
                expected: (a.nrows(), a.nrows()),
                found: (a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let (mut row_perm, mut col_perm, bounds, bottleneck) = if opts.use_btf {
            let btf = btf_form_with(a, opts.use_mwcm)?;
            (
                btf.row_perm.clone(),
                btf.col_perm.clone(),
                btf.bounds.clone(),
                btf.bottleneck,
            )
        } else {
            (Perm::identity(n), Perm::identity(n), vec![0, n], 0.0)
        };

        if opts.use_amd && n > 0 {
            // Refine each diagonal block with AMD (applied symmetrically so
            // the zero-free diagonal survives).
            let ap = Perm::permute_both(&row_perm, &col_perm, a);
            let mut row_total = vec![0usize; n];
            let mut col_total = vec![0usize; n];
            for b in 0..bounds.len() - 1 {
                let (lo, hi) = (bounds[b], bounds[b + 1]);
                if hi - lo <= 2 {
                    row_total[lo..hi].copy_from_slice(&row_perm.as_slice()[lo..hi]);
                    col_total[lo..hi].copy_from_slice(&col_perm.as_slice()[lo..hi]);
                    continue;
                }
                let block = extract_range(&ap, lo..hi, lo..hi);
                let local = amd_order(&block);
                for (off, &l) in local.as_slice().iter().enumerate() {
                    row_total[lo + off] = row_perm.as_slice()[lo + l];
                    col_total[lo + off] = col_perm.as_slice()[lo + l];
                }
            }
            row_perm = Perm::from_vec(row_total).expect("composed row perm invalid");
            col_perm = Perm::from_vec(col_total).expect("composed col perm invalid");
        }

        let mut block_of = vec![0usize; n];
        for b in 0..bounds.len() - 1 {
            for k in bounds[b]..bounds[b + 1] {
                block_of[k] = b;
            }
        }

        Ok(KluSymbolic {
            n,
            opts: opts.clone(),
            row_perm,
            col_perm,
            bounds,
            block_of,
            bottleneck,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of BTF diagonal blocks.
    pub fn nblocks(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Block boundaries in the permuted matrix.
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// The row permutation (pre-pivoting).
    pub fn row_perm(&self) -> &Perm {
        &self.row_perm
    }

    /// The column permutation.
    pub fn col_perm(&self) -> &Perm {
        &self.col_perm
    }

    /// BTF block id of a permuted index.
    pub fn block_of(&self, permuted: usize) -> usize {
        self.block_of[permuted]
    }

    /// Fraction of rows in blocks of size ≤ `small` (Table I's "BTF %").
    pub fn small_block_fraction(&self, small: usize) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let covered: usize = (0..self.nblocks())
            .map(|b| self.bounds[b + 1] - self.bounds[b])
            .filter(|&s| s <= small)
            .sum();
        covered as f64 / self.n as f64
    }

    /// Numeric factorization of `a` (same pattern as analyzed).
    pub fn factor(&self, a: &CscMat) -> Result<KluNumeric> {
        let ap = Perm::permute_both(&self.row_perm, &self.col_perm, a);
        let mut blocks = Vec::with_capacity(self.nblocks());
        for b in 0..self.nblocks() {
            let (lo, hi) = (self.bounds[b], self.bounds[b + 1]);
            blocks.push(BlockFactor::factor_range(&ap, lo, hi, self.opts.pivot_tol)?);
        }
        let offdiag = upper_block_part(&ap, &self.block_of);
        Ok(KluNumeric {
            sym: self.clone(),
            blocks,
            offdiag,
        })
    }
}

/// Extracts the strictly-upper-block part of a permuted matrix (the BTF
/// couplings that feed the block back-substitution).
fn upper_block_part(ap: &CscMat, block_of: &[usize]) -> CscMat {
    let n = ap.ncols();
    let mut colptr = Vec::with_capacity(n + 1);
    let mut rowind = Vec::new();
    let mut values = Vec::new();
    colptr.push(0);
    for j in 0..n {
        for (i, v) in ap.col_iter(j) {
            if block_of[i] < block_of[j] {
                rowind.push(i);
                values.push(v);
            }
        }
        colptr.push(rowind.len());
    }
    // SAFETY: `col_iter` yields strictly ascending in-bounds rows; the
    // filter keeps that order and `colptr` tracks `rowind.len()` per
    // column.
    unsafe { CscMat::from_parts_unchecked(n, n, colptr, rowind, values) }
}

/// Numeric LU factors over the BTF structure.
#[derive(Debug, Clone)]
pub struct KluNumeric {
    sym: KluSymbolic,
    blocks: Vec<BlockFactor>,
    offdiag: CscMat,
}

impl KluNumeric {
    /// Access the symbolic analysis.
    pub fn symbolic(&self) -> &KluSymbolic {
        &self.sym
    }

    /// Per-block factors (diagnostics / tests).
    pub fn blocks(&self) -> &[BlockFactor] {
        &self.blocks
    }

    /// `|L+U|` over the factored diagonal blocks only — the paper's
    /// memory metric. Off-diagonal BTF entries are *not* factored (they
    /// are reused from `A` during the solve), which is why Table I fill
    /// densities can be below 1.
    pub fn lu_nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.lu_nnz()).sum::<usize>()
    }

    /// Total stored entries including the retained off-diagonal couplings.
    pub fn total_storage_nnz(&self) -> usize {
        self.lu_nnz() + self.offdiag.nnz()
    }

    /// Total numeric flops of the last (re)factorization.
    pub fn flops(&self) -> f64 {
        self.blocks.iter().map(|b| b.flops()).sum()
    }

    /// `(min |pivot|, max |pivot|)` over every factored diagonal block —
    /// `min/max` is KLU's `rcond` estimate, and the extremes feed the
    /// refactor-path quality gates of the session layer. `(∞, 0)` for an
    /// empty matrix.
    pub fn pivot_range(&self) -> (f64, f64) {
        self.blocks
            .iter()
            .map(|b| b.pivot_range())
            .fold((f64::INFINITY, 0.0), |(lo, hi), (l, h)| {
                (lo.min(l), hi.max(h))
            })
    }

    /// Refreshes values from `a` (identical pattern), reusing patterns and
    /// pivot sequences. Fails with [`SparseError::ZeroPivot`] when a pivot
    /// collapses to zero; callers should then re-`factor`.
    pub fn refactor(&mut self, a: &CscMat) -> Result<()> {
        let ap = Perm::permute_both(&self.sym.row_perm, &self.sym.col_perm, a);
        for b in 0..self.sym.nblocks() {
            let (lo, hi) = (self.sym.bounds[b], self.sym.bounds[b + 1]);
            self.blocks[b].refactor_range(&ap, lo, hi)?;
        }
        self.offdiag = upper_block_part(&ap, &self.sym.block_of);
        Ok(())
    }

    /// Solves `A·x = b` in place: on entry `x` holds `b`, on exit the
    /// solution. After the workspace's first use at this dimension the
    /// call performs **no heap allocation**.
    pub fn solve_in_place(&self, x: &mut [f64], ws: &mut SolveWorkspace) {
        assert_eq!(x.len(), self.sym.n);
        let (y, scratch) = ws.split2(self.sym.n);
        // to permuted coordinates
        self.sym.row_perm.apply_vec_into(x, y);
        // blocks in reverse order: solve, then push contributions left
        for blk in (0..self.sym.nblocks()).rev() {
            let (lo, hi) = (self.sym.bounds[blk], self.sym.bounds[blk + 1]);
            self.blocks[blk].solve_in_place_with(&mut y[lo..hi], &mut scratch[..hi - lo]);
            for c in lo..hi {
                let xc = y[c];
                if xc != 0.0 {
                    for (i, v) in self.offdiag.col_iter(c) {
                        y[i] -= v * xc;
                    }
                }
            }
        }
        // out of permuted coordinates: position k holds x[col_perm[k]]
        for (k, &orig) in self.sym.col_perm.as_slice().iter().enumerate() {
            x[orig] = y[k];
        }
    }

    /// Solves several right-hand sides packed column-major in `xs`
    /// (`xs.len()` must be a multiple of `n`); each length-`n` chunk is
    /// overwritten with its solution. Allocation-free like
    /// [`KluNumeric::solve_in_place`].
    pub fn solve_multi_in_place(&self, xs: &mut [f64], ws: &mut SolveWorkspace) {
        basker_sparse::workspace::for_each_rhs(self.sym.n, xs, |rhs| self.solve_in_place(rhs, ws));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basker_sparse::spmv::spmv;
    use basker_sparse::util::relative_residual;
    use basker_sparse::TripletMat;

    /// Test-side allocating convenience over the in-place path (the
    /// legacy `solve` wrapper removed from the public API).
    fn solve(num: &KluNumeric, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        num.solve_in_place(&mut x, &mut SolveWorkspace::new());
        x
    }

    fn reducible_matrix(n_half: usize) -> CscMat {
        // Two coupled subsystems: block upper triangular by construction
        // once permuted, with a dense-ish coupling.
        let n = 2 * n_half;
        let mut t = TripletMat::new(n, n);
        for i in 0..n {
            t.push(i, i, 10.0 + (i % 3) as f64);
        }
        for i in 0..n_half {
            let j = (i + 1) % n_half;
            t.push(i, j, -1.0);
            t.push(j, i, -0.5);
        }
        for i in n_half..n {
            let j = n_half + (i - n_half + 1) % n_half;
            t.push(i, j, -2.0);
        }
        // coupling from first subsystem to second (upper block)
        for i in 0..n_half / 2 {
            t.push(i, n_half + i, 0.7);
        }
        t.to_csc()
    }

    #[test]
    fn analyze_factor_solve_roundtrip() {
        let a = reducible_matrix(6);
        let sym = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
        assert!(sym.nblocks() >= 2, "expected BTF to split the system");
        let num = sym.factor(&a).unwrap();
        let xtrue: Vec<f64> = (0..a.ncols())
            .map(|i| (i as f64 * 0.3).sin() + 1.5)
            .collect();
        let b = spmv(&a, &xtrue);
        let x = solve(&num, &b);
        assert!(relative_residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn no_btf_path_works() {
        let a = reducible_matrix(4);
        let opts = KluOptions {
            use_btf: false,
            ..KluOptions::default()
        };
        let sym = KluSymbolic::analyze(&a, &opts).unwrap();
        assert_eq!(sym.nblocks(), 1);
        let num = sym.factor(&a).unwrap();
        let b = vec![1.0; a.ncols()];
        let x = solve(&num, &b);
        assert!(relative_residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn no_amd_path_works() {
        let a = reducible_matrix(4);
        let opts = KluOptions {
            use_amd: false,
            ..KluOptions::default()
        };
        let sym = KluSymbolic::analyze(&a, &opts).unwrap();
        let num = sym.factor(&a).unwrap();
        let b = vec![1.0; a.ncols()];
        let x = solve(&num, &b);
        assert!(relative_residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn refactor_solves_new_values() {
        let a = reducible_matrix(5);
        let sym = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
        let mut num = sym.factor(&a).unwrap();
        // Same pattern, scaled + perturbed values.
        let a2 = {
            let mut vals: Vec<f64> = a.values().to_vec();
            for (k, v) in vals.iter_mut().enumerate() {
                *v = *v * 1.5 + 0.01 * ((k % 5) as f64);
            }
            // SAFETY: pattern arrays are copied from the valid matrix `a`;
            // `vals` maps its values 1:1.
            unsafe {
                CscMat::from_parts_unchecked(
                    a.nrows(),
                    a.ncols(),
                    a.colptr().to_vec(),
                    a.rowind().to_vec(),
                    vals,
                )
            }
        };
        num.refactor(&a2).unwrap();
        let xtrue: Vec<f64> = (0..a.ncols()).map(|i| 1.0 + i as f64).collect();
        let b = spmv(&a2, &xtrue);
        let x = solve(&num, &b);
        assert!(relative_residual(&a2, &x, &b) < 1e-12);
    }

    #[test]
    fn rejects_rectangular() {
        let a = CscMat::zero(3, 4);
        assert!(KluSymbolic::analyze(&a, &KluOptions::default()).is_err());
    }

    #[test]
    fn rejects_structurally_singular() {
        let mut t = TripletMat::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        t.push(2, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(0, 2, 1.0);
        let a = t.to_csc();
        assert!(matches!(
            KluSymbolic::analyze(&a, &KluOptions::default()),
            Err(SparseError::StructurallySingular { .. })
        ));
    }

    #[test]
    fn diagonal_matrix_trivial() {
        let a = CscMat::identity(8);
        let sym = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
        assert_eq!(sym.nblocks(), 8);
        let num = sym.factor(&a).unwrap();
        let x = solve(&num, &[2.0; 8]);
        assert!(x.iter().all(|&v| (v - 2.0).abs() < 1e-15));
        assert_eq!(num.lu_nnz(), 8);
    }

    #[test]
    fn singular_block_reports_zero_pivot() {
        // Structurally fine but numerically singular 2x2 block:
        // [1 1; 1 1] embedded.
        let mut t = TripletMat::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 1.0);
        let a = t.to_csc();
        let sym = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
        assert!(matches!(sym.factor(&a), Err(SparseError::ZeroPivot { .. })));
    }

    #[test]
    fn solve_multi_matches_single() {
        let a = reducible_matrix(4);
        let n = a.ncols();
        let sym = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
        let num = sym.factor(&a).unwrap();
        let b1 = vec![1.0; n];
        let b2: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut packed: Vec<f64> = b1.iter().chain(b2.iter()).copied().collect();
        num.solve_multi_in_place(&mut packed, &mut SolveWorkspace::for_dim(n));
        assert_eq!(&packed[..n], &solve(&num, &b1)[..]);
        assert_eq!(&packed[n..], &solve(&num, &b2)[..]);
    }

    #[test]
    fn pivot_range_spans_blocks() {
        let a = reducible_matrix(5);
        let sym = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
        let num = sym.factor(&a).unwrap();
        let (lo, hi) = num.pivot_range();
        assert!(lo > 0.0 && lo <= hi, "pivot range ({lo}, {hi})");
        // rcond-style estimate is in (0, 1].
        assert!(lo / hi <= 1.0);
    }

    #[test]
    fn fill_density_sane_on_btf_friendly_matrix() {
        let a = reducible_matrix(10);
        let sym = KluSymbolic::analyze(&a, &KluOptions::default()).unwrap();
        let num = sym.factor(&a).unwrap();
        let density = num.lu_nnz() as f64 / a.nnz() as f64;
        // KLU on a BTF-friendly matrix keeps fill density low (paper
        // Table I shows many matrices below 2).
        assert!(density < 3.0, "unexpected fill density {density}");
    }
}
