//! The work-assisting task substrate (the scheduling layer of the
//! runtime, in the style of the work-assisting scheduler literature:
//! tasks expose a *self-scheduling inner loop* over an atomically
//! claimed work index, and a rank that would otherwise block *joins* a
//! running task's remaining items instead of spinning).
//!
//! One type-erased [`TaskCore`] drives every parallel construct in the
//! workspace:
//!
//! * [`WorkerTeam::broadcast`](crate::WorkerTeam::broadcast) posts one
//!   SPMD task of `width` items; each participant (the caller plus the
//!   woken workers) **claims exactly one index**, which *is* its rank —
//!   rank assignment is the same `fetch_add` claim as any other work
//!   item.
//! * [`WorkerTeam::run_worklist`](crate::WorkerTeam::run_worklist)
//!   builds a claim-loop task over its job bag and **registers** it in
//!   the process-wide assist registry, so ranks outside the worklist's
//!   own broadcast can join the remaining jobs.
//! * [`run_assistable`] is the same claim-loop task for callers that
//!   already *are* a rank (the ND column pipeline registers each leaf
//!   panel's remaining columns this way).
//! * [`try_assist`] is the single entry blocked ranks use: it runs one
//!   item of some registered task, or reports that nothing was
//!   stealable. Point-to-point slot waits call it instead of backing
//!   off, which is what turns idle spin time into column work.
//!
//! Sequential execution pays nothing: width-1 teams and single-item
//! tasks never construct a `TaskCore`, touch the registry, or issue an
//! atomic beyond task entry — the zero-overhead single-core contract
//! asserted by the workspace's regression tests.
//!
//! # Soundness of assisted borrows
//!
//! A task's `data` pointer refers to the owner's stack frame. The owner
//! never leaves that frame until `completed == size` (the done latch),
//! and an assister dereferences `data` only after winning a claim
//! (`index < size`); every winning claim is counted into `completed`
//! after its item finishes. An assister that merely holds the `Arc`
//! past deregistration can still touch the (heap) `TaskCore`, but its
//! claims fail and `data` is never read — so the stack borrow cannot
//! outlive its frame.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The primitives under model-checking scrutiny: the claim cursor, the
/// completion counter, and the done latch. Under `--cfg basker_model`
/// (the model-checking CI leg) they swap onto `basker_model`'s
/// schedule-explored facades; the registry, the process-wide counters,
/// and the panic slot stay on std — their critical sections contain no
/// schedule points, so they cannot hide an interleaving.
#[cfg(basker_model)]
mod msync {
    pub(super) use basker_model::sync::{AtomicUsize, Condvar, Mutex};
}
#[cfg(not(basker_model))]
mod msync {
    pub(super) use std::sync::atomic::AtomicUsize;
    pub(super) use std::sync::{Condvar, Mutex};
}

/// Monotonic task-id source (distinguishes tasks for the
/// `tasks_joined` counter and re-join detection).
static NEXT_TASK_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide assist-loop counters (monotonic; consumers diff
/// snapshots).
static TASKS_JOINED: AtomicU64 = AtomicU64::new(0);
static ITEMS_ASSISTED: AtomicU64 = AtomicU64::new(0);
static STEAL_ATTEMPTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Last task id this thread assisted (for `tasks_joined`).
    static LAST_JOINED: Cell<u64> = const { Cell::new(0) };
    /// Assist nesting depth: an assisted item that itself blocks may
    /// assist again, but only to a bounded depth (the dependency order
    /// of real schedules is acyclic, so this is stack insurance, not a
    /// correctness requirement).
    static ASSIST_DEPTH: Cell<u32> = const { Cell::new(0) };
}

const MAX_ASSIST_DEPTH: u32 = 4;

/// A snapshot of the process-wide assist-loop counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssistCounters {
    /// Distinct (thread, task) joins: how often a blocked or idle rank
    /// started helping a task it was not already part of.
    pub tasks_joined: u64,
    /// Work items executed through [`try_assist`] (columns, worklist
    /// jobs, `par_iter` chunks — whatever the task's items are).
    pub items_assisted: u64,
    /// Calls to [`try_assist`] that scanned the registry (productive or
    /// not). `steal_attempts − items_assisted` is the number of empty
    /// scans.
    pub steal_attempts: u64,
}

/// Reads the process-wide assist counters (monotonic since process
/// start; diff two snapshots to scope a measurement).
pub fn assist_counters() -> AssistCounters {
    // ORDER: Relaxed ×3 — monotonic diagnostics with no ordering role;
    // consumers diff snapshots taken on one thread.
    AssistCounters {
        tasks_joined: TASKS_JOINED.load(Ordering::Relaxed),
        items_assisted: ITEMS_ASSISTED.load(Ordering::Relaxed),
        steal_attempts: STEAL_ATTEMPTS.load(Ordering::Relaxed),
    }
}

/// The type-erased self-scheduling task every parallel construct runs
/// through: `size` work items handed out by an atomically claimed
/// index, a completion latch, and a panic slot so a faulting item
/// surfaces at the owner rather than in whichever thread happened to
/// claim it.
pub(crate) struct TaskCore {
    pub(crate) id: u64,
    data: *const (),
    // SAFETY: the trampoline's contract (a live payload behind `data`,
    // each index run at most once) is upheld by `run_claimed` — the
    // only caller — via the claim cursor and the owner's done latch.
    run: unsafe fn(*const (), usize, usize),
    next: msync::AtomicUsize,
    completed: msync::AtomicUsize,
    size: usize,
    /// SPMD tasks hand each participant exactly one index (its rank)
    /// and are never registered for assist — their items synchronize
    /// with each other, so they must all be live concurrently.
    spmd: bool,
    done: msync::Mutex<bool>,
    done_cv: msync::Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `data` points at a payload of `Sync` references owned by the
// task's owner, which blocks on the done latch for as long as any claim
// can still dereference it (see module docs); all other fields are
// plain sync primitives.
unsafe impl Send for TaskCore {}
// SAFETY: as above — shared access routes through the claim cursor and
// the sync primitives; `data` dereferences are claim-guarded.
unsafe impl Sync for TaskCore {}

impl TaskCore {
    pub(crate) fn new(
        data: *const (),
        // SAFETY: forwarded to `run_claimed` (see the field docs); the
        // constructor only stores the pointer pair.
        run: unsafe fn(*const (), usize, usize),
        size: usize,
        spmd: bool,
    ) -> Arc<TaskCore> {
        Arc::new(TaskCore {
            // ORDER: Relaxed — id generation only needs uniqueness,
            // not ordering.
            id: NEXT_TASK_ID.fetch_add(1, Ordering::Relaxed),
            data,
            run,
            next: msync::AtomicUsize::new(0),
            completed: msync::AtomicUsize::new(0),
            size,
            spmd,
            done: msync::Mutex::new(false),
            done_cv: msync::Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    /// Claims the next index; `None` when the task is exhausted.
    pub(crate) fn claim(&self) -> Option<usize> {
        // ORDER: Relaxed — the claim only needs atomicity (each index
        // handed out once); the item's *data* visibility comes from
        // whatever published the task to this thread (mailbox hand-off
        // or registry mutex), and completion visibility from the
        // AcqRel counter in `run_claimed`. Verified exhaustively by
        // `model_checks::claim_cursor_hands_out_each_item_exactly_once`.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.size).then_some(i)
    }

    /// True when every index has been handed out (items may still be
    /// executing; see [`wait_done`](Self::wait_done)).
    fn is_exhausted(&self) -> bool {
        // ORDER: Relaxed — a stale read is harmless: the racing
        // `claim` below it is what decides, this is only a fast-path
        // filter for the registry scan.
        self.next.load(Ordering::Relaxed) >= self.size
    }

    /// Runs one already-claimed item, capturing a panic into the task's
    /// panic slot, and counts it completed.
    pub(crate) fn run_claimed(&self, index: usize) {
        // SAFETY: the claim made this thread the unique executor of
        // `index`, and the owner keeps `data` alive until `completed`
        // reaches `size` — which cannot happen before this item is
        // counted below.
        let r = catch_unwind(AssertUnwindSafe(|| unsafe {
            (self.run)(self.data, index, self.size)
        }));
        if let Err(e) = r {
            let mut g = self.panic.lock().unwrap();
            if g.is_none() {
                *g = Some(e);
            }
        }
        // ORDER: AcqRel — the Release half publishes this item's
        // effects to whoever observes the final count; the Acquire
        // half makes every *other* item's effects visible to the
        // thread that trips the latch (and thus to the owner via the
        // latch mutex).
        if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.size {
            *self.done.lock().unwrap() = true;
            self.done_cv.notify_all();
        }
    }

    /// Claim-and-run one item; `false` when the task is exhausted.
    pub(crate) fn run_one(&self) -> bool {
        match self.claim() {
            Some(i) => {
                self.run_claimed(i);
                true
            }
            None => false,
        }
    }

    /// The self-scheduling inner loop: claim and run items until the
    /// task is exhausted.
    pub(crate) fn participate(&self) {
        while self.run_one() {}
    }

    /// Blocks until every item has *finished* (not merely been
    /// claimed) — the owner's scoped join.
    pub(crate) fn wait_done(&self) {
        let mut g = self.done.lock().unwrap();
        while !*g {
            g = self.done_cv.wait(g).unwrap();
        }
    }

    /// Re-raises the first panic any item produced.
    pub(crate) fn rethrow_panic(&self) {
        let p = self.panic.lock().unwrap().take();
        if let Some(p) = p {
            resume_unwind(p);
        }
    }

    pub(crate) fn is_spmd(&self) -> bool {
        self.spmd
    }
}

/// The process-wide registry of tasks open for assistance.
struct Registry {
    /// Fast-path gate: number of registered tasks. A blocked rank pays
    /// one relaxed load when nothing is stealable.
    active: AtomicUsize,
    tasks: Mutex<Vec<Arc<TaskCore>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        active: AtomicUsize::new(0),
        tasks: Mutex::new(Vec::new()),
    })
}

/// RAII registration of a task in the assist registry.
pub(crate) struct Registration {
    id: u64,
}

pub(crate) fn register(core: &Arc<TaskCore>) -> Registration {
    debug_assert!(!core.spmd, "SPMD tasks are rank-bound, never assistable");
    let reg = registry();
    let id = core.id;
    reg.tasks.lock().unwrap().push(core.clone());
    // ORDER: Relaxed — `active` is a fast-path hint; the registry
    // mutex above is the real synchronization, and a stale zero only
    // costs a missed assist opportunity.
    reg.active.fetch_add(1, Ordering::Relaxed);
    Registration { id }
}

impl Drop for Registration {
    fn drop(&mut self) {
        let reg = registry();
        let mut g = reg.tasks.lock().unwrap();
        if let Some(pos) = g.iter().position(|t| t.id == self.id) {
            g.remove(pos);
            // ORDER: Relaxed — hint counter, mutex-guarded list is
            // authoritative (see `register`).
            reg.active.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Runs one work item of some registered task, if any has unclaimed
/// items. Returns the task's id on success, `None` when nothing was
/// stealable (or the assist-nesting depth bound was reached).
///
/// This is the assist half of assist-then-wait: a rank blocked on a
/// not-yet-published column calls this in its wait loop, so the block
/// time becomes another column, another BTF block, or another stream's
/// job instead of a spin.
pub fn try_assist() -> Option<u64> {
    let reg = registry();
    // ORDER: Relaxed — fast-path emptiness hint; a stale nonzero just
    // takes the mutex and finds nothing, a stale zero skips one
    // assist opportunity. The registry mutex is authoritative.
    if reg.active.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let depth = ASSIST_DEPTH.with(|d| d.get());
    if depth >= MAX_ASSIST_DEPTH {
        return None;
    }
    // ORDER: Relaxed — monotonic diagnostic (see `assist_counters`).
    STEAL_ATTEMPTS.fetch_add(1, Ordering::Relaxed);
    // The exhaustion probe must not run under the registry lock: the
    // atomic load inside `is_exhausted` is a schedule point under the
    // model checker, and a thread descheduled there while holding the
    // OS lock wedges whichever peer needs it next (in production the
    // narrower critical section is simply cheaper). So take the lock
    // only long enough to clone one candidate, probe it unlocked, and
    // move on. The scan is advisory anyway — `claim` re-checks.
    let task = {
        let mut found = None;
        let mut idx = 0;
        loop {
            let candidate = reg.tasks.lock().unwrap().get(idx).cloned();
            match candidate {
                None => break,
                Some(t) if !t.is_exhausted() => {
                    found = Some(t);
                    break;
                }
                Some(_) => idx += 1,
            }
        }
        found
    }?;
    let claimed = task.claim()?;
    ASSIST_DEPTH.with(|d| d.set(depth + 1));
    struct DepthGuard(u32);
    impl Drop for DepthGuard {
        fn drop(&mut self) {
            ASSIST_DEPTH.with(|d| d.set(self.0));
        }
    }
    let _guard = DepthGuard(depth);
    task.run_claimed(claimed);
    // ORDER: Relaxed ×2 — monotonic diagnostics (see `assist_counters`).
    ITEMS_ASSISTED.fetch_add(1, Ordering::Relaxed);
    LAST_JOINED.with(|c| {
        if c.get() != task.id {
            c.set(task.id);
            TASKS_JOINED.fetch_add(1, Ordering::Relaxed);
        }
    });
    Some(task.id)
}

struct ItemsPayload<'a, F> {
    f: &'a F,
}

/// Dispatches one claimed index to the payload closure.
///
/// # Safety
///
/// `data` must point at a live `ItemsPayload<'_, F>`; the owner keeps
/// it alive until the done latch (see `TaskCore::run_claimed`).
unsafe fn run_items<F>(data: *const (), index: usize, _size: usize)
where
    F: Fn(usize) + Sync,
{
    // SAFETY: the owner keeps the payload alive until the done latch
    // (see `TaskCore::run_claimed`).
    let p = unsafe { &*(data as *const ItemsPayload<'_, F>) };
    (p.f)(index);
}

/// Runs `size` independent work items through the work-assisting loop:
/// the caller claims and runs items itself (it is presumably already a
/// team rank with the inputs in cache), while any rank blocked in an
/// assist point may join the remaining items. Returns when **all**
/// items have finished; panics from any item are re-raised here.
///
/// Single-item calls execute inline with no task entry at all — the
/// zero-overhead sequential path.
pub fn run_assistable<F>(size: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    match size {
        0 => return,
        1 => {
            f(0);
            return;
        }
        _ => {}
    }
    let payload = ItemsPayload { f: &f };
    let core = TaskCore::new(
        &payload as *const ItemsPayload<'_, F> as *const (),
        run_items::<F>,
        size,
        false,
    );
    let reg = register(&core);
    core.participate();
    core.wait_done();
    drop(reg);
    core.rethrow_panic();
}

#[cfg(all(test, not(basker_model)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_assistable_executes_every_item_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_assistable(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn run_assistable_single_item_runs_inline_without_task_entry() {
        let before = assist_counters();
        let caller = std::thread::current().id();
        run_assistable(1, |i| {
            assert_eq!(i, 0);
            assert_eq!(std::thread::current().id(), caller);
        });
        // No registration happened, so no counters can have moved on
        // this thread's behalf (other tests may run concurrently, so
        // only assert the cheap invariant available: the closure ran).
        let _ = before;
    }

    #[test]
    fn try_assist_joins_a_registered_task() {
        // Register a task, have another thread assist it, and verify
        // both the item execution and the counter movement.
        fn core_of<F: Fn(usize) + Sync>(
            payload: &ItemsPayload<'_, F>,
            size: usize,
        ) -> Arc<TaskCore> {
            TaskCore::new(
                payload as *const ItemsPayload<'_, F> as *const (),
                run_items::<F>,
                size,
                false,
            )
        }
        let ran: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        let f = |i: usize| {
            ran[i].fetch_add(1, Ordering::SeqCst);
        };
        let payload = ItemsPayload { f: &f };
        let core = core_of(&payload, ran.len());
        let reg = register(&core);
        std::thread::scope(|s| {
            s.spawn(|| {
                // The helper thread assists until the task is dry.
                while try_assist().is_some() {}
            });
            core.participate();
        });
        core.wait_done();
        drop(reg);
        core.rethrow_panic();
        for (i, h) in ran.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn assist_panic_surfaces_at_the_owner() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_assistable(4, |i| {
                if i == 2 {
                    panic!("item exploded");
                }
            })
        }));
        assert!(r.is_err(), "owner must re-raise an item panic");
    }

    #[test]
    fn deregistered_task_is_not_stealable() {
        // After the owner completes and deregisters, try_assist must
        // not find the task (its Arc may outlive the registration, but
        // its claims are exhausted and it is out of the registry).
        run_assistable(4, |_| {});
        // Nothing registered by this test remains; a try_assist here
        // may still serve *other* tests' tasks, so just assert it does
        // not panic or hang.
        let _ = try_assist();
    }

    #[test]
    fn counters_are_monotonic() {
        let a = assist_counters();
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let h = &hits;
            s.spawn(move || {
                // Assist whatever appears.
                for _ in 0..1000 {
                    if try_assist().is_none() {
                        std::thread::yield_now();
                    }
                }
                let _ = h;
            });
            for _ in 0..20 {
                run_assistable(16, |_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                    std::thread::yield_now();
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 20 * 16);
        let b = assist_counters();
        assert!(b.steal_attempts >= a.steal_attempts);
        assert!(b.items_assisted >= a.items_assisted);
        assert!(b.tasks_joined >= a.tasks_joined);
        assert!(b.steal_attempts >= b.items_assisted);
    }
}

/// Exhaustive interleaving checks for the claim cursor and the done
/// latch, runnable only under the model checker:
///
/// ```text
/// RUSTFLAGS="--cfg basker_model" cargo test -p basker_runtime --lib model_checks
/// ```
///
/// Under `--cfg basker_model` the cursor (`next`), the completion
/// counter, and the done latch swap onto the model's primitives, so
/// these tests explore every interleaving of claim / complete / latch /
/// wait between the owner and an assisting thread — including the
/// lost-wakeup class on the latch condvar, which the model reports as
/// a deadlock.
#[cfg(all(test, basker_model))]
mod model_checks {
    use super::*;
    use basker_model as model;
    use model::Outcome;
    use std::sync::atomic::AtomicU32;

    /// Owner + one assisting thread drain a 2-item task: in every
    /// interleaving each item runs exactly once, the owner's
    /// `wait_done` returns only after all items finished, and no
    /// latch wakeup is lost (a lost one would surface as a model
    /// deadlock with the owner parked on the latch condvar).
    ///
    /// The helper issues two bounded `try_assist` probes rather than
    /// looping until dry: the probes can steal zero, one, or both
    /// items depending on the schedule, which covers the same
    /// owner/assister claim races at a fraction of the schedule tree
    /// (an unbounded helper loop pushes the bounded-DFS budget past
    /// CI time).
    #[test]
    fn claim_cursor_hands_out_each_item_exactly_once() {
        let outcome = model::check(model::Config::default(), || {
            // Hit counters are std atomics: they are the *oracle*, not
            // the protocol under test, so they add no schedule points.
            let hits: Vec<AtomicU32> = (0..2).map(|_| AtomicU32::new(0)).collect();
            fn core_of<F: Fn(usize) + Sync>(
                payload: &ItemsPayload<'_, F>,
                size: usize,
            ) -> Arc<TaskCore> {
                TaskCore::new(
                    payload as *const ItemsPayload<'_, F> as *const (),
                    run_items::<F>,
                    size,
                    false,
                )
            }
            let f = |i: usize| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            };
            let payload = ItemsPayload { f: &f };
            let core = core_of(&payload, hits.len());
            let reg = register(&core);
            let helper = model::thread::spawn(|| {
                let _ = try_assist();
                let _ = try_assist();
            });
            core.participate();
            core.wait_done();
            drop(reg);
            core.rethrow_panic();
            helper.join().unwrap();
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "item {i} must run exactly once"
                );
            }
        });
        match outcome {
            Outcome::Pass { executions } => {
                assert!(executions > 1, "explorer must branch, got 1 schedule")
            }
            other => panic!("expected exhaustive pass, got {other:?}"),
        }
    }
}
