//! Persistent worker-team runtime (the Kokkos-style "hot" thread pool of
//! the paper's execution model).
//!
//! Basker's parallel numeric phase is a *static team* algorithm: `p`
//! threads cooperate on one factorization through point-to-point
//! synchronization, and the paper's speedups assume those threads already
//! exist, stay pinned to their cores, and cost nothing to re-enter. A
//! pool that spawns fresh OS threads per parallel region (what the
//! original `rayon` shim did) pays a `clone(2)` + page-fault storm on
//! every `factor`/`refactor` call — fatal for the transient-simulation
//! workloads that call `refactor` thousands of times per second.
//!
//! [`WorkerTeam`] provides:
//!
//! * `p − 1` long-lived OS threads created **once**, parked on their
//!   own mailbox condvars between jobs (zero CPU when idle); the
//!   submitting thread itself serves as rank 0, exactly as `rayon`'s
//!   `install` reuses the caller — it is the thread that just built the
//!   job's inputs and still has them in cache;
//! * a job **mailbox per worker**: [`WorkerTeam::broadcast`] posts one
//!   job to every mailbox, runs rank 0 inline, and blocks until all
//!   workers report done — a scoped join, so the job closure may borrow
//!   from the caller's stack;
//! * optional **core pinning** ([`TeamConfig::pin`]) via a direct
//!   `sched_setaffinity` syscall (no libc dependency; a no-op on
//!   non-Linux/x86-64 targets);
//! * a process-wide [`shared_team`] registry so every caller asking for
//!   the same width reuses one warm team instead of spawning its own;
//! * an [`os_threads_spawned`] counter that regression tests use to
//!   assert the "zero new threads after warm-up" property.
//!
//! Every concurrently-live rank of a broadcast genuinely runs on its own
//! OS thread (except the width-1 fast path, which runs inline on the
//! caller): Basker's slot hand-off requires all team members to make
//! progress at once, so no sequential fallback is possible.
//!
//! Since the work-assisting refactor, both entry points execute through
//! the **single task loop** of the `task` module: a broadcast is an
//! SPMD `TaskCore` whose participants claim their rank from the
//! shared work index, and a worklist is a claim-loop task *registered
//! for assistance*, so a rank blocked elsewhere (e.g. on a
//! not-yet-published pipeline column) can [`try_assist`] and run queued
//! jobs instead of spinning.

#![warn(missing_docs)]

mod task;

pub use task::{assist_counters, run_assistable, try_assist, AssistCounters};

use std::cell::{Cell, UnsafeCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use task::TaskCore;

/// Configuration of a [`WorkerTeam`].
#[derive(Debug, Clone, Copy)]
pub struct TeamConfig {
    /// Number of worker threads (ranks). Must be at least 1.
    pub width: usize,
    /// Pin worker `r` to core `r mod available_parallelism`. Best-effort:
    /// silently skipped on targets without an affinity syscall binding.
    pub pin: bool,
}

impl TeamConfig {
    /// A team of `width` unpinned workers.
    pub fn new(width: usize) -> TeamConfig {
        TeamConfig { width, pin: false }
    }
}

/// Per-rank context handed to [`WorkerTeam::broadcast`] closures.
#[derive(Debug, Clone, Copy)]
pub struct TeamContext {
    rank: usize,
    width: usize,
}

impl TeamContext {
    /// This worker's rank in `0..width`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Team size of the broadcast.
    pub fn width(&self) -> usize {
        self.width
    }
}

/// Total OS threads ever spawned by this runtime (process-wide).
static SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Monotonic team-id source (for re-entrance detection).
static NEXT_TEAM_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Team id this thread is a worker of; 0 = not a runtime worker.
    static WORKER_OF: Cell<u64> = const { Cell::new(0) };
}

/// Number of OS threads the runtime has spawned since process start.
///
/// A warm system stops growing this: after the first
/// factorization at a given width, repeated `factor`/`refactor` calls
/// must leave it unchanged (the thread-reuse regression test asserts
/// exactly that).
pub fn os_threads_spawned() -> usize {
    // ORDER: Relaxed — SPAWNED is a monotonic diagnostic counter; the
    // thread-reuse test reads it only after `factor` returns, and the
    // team teardown's join supplies the happens-before edge. The model
    // checker's task suite covers the claim/latch protocol this count
    // rides on; nothing orders *through* it.
    SPAWNED.load(Ordering::Relaxed)
}

struct MailSlot {
    /// The next task this worker should participate in (SPMD broadcasts
    /// post the same `TaskCore` to every mailbox). The submitter keeps
    /// the task's borrowed payload alive until the task's done latch,
    /// which is what makes borrowing jobs (scoped join) sound.
    task: Option<Arc<TaskCore>>,
    shutdown: bool,
}

struct Mailbox {
    slot: Mutex<MailSlot>,
    cv: Condvar,
}

impl Mailbox {
    fn new() -> Mailbox {
        Mailbox {
            slot: Mutex::new(MailSlot {
                task: None,
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }
}

struct Shared {
    id: u64,
    width: usize,
    /// Pin ranks to cores (workers at spawn; rank 0 per job).
    pin: bool,
    mailboxes: Vec<Mailbox>,
}

/// A cell written by exactly one rank and read by the submitter only
/// after the done latch — no concurrent access despite the `Sync` impl.
struct ResultCell<R>(UnsafeCell<Option<R>>);

// SAFETY: each cell is written by exactly one rank (the task claim
// hands out each index once) and read by the submitter only after the
// done latch, so no two threads ever access a cell concurrently.
unsafe impl<R: Send> Sync for ResultCell<R> {}

/// Payload of an SPMD broadcast task: item index = rank.
struct BroadcastPayload<'a, OP, R> {
    op: &'a OP,
    results: &'a [ResultCell<R>],
}

/// Type-erased trampoline running one SPMD rank.
///
/// # Safety
///
/// `data` must point at a live `BroadcastPayload<'_, OP, R>` and
/// `rank` must be an index the task's claim cursor handed out exactly
/// once (it addresses that rank's private `ResultCell`).
unsafe fn run_rank<OP, R>(data: *const (), rank: usize, width: usize)
where
    OP: Fn(TeamContext) -> R + Sync,
    R: Send,
{
    // SAFETY: the submitter keeps the payload alive until the done latch
    // releases it, and `rank` indexes a cell no other thread touches
    // (the task's claim made this thread the unique executor of `rank`).
    // Panics are caught by the task loop and re-raised at the submitter.
    let p = unsafe { &*(data as *const BroadcastPayload<'_, OP, R>) };
    let v = (p.op)(TeamContext { rank, width });
    unsafe { *p.results[rank].0.get() = Some(v) };
}

/// Payload of a worklist task: item index = job index.
struct WorklistPayload<'a, OP> {
    op: &'a OP,
}

/// Type-erased trampoline running one worklist job.
///
/// # Safety
///
/// `data` must point at a live `WorklistPayload<'_, OP>` (the
/// submitter blocks on the done latch before releasing it).
unsafe fn run_worklist_item<OP>(data: *const (), index: usize, _size: usize)
where
    OP: Fn(usize) + Sync,
{
    // SAFETY: the submitter keeps the payload alive until the done
    // latch (run_worklist blocks on `wait_done` before returning).
    let p = unsafe { &*(data as *const WorklistPayload<'_, OP>) };
    (p.op)(index);
}

/// A persistent team of `width` ranks: the submitting thread serves as
/// rank 0 (as `rayon`'s `install` does — it is usually cache-warm from
/// preparing the job's inputs) and `width − 1` parked worker threads
/// serve ranks `1..width`.
///
/// ```
/// use basker_runtime::{TeamConfig, WorkerTeam};
///
/// let team = WorkerTeam::new(TeamConfig::new(2));
/// let doubled = team.broadcast(|ctx| ctx.rank() * 2);
/// assert_eq!(doubled, vec![0, 2]);
/// // The same threads serve every subsequent job.
/// let again = team.broadcast(|ctx| ctx.rank());
/// assert_eq!(again, vec![0, 1]);
/// ```
pub struct WorkerTeam {
    shared: Arc<Shared>,
    /// Serializes broadcasts so a shared team runs one job at a time.
    submit: Mutex<()>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerTeam {
    /// Spawns the team's `width − 1` worker threads (rank 0 is always
    /// the submitting thread, so width-1 teams spawn none).
    pub fn new(config: TeamConfig) -> WorkerTeam {
        assert!(config.width >= 1, "team width must be at least 1");
        let shared = Arc::new(Shared {
            // ORDER: Relaxed — id generation only needs uniqueness.
            id: NEXT_TEAM_ID.fetch_add(1, Ordering::Relaxed),
            width: config.width,
            pin: config.pin,
            mailboxes: (1..config.width).map(|_| Mailbox::new()).collect(),
        });
        let mut handles = Vec::new();
        let ncores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for rank in 1..config.width {
            let sh = shared.clone();
            let pin = config.pin;
            // ORDER: Relaxed — monotonic counter (see
            // `os_threads_spawned`); the spawn below is the real
            // synchronization point for the worker itself.
            SPAWNED.fetch_add(1, Ordering::Relaxed);
            let h = std::thread::Builder::new()
                .name(format!("basker-worker-{rank}"))
                .spawn(move || {
                    if pin {
                        let _ = pin_current_thread_to(rank % ncores);
                    }
                    WORKER_OF.with(|c| c.set(sh.id));
                    worker_loop(&sh, rank);
                })
                .expect("failed to spawn worker thread");
            handles.push(h);
        }
        WorkerTeam {
            shared,
            submit: Mutex::new(()),
            handles: Mutex::new(handles),
        }
    }

    /// The team's width (number of ranks).
    pub fn width(&self) -> usize {
        self.shared.width
    }

    /// True when the calling thread is one of this team's workers.
    pub fn on_worker_thread(&self) -> bool {
        WORKER_OF.with(|c| c.get()) == self.shared.id
    }

    /// Runs `op` once on every rank concurrently and returns the
    /// per-rank results in rank order (a scoped join: `op` may borrow
    /// from the caller's stack). Rank 0 runs **on the calling thread**;
    /// ranks `1..width` on the parked workers.
    ///
    /// Internally this is an SPMD task on the work-assisting substrate:
    /// the caller and the woken workers each **claim one index** of the
    /// task's shared work cursor, and the claimed index *is* the rank
    /// (the caller claims first, so rank 0 stays on the submitting
    /// thread). Every rank is live at once on its own OS thread, so
    /// closures may synchronize point-to-point (slots, barriers) across
    /// ranks. If any rank panics, the panic is re-raised here after the
    /// whole team has drained; the workers survive for the next job.
    ///
    /// Called from a thread already acting as one of this team's ranks
    /// (a nested SPMD region inside a job), the persistent ranks are
    /// busy, so the broadcast falls back to transient scoped threads —
    /// still one live thread per rank, just not hot ones.
    pub fn broadcast<OP, R>(&self, op: OP) -> Vec<R>
    where
        OP: Fn(TeamContext) -> R + Sync,
        R: Send,
    {
        let n = self.shared.width;
        if n == 1 {
            // Inline fast path: no task entry, no parked thread to wake.
            return vec![op(TeamContext { rank: 0, width: 1 })];
        }
        if self.on_worker_thread() {
            return nested_scoped_broadcast(n, &op);
        }
        let results: Vec<ResultCell<R>> =
            (0..n).map(|_| ResultCell(UnsafeCell::new(None))).collect();
        let payload = BroadcastPayload {
            op: &op,
            results: &results,
        };
        let core = TaskCore::new(
            &payload as *const BroadcastPayload<'_, OP, R> as *const (),
            run_rank::<OP, R>,
            n,
            true,
        );

        let guard = self.submit.lock().unwrap();
        // Claim rank 0 for the caller *before* the workers can claim.
        let rank0 = core.claim().expect("fresh SPMD task has rank 0 free");
        debug_assert_eq!(rank0, 0);
        for mb in &self.shared.mailboxes {
            let mut slot = mb.slot.lock().unwrap();
            debug_assert!(slot.task.is_none(), "mailbox not drained");
            slot.task = Some(core.clone());
            mb.cv.notify_one();
        }
        // Rank 0 on the caller, marked as a team rank for the duration
        // so a nested broadcast from inside the job detours to scoped
        // threads instead of deadlocking, and pinned to core 0 (with
        // the previous affinity restored afterwards) when the team is
        // pinned — the root-separator elimination, the factorization's
        // serial bottleneck, runs on rank 0.
        {
            struct Unmark(u64);
            impl Drop for Unmark {
                fn drop(&mut self) {
                    WORKER_OF.with(|c| c.set(self.0));
                }
            }
            let _unmark = Unmark(WORKER_OF.with(|c| c.replace(self.shared.id)));
            let _affinity = self.shared.pin.then(AffinityGuard::pin_to_core0);
            core.run_claimed(rank0);
        }
        core.wait_done();
        drop(guard);

        core.rethrow_panic();
        results
            .into_iter()
            .map(|c| c.0.into_inner().expect("worker rank produced no result"))
            .collect()
    }
}

impl WorkerTeam {
    /// Runs `njobs` **independent** jobs on the team, each exactly once:
    /// the work-queue entry point next to [`broadcast`](Self::broadcast)
    /// for callers that have a bag of unrelated tasks (e.g. a serving
    /// layer multiplexing factorizations from many sessions) rather than
    /// one SPMD region.
    ///
    /// Every rank — the caller as rank 0 plus the parked workers — pops
    /// job indices from a shared atomic cursor and runs `op(index)` until
    /// the queue drains, so up to `width` jobs execute concurrently with
    /// no per-job thread creation. The call blocks until all jobs have
    /// run (a scoped join: `op` may borrow from the caller's stack).
    ///
    /// The worklist is a claim-loop task **registered for assistance**:
    /// while it runs, any rank blocked at an assist point elsewhere in
    /// the process (e.g. a pipeline rank waiting on a not-yet-published
    /// column) may [`try_assist`] and run queued jobs — factorization
    /// columns and cross-stream service jobs genuinely share one pool.
    ///
    /// Unlike `broadcast`, jobs must not rely on cross-job concurrency:
    /// when the queue is a single job or the team has width 1, the
    /// whole list executes inline on the calling thread with no task
    /// entry (the zero-overhead sequential path). When the caller **is
    /// already one of this team's ranks** (a job submitting more jobs),
    /// the caller drains the registered task itself — no deadlock on
    /// the busy ranks, no transient threads, which is what keeps a warm
    /// serving layer at zero OS-thread creation even under re-entrant
    /// jobs — while other ranks remain free to assist.
    pub fn run_worklist<OP>(&self, njobs: usize, op: OP)
    where
        OP: Fn(usize) + Sync,
    {
        if njobs == 0 {
            return;
        }
        if self.shared.width == 1 || njobs == 1 {
            // Zero-overhead sequential path: sound because worklist
            // jobs are independent by contract (no cross-job
            // synchronization).
            for i in 0..njobs {
                op(i);
            }
            return;
        }
        let payload = WorklistPayload { op: &op };
        let core = TaskCore::new(
            &payload as *const WorklistPayload<'_, OP> as *const (),
            run_worklist_item::<OP>,
            njobs,
            false,
        );
        let registration = task::register(&core);
        if self.on_worker_thread() {
            // Re-entrant: this rank drains the task inline; idle ranks
            // elsewhere may still pick jobs up through the registry.
            core.participate();
        } else {
            self.broadcast(|_ctx| core.participate());
        }
        core.wait_done();
        drop(registration);
        core.rethrow_panic();
    }
}

/// Fallback for a broadcast issued from inside one of the team's own
/// jobs: the persistent ranks are occupied, so run the nested region on
/// transient scoped threads (rank 0 inline on the caller). Counted in
/// [`os_threads_spawned`] — warm-path code never takes this branch, and
/// queue-style work should use [`WorkerTeam::run_worklist`], whose
/// re-entrant fallback executes inline without spawning at all.
fn nested_scoped_broadcast<OP, R>(n: usize, op: &OP) -> Vec<R>
where
    OP: Fn(TeamContext) -> R + Sync,
    R: Send,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..n)
            .map(|rank| {
                // ORDER: Relaxed — monotonic counter (see
                // `os_threads_spawned`); the scope join orders it for
                // readers.
                SPAWNED.fetch_add(1, Ordering::Relaxed);
                scope.spawn(move || op(TeamContext { rank, width: n }))
            })
            .collect();
        let first = op(TeamContext { rank: 0, width: n });
        std::iter::once(first)
            .chain(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("nested broadcast rank panicked")),
            )
            .collect()
    })
}

/// Pins the current thread to core 0 for a scope, restoring the
/// previous affinity mask on drop (no-op off Linux/x86-64).
struct AffinityGuard {
    previous: Option<[u64; 16]>,
}

impl AffinityGuard {
    fn pin_to_core0() -> AffinityGuard {
        let previous = current_thread_affinity();
        if previous.is_some() {
            let _ = pin_current_thread_to(0);
        }
        AffinityGuard { previous }
    }
}

impl Drop for AffinityGuard {
    fn drop(&mut self) {
        if let Some(mask) = self.previous {
            let _ = set_current_thread_affinity(&mask);
        }
    }
}

impl Drop for WorkerTeam {
    fn drop(&mut self) {
        for mb in &self.shared.mailboxes {
            let mut slot = mb.slot.lock().unwrap();
            slot.shutdown = true;
            mb.cv.notify_one();
        }
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, rank: usize) {
    let mb = &shared.mailboxes[rank - 1];
    loop {
        let core = {
            let mut slot = mb.slot.lock().unwrap();
            loop {
                if let Some(core) = slot.task.take() {
                    break core;
                }
                if slot.shutdown {
                    return;
                }
                slot = mb.cv.wait(slot).unwrap();
            }
        };
        // The single work-assisting task loop: an SPMD task hands this
        // worker exactly one claimed index (its rank for this job);
        // any other task is drained claim-by-claim. Completion is
        // reported through the task's own done latch.
        if core.is_spmd() {
            core.run_one();
        } else {
            core.participate();
        }
    }
}

/// Returns a process-wide shared team of the given width, creating (and
/// caching) it on first use. All callers asking for the same
/// `(width, pin)` get the *same* hot threads — this is what makes
/// repeated `analyze` calls spawn zero new OS threads.
pub fn shared_team(width: usize, pin: bool) -> Arc<WorkerTeam> {
    static REGISTRY: OnceLock<Mutex<HashMap<(usize, bool), Arc<WorkerTeam>>>> = OnceLock::new();
    let reg = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut g = reg.lock().unwrap();
    g.entry((width.max(1), pin))
        .or_insert_with(|| {
            Arc::new(WorkerTeam::new(TeamConfig {
                width: width.max(1),
                pin,
            }))
        })
        .clone()
}

/// Pins the calling thread to one CPU core. Returns `true` on success.
///
/// Implemented as a raw `sched_setaffinity(0, ..)` syscall on
/// Linux/x86-64 (the workspace carries no libc binding); on other
/// targets this is a no-op returning `false`.
pub fn pin_current_thread_to(core: usize) -> bool {
    let mut mask = [0u64; 16]; // cpu_set_t is 1024 bits on Linux
    if core >= mask.len() * 64 {
        return false;
    }
    mask[core / 64] |= 1u64 << (core % 64);
    set_current_thread_affinity(&mask)
}

/// Applies an affinity mask to the calling thread (raw
/// `sched_setaffinity`; `false` off Linux/x86-64 or on failure).
fn set_current_thread_affinity(mask: &[u64; 16]) -> bool {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        let ret: isize;
        // SAFETY: sched_setaffinity reads `mask.len() * 8` bytes from the
        // pointer and touches no other memory; pid 0 = calling thread.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 203isize => ret, // SYS_sched_setaffinity
                in("rdi") 0usize,
                in("rsi") std::mem::size_of_val(mask),
                in("rdx") mask.as_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret == 0
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    {
        let _ = mask;
        false
    }
}

/// Reads the calling thread's affinity mask (raw `sched_getaffinity`;
/// `None` off Linux/x86-64 or on failure).
fn current_thread_affinity() -> Option<[u64; 16]> {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        let mut mask = [0u64; 16];
        let ret: isize;
        // SAFETY: sched_getaffinity writes at most `mask.len() * 8`
        // bytes to the pointer; pid 0 = calling thread.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 204isize => ret, // SYS_sched_getaffinity
                in("rdi") 0usize,
                in("rsi") std::mem::size_of_val(&mask),
                in("rdx") mask.as_mut_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        // On success the syscall returns the number of bytes written.
        (ret > 0).then_some(mask)
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn broadcast_runs_every_rank_concurrently() {
        let team = WorkerTeam::new(TeamConfig::new(4));
        // Hand-rolled barrier: passes only if all 4 ranks are live at once.
        let arrived = AtomicUsize::new(0);
        let ranks = team.broadcast(|ctx| {
            arrived.fetch_add(1, Ordering::SeqCst);
            while arrived.load(Ordering::SeqCst) < 4 {
                std::thread::yield_now();
            }
            ctx.rank()
        });
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn threads_are_reused_across_jobs() {
        let team = WorkerTeam::new(TeamConfig::new(3));
        let sorted =
            |v: Vec<std::thread::ThreadId>| v.into_iter().collect::<std::collections::HashSet<_>>();
        let ids1 = sorted(team.broadcast(|_| std::thread::current().id()));
        let caller = std::thread::current().id();
        let before = os_threads_spawned();
        for _ in 0..50 {
            let ids: Vec<std::thread::ThreadId> = team.broadcast(|_| std::thread::current().id());
            // Ranks are claimed, not bound: which worker serves rank 2
            // may vary between jobs, but the *set* of hot threads must
            // not, and rank 0 always stays on the submitting thread
            // (it claims before the workers are woken).
            assert_eq!(ids[0], caller, "rank 0 must run on the caller");
            assert_eq!(sorted(ids), ids1, "jobs must reuse the same threads");
        }
        assert_eq!(
            os_threads_spawned(),
            before,
            "no new OS threads after warm-up"
        );
    }

    #[test]
    fn width_one_runs_inline_without_threads() {
        let before = os_threads_spawned();
        let team = WorkerTeam::new(TeamConfig::new(1));
        let caller = std::thread::current().id();
        let ids = team.broadcast(|ctx| {
            assert_eq!(ctx.width(), 1);
            std::thread::current().id()
        });
        assert_eq!(ids, vec![caller]);
        assert_eq!(os_threads_spawned(), before);
    }

    #[test]
    fn scoped_borrow_from_caller_stack() {
        let team = WorkerTeam::new(TeamConfig::new(2));
        let data = [10usize, 20];
        let out = team.broadcast(|ctx| data[ctx.rank()] + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn worker_panic_propagates_and_team_survives() {
        let team = WorkerTeam::new(TeamConfig::new(2));
        let caught = catch_unwind(AssertUnwindSafe(|| {
            team.broadcast(|ctx| {
                if ctx.rank() == 1 {
                    panic!("boom");
                }
                ctx.rank()
            })
        }));
        assert!(caught.is_err());
        // The team still works after a job panicked.
        assert_eq!(team.broadcast(|ctx| ctx.rank()), vec![0, 1]);
    }

    #[test]
    fn nested_broadcast_on_same_team_detours_to_scoped_threads() {
        // A job that broadcasts on its own team cannot use the (busy)
        // persistent ranks; it must still complete — on transient
        // scoped threads — rather than panic or deadlock.
        let team = Arc::new(WorkerTeam::new(TeamConfig::new(2)));
        let t2 = team.clone();
        let sums = team.broadcast(move |ctx| {
            let inner = t2.broadcast(|ictx| ictx.rank() * 10);
            assert_eq!(inner, vec![0, 10]);
            ctx.rank()
        });
        assert_eq!(sums, vec![0, 1]);
    }

    #[test]
    fn shared_registry_returns_same_team() {
        let a = shared_team(2, false);
        let b = shared_team(2, false);
        assert!(Arc::ptr_eq(&a, &b));
        let c = shared_team(4, false);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.broadcast(|ctx| ctx.width()), vec![2, 2]);
    }

    #[test]
    fn pinning_smoke() {
        // Pinning to core 0 must succeed on Linux/x86-64 and be a clean
        // no-op elsewhere; either way the team stays functional.
        let team = WorkerTeam::new(TeamConfig {
            width: 2,
            pin: true,
        });
        assert_eq!(team.broadcast(|ctx| ctx.rank()), vec![0, 1]);
        if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            assert!(pin_current_thread_to(0));
        }
    }

    #[test]
    fn worklist_runs_every_job_exactly_once() {
        let team = WorkerTeam::new(TeamConfig::new(3));
        let hits: Vec<AtomicUsize> = (0..20).map(|_| AtomicUsize::new(0)).collect();
        team.run_worklist(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn worklist_uses_multiple_ranks_for_parallel_jobs() {
        // Two jobs that each wait for the other to start can only finish
        // when the worklist genuinely runs them concurrently.
        let team = WorkerTeam::new(TeamConfig::new(2));
        let arrived = AtomicUsize::new(0);
        team.run_worklist(2, |_| {
            arrived.fetch_add(1, Ordering::SeqCst);
            while arrived.load(Ordering::SeqCst) < 2 {
                std::thread::yield_now();
            }
        });
        assert_eq!(arrived.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn reentrant_worklist_executes_inline_without_spawning() {
        // A worklist job that submits another worklist to the same team
        // (the serving-layer re-entrance scenario) must complete without
        // deadlock and without creating any OS thread.
        let team = Arc::new(WorkerTeam::new(TeamConfig::new(2)));
        let before = os_threads_spawned();
        let inner_runs = AtomicUsize::new(0);
        let t2 = team.clone();
        team.run_worklist(2, |_| {
            assert!(t2.on_worker_thread(), "worklist jobs run as team ranks");
            t2.run_worklist(3, |_| {
                inner_runs.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(inner_runs.load(Ordering::SeqCst), 6);
        assert_eq!(
            os_threads_spawned(),
            before,
            "re-entrant worklists must take the inline guard, not spawn"
        );
    }

    #[test]
    fn worklist_on_width_one_team_runs_inline() {
        let before = os_threads_spawned();
        let team = WorkerTeam::new(TeamConfig::new(1));
        let caller = std::thread::current().id();
        let ran = AtomicUsize::new(0);
        team.run_worklist(5, |_| {
            assert_eq!(std::thread::current().id(), caller);
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 5);
        assert_eq!(os_threads_spawned(), before);
    }

    #[test]
    fn concurrent_broadcasts_from_many_threads_serialize() {
        let team = Arc::new(WorkerTeam::new(TeamConfig::new(2)));
        std::thread::scope(|s| {
            for i in 0..4 {
                let team = team.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let sums = team.broadcast(|ctx| ctx.rank() + i);
                        assert_eq!(sums, vec![i, i + 1]);
                    }
                });
            }
        });
    }
}
