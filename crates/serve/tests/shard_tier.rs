//! End-to-end serving-tier test: a supervised two-shard fleet behind
//! the pattern-hash router, with an induced shard crash mid-load.
//!
//! The acceptance contract under test: killing a shard loses **zero
//! accepted tickets** — every in-flight step on the dead shard resolves
//! to a clean `ShardUnavailable` error (never a hang), the supervisor
//! respawns the shard, and subsequent steps on the same patterns
//! succeed after the router transparently re-establishes the streams.

use basker_api::{Engine, ReusePolicy};
use basker_serve::client::{Client, ClientError};
use basker_serve::proto::{ErrCode, OpenRequest};
use basker_serve::shard::{ShardSet, ShardSpec};
use basker_serve::wire::{Addr, Listener};
use basker_serve::Router;
use basker_sparse::{CscMat, TripletMat};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A nonsingular tridiagonal pattern of dimension `n`; distinct `n`
/// gives distinct pattern hashes, spreading streams across shards.
fn tridiag(n: usize, scale: f64) -> CscMat {
    let mut t = TripletMat::new(n, n);
    for i in 0..n {
        t.push(i, i, (4.0 + i as f64 * 0.01) * scale);
        if i + 1 < n {
            t.push(i, i + 1, -scale);
            t.push(i + 1, i, -scale);
        }
    }
    t.to_csc()
}

fn open_request(n: usize) -> OpenRequest {
    OpenRequest {
        engine: Engine::Auto,
        policy: ReusePolicy::adaptive(),
        target_residual: 1e-10,
        max_refine_iterations: 6,
        matrix: tridiag(n, 1.0),
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("basker-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("socket dir");
    d
}

fn fleet(tag: &str, shards: usize) -> Arc<ShardSet> {
    let mut spec = ShardSpec::new(env!("CARGO_BIN_EXE_shardd"), shards, temp_dir(tag));
    spec.threads = 2;
    Arc::new(ShardSet::spawn(spec).expect("spawn fleet"))
}

/// Talk straight to one shard: open, step, stats, close — the wire
/// protocol round-trips against a real `shardd` process.
#[test]
fn direct_shard_roundtrip() {
    let set = fleet("direct", 1);
    let mut cl = Client::connect(&set.addr(0)).expect("connect shard");
    cl.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    assert_eq!(cl.ping().expect("ping"), 0, "fresh shard is epoch 0");

    let n = 32;
    let (stream, hash) = cl.open_stream(&open_request(n)).expect("open");
    assert_ne!(hash, 0);
    for s in 0..3 {
        let m = tridiag(n, 1.0 + 0.01 * s as f64);
        let rhs = vec![1.0; n];
        let reply = cl.step(stream, true, m.values(), &rhs).expect("step");
        assert_eq!(reply.x.len(), n);
        let q = reply.quality[0];
        assert!(q.converged, "step {s}: residual {:.2e}", q.residual);
    }
    let stats = cl.stats().expect("stats");
    assert_eq!(stats.shards.len(), 1);
    assert_eq!(stats.shards[0].steps, 3);
    assert_eq!(stats.shards[0].errors, 0);
    cl.close_stream(stream).expect("close");

    // Unknown streams and oversized value vectors answer clean
    // protocol errors, not hangs or disconnects.
    match cl.step(9999, false, &[1.0], &[1.0]) {
        Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert_eq!(cl.ping().expect("conn still usable"), 0);
    drop(cl);
    set.shutdown_all();
}

/// The headline test: crash a shard under concurrent load through the
/// router and account for every single request.
#[test]
fn induced_shard_crash_loses_no_tickets() {
    let set = fleet("crash", 2);
    let listener =
        Listener::bind(&Addr::Uds(temp_dir("crash").join("router.sock"))).expect("bind router");
    let router = Router::start(listener, set.clone()).expect("start router");
    let addr = router.addr();

    // Open streams over four distinct patterns; record who lives where.
    let dims = [24usize, 25, 26, 27];
    let mut probe = Client::connect(&addr).expect("probe conn");
    probe
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let placements: Vec<(usize, u64)> = dims
        .iter()
        .map(|&n| {
            let (_, hash) = probe.open_stream(&open_request(n)).expect("probe open");
            (n, hash)
        })
        .collect();
    let victim = (placements[0].1 % 2) as usize;
    assert!(
        placements.iter().any(|(_, h)| (h % 2) as usize != victim),
        "need at least one stream on the surviving shard"
    );

    // Concurrent load: one client thread per pattern, each with its own
    // connection and stream, stepping continuously.
    let requests = Arc::new(AtomicU64::new(0));
    let answered = Arc::new(AtomicU64::new(0));
    let clean_errors = Arc::new(AtomicU64::new(0));
    let rounds = 40;
    let workers: Vec<_> = dims
        .iter()
        .map(|&n| {
            let addr = addr.clone();
            let requests = requests.clone();
            let answered = answered.clone();
            let clean_errors = clean_errors.clone();
            thread::spawn(move || {
                let mut cl = Client::connect(&addr).expect("worker conn");
                cl.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                let (stream, hash) = cl.open_stream(&open_request(n)).expect("worker open");
                let my_shard = (hash % 2) as usize;
                let mut errors_here = 0u64;
                for s in 0..rounds {
                    let m = tridiag(n, 1.0 + 0.005 * s as f64);
                    let rhs = vec![1.0; n];
                    requests.fetch_add(1, Ordering::SeqCst);
                    match cl.step(stream, true, m.values(), &rhs) {
                        Ok(_) => {
                            answered.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ClientError::Remote(e)) if e.code == ErrCode::ShardUnavailable => {
                            answered.fetch_add(1, Ordering::SeqCst);
                            clean_errors.fetch_add(1, Ordering::SeqCst);
                            errors_here += 1;
                        }
                        Err(e) => panic!("stream on shard {my_shard}: dirty failure: {e}"),
                    }
                    thread::sleep(Duration::from_millis(5));
                }
                (stream, n, my_shard, errors_here, cl)
            })
        })
        .collect();

    // Hard-kill the victim shard once half the load is through, so
    // requests are genuinely in flight on it.
    let halfway = (dims.len() * rounds / 2) as u64;
    while answered.load(Ordering::SeqCst) < halfway {
        thread::sleep(Duration::from_millis(2));
    }
    set.kill(victim);

    let mut finished = Vec::new();
    for w in workers {
        finished.push(w.join().expect("worker thread"));
    }

    // Zero ticket loss: every request was answered, success or clean
    // error — nothing dropped, nothing hung.
    assert_eq!(
        requests.load(Ordering::SeqCst),
        answered.load(Ordering::SeqCst),
        "every accepted request must be answered"
    );
    // The crash was observed and repaired (the router's report_down or
    // the supervisor's health loop — whichever saw it first).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while set.respawns() == 0 && std::time::Instant::now() < deadline {
        thread::sleep(Duration::from_millis(20));
    }
    assert!(
        set.respawns() >= 1,
        "the killed shard must have been respawned"
    );
    // Streams on the surviving shard never errored.
    for (_, _, shard, errors_here, _) in &finished {
        if *shard != victim {
            assert_eq!(
                *errors_here, 0,
                "streams on the surviving shard must be unaffected"
            );
        }
    }

    // Subsequent steps on every stream — including those whose shard
    // died — succeed: the router re-opens them on the respawned
    // process from the retained open requests.
    for (stream, n, _, _, mut cl) in finished {
        let m = tridiag(n, 2.0);
        let rhs = vec![1.0; n];
        let mut ok = false;
        for _try in 0..10 {
            match cl.step(stream, true, m.values(), &rhs) {
                Ok(reply) => {
                    assert!(reply.quality[0].converged);
                    ok = true;
                    break;
                }
                Err(ClientError::Remote(e)) if e.code == ErrCode::ShardUnavailable => {
                    // Respawn window: retry.
                    thread::sleep(Duration::from_millis(100));
                }
                Err(e) => panic!("post-respawn step failed hard: {e}"),
            }
        }
        assert!(ok, "stream {stream} must step successfully after respawn");
    }

    // The tier's own accounting agrees.
    let stats = probe.stats().expect("stats");
    assert!(stats.router.respawns >= 1);
    assert_eq!(stats.shards.len(), 2);
    drop(probe);
    drop(router);
    set.shutdown_all();
}
