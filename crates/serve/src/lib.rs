//! The sharded serving tier: the in-process
//! [`SolverService`](basker_api::SolverService) seam, multiplied across
//! OS processes and put on the network.
//!
//! ```text
//!  clients ──TCP/UDS──▶ router ──UDS──▶ shardd #0 ─▶ SolverService ─▶ WorkerTeam
//!                         │  (pattern   shardd #1 ─▶ SolverService ─▶ WorkerTeam
//!                         │   hash)     shardd #2 ─▶ SolverService ─▶ WorkerTeam
//!                         └── ShardSet supervisor (health, respawn, epochs)
//! ```
//!
//! Layers, bottom up:
//!
//! * [`wire`] — transport ([`Addr`]/[`Listener`]/[`Conn`] over TCP or
//!   Unix sockets) and framing: `"BSK1" | kind u8 | req_id u64 |
//!   len u32 | payload`, all little-endian, 64 MiB frame cap, plus the
//!   bounds-checked payload codec.
//! * [`proto`] — the typed requests/responses riding the frames:
//!   open/step/close/stats/shutdown, matrix and quality serialization,
//!   error classification, and the FNV-1a [`pattern_hash`] streams are
//!   sharded by.
//! * [`server`] — one shard: a [`SolverService`](basker_api::SolverService)
//!   behind a listener, a reader thread that *submits* and a writer
//!   thread that *waits tickets*, preserving the submit/ticket
//!   pipelining over the network.
//! * [`shard`] — the [`ShardSet`] supervisor: spawns `shardd`
//!   processes, pings them up, reaps and respawns crashes, bumps the
//!   epoch each respawn.
//! * [`router`] — the pattern-hash [`Router`]: same-pattern streams
//!   co-locate on one shard; crashed shards answer in-flight requests
//!   with clean `ShardUnavailable` errors and streams re-open lazily
//!   on the respawned process from retained open requests.
//! * [`client`] — the blocking [`Client`] used by routers, harnesses,
//!   and tests.
//!
//! The `shardd` and `loadgen` binaries wrap these: `shardd --listen
//! uds:/path` hosts one shard; `loadgen` spawns a fleet plus router and
//! drives thousands of concurrent streams, reporting steps/s and
//! p50/p95/p99 step latency (and, with `--kill-one`, proving the
//! zero-ticket-loss failover contract by crashing a shard mid-load).

pub mod client;
pub mod proto;
pub mod router;
pub mod server;
pub mod shard;
pub mod wire;

pub use client::{Client, ClientError, StepReply};
pub use proto::{pattern_hash, ErrCode, OpenRequest, Request, Response, WireError, WireStats};
pub use router::Router;
pub use server::serve;
pub use shard::{sibling_shardd, ShardSet, ShardSpec};
pub use wire::{Addr, Conn, Listener};
