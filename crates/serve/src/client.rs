//! A blocking wire client for shards and routers.
//!
//! One [`Client`] owns one connection and issues requests
//! synchronously ([`request`](Client::request)) or pipelined
//! ([`send`](Client::send) N frames, then [`recv`](Client::recv) N
//! replies — the server answers in order). The router uses the
//! split form to keep a shard's scheduler batch full; the loadgen
//! harness opens many clients instead.

use crate::proto::{
    decode_response, encode_request, OpenRequest, Request, Response, WireError, WireStats,
};
use crate::wire::{read_frame, write_frame, Addr, Conn};
use basker_api::{SessionState, SolveQuality};
use std::io::{self, BufReader, BufWriter, Write};
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed (includes timeouts).
    Io(io::Error),
    /// The peer answered with an error response.
    Remote(WireError),
    /// The peer answered with something indecipherable or unexpected.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Remote(e) => write!(f, "remote error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A successful step as the client sees it.
#[derive(Debug, Clone)]
pub struct StepReply {
    /// What the remote session did (factor / refactor / re-pivot).
    pub state: SessionState,
    /// The packed solutions.
    pub x: Vec<f64>,
    /// Per-RHS quality for refined steps.
    pub quality: Vec<SolveQuality>,
}

/// One connection to a shard or router.
pub struct Client {
    r: BufReader<Conn>,
    w: BufWriter<Conn>,
    next_req: u64,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: &Addr) -> io::Result<Client> {
        let conn = Conn::connect(addr)?;
        let rd = conn.try_clone()?;
        Ok(Client {
            r: BufReader::new(rd),
            w: BufWriter::new(conn),
            next_req: 1,
        })
    }

    /// Bounds every blocking read; `None` blocks forever.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.r.get_ref().set_read_timeout(t)
    }

    /// Sends one request, returning its `req_id`. Does not wait.
    pub fn send(&mut self, req: &Request) -> io::Result<u64> {
        let id = self.next_req;
        self.next_req += 1;
        let (kind, payload) = encode_request(req);
        write_frame(&mut self.w, kind, id, &payload)?;
        self.w.flush()?;
        Ok(id)
    }

    /// Receives the next reply as `(req_id, response)`.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        let (kind, req_id, payload) = read_frame(&mut self.r)?;
        let resp = decode_response(kind, &payload).map_err(ClientError::Protocol)?;
        Ok((req_id, resp))
    }

    /// Sends a request and waits for its reply, checking the id echo.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let id = self.send(req)?;
        let (got, resp) = self.recv()?;
        if got != id {
            return Err(ClientError::Protocol(format!(
                "response id {got} for request {id} (pipelining misuse)"
            )));
        }
        Ok(resp)
    }

    /// Pings the peer, returning its epoch.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong { epoch } => Ok(epoch),
            Response::Err(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Opens a stream, returning `(stream_id, pattern_hash)`.
    pub fn open_stream(&mut self, open: &OpenRequest) -> Result<(u64, u64), ClientError> {
        match self.request(&Request::Open(open.clone()))? {
            Response::Opened {
                stream,
                pattern_hash,
            } => Ok((stream, pattern_hash)),
            Response::Err(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("Opened", &other)),
        }
    }

    /// Runs one step synchronously.
    pub fn step(
        &mut self,
        stream: u64,
        refined: bool,
        values: &[f64],
        rhs: &[f64],
    ) -> Result<StepReply, ClientError> {
        let resp = self.request(&Request::Step {
            stream,
            refined,
            values: values.to_vec(),
            rhs: rhs.to_vec(),
        })?;
        step_reply(resp)
    }

    /// Closes a stream.
    pub fn close_stream(&mut self, stream: u64) -> Result<(), ClientError> {
        match self.request(&Request::Close { stream })? {
            Response::Closed => Ok(()),
            Response::Err(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("Closed", &other)),
        }
    }

    /// Fetches serving stats.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Err(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Asks the peer to shut down and waits for the ack.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            Response::Err(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("ShutdownAck", &other)),
        }
    }
}

/// Interprets a response to a step request.
pub fn step_reply(resp: Response) -> Result<StepReply, ClientError> {
    match resp {
        Response::Step { state, x, quality } => Ok(StepReply { state, x, quality }),
        Response::Err(e) => Err(ClientError::Remote(e)),
        other => Err(unexpected("Step", &other)),
    }
}

fn unexpected(want: &str, got: &Response) -> ClientError {
    let name = match got {
        Response::Pong { .. } => "Pong",
        Response::Opened { .. } => "Opened",
        Response::Step { .. } => "Step",
        Response::Closed => "Closed",
        Response::Stats(_) => "Stats",
        Response::ShutdownAck => "ShutdownAck",
        Response::Err(_) => "Err",
    };
    ClientError::Protocol(format!("expected {want} response, got {name}"))
}
