//! `loadgen` — the serving-tier load harness: spawns a supervised
//! shard fleet plus the pattern-hash router, then drives many
//! concurrent Xyce-style streams through the wire protocol and reports
//! throughput (steps/s) and step-latency tails (p50/p95/p99).
//!
//! With `--kill-one` it hard-kills a shard mid-load and asserts the
//! failover contract end to end: **zero tickets lost** (every request
//! answered — in-flight steps on the dead shard resolve to clean
//! `ShardUnavailable` errors, never hangs), the supervisor respawns
//! the shard, and subsequent steps on the same patterns succeed after
//! the router re-establishes the streams.
//!
//! Usage: `loadgen [test|bench] [--shards N] [--clients C]
//! [--streams S] [--steps K] [--threads-per-shard T] [--kill-one]
//! [--json PATH]`. The checked-in `BENCH_shard.json` baseline is
//! produced by `loadgen bench --json` (no kill).

use basker_matgen::{CircuitParams, Scale, XyceSequence, XyceSequenceParams};
use basker_serve::client::{Client, ClientError};
use basker_serve::proto::{ErrCode, OpenRequest};
use basker_serve::shard::{sibling_shardd, ShardSet, ShardSpec};
use basker_serve::wire::{Addr, Listener};
use basker_serve::Router;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const RESIDUAL_LIMIT: f64 = 1e-7;

struct Args {
    scale: Scale,
    shards: usize,
    clients: usize,
    streams: usize,
    steps: usize,
    threads_per_shard: usize,
    kill_one: bool,
    json: Option<String>,
}

fn parse_args() -> Args {
    let usage = || -> ! {
        eprintln!(
            "usage: loadgen [test|bench] [--shards N] [--clients C] [--streams S] \
             [--steps K] [--threads-per-shard T] [--kill-one] [--json PATH]"
        );
        std::process::exit(2);
    };
    let mut scale = Scale::Bench;
    let mut shards = None;
    let mut clients = None;
    let mut streams = None;
    let mut steps = None;
    let mut threads_per_shard = 0;
    let mut kill_one = false;
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "test" => scale = Scale::Test,
            "bench" => scale = Scale::Bench,
            "--shards" => shards = it.next().and_then(|v| v.parse().ok()),
            "--clients" => clients = it.next().and_then(|v| v.parse().ok()),
            "--streams" => streams = it.next().and_then(|v| v.parse().ok()),
            "--steps" => steps = it.next().and_then(|v| v.parse().ok()),
            "--threads-per-shard" => {
                threads_per_shard = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--kill-one" => kill_one = true,
            "--json" => json = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let (dshards, dclients, dstreams, dsteps) = match scale {
        Scale::Test => (2, 4, 16, 4),
        Scale::Bench => (3, 16, 1024, 4),
    };
    Args {
        scale,
        shards: shards.unwrap_or(dshards),
        clients: clients.unwrap_or(dclients),
        streams: streams.unwrap_or(dstreams),
        steps: steps.unwrap_or(dsteps),
        threads_per_shard,
        kill_one,
        json,
    }
}

fn circuit_params(seed: u64, scale: Scale) -> CircuitParams {
    let (nsub, sub_size) = match scale {
        Scale::Test => (2, 16),
        Scale::Bench => (3, 24),
    };
    CircuitParams {
        nsub,
        sub_size,
        feedthrough: 0.7,
        seed,
        ..CircuitParams::default()
    }
}

/// Circuit seeds for the pattern groups, chosen so that **every shard
/// hosts at least one group** (the hash placement is computed
/// client-side with the same `pattern_hash` the router uses). Without
/// this, a small group count can leave a shard idle — and an induced
/// kill of shard 0 would prove nothing.
fn pattern_seeds(npatterns: usize, shards: usize, scale: Scale) -> Vec<u64> {
    use basker_serve::proto::pattern_hash;
    let mut seeds = Vec::with_capacity(npatterns);
    let mut covered = vec![false; shards];
    let mut cand = 1000u64;
    while seeds.len() < npatterns {
        let m = basker_matgen::circuit(&circuit_params(cand, scale));
        let shard = (pattern_hash(&m) % shards as u64) as usize;
        let need_coverage = covered.iter().any(|c| !c);
        if !need_coverage || !covered[shard] {
            covered[shard] = true;
            seeds.push(cand);
        }
        cand += 1;
        assert!(cand < 100_000, "could not cover every shard with patterns");
    }
    seeds
}

/// Stream `k`'s value sequence. Streams share a pattern within their
/// group (`k % npatterns` picks the circuit seed, which fixes the
/// structure) but follow independent value trajectories — the shape
/// the pattern-hash router co-locates on.
fn sequence(k: usize, seeds: &[u64], steps: usize, scale: Scale) -> XyceSequence {
    XyceSequence::new(&XyceSequenceParams {
        circuit: circuit_params(seeds[k % seeds.len()], scale),
        nsteps: steps + 2,
        switching_fraction: 0.02,
        seed: 5000 + k as u64,
    })
}

#[derive(Default)]
struct Shared {
    requests: AtomicU64,
    responses: AtomicU64,
    steps_done: AtomicU64,
    clean_errors: AtomicU64,
    hard_failures: AtomicU64,
}

struct ClientReport {
    latencies_us: Vec<u64>,
    worst_residual: f64,
    final_ok: usize,
}

#[allow(clippy::too_many_arguments)]
fn run_client(
    addr: &Addr,
    my_streams: Vec<usize>,
    seeds: &[u64],
    steps: usize,
    scale: Scale,
    kill_mode: bool,
    shared: &Shared,
) -> ClientReport {
    let mut cl = Client::connect(addr).expect("connect router");
    cl.set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let seqs: Vec<XyceSequence> = my_streams
        .iter()
        .map(|&k| sequence(k, seeds, steps, scale))
        .collect();

    // Open every stream.
    let mut ids = Vec::with_capacity(seqs.len());
    for seq in &seqs {
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let open = OpenRequest {
            engine: basker_api::Engine::Auto,
            policy: basker_api::ReusePolicy::adaptive(),
            target_residual: 1e-9,
            max_refine_iterations: 6,
            matrix: seq.pattern().clone(),
        };
        let (id, _hash) = cl.open_stream(&open).expect("open stream");
        shared.responses.fetch_add(1, Ordering::Relaxed);
        ids.push(id);
    }

    let mut latencies_us = Vec::with_capacity(seqs.len() * steps);
    let mut worst_residual = 0.0f64;
    for s in 0..steps {
        for (i, seq) in seqs.iter().enumerate() {
            let m = seq.matrix_at(s);
            let n = m.nrows();
            let rhs = vec![1.0; n];
            shared.requests.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            let r = cl.step(ids[i], true, m.values(), &rhs);
            latencies_us.push(t0.elapsed().as_micros() as u64);
            match r {
                Ok(reply) => {
                    shared.responses.fetch_add(1, Ordering::Relaxed);
                    if let Some(q) = reply.quality.first() {
                        worst_residual = worst_residual.max(q.residual);
                    }
                }
                Err(ClientError::Remote(we))
                    if kill_mode
                        && matches!(
                            we.code,
                            ErrCode::ShardUnavailable | ErrCode::ServiceShutdown
                        ) =>
                {
                    // The induced crash: a clean, classified error —
                    // the ticket was answered, not lost.
                    shared.responses.fetch_add(1, Ordering::Relaxed);
                    shared.clean_errors.fetch_add(1, Ordering::Relaxed);
                }
                Err(ClientError::Remote(we)) => {
                    shared.responses.fetch_add(1, Ordering::Relaxed);
                    shared.hard_failures.fetch_add(1, Ordering::Relaxed);
                    eprintln!("stream {i} step {s}: unexpected remote error: {we}");
                }
                Err(e) => {
                    shared.hard_failures.fetch_add(1, Ordering::Relaxed);
                    eprintln!("stream {i} step {s}: transport failure: {e}");
                }
            }
            shared.steps_done.fetch_add(1, Ordering::Relaxed);
        }
    }

    // Final round: after any induced crash and respawn, every stream
    // must step successfully again (retrying through the respawn
    // window) — the acceptance criterion for zero-loss failover.
    let mut final_ok = 0;
    for (i, seq) in seqs.iter().enumerate() {
        let m = seq.matrix_at(steps);
        let rhs = vec![1.0; m.nrows()];
        let mut tries = 0;
        loop {
            shared.requests.fetch_add(1, Ordering::Relaxed);
            match cl.step(ids[i], true, m.values(), &rhs) {
                Ok(reply) => {
                    shared.responses.fetch_add(1, Ordering::Relaxed);
                    if let Some(q) = reply.quality.first() {
                        worst_residual = worst_residual.max(q.residual);
                    }
                    final_ok += 1;
                    break;
                }
                Err(ClientError::Remote(we))
                    if kill_mode && we.code == ErrCode::ShardUnavailable && tries < 10 =>
                {
                    shared.responses.fetch_add(1, Ordering::Relaxed);
                    shared.clean_errors.fetch_add(1, Ordering::Relaxed);
                    tries += 1;
                    thread::sleep(Duration::from_millis(200));
                }
                Err(e) => {
                    shared.hard_failures.fetch_add(1, Ordering::Relaxed);
                    eprintln!("stream {i} final step failed: {e}");
                    break;
                }
            }
        }
    }
    ClientReport {
        latencies_us,
        worst_residual,
        final_ok,
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

fn main() {
    let args = parse_args();
    // A couple of co-located groups per shard, placed so no shard idles.
    let seeds = Arc::new(pattern_seeds(args.shards * 2, args.shards, args.scale));
    let shardd = sibling_shardd().expect("find shardd binary");
    let dir = std::env::temp_dir().join(format!("basker-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");

    let mut spec = ShardSpec::new(&shardd, args.shards, &dir);
    spec.threads = args.threads_per_shard;
    let set = Arc::new(ShardSet::spawn(spec).expect("spawn shard fleet"));
    let listener = Listener::bind(&Addr::Uds(dir.join("router.sock"))).expect("bind router");
    let router = Router::start(listener, set.clone()).expect("start router");
    let addr = router.addr();

    // Partition streams round-robin over client connections.
    let mut per_client: Vec<Vec<usize>> = vec![Vec::new(); args.clients];
    for k in 0..args.streams {
        per_client[k % args.clients].push(k);
    }
    let shared = Arc::new(Shared::default());
    let total_steps = (args.streams * args.steps) as u64;

    let t0 = Instant::now();
    let workers: Vec<_> = per_client
        .into_iter()
        .map(|mine| {
            let addr = addr.clone();
            let shared = shared.clone();
            let seeds = seeds.clone();
            let (steps, scale, kill) = (args.steps, args.scale, args.kill_one);
            thread::spawn(move || run_client(&addr, mine, &seeds, steps, scale, kill, &shared))
        })
        .collect();

    if args.kill_one {
        // Crash a shard once half the load is through, so requests are
        // genuinely in flight on it.
        while shared.steps_done.load(Ordering::Relaxed) < total_steps / 2 {
            thread::sleep(Duration::from_millis(5));
        }
        eprintln!("loadgen: killing shard 0 mid-load");
        set.kill(0);
    }

    let reports: Vec<ClientReport> = workers
        .into_iter()
        .map(|w| w.join().expect("client"))
        .collect();
    let wall_seconds = t0.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = reports
        .iter()
        .flat_map(|r| r.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let worst_residual = reports.iter().fold(0.0f64, |a, r| a.max(r.worst_residual));
    let final_ok: usize = reports.iter().map(|r| r.final_ok).sum();

    // Tier stats through the router, then wind the fleet down.
    let stats = {
        let mut cl = Client::connect(&addr).expect("stats conn");
        cl.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        cl.stats().expect("stats")
    };
    drop(router);
    // Explicit: detached router handler threads may still hold Arc
    // clones of the set, so Drop alone cannot be relied on to reap the
    // children before the process exits.
    set.shutdown_all();
    drop(set);
    let _ = std::fs::remove_dir_all(&dir);

    let requests = shared.requests.load(Ordering::Relaxed);
    let responses = shared.responses.load(Ordering::Relaxed);
    let tickets_lost = requests.saturating_sub(responses);
    let clean_errors = shared.clean_errors.load(Ordering::Relaxed);
    let hard_failures = shared.hard_failures.load(Ordering::Relaxed);
    let steps_per_second = total_steps as f64 / wall_seconds;
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    let residual_ok = worst_residual < RESIDUAL_LIMIT;

    println!("| metric | value |");
    println!("|---|---|");
    println!(
        "| shards x clients x streams | {} x {} x {} |",
        args.shards, args.clients, args.streams
    );
    println!("| steps per stream | {} |", args.steps);
    println!("| wall seconds | {wall_seconds:.3} |");
    println!("| steps/second | {steps_per_second:.0} |");
    println!("| step latency p50/p95/p99 (us) | {p50} / {p95} / {p99} |");
    println!("| requests / responses | {requests} / {responses} |");
    println!("| tickets lost | {tickets_lost} |");
    println!("| clean errors (failover) | {clean_errors} |");
    println!("| shard respawns | {} |", stats.router.respawns);
    println!("| stream reopens | {} |", stats.router.reopens);
    println!("| worst refined residual | {worst_residual:.2e} |");
    for s in &stats.shards {
        println!(
            "shard {} (epoch {}): team {}, {} streams, {} steps, {} errors, \
             {} factors, {} refactors, occupancy {:.2}",
            s.shard,
            s.epoch,
            s.team_width,
            s.streams,
            s.steps,
            s.errors,
            s.factors,
            s.refactors,
            s.occupancy
        );
    }

    assert_eq!(
        hard_failures, 0,
        "transport failures or unclassified errors"
    );
    assert_eq!(tickets_lost, 0, "every accepted request must be answered");
    assert_eq!(
        final_ok, args.streams,
        "every stream must step successfully at the end"
    );
    if args.kill_one {
        assert!(
            stats.router.respawns >= 1,
            "the induced crash must be detected and the shard respawned"
        );
    } else {
        assert_eq!(
            clean_errors, 0,
            "no errors expected without an induced crash"
        );
        assert_eq!(
            stats.router.respawns, 0,
            "no respawns expected without a crash"
        );
    }
    if args.scale == Scale::Test {
        assert!(residual_ok, "worst residual {worst_residual:.2e}");
    }

    if let Some(path) = args.json {
        let out = format!(
            "{{\n  \"shards\": {},\n  \"clients\": {},\n  \"streams\": {},\n  \
             \"steps_per_stream\": {},\n  \"scale\": \"{}\",\n  \
             \"kill_one\": {},\n  \
             \"wall_seconds\": {wall_seconds:.6},\n  \
             \"steps_per_second\": {steps_per_second:.1},\n  \
             \"p50_us\": {p50},\n  \"p95_us\": {p95},\n  \"p99_us\": {p99},\n  \
             \"requests\": {requests},\n  \"responses\": {responses},\n  \
             \"tickets_lost\": {tickets_lost},\n  \
             \"clean_errors\": {clean_errors},\n  \
             \"respawns\": {},\n  \"reopens\": {},\n  \"failovers\": {},\n  \
             \"routed_streams\": {},\n  \
             \"worst_residual\": {worst_residual:.3e},\n  \
             \"residual_ok\": {residual_ok}\n}}\n",
            args.shards,
            args.clients,
            args.streams,
            args.steps,
            match args.scale {
                Scale::Test => "test",
                Scale::Bench => "bench",
            },
            args.kill_one,
            stats.router.respawns,
            stats.router.reopens,
            stats.router.failovers,
            stats.router.routed_streams,
        );
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }
}
