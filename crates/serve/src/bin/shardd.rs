//! `shardd` — one shard of the serving tier: a single
//! [`SolverService`] behind a wire listener, normally spawned and
//! supervised by a [`ShardSet`](basker_serve::ShardSet).
//!
//! ```text
//! shardd --listen uds:/run/basker/shard0.sock [--shard 0] [--epoch 0]
//!        [--threads N] [--queue-cap K]
//! ```
//!
//! Exits cleanly when a client sends the wire `Shutdown` request (the
//! service drains first, so every queued step is answered).

use basker_api::{ServiceConfig, SolverService};
use basker_serve::wire::{Addr, Listener};
use std::process::ExitCode;

struct Args {
    listen: Addr,
    shard: u32,
    epoch: u64,
    threads: usize,
    queue_cap: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut listen: Option<Addr> = None;
    let mut shard = 0u32;
    let mut epoch = 0u64;
    let mut threads = 0usize;
    let mut queue_cap = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--listen" => listen = Some(Addr::parse(&val("--listen")?).map_err(|e| e.to_string())?),
            "--shard" => {
                shard = val("--shard")?
                    .parse()
                    .map_err(|e| format!("--shard: {e}"))?
            }
            "--epoch" => {
                epoch = val("--epoch")?
                    .parse()
                    .map_err(|e| format!("--epoch: {e}"))?
            }
            "--threads" => {
                threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--queue-cap" => {
                queue_cap = val("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: shardd --listen <tcp:HOST:PORT|uds:PATH> [--shard N] [--epoch N] \
                     [--threads N] [--queue-cap K]"
                        .into(),
                );
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let listen = listen.ok_or("--listen is required")?;
    Ok(Args {
        listen,
        shard,
        epoch,
        threads,
        queue_cap,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("shardd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = ServiceConfig::new();
    if args.threads > 0 {
        cfg = cfg.threads(args.threads);
    }
    if args.queue_cap > 0 {
        cfg = cfg.queue_capacity(args.queue_cap);
    }
    let service = SolverService::new(&cfg);
    let listener = match Listener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("shardd: bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    match basker_serve::serve(listener, &service, args.shard, args.epoch) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("shardd: serve: {e}");
            ExitCode::FAILURE
        }
    }
}
