//! The shard server: one [`SolverService`] behind a wire listener.
//!
//! Each accepted connection gets a **reader** thread and a **writer**
//! thread, preserving the in-process submit/ticket pipelining over the
//! network:
//!
//! * the reader decodes requests and *submits* steps — it never waits
//!   for a result, so a client that pipelines N steps keeps the shard's
//!   scheduler batch full exactly like N in-process submitters would;
//! * the writer drains an in-order queue of tickets and immediate
//!   replies, waiting each [`StepTicket`] (taking the service's driver
//!   seat when idle) and encoding the response.
//!
//! Responses therefore come back **in request order per connection**,
//! while concurrency comes from many connections and from pipelining
//! within one. Streams are owned by their connection's reader: when the
//! connection drops, its streams close and their queued work drains
//! through the normal stream-close path, so a dead client cannot leak
//! sessions.

use crate::proto::{
    self, decode_request, encode_response, pattern_hash, Request, Response, ShardStatsWire,
    WireError, WireStats,
};
use crate::wire::{read_frame, write_frame, Addr, Conn, Listener};
use basker_api::{ServiceStats, SolverService, StepTicket};
use basker_sparse::CscMat;
use std::collections::HashMap;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

/// What the reader hands the writer, in request order.
enum Out {
    /// An already-known reply (errors, opens, stats, pong, ack).
    Now(u64, Response),
    /// A submitted step whose result the writer waits for.
    Ticket(u64, StepTicket),
}

/// Shared stop control: the shutdown request flips the flag and
/// self-dials the listener so the blocking accept observes it.
struct Ctl {
    stop: AtomicBool,
    addr: Addr,
}

impl Ctl {
    fn trip(&self) {
        // ORDER: SeqCst — one-shot stop latch on the cold shutdown
        // path; strongest ordering keeps the accept loop's view
        // trivially consistent.
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Wake the accept loop; errors are fine (it may already be
            // past accept, or the listener may be closing).
            let _ = Conn::connect(&self.addr);
        }
    }
}

/// Serves `service` on `listener` until a client sends `Shutdown`.
///
/// Blocks the calling thread. On shutdown the service drains (queued
/// steps answer [`ErrCode::ServiceShutdown`](proto::ErrCode), running
/// steps finish), the ack is sent, and this returns. `shard`/`epoch`
/// are echoed in stats/pong so supervisors can identify the process
/// incarnation that answered.
pub fn serve(
    listener: Listener,
    service: &SolverService,
    shard: u32,
    epoch: u64,
) -> io::Result<()> {
    let ctl = Arc::new(Ctl {
        stop: AtomicBool::new(false),
        addr: listener.local_addr()?,
    });
    loop {
        let conn = match listener.accept() {
            Ok(c) => c,
            // ORDER: SeqCst ×2 — stop-latch reads in the accept loop
            // (cold; pair with the `shutdown` swap).
            Err(_) if ctl.stop.load(Ordering::SeqCst) => break,
            Err(e) => return Err(e),
        };
        if ctl.stop.load(Ordering::SeqCst) {
            break;
        }
        let service = service.clone();
        let ctl = ctl.clone();
        // Detached: the shutdown path drains the service before acking,
        // so returning without joining loses nothing — and joining
        // would make shutdown wait on idle connections.
        thread::spawn(move || {
            handle_conn(conn, &service, shard, epoch, &ctl);
        });
    }
    Ok(())
}

/// One stream as the server sees it: the handle plus the pattern
/// template the step values are poured into.
struct StreamEntry {
    handle: basker_api::StreamHandle,
    template: CscMat,
}

fn handle_conn(conn: Conn, service: &SolverService, shard: u32, epoch: u64, ctl: &Arc<Ctl>) {
    let writer_conn = match conn.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Out>();

    // Writer: strictly in-order replies; waiting a ticket may take the
    // service's driver seat, which is exactly the cooperative
    // scheduling the in-process tier uses.
    let writer = thread::spawn(move || {
        let mut w = BufWriter::new(writer_conn);
        while let Ok(out) = rx.recv() {
            let (req_id, resp) = match out {
                Out::Now(id, resp) => (id, resp),
                Out::Ticket(id, t) => (id, proto::step_response(&t.wait())),
            };
            let (kind, payload) = encode_response(&resp);
            if write_frame(&mut w, kind, req_id, &payload).is_err() {
                break; // client gone; keep draining tickets below
            }
            if w.flush().is_err() {
                break;
            }
        }
        // Client vanished mid-pipeline: still wait the remaining
        // tickets so their slots resolve and the service's counters
        // stay truthful.
        while let Ok(out) = rx.recv() {
            if let Out::Ticket(_, t) = out {
                let _ = t.wait();
            }
        }
    });

    let mut conn = conn;
    let mut streams: HashMap<u64, StreamEntry> = HashMap::new();
    // The frame loop ends on EOF, reset, or a framing violation.
    while let Ok((kind, req_id, payload)) = read_frame(&mut conn) {
        let req = match decode_request(kind, &payload) {
            Ok(r) => r,
            Err(e) => {
                let resp = Response::Err(WireError::protocol(e));
                if tx.send(Out::Now(req_id, resp)).is_err() {
                    break;
                }
                continue;
            }
        };
        let out = match req {
            Request::Ping => Out::Now(req_id, Response::Pong { epoch }),
            Request::Open(open) => match service.stream(&open.matrix, &open.session_config()) {
                Ok(handle) => {
                    let stream = handle.id();
                    let hash = pattern_hash(&open.matrix);
                    streams.insert(
                        stream,
                        StreamEntry {
                            handle,
                            template: open.matrix,
                        },
                    );
                    Out::Now(
                        req_id,
                        Response::Opened {
                            stream,
                            pattern_hash: hash,
                        },
                    )
                }
                Err(e) => Out::Now(req_id, Response::Err(WireError::from(&e))),
            },
            Request::Step {
                stream,
                refined,
                values,
                rhs,
            } => match streams.get_mut(&stream) {
                None => Out::Now(
                    req_id,
                    Response::Err(WireError::protocol(format!("unknown stream {stream}"))),
                ),
                Some(entry) => {
                    if values.len() != entry.template.nnz() {
                        Out::Now(
                            req_id,
                            Response::Err(WireError::protocol(format!(
                                "step values length {} != pattern nnz {}",
                                values.len(),
                                entry.template.nnz()
                            ))),
                        )
                    } else {
                        entry.template.values_mut().copy_from_slice(&values);
                        let submitted = if refined {
                            entry.handle.submit_refined(&entry.template, rhs)
                        } else {
                            entry.handle.submit(&entry.template, rhs)
                        };
                        match submitted {
                            Ok(t) => Out::Ticket(req_id, t),
                            Err(e) => Out::Now(req_id, Response::Err(WireError::from(&e))),
                        }
                    }
                }
            },
            Request::Close { stream } => {
                if streams.remove(&stream).is_some() {
                    Out::Now(req_id, Response::Closed)
                } else {
                    Out::Now(
                        req_id,
                        Response::Err(WireError::protocol(format!("unknown stream {stream}"))),
                    )
                }
            }
            Request::Stats => Out::Now(
                req_id,
                Response::Stats(WireStats {
                    shards: vec![shard_stats_row(shard, epoch, &service.stats())],
                    router: Default::default(),
                }),
            ),
            Request::Shutdown => {
                // Drain the service first so every queued step resolves
                // (to ServiceShutdown) *before* the ack — after the ack
                // the peer may kill us.
                service.shutdown();
                let sent = tx.send(Out::Now(req_id, Response::ShutdownAck)).is_ok();
                drop(tx);
                let _ = writer.join();
                ctl.trip();
                conn.shutdown();
                let _ = sent;
                return;
            }
        };
        if tx.send(out).is_err() {
            break;
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// Projects a [`ServiceStats`] snapshot onto its wire row.
pub fn shard_stats_row(shard: u32, epoch: u64, st: &ServiceStats) -> ShardStatsWire {
    ShardStatsWire {
        shard,
        epoch,
        team_width: st.team_width as u32,
        streams: st.streams as u64,
        steps: st.steps as u64,
        errors: st.errors as u64,
        factors: st.factors as u64,
        refactors: st.refactors as u64,
        occupancy: st.occupancy,
        worst_residual: st.worst_residual,
    }
}
