//! Transport and framing: length-prefixed binary frames over TCP or
//! Unix-domain sockets.
//!
//! The workspace has no registry access, so there is no tokio/serde —
//! the transport is hand-rolled over `std::net`/`std::os::unix::net`
//! with blocking I/O and per-connection threads, and every payload is
//! serialized with the little-endian primitives in this module.
//!
//! ## Frame layout
//!
//! ```text
//! ┌─────────┬────────┬───────────┬──────────┬───────────────┐
//! │ magic   │ kind   │ req_id    │ len      │ payload       │
//! │ 4 bytes │ 1 byte │ 8 bytes   │ 4 bytes  │ `len` bytes   │
//! │ "BSK1"  │  u8    │ u64 LE    │ u32 LE   │               │
//! └─────────┴────────┴───────────┴──────────┴───────────────┘
//! ```
//!
//! * `magic` guards against desynchronization and foreign traffic: a
//!   frame that does not start `BSK1` kills the connection cleanly.
//! * `kind` selects the request/response variant (see
//!   [`proto`](crate::proto)).
//! * `req_id` is chosen by the requester and echoed verbatim in the
//!   response, so a connection can carry many in-flight requests
//!   (pipelining) and the requester can match responses out of order.
//! * `len` bounds the payload ([`MAX_FRAME`]); an oversized length is a
//!   protocol error, not an allocation attempt.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// The frame magic: `b"BSK1"`.
pub const MAGIC: [u8; 4] = *b"BSK1";

/// Maximum accepted payload size (64 MiB) — far above any matrix this
/// tier serves, far below an allocation bomb.
pub const MAX_FRAME: u32 = 64 << 20;

/// A serve-tier endpoint address: TCP (`tcp:HOST:PORT`) or a
/// Unix-domain socket path (`uds:/path/to.sock`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// TCP host:port, e.g. `127.0.0.1:4100` (port 0 binds ephemeral).
    Tcp(String),
    /// Unix-domain socket path.
    Uds(PathBuf),
}

impl Addr {
    /// Parses `tcp:HOST:PORT` / `uds:PATH`.
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            Ok(Addr::Tcp(rest.to_string()))
        } else if let Some(rest) = s.strip_prefix("uds:") {
            Ok(Addr::Uds(PathBuf::from(rest)))
        } else {
            Err(format!("address '{s}' must start with 'tcp:' or 'uds:'"))
        }
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Tcp(hp) => write!(f, "tcp:{hp}"),
            Addr::Uds(p) => write!(f, "uds:{}", p.display()),
        }
    }
}

/// A listening socket over either transport.
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    Uds(UnixListener),
}

impl Listener {
    /// Binds `addr` (removing a stale UDS path first).
    pub fn bind(addr: &Addr) -> io::Result<Listener> {
        match addr {
            Addr::Tcp(hp) => Ok(Listener::Tcp(TcpListener::bind(hp.as_str())?)),
            Addr::Uds(p) => {
                let _ = std::fs::remove_file(p);
                Ok(Listener::Uds(UnixListener::bind(p)?))
            }
        }
    }

    /// The bound address (for `tcp:…:0`, the actual ephemeral port).
    pub fn local_addr(&self) -> io::Result<Addr> {
        match self {
            Listener::Tcp(l) => Ok(Addr::Tcp(l.local_addr()?.to_string())),
            Listener::Uds(l) => {
                let sa = l.local_addr()?;
                let p = sa
                    .as_pathname()
                    .ok_or_else(|| io::Error::other("unnamed unix listener"))?;
                Ok(Addr::Uds(p.to_path_buf()))
            }
        }
    }

    /// Accepts one connection.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true).ok();
                Ok(Conn::Tcp(s))
            }
            Listener::Uds(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Uds(s))
            }
        }
    }
}

/// One established connection over either transport.
pub enum Conn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    Uds(UnixStream),
}

impl Conn {
    /// Connects to `addr`.
    pub fn connect(addr: &Addr) -> io::Result<Conn> {
        match addr {
            Addr::Tcp(hp) => {
                let s = TcpStream::connect(hp.as_str())?;
                s.set_nodelay(true).ok();
                Ok(Conn::Tcp(s))
            }
            Addr::Uds(p) => Ok(Conn::Uds(UnixStream::connect(p)?)),
        }
    }

    /// A second handle to the same socket (for split reader/writer
    /// threads).
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            Conn::Uds(s) => Ok(Conn::Uds(s.try_clone()?)),
        }
    }

    /// Read timeout (None = block forever).
    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            Conn::Uds(s) => s.set_read_timeout(d),
        }
    }

    /// Shuts both directions down, waking any thread blocked on a read.
    pub fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Conn::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Uds(s) => s.flush(),
        }
    }
}

/// Writes one frame (header + payload) and flushes nothing — callers
/// batch frames behind a `BufWriter` and flush at their pipeline
/// boundary.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, req_id: u64, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame payload {} exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&MAGIC)?;
    w.write_all(&[kind])?;
    w.write_all(&req_id.to_le_bytes())?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame; `Err(UnexpectedEof)` on a cleanly closed peer,
/// `Err(InvalidData)` on bad magic or an oversized length.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<(u8, u64, Vec<u8>)> {
    let mut head = [0u8; 17];
    r.read_exact(&mut head)?;
    if head[..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad frame magic (desynchronized or foreign peer)",
        ));
    }
    let kind = head[4];
    let mut req_bytes = [0u8; 8];
    req_bytes.copy_from_slice(&head[5..13]);
    let req_id = u64::from_le_bytes(req_bytes);
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&head[13..17]);
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((kind, req_id, payload))
}

// --------------------------------------------------- payload codec ----

/// Little-endian payload writer.
#[derive(Default)]
pub struct Wr {
    buf: Vec<u8>,
}

impl Wr {
    /// An empty payload buffer.
    pub fn new() -> Wr {
        Wr::default()
    }
    /// The serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    /// Appends a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends an `f64` (LE bit pattern).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    /// Appends a length-prefixed `usize` slice as `u32`s.
    pub fn idx_slice(&mut self, v: &[usize]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u32(x as u32);
        }
    }
    /// Appends a length-prefixed `f64` slice.
    pub fn f64_slice(&mut self, v: &[f64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }
}

/// Little-endian payload reader; every accessor fails loudly on a
/// truncated or oversized payload instead of panicking.
pub struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Rd<'a> {
        Rd { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Four payload bytes as an array (for the LE integer decoders).
    fn take4(&mut self) -> Result<[u8; 4], String> {
        let s = self.take(4)?;
        Ok([s[0], s[1], s[2], s[3]])
    }

    /// Eight payload bytes as an array.
    fn take8(&mut self) -> Result<[u8; 8], String> {
        let s = self.take(8)?;
        Ok([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take4()?))
    }
    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take8()?))
    }
    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take8()?))
    }
    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| "invalid utf-8 in string field".into())
    }
    /// Reads a length-prefixed index slice.
    pub fn idx_slice(&mut self) -> Result<Vec<usize>, String> {
        let n = self.u32()? as usize;
        // Bound the reservation by what the payload can actually hold.
        if n > self.buf.len().saturating_sub(self.pos) / 4 {
            return Err(format!("index slice length {n} exceeds payload"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()? as usize);
        }
        Ok(out)
    }
    /// Reads a length-prefixed `f64` slice.
    pub fn f64_slice(&mut self) -> Result<Vec<f64>, String> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) / 8 {
            return Err(format!("f64 slice length {n} exceeds payload"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
    /// Asserts the payload was fully consumed.
    pub fn finish(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "payload has {} trailing bytes",
                self.buf.len() - self.pos
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, 42, b"hello").unwrap();
        write_frame(&mut buf, 7, u64::MAX, b"").unwrap();
        let mut r = &buf[..];
        let (k, id, p) = read_frame(&mut r).unwrap();
        assert_eq!((k, id, p.as_slice()), (3, 42, &b"hello"[..]));
        let (k, id, p) = read_frame(&mut r).unwrap();
        assert_eq!((k, id, p.len()), (7, u64::MAX, 0));
        assert!(r.is_empty());
    }

    #[test]
    fn bad_magic_and_oversize_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, 0, b"x").unwrap();
        buf[0] = b'Z';
        assert_eq!(
            read_frame(&mut &buf[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        let mut huge = MAGIC.to_vec();
        huge.push(1);
        huge.extend_from_slice(&0u64.to_le_bytes());
        huge.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(
            read_frame(&mut &huge[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, 9, b"payload").unwrap();
        for cut in 0..buf.len() {
            let mut r = &buf[..cut];
            assert!(read_frame(&mut r).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn codec_roundtrip_and_truncation() {
        let mut w = Wr::new();
        w.u8(7);
        w.u32(123456);
        w.u64(1 << 40);
        w.f64(-1.5e-3);
        w.str("π shard");
        w.idx_slice(&[0, 3, 5, 9]);
        w.f64_slice(&[1.0, -2.5]);
        let bytes = w.into_bytes();

        let mut r = Rd::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 123456);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f64().unwrap(), -1.5e-3);
        assert_eq!(r.str().unwrap(), "π shard");
        assert_eq!(r.idx_slice().unwrap(), vec![0, 3, 5, 9]);
        assert_eq!(r.f64_slice().unwrap(), vec![1.0, -2.5]);
        r.finish().unwrap();

        // Any truncation errors instead of panicking.
        for cut in 0..bytes.len() {
            let mut r = Rd::new(&bytes[..cut]);
            let mut failed = false;
            for step in 0..7 {
                let ok = match step {
                    0 => r.u8().is_ok(),
                    1 => r.u32().is_ok(),
                    2 => r.u64().is_ok(),
                    3 => r.f64().is_ok(),
                    4 => r.str().is_ok(),
                    5 => r.idx_slice().is_ok(),
                    _ => r.f64_slice().is_ok(),
                };
                if !ok {
                    failed = true;
                    break;
                }
            }
            assert!(failed || r.finish().is_err(), "cut {cut} decoded fully");
        }
    }

    #[test]
    fn length_bomb_rejected_without_allocation() {
        // A slice header claiming 1 billion entries inside a 12-byte
        // payload must error before reserving memory.
        let mut w = Wr::new();
        w.u32(1_000_000_000);
        w.u64(0);
        let bytes = w.into_bytes();
        assert!(Rd::new(&bytes).idx_slice().is_err());
        assert!(Rd::new(&bytes).f64_slice().is_err());
    }

    #[test]
    fn addr_parse_display() {
        let t = Addr::parse("tcp:127.0.0.1:0").unwrap();
        assert_eq!(t.to_string(), "tcp:127.0.0.1:0");
        let u = Addr::parse("uds:/tmp/x.sock").unwrap();
        assert_eq!(u.to_string(), "uds:/tmp/x.sock");
        assert!(Addr::parse("foo:1").is_err());
    }

    #[test]
    fn uds_connect_roundtrip() {
        let dir = std::env::temp_dir().join(format!("bsk-wire-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr = Addr::Uds(dir.join("t.sock"));
        let l = Listener::bind(&addr).unwrap();
        let srv = std::thread::spawn(move || {
            let mut c = l.accept().unwrap();
            let (k, id, p) = read_frame(&mut c).unwrap();
            write_frame(&mut c, k + 1, id, &p).unwrap();
        });
        let mut c = Conn::connect(&addr).unwrap();
        write_frame(&mut c, 10, 77, b"ping").unwrap();
        let (k, id, p) = read_frame(&mut c).unwrap();
        assert_eq!((k, id, p.as_slice()), (11, 77, &b"ping"[..]));
        srv.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
