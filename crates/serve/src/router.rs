//! The pattern-hash router: one listener in front of N shard
//! processes.
//!
//! Streams are placed by `pattern_hash(matrix) % shards`, so streams
//! sharing a sparsity pattern **co-locate** on one shard and share its
//! symbolic analysis and workspace pools — the serving-tier analogue of
//! the in-process same-pattern fast path. Values differ per stream and
//! per step; only the pattern decides placement.
//!
//! Each client connection gets its own handler thread with its own
//! shard connections, so concurrency scales with client connections
//! while every single connection keeps strict request/response order.
//!
//! ## Failover contract
//!
//! "Zero ticket loss" means **every accepted request is answered** —
//! never dropped, never hung:
//!
//! * a step in flight on a shard that dies answers with a clean
//!   [`ErrCode::ShardUnavailable`](crate::proto::ErrCode) error and the
//!   supervisor respawns the shard (the router reports the failure
//!   synchronously, so the respawn races no one);
//! * the stream's [`OpenRequest`] is retained by the router, and the
//!   next step on that stream transparently **re-opens** it on the
//!   respawned process (fresh epoch, fresh factors) before forwarding;
//! * requests for other shards never notice.

use crate::client::{Client, ClientError};
use crate::proto::{
    pattern_hash, OpenRequest, Request, Response, RouterWireStats, WireError, WireStats,
};
use crate::shard::ShardSet;
use crate::wire::{read_frame, write_frame, Addr, Conn, Listener};
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Router-wide counters, shared across connection handlers.
#[derive(Default)]
struct Counters {
    routed_streams: AtomicU64,
    steps: AtomicU64,
    errors: AtomicU64,
    failovers: AtomicU64,
    reopens: AtomicU64,
}

impl Counters {
    fn wire(&self, respawns: u64) -> RouterWireStats {
        RouterWireStats {
            // ORDER: Relaxed ×5 — monotonic diagnostics; snapshots
            // are advisory and consumers diff them on one thread.
            routed_streams: self.routed_streams.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            reopens: self.reopens.load(Ordering::Relaxed),
            respawns,
        }
    }
}

/// Where one client stream lives.
struct StreamRoute {
    /// Shard slot the pattern hashed to (stable across respawns).
    shard: usize,
    /// Retained open request — the failover state used to re-establish
    /// the stream on a respawned shard.
    open: OpenRequest,
    /// The shard-local stream id of the current incarnation.
    remote_id: u64,
    /// The shard epoch the stream was opened on.
    epoch: u64,
}

/// A running router. Dropping it stops the listener and shuts down the
/// supervised shard fleet.
pub struct Router {
    addr: Addr,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    shards: Arc<ShardSet>,
}

impl Router {
    /// Starts routing connections accepted on `listener` across
    /// `shards`.
    pub fn start(listener: Listener, shards: Arc<ShardSet>) -> std::io::Result<Router> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept = {
            let stop = stop.clone();
            let shards = shards.clone();
            thread::spawn(move || accept_loop(listener, &shards, &stop, &counters))
        };
        Ok(Router {
            addr,
            stop,
            accept: Some(accept),
            shards,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> Addr {
        self.addr.clone()
    }

    /// The supervised fleet behind this router.
    pub fn shards(&self) -> &Arc<ShardSet> {
        &self.shards
    }

    /// Stops accepting and joins the accept thread. Existing client
    /// connections finish their current request and wind down as the
    /// clients disconnect; the shard fleet stays up until the set is
    /// dropped.
    pub fn stop(&mut self) {
        // ORDER: SeqCst — one-shot stop latch on a cold shutdown
        // path; the strongest ordering keeps every worker's view of
        // the latch trivially consistent and costs nothing here.
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = Conn::connect(&self.addr); // unblock accept
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Addr::Uds(p) = &self.addr {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: Listener,
    shards: &Arc<ShardSet>,
    stop: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
) {
    loop {
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(_) => break,
        };
        // ORDER: SeqCst — pairs with the shutdown latch swap (cold
        // path, see `stop`).
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let shards = shards.clone();
        let counters = counters.clone();
        // Detached: a handler lives exactly as long as its connection.
        // Joining here would make shutdown wait on idle clients.
        thread::spawn(move || {
            handle_client(conn, &shards, &counters);
        });
    }
}

/// Per-connection shard links, cached by `(slot, epoch)`.
struct ShardLinks {
    conns: HashMap<usize, (u64, Client)>,
}

impl ShardLinks {
    /// A connected client for shard `i` at its current epoch,
    /// reconnecting if the cached link is stale or absent. On connect
    /// failure the shard is reported down (respawning it) and the new
    /// epoch is retried once.
    fn get(&mut self, shards: &ShardSet, i: usize) -> Result<(u64, &mut Client), ClientError> {
        for _attempt in 0..2 {
            let epoch = shards.epoch(i);
            let stale = match self.conns.get(&i) {
                Some((e, _)) => *e != epoch,
                None => true,
            };
            if stale {
                match Client::connect(&shards.addr(i)) {
                    Ok(c) => {
                        let _ = c.set_read_timeout(Some(Duration::from_secs(120)));
                        self.conns.insert(i, (epoch, c));
                    }
                    Err(_) => {
                        self.conns.remove(&i);
                        shards.report_down(i, epoch);
                        continue;
                    }
                }
            }
            let (e, c) = self.conns.get_mut(&i).expect("just inserted");
            return Ok((*e, c));
        }
        Err(ClientError::Remote(WireError::unavailable(format!(
            "shard {i} unreachable after respawn"
        ))))
    }

    /// Drops the cached link to shard `i` (after an I/O failure).
    fn invalidate(&mut self, i: usize) {
        self.conns.remove(&i);
    }
}

fn handle_client(conn: Conn, shards: &Arc<ShardSet>, counters: &Arc<Counters>) {
    let writer_conn = match conn.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    };
    let mut w = BufWriter::new(writer_conn);
    let mut conn = conn;
    let mut links = ShardLinks {
        conns: HashMap::new(),
    };
    let mut routes: HashMap<u64, StreamRoute> = HashMap::new();
    let mut next_local: u64 = 1;

    while let Ok((kind, req_id, payload)) = read_frame(&mut conn) {
        let req = match crate::proto::decode_request(kind, &payload) {
            Ok(r) => r,
            Err(e) => {
                let resp = Response::Err(WireError::protocol(e));
                if reply(&mut w, req_id, &resp).is_err() {
                    break;
                }
                continue;
            }
        };
        let resp = match req {
            Request::Ping => Response::Pong { epoch: 0 },
            Request::Open(open) => route_open(
                shards,
                &mut links,
                &mut routes,
                &mut next_local,
                counters,
                open,
            ),
            Request::Step {
                stream,
                refined,
                values,
                rhs,
            } => route_step(
                shards,
                &mut links,
                &mut routes,
                counters,
                stream,
                refined,
                values,
                rhs,
            ),
            Request::Close { stream } => route_close(shards, &mut links, &mut routes, stream),
            Request::Stats => gather_stats(shards, &mut links, counters),
            Request::Shutdown => {
                let _ = reply(&mut w, req_id, &Response::ShutdownAck);
                break;
            }
        };
        if matches!(resp, Response::Err(_)) {
            // ORDER: Relaxed — monotonic diagnostic (see `counters`).
            counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        if reply(&mut w, req_id, &resp).is_err() {
            break;
        }
    }
}

fn reply(w: &mut BufWriter<Conn>, req_id: u64, resp: &Response) -> std::io::Result<()> {
    let (kind, payload) = crate::proto::encode_response(resp);
    write_frame(w, kind, req_id, &payload)?;
    w.flush()
}

fn route_open(
    shards: &ShardSet,
    links: &mut ShardLinks,
    routes: &mut HashMap<u64, StreamRoute>,
    next_local: &mut u64,
    counters: &Counters,
    open: OpenRequest,
) -> Response {
    let hash = pattern_hash(&open.matrix);
    let shard = (hash % shards.num_shards() as u64) as usize;
    match open_on(shards, links, shard, &open) {
        Ok((epoch, remote_id)) => {
            let local = *next_local;
            *next_local += 1;
            routes.insert(
                local,
                StreamRoute {
                    shard,
                    open,
                    remote_id,
                    epoch,
                },
            );
            // ORDER: Relaxed — monotonic diagnostic (see `counters`).
            counters.routed_streams.fetch_add(1, Ordering::Relaxed);
            Response::Opened {
                stream: local,
                pattern_hash: hash,
            }
        }
        Err(e) => error_response(counters, links, shards, shard, e),
    }
}

/// Opens `open` on shard `i`, returning `(epoch, remote stream id)`.
fn open_on(
    shards: &ShardSet,
    links: &mut ShardLinks,
    i: usize,
    open: &OpenRequest,
) -> Result<(u64, u64), ClientError> {
    let (epoch, client) = links.get(shards, i)?;
    let (remote_id, _hash) = client.open_stream(open)?;
    Ok((epoch, remote_id))
}

#[allow(clippy::too_many_arguments)]
fn route_step(
    shards: &ShardSet,
    links: &mut ShardLinks,
    routes: &mut HashMap<u64, StreamRoute>,
    counters: &Counters,
    stream: u64,
    refined: bool,
    values: Vec<f64>,
    rhs: Vec<f64>,
) -> Response {
    let Some(route) = routes.get_mut(&stream) else {
        return Response::Err(WireError::protocol(format!("unknown stream {stream}")));
    };
    // ORDER: Relaxed — monotonic diagnostic (see `counters`).
    counters.steps.fetch_add(1, Ordering::Relaxed);
    let shard = route.shard;
    let attempt = (|| -> Result<Response, ClientError> {
        let cur_epoch = shards.epoch(shard);
        if cur_epoch != route.epoch {
            // The shard was respawned since this stream was opened:
            // re-establish it from the retained open request before
            // forwarding. The fresh session re-analyzes and re-factors
            // on this step.
            let (epoch, remote_id) = open_on(shards, links, shard, &route.open)?;
            route.epoch = epoch;
            route.remote_id = remote_id;
            // ORDER: Relaxed — monotonic diagnostic (see `counters`).
            counters.reopens.fetch_add(1, Ordering::Relaxed);
        }
        let (_, client) = links.get(shards, shard)?;
        let resp = client.request(&Request::Step {
            stream: route.remote_id,
            refined,
            values,
            rhs,
        })?;
        Ok(resp)
    })();
    match attempt {
        Ok(resp) => resp,
        Err(e) => error_response(counters, links, shards, shard, e),
    }
}

fn route_close(
    shards: &ShardSet,
    links: &mut ShardLinks,
    routes: &mut HashMap<u64, StreamRoute>,
    stream: u64,
) -> Response {
    let Some(route) = routes.remove(&stream) else {
        return Response::Err(WireError::protocol(format!("unknown stream {stream}")));
    };
    // Best effort: if the shard died since, the respawned process never
    // heard of the stream — closed is closed either way.
    if shards.epoch(route.shard) == route.epoch {
        if let Ok((_, client)) = links.get(shards, route.shard) {
            let _ = client.close_stream(route.remote_id);
        }
    }
    Response::Closed
}

fn gather_stats(shards: &ShardSet, links: &mut ShardLinks, counters: &Counters) -> Response {
    let mut stats = WireStats::default();
    for i in 0..shards.num_shards() {
        if let Ok((_, client)) = links.get(shards, i) {
            if let Ok(s) = client.stats() {
                stats.shards.extend(s.shards);
                continue;
            }
            links.invalidate(i);
        }
        // Unreachable shard: report an empty row so the shape is
        // stable for dashboards.
        stats.shards.push(crate::proto::ShardStatsWire {
            shard: i as u32,
            epoch: shards.epoch(i),
            ..Default::default()
        });
    }
    stats.router = counters.wire(shards.respawns());
    Response::Stats(stats)
}

/// Converts a shard-side failure into the client's error response,
/// reporting the shard down on transport failures (which respawns it
/// and lets the *next* request route cleanly).
fn error_response(
    counters: &Counters,
    links: &mut ShardLinks,
    shards: &ShardSet,
    shard: usize,
    e: ClientError,
) -> Response {
    match e {
        ClientError::Remote(we) => Response::Err(we),
        ClientError::Io(io) => {
            // ORDER: Relaxed — monotonic diagnostic (see `counters`).
            counters.failovers.fetch_add(1, Ordering::Relaxed);
            let epoch = links
                .conns
                .get(&shard)
                .map(|(e, _)| *e)
                .unwrap_or_else(|| shards.epoch(shard));
            links.invalidate(shard);
            shards.report_down(shard, epoch);
            Response::Err(WireError::unavailable(format!(
                "shard {shard} connection failed mid-request: {io}"
            )))
        }
        ClientError::Protocol(m) => {
            links.invalidate(shard);
            Response::Err(WireError::protocol(format!(
                "shard {shard} protocol error: {m}"
            )))
        }
    }
}
