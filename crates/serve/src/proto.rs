//! The serve-tier protocol: typed requests/responses over the
//! [`wire`](crate::wire) framing, putting the in-process
//! `stream/submit/ticket` seam of
//! [`SolverService`](basker_api::SolverService) on the network.
//!
//! A conversation is a sequence of request frames, each answered by
//! exactly one response frame echoing the request's `req_id`. Kinds:
//!
//! | kind | request | payload |
//! |------|---------|---------|
//! | 1 | `Ping` | — |
//! | 2 | `Open` | engine, policy, refine params, pattern + values |
//! | 3 | `Step` | stream id, refined flag, values, packed RHS |
//! | 4 | `Close` | stream id |
//! | 5 | `Stats` | — |
//! | 6 | `Shutdown` | — |
//!
//! | kind | response | payload |
//! |------|----------|---------|
//! | 129 | `Pong` | epoch |
//! | 130 | `Opened` | stream id, pattern hash |
//! | 131 | `Step` | session state, solution, per-RHS quality |
//! | 132 | `Closed` | — |
//! | 133 | `Stats` | aggregated [`WireStats`] |
//! | 134 | `ShutdownAck` | — |
//! | 255 | `Err` | [`WireError`] (code + message) |
//!
//! `Open` carries the full matrix (pattern + values); `Step` carries
//! values and right-hand sides only — the pattern lives server-side for
//! the life of the stream, exactly like the in-process session seam.
//! Streams are **scoped to their connection**: closing the connection
//! closes its streams, so a crashed client leaks nothing.

use crate::wire::{Rd, Wr};
use basker_api::{
    Engine, ReusePolicy, SessionConfig, SessionState, SolveQuality, SolverError, StepResult,
};
use basker_sparse::CscMat;

/// Request frame kinds.
pub mod kind {
    /// Health probe.
    pub const PING: u8 = 1;
    /// Open a stream (analyze a pattern).
    pub const OPEN: u8 = 2;
    /// Step a stream (factor/refactor + solves).
    pub const STEP: u8 = 3;
    /// Close a stream.
    pub const CLOSE: u8 = 4;
    /// Fetch serving stats.
    pub const STATS: u8 = 5;
    /// Orderly shutdown.
    pub const SHUTDOWN: u8 = 6;
    /// Response: ping reply.
    pub const PONG: u8 = 129;
    /// Response: stream opened.
    pub const OPENED: u8 = 130;
    /// Response: step result.
    pub const STEP_OK: u8 = 131;
    /// Response: stream closed.
    pub const CLOSED: u8 = 132;
    /// Response: stats payload.
    pub const STATS_OK: u8 = 133;
    /// Response: shutdown acknowledged.
    pub const SHUTDOWN_OK: u8 = 134;
    /// Response: error.
    pub const ERR: u8 = 255;
}

/// Why a request failed, classified so routers and clients can react
/// (retry, re-pivot upstream, fail over) without parsing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// [`SolverError::SingularPivot`].
    SingularPivot,
    /// [`SolverError::StructurallySingular`].
    StructurallySingular,
    /// [`SolverError::Config`].
    Config,
    /// [`SolverError::Sparse`].
    Sparse,
    /// [`SolverError::ServiceShutdown`] — the shard is going down; the
    /// step never ran.
    ServiceShutdown,
    /// The shard process is unreachable (crashed / restarting). The
    /// in-flight step is lost but was answered; resubmit after the
    /// supervisor respawns the shard.
    ShardUnavailable,
    /// Malformed frame or payload, unknown stream id, protocol misuse.
    Protocol,
}

impl ErrCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrCode::SingularPivot => 1,
            ErrCode::StructurallySingular => 2,
            ErrCode::Config => 3,
            ErrCode::Sparse => 4,
            ErrCode::ServiceShutdown => 5,
            ErrCode::ShardUnavailable => 6,
            ErrCode::Protocol => 7,
        }
    }
    fn from_u8(v: u8) -> Result<ErrCode, String> {
        Ok(match v {
            1 => ErrCode::SingularPivot,
            2 => ErrCode::StructurallySingular,
            3 => ErrCode::Config,
            4 => ErrCode::Sparse,
            5 => ErrCode::ServiceShutdown,
            6 => ErrCode::ShardUnavailable,
            7 => ErrCode::Protocol,
            other => return Err(format!("unknown error code {other}")),
        })
    }
}

/// A failure carried over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Classification (see [`ErrCode`]).
    pub code: ErrCode,
    /// Human-readable detail (the solver error's display form).
    pub message: String,
}

impl WireError {
    /// Wraps a protocol-level failure.
    pub fn protocol(msg: impl Into<String>) -> WireError {
        WireError {
            code: ErrCode::Protocol,
            message: msg.into(),
        }
    }

    /// Wraps a shard-unreachable failure.
    pub fn unavailable(msg: impl Into<String>) -> WireError {
        WireError {
            code: ErrCode::ShardUnavailable,
            message: msg.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl From<&SolverError> for WireError {
    fn from(e: &SolverError) -> WireError {
        let code = match e {
            SolverError::SingularPivot { .. } => ErrCode::SingularPivot,
            SolverError::StructurallySingular { .. } => ErrCode::StructurallySingular,
            SolverError::Config(_) => ErrCode::Config,
            SolverError::ServiceShutdown => ErrCode::ServiceShutdown,
            SolverError::Sparse(_) => ErrCode::Sparse,
        };
        WireError {
            code,
            message: e.to_string(),
        }
    }
}

/// The payload of an `Open` request: everything a shard needs to
/// re-create the stream's session — which makes it the unit of
/// **failover state**: the router retains it per stream and replays it
/// on a respawned shard.
#[derive(Debug, Clone)]
pub struct OpenRequest {
    /// Engine selector.
    pub engine: Engine,
    /// Factor-reuse policy.
    pub policy: ReusePolicy,
    /// Refined-solve target residual.
    pub target_residual: f64,
    /// Maximum refinement sweeps.
    pub max_refine_iterations: usize,
    /// The stream's first matrix (pattern + values).
    pub matrix: CscMat,
}

impl OpenRequest {
    /// The [`SessionConfig`] this request describes.
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig::new()
            .engine(self.engine)
            .policy(self.policy)
            .target_residual(self.target_residual)
            .max_refine_iterations(self.max_refine_iterations)
    }
}

/// A decoded request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Health probe.
    Ping,
    /// Open a stream.
    Open(OpenRequest),
    /// Step a stream: refresh values, factor/refactor by policy, solve
    /// each packed right-hand side (refined when asked).
    Step {
        /// Stream id from `Opened`.
        stream: u64,
        /// Solve with iterative refinement and report quality.
        refined: bool,
        /// The step's matrix values (pattern order, full nnz).
        values: Vec<f64>,
        /// Packed right-hand sides (multiple of the stream dimension).
        rhs: Vec<f64>,
    },
    /// Close a stream.
    Close {
        /// Stream id from `Opened`.
        stream: u64,
    },
    /// Fetch serving stats.
    Stats,
    /// Orderly shutdown of the peer.
    Shutdown,
}

/// Per-shard serving counters as carried by a `Stats` response. A shard
/// reports one row about itself; a router reports one row per shard
/// plus its own [`RouterWireStats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStatsWire {
    /// Shard index (0 on a bare shard).
    pub shard: u32,
    /// Supervisor respawn epoch of the process that answered.
    pub epoch: u64,
    /// Worker-team width inside the shard.
    pub team_width: u32,
    /// Streams currently registered.
    pub streams: u64,
    /// Steps completed.
    pub steps: u64,
    /// Steps that returned an error.
    pub errors: u64,
    /// Fresh factorizations across all sessions.
    pub factors: u64,
    /// Value-only refactorizations across all sessions.
    pub refactors: u64,
    /// Scheduler batch fill of the shard's service.
    pub occupancy: f64,
    /// Worst refined residual any stream reported.
    pub worst_residual: f64,
}

/// Router-level counters in a `Stats` response (zero on a bare shard).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouterWireStats {
    /// Streams routed (open requests accepted).
    pub routed_streams: u64,
    /// Step requests forwarded.
    pub steps: u64,
    /// Error responses returned to clients.
    pub errors: u64,
    /// In-flight requests that died with a shard (answered with
    /// [`ErrCode::ShardUnavailable`]).
    pub failovers: u64,
    /// Streams re-established on a respawned shard.
    pub reopens: u64,
    /// Shard respawns performed by the supervisor.
    pub respawns: u64,
}

/// The full `Stats` response payload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireStats {
    /// One row per shard (one row total on a bare shard).
    pub shards: Vec<ShardStatsWire>,
    /// Router-level counters.
    pub router: RouterWireStats,
}

impl WireStats {
    /// Total completed steps across shards.
    pub fn steps(&self) -> u64 {
        self.shards.iter().map(|s| s.steps).sum()
    }
    /// Total errored steps across shards.
    pub fn errors(&self) -> u64 {
        self.shards.iter().map(|s| s.errors).sum()
    }
}

/// A decoded response.
#[derive(Debug, Clone)]
pub enum Response {
    /// Ping reply, carrying the responder's epoch.
    Pong {
        /// Respawn epoch (0 on a fresh shard).
        epoch: u64,
    },
    /// Stream opened.
    Opened {
        /// The stream id to use in `Step`/`Close`.
        stream: u64,
        /// The pattern hash the router sharded on (informational).
        pattern_hash: u64,
    },
    /// Step completed.
    Step {
        /// What the session did (factor/refactor/re-pivot).
        state: SessionState,
        /// The solutions (submitted RHS overwritten).
        x: Vec<f64>,
        /// Per-RHS quality for refined steps.
        quality: Vec<SolveQuality>,
    },
    /// Stream closed.
    Closed,
    /// Stats payload.
    Stats(WireStats),
    /// Shutdown acknowledged; the peer exits after this frame.
    ShutdownAck,
    /// The request failed.
    Err(WireError),
}

// ------------------------------------------------------------ encode --

fn engine_to_u8(e: Engine) -> u8 {
    match e {
        Engine::Auto => 0,
        Engine::Basker => 1,
        Engine::Klu => 2,
        Engine::Snlu => 3,
        Engine::Hybrid => 4,
    }
}

fn engine_from_u8(v: u8) -> Result<Engine, String> {
    Ok(match v {
        0 => Engine::Auto,
        1 => Engine::Basker,
        2 => Engine::Klu,
        3 => Engine::Snlu,
        4 => Engine::Hybrid,
        other => return Err(format!("unknown engine {other}")),
    })
}

fn policy_to_wire(w: &mut Wr, p: ReusePolicy) {
    match p {
        ReusePolicy::AlwaysFactor => {
            w.u8(1);
            w.f64(0.0);
            w.f64(0.0);
        }
        ReusePolicy::AlwaysRefactor => {
            w.u8(2);
            w.f64(0.0);
            w.f64(0.0);
        }
        ReusePolicy::Adaptive {
            growth_limit,
            residual_limit,
        } => {
            w.u8(3);
            w.f64(growth_limit);
            w.f64(residual_limit);
        }
    }
}

fn policy_from_wire(r: &mut Rd) -> Result<ReusePolicy, String> {
    let tag = r.u8()?;
    let growth_limit = r.f64()?;
    let residual_limit = r.f64()?;
    Ok(match tag {
        1 => ReusePolicy::AlwaysFactor,
        2 => ReusePolicy::AlwaysRefactor,
        3 => ReusePolicy::Adaptive {
            growth_limit,
            residual_limit,
        },
        other => return Err(format!("unknown reuse policy {other}")),
    })
}

fn state_to_u8(s: SessionState) -> u8 {
    match s {
        SessionState::Analyzed => 0,
        SessionState::Factored => 1,
        SessionState::Refactored => 2,
        SessionState::Repivoted => 3,
    }
}

fn state_from_u8(v: u8) -> Result<SessionState, String> {
    Ok(match v {
        0 => SessionState::Analyzed,
        1 => SessionState::Factored,
        2 => SessionState::Refactored,
        3 => SessionState::Repivoted,
        other => return Err(format!("unknown session state {other}")),
    })
}

fn matrix_to_wire(w: &mut Wr, m: &CscMat) {
    w.u32(m.nrows() as u32);
    w.u32(m.ncols() as u32);
    w.idx_slice(m.colptr());
    w.idx_slice(m.rowind());
    w.f64_slice(m.values());
}

fn matrix_from_wire(r: &mut Rd) -> Result<CscMat, String> {
    let nrows = r.u32()? as usize;
    let ncols = r.u32()? as usize;
    let colptr = r.idx_slice()?;
    let rowind = r.idx_slice()?;
    let values = r.f64_slice()?;
    // Validate enough structure that from_parts_unchecked cannot be
    // handed out-of-bounds indices by a hostile or corrupted peer.
    if colptr.len() != ncols + 1 {
        return Err("matrix colptr length != ncols + 1".into());
    }
    if colptr.first() != Some(&0) || colptr.windows(2).any(|w| w[0] > w[1]) {
        return Err("matrix colptr is not monotone from 0".into());
    }
    let nnz = match colptr.last() {
        Some(&n) => n,
        None => return Err("matrix colptr is empty".into()),
    };
    if rowind.len() != nnz || values.len() != nnz {
        return Err("matrix rowind/values length != nnz".into());
    }
    if rowind.iter().any(|&i| i >= nrows) {
        return Err("matrix row index out of bounds".into());
    }
    if colptr
        .windows(2)
        .any(|w| rowind[w[0]..w[1]].windows(2).any(|r| r[0] >= r[1]))
    {
        return Err("matrix row indices not strictly increasing within a column".into());
    }
    // SAFETY: every invariant `CscMat::new` checks was validated just
    // above against the untrusted wire data.
    Ok(unsafe { CscMat::from_parts_unchecked(nrows, ncols, colptr, rowind, values) })
}

/// Encodes a request into `(kind, payload)`.
pub fn encode_request(req: &Request) -> (u8, Vec<u8>) {
    let mut w = Wr::new();
    let kind = match req {
        Request::Ping => kind::PING,
        Request::Open(o) => {
            w.u8(engine_to_u8(o.engine));
            policy_to_wire(&mut w, o.policy);
            w.f64(o.target_residual);
            w.u32(o.max_refine_iterations as u32);
            matrix_to_wire(&mut w, &o.matrix);
            kind::OPEN
        }
        Request::Step {
            stream,
            refined,
            values,
            rhs,
        } => {
            w.u64(*stream);
            w.u8(u8::from(*refined));
            w.f64_slice(values);
            w.f64_slice(rhs);
            kind::STEP
        }
        Request::Close { stream } => {
            w.u64(*stream);
            kind::CLOSE
        }
        Request::Stats => kind::STATS,
        Request::Shutdown => kind::SHUTDOWN,
    };
    (kind, w.into_bytes())
}

/// Decodes a request frame.
pub fn decode_request(kind: u8, payload: &[u8]) -> Result<Request, String> {
    let mut r = Rd::new(payload);
    let req = match kind {
        kind::PING => Request::Ping,
        kind::OPEN => {
            let engine = engine_from_u8(r.u8()?)?;
            let policy = policy_from_wire(&mut r)?;
            let target_residual = r.f64()?;
            let max_refine_iterations = r.u32()? as usize;
            let matrix = matrix_from_wire(&mut r)?;
            Request::Open(OpenRequest {
                engine,
                policy,
                target_residual,
                max_refine_iterations,
                matrix,
            })
        }
        kind::STEP => Request::Step {
            stream: r.u64()?,
            refined: r.u8()? != 0,
            values: r.f64_slice()?,
            rhs: r.f64_slice()?,
        },
        kind::CLOSE => Request::Close { stream: r.u64()? },
        kind::STATS => Request::Stats,
        kind::SHUTDOWN => Request::Shutdown,
        other => return Err(format!("unknown request kind {other}")),
    };
    r.finish()?;
    Ok(req)
}

fn quality_to_wire(w: &mut Wr, q: &SolveQuality) {
    w.u32(q.iterations as u32);
    w.f64(q.initial_residual);
    w.f64(q.residual);
    w.u8(u8::from(q.converged));
}

fn quality_from_wire(r: &mut Rd) -> Result<SolveQuality, String> {
    Ok(SolveQuality {
        iterations: r.u32()? as usize,
        initial_residual: r.f64()?,
        residual: r.f64()?,
        converged: r.u8()? != 0,
    })
}

/// Encodes a response into `(kind, payload)`.
pub fn encode_response(resp: &Response) -> (u8, Vec<u8>) {
    let mut w = Wr::new();
    let kind = match resp {
        Response::Pong { epoch } => {
            w.u64(*epoch);
            kind::PONG
        }
        Response::Opened {
            stream,
            pattern_hash,
        } => {
            w.u64(*stream);
            w.u64(*pattern_hash);
            kind::OPENED
        }
        Response::Step { state, x, quality } => {
            w.u8(state_to_u8(*state));
            w.f64_slice(x);
            w.u32(quality.len() as u32);
            for q in quality {
                quality_to_wire(&mut w, q);
            }
            kind::STEP_OK
        }
        Response::Closed => kind::CLOSED,
        Response::Stats(stats) => {
            w.u32(stats.shards.len() as u32);
            for s in &stats.shards {
                w.u32(s.shard);
                w.u64(s.epoch);
                w.u32(s.team_width);
                w.u64(s.streams);
                w.u64(s.steps);
                w.u64(s.errors);
                w.u64(s.factors);
                w.u64(s.refactors);
                w.f64(s.occupancy);
                w.f64(s.worst_residual);
            }
            let r = &stats.router;
            w.u64(r.routed_streams);
            w.u64(r.steps);
            w.u64(r.errors);
            w.u64(r.failovers);
            w.u64(r.reopens);
            w.u64(r.respawns);
            kind::STATS_OK
        }
        Response::ShutdownAck => kind::SHUTDOWN_OK,
        Response::Err(e) => {
            w.u8(e.code.to_u8());
            w.str(&e.message);
            kind::ERR
        }
    };
    (kind, w.into_bytes())
}

/// Decodes a response frame.
pub fn decode_response(kind: u8, payload: &[u8]) -> Result<Response, String> {
    let mut r = Rd::new(payload);
    let resp = match kind {
        kind::PONG => Response::Pong { epoch: r.u64()? },
        kind::OPENED => Response::Opened {
            stream: r.u64()?,
            pattern_hash: r.u64()?,
        },
        kind::STEP_OK => {
            let state = state_from_u8(r.u8()?)?;
            let x = r.f64_slice()?;
            let nq = r.u32()? as usize;
            if nq > payload.len() / 8 {
                return Err(format!("quality count {nq} exceeds payload"));
            }
            let mut quality = Vec::with_capacity(nq);
            for _ in 0..nq {
                quality.push(quality_from_wire(&mut r)?);
            }
            Response::Step { state, x, quality }
        }
        kind::CLOSED => Response::Closed,
        kind::STATS_OK => {
            let nshards = r.u32()? as usize;
            if nshards > payload.len() / 8 {
                return Err(format!("shard count {nshards} exceeds payload"));
            }
            let mut shards = Vec::with_capacity(nshards);
            for _ in 0..nshards {
                shards.push(ShardStatsWire {
                    shard: r.u32()?,
                    epoch: r.u64()?,
                    team_width: r.u32()?,
                    streams: r.u64()?,
                    steps: r.u64()?,
                    errors: r.u64()?,
                    factors: r.u64()?,
                    refactors: r.u64()?,
                    occupancy: r.f64()?,
                    worst_residual: r.f64()?,
                });
            }
            let router = RouterWireStats {
                routed_streams: r.u64()?,
                steps: r.u64()?,
                errors: r.u64()?,
                failovers: r.u64()?,
                reopens: r.u64()?,
                respawns: r.u64()?,
            };
            Response::Stats(WireStats { shards, router })
        }
        kind::SHUTDOWN_OK => Response::ShutdownAck,
        kind::ERR => Response::Err(WireError {
            code: ErrCode::from_u8(r.u8()?)?,
            message: r.str()?,
        }),
        other => return Err(format!("unknown response kind {other}")),
    };
    r.finish()?;
    Ok(resp)
}

/// Converts a step outcome into its wire response.
pub fn step_response(result: &Result<StepResult, SolverError>) -> Response {
    match result {
        Ok(sr) => Response::Step {
            state: sr.state,
            x: sr.x.clone(),
            quality: sr.quality.clone(),
        },
        Err(e) => Response::Err(WireError::from(e)),
    }
}

// -------------------------------------------------------------- hash --

/// The shared FNV-1a pattern hash (dimensions + colptr + rowind,
/// ignoring values): two matrices of the same pattern hash identically,
/// which is the property the router shards on — same-pattern streams
/// co-locate on one shard and share its symbolic analysis and
/// workspace pools. The same hash keys the session layer's learned
/// block-routing cache, so a shard's sibling streams inherit measured
/// routings too.
pub use basker_sparse::metrics::pattern_hash;

#[cfg(test)]
mod tests {
    use super::*;
    use basker_sparse::TripletMat;

    fn sample_matrix(n: usize) -> CscMat {
        let mut t = TripletMat::new(n, n);
        for i in 0..n {
            t.push(i, i, 10.0 + i as f64);
            if i + 1 < n {
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csc()
    }

    #[test]
    fn request_roundtrip() {
        let reqs = vec![
            Request::Ping,
            Request::Open(OpenRequest {
                engine: Engine::Klu,
                policy: ReusePolicy::Adaptive {
                    growth_limit: 1e4,
                    residual_limit: 1e-8,
                },
                target_residual: 1e-10,
                max_refine_iterations: 4,
                matrix: sample_matrix(5),
            }),
            Request::Step {
                stream: 7,
                refined: true,
                values: vec![1.0, -2.0, 3.5],
                rhs: vec![0.5; 5],
            },
            Request::Close { stream: 3 },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let (k, p) = encode_request(&req);
            let back = decode_request(k, &p).unwrap();
            // Spot-check the interesting fields.
            match (&req, &back) {
                (Request::Open(a), Request::Open(b)) => {
                    assert_eq!(a.engine, b.engine);
                    assert_eq!(a.policy, b.policy);
                    assert_eq!(a.matrix.colptr(), b.matrix.colptr());
                    assert_eq!(a.matrix.values(), b.matrix.values());
                }
                (
                    Request::Step {
                        stream,
                        values,
                        rhs,
                        ..
                    },
                    Request::Step {
                        stream: s2,
                        values: v2,
                        rhs: r2,
                        ..
                    },
                ) => {
                    assert_eq!((stream, values, rhs), (s2, v2, r2));
                }
                _ => assert_eq!(std::mem::discriminant(&req), std::mem::discriminant(&back)),
            }
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = vec![
            Response::Pong { epoch: 3 },
            Response::Opened {
                stream: 9,
                pattern_hash: 0xdead,
            },
            Response::Step {
                state: SessionState::Refactored,
                x: vec![1.0, 2.0],
                quality: vec![SolveQuality {
                    iterations: 2,
                    initial_residual: 1e-6,
                    residual: 1e-12,
                    converged: true,
                }],
            },
            Response::Closed,
            Response::Stats(WireStats {
                shards: vec![ShardStatsWire {
                    shard: 1,
                    epoch: 2,
                    team_width: 4,
                    streams: 10,
                    steps: 100,
                    errors: 1,
                    factors: 10,
                    refactors: 89,
                    occupancy: 0.75,
                    worst_residual: 1e-9,
                }],
                router: RouterWireStats {
                    routed_streams: 10,
                    steps: 100,
                    errors: 1,
                    failovers: 1,
                    reopens: 2,
                    respawns: 1,
                },
            }),
            Response::ShutdownAck,
            Response::Err(WireError {
                code: ErrCode::SingularPivot,
                message: "column 3".into(),
            }),
        ];
        for resp in resps {
            let (k, p) = encode_response(&resp);
            let back = decode_response(k, &p).unwrap();
            match (&resp, &back) {
                (Response::Stats(a), Response::Stats(b)) => assert_eq!(a, b),
                (Response::Err(a), Response::Err(b)) => assert_eq!(a, b),
                (
                    Response::Step { state, x, quality },
                    Response::Step {
                        state: s2,
                        x: x2,
                        quality: q2,
                    },
                ) => {
                    assert_eq!(state, s2);
                    assert_eq!(x, x2);
                    assert_eq!(quality.len(), q2.len());
                    assert_eq!(quality[0].iterations, q2[0].iterations);
                }
                _ => assert_eq!(std::mem::discriminant(&resp), std::mem::discriminant(&back)),
            }
        }
    }

    #[test]
    fn malformed_payloads_error_cleanly() {
        // Truncations of a full Open request must never panic.
        let (k, p) = encode_request(&Request::Open(OpenRequest {
            engine: Engine::Basker,
            policy: ReusePolicy::AlwaysFactor,
            target_residual: 1e-10,
            max_refine_iterations: 4,
            matrix: sample_matrix(6),
        }));
        for cut in 0..p.len() {
            assert!(decode_request(k, &p[..cut]).is_err(), "cut {cut}");
        }
        // Unknown kinds and trailing garbage are errors.
        assert!(decode_request(200, &[]).is_err());
        assert!(decode_response(3, &[]).is_err());
        let (k, mut p) = encode_request(&Request::Stats);
        p.push(0);
        assert!(decode_request(k, &p).is_err());
    }

    #[test]
    fn hostile_matrix_payload_rejected() {
        // Out-of-bounds row indices must be caught before they reach
        // from_parts_unchecked.
        let mut w = Wr::new();
        w.u32(3); // nrows
        w.u32(3); // ncols
        w.idx_slice(&[0, 1, 2, 3]);
        w.idx_slice(&[0, 1, 99]); // 99 >= nrows
        w.f64_slice(&[1.0, 1.0, 1.0]);
        let bytes = w.into_bytes();
        let mut r = Rd::new(&bytes);
        assert!(matrix_from_wire(&mut r).is_err());

        // Non-monotone colptr too.
        let mut w = Wr::new();
        w.u32(2);
        w.u32(2);
        w.idx_slice(&[0, 2, 1]);
        w.idx_slice(&[0, 1]);
        w.f64_slice(&[1.0, 1.0]);
        let bytes = w.into_bytes();
        assert!(matrix_from_wire(&mut Rd::new(&bytes)).is_err());
    }

    #[test]
    fn pattern_hash_ignores_values_but_not_structure() {
        let a = sample_matrix(8);
        let mut b = a.clone();
        for v in b.values_mut() {
            *v *= 3.0;
        }
        assert_eq!(pattern_hash(&a), pattern_hash(&b), "values must not matter");
        let c = sample_matrix(9);
        assert_ne!(pattern_hash(&a), pattern_hash(&c), "dimension matters");
        let mut t = TripletMat::new(8, 8);
        for i in 0..8 {
            t.push(i, i, 1.0);
        }
        let d = t.to_csc();
        assert_ne!(pattern_hash(&a), pattern_hash(&d), "pattern matters");
    }
}
