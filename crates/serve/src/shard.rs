//! Shard supervision: spawn `shardd` worker processes, watch their
//! health, and respawn crashed ones.
//!
//! Each shard is one OS process hosting one
//! [`SolverService`](basker_api::SolverService), listening on its own
//! Unix socket under the supervisor's directory. A shard's identity is
//! its **slot index**; its incarnation is the **epoch**, bumped on
//! every respawn. Routers cache connections per `(slot, epoch)` and
//! treat an epoch bump as "all streams on that shard are gone —
//! re-establish lazily".
//!
//! Crash detection is two-layered: a background health thread reaps
//! exited children (`try_wait`) and respawns them, and routers call
//! [`report_down`](ShardSet::report_down) the moment an I/O error
//! surfaces on a shard connection, which respawns synchronously so the
//! *next* request can already find a live process.

use crate::client::Client;
use crate::wire::Addr;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How to spawn and size the shard fleet.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Path to the `shardd` binary.
    pub shardd: PathBuf,
    /// Number of shard processes.
    pub shards: usize,
    /// Worker threads per shard (0 = the shard's default).
    pub threads: usize,
    /// Per-stream queue capacity inside each shard (0 = default).
    pub queue_cap: usize,
    /// Directory for the shards' Unix sockets.
    pub dir: PathBuf,
}

impl ShardSpec {
    /// A spec with defaults sized for tests.
    pub fn new(shardd: impl Into<PathBuf>, shards: usize, dir: impl Into<PathBuf>) -> ShardSpec {
        ShardSpec {
            shardd: shardd.into(),
            shards,
            threads: 0,
            queue_cap: 0,
            dir: dir.into(),
        }
    }
}

struct Slot {
    addr: Addr,
    child: Child,
    epoch: u64,
}

struct Inner {
    spec: ShardSpec,
    slots: Mutex<Vec<Slot>>,
    stop: AtomicBool,
    respawns: AtomicU64,
}

/// A supervised fleet of shard processes. Call
/// [`shutdown_all`](ShardSet::shutdown_all) before exiting — the
/// `Drop` impl backstops it, but a `ShardSet` shared through an `Arc`
/// with detached threads may never drop, and orphaned children
/// outlive the process.
pub struct ShardSet {
    inner: Arc<Inner>,
    health: Mutex<Option<thread::JoinHandle<()>>>,
}

/// The path of shard `i`'s socket under `dir`.
fn sock_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard{i}.sock"))
}

fn spawn_child(spec: &ShardSpec, i: usize, epoch: u64) -> io::Result<Slot> {
    let path = sock_path(&spec.dir, i);
    let _ = std::fs::remove_file(&path); // stale socket from a dead epoch
    let addr = Addr::Uds(path);
    let mut cmd = Command::new(&spec.shardd);
    cmd.arg("--listen")
        .arg(addr.to_string())
        .arg("--shard")
        .arg(i.to_string())
        .arg("--epoch")
        .arg(epoch.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    if spec.threads > 0 {
        cmd.arg("--threads").arg(spec.threads.to_string());
    }
    if spec.queue_cap > 0 {
        cmd.arg("--queue-cap").arg(spec.queue_cap.to_string());
    }
    let child = cmd.spawn()?;
    let slot = Slot { addr, child, epoch };
    wait_ready(&slot.addr, epoch, Duration::from_secs(30))?;
    Ok(slot)
}

/// Pings `addr` until the expected epoch answers or the deadline hits.
fn wait_ready(addr: &Addr, epoch: u64, deadline: Duration) -> io::Result<()> {
    let start = Instant::now();
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            let _ = c.set_read_timeout(Some(Duration::from_millis(500)));
            if let Ok(e) = c.ping() {
                if e == epoch {
                    return Ok(());
                }
            }
        }
        if start.elapsed() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("shard at {addr} not ready after {deadline:?}"),
            ));
        }
        thread::sleep(Duration::from_millis(20));
    }
}

impl ShardSet {
    /// Spawns the fleet and waits until every shard answers pings.
    pub fn spawn(spec: ShardSpec) -> io::Result<ShardSet> {
        std::fs::create_dir_all(&spec.dir)?;
        let mut slots = Vec::with_capacity(spec.shards);
        for i in 0..spec.shards {
            slots.push(spawn_child(&spec, i, 0)?);
        }
        let inner = Arc::new(Inner {
            spec,
            slots: Mutex::new(slots),
            stop: AtomicBool::new(false),
            respawns: AtomicU64::new(0),
        });
        let health = {
            let inner = inner.clone();
            thread::spawn(move || health_loop(&inner))
        };
        Ok(ShardSet {
            inner,
            health: Mutex::new(Some(health)),
        })
    }

    /// Number of shard slots.
    pub fn num_shards(&self) -> usize {
        self.inner.spec.shards
    }

    /// The socket address of slot `i`.
    pub fn addr(&self, i: usize) -> Addr {
        self.inner.slots.lock().unwrap()[i].addr.clone()
    }

    /// The current epoch of slot `i`.
    pub fn epoch(&self, i: usize) -> u64 {
        self.inner.slots.lock().unwrap()[i].epoch
    }

    /// Total respawns performed so far.
    pub fn respawns(&self) -> u64 {
        // ORDER: SeqCst — respawn accounting on the crash-recovery
        // path; cold enough that the strongest ordering is free and
        // keeps failover assertions exact across observer threads.
        self.inner.respawns.load(Ordering::SeqCst)
    }

    /// Hard-kills slot `i`'s process (for crash-injection tests). The
    /// health thread or the next [`report_down`](ShardSet::report_down)
    /// respawns it.
    pub fn kill(&self, i: usize) {
        let mut slots = self.inner.slots.lock().unwrap();
        let _ = slots[i].child.kill();
        let _ = slots[i].child.wait();
    }

    /// A router observed an I/O failure on slot `i` at `epoch`.
    /// Respawns the shard synchronously unless someone already did
    /// (the epoch moved on). Returns the epoch now serving.
    pub fn report_down(&self, i: usize, epoch: u64) -> u64 {
        let mut slots = self.inner.slots.lock().unwrap();
        // ORDER: SeqCst — shutdown latch read on the failover path
        // (cold; pairs with the `stop` store in `shutdown`).
        if slots[i].epoch != epoch || self.inner.stop.load(Ordering::SeqCst) {
            return slots[i].epoch; // already respawned (or shutting down)
        }
        let next = epoch + 1;
        let _ = slots[i].child.kill();
        let _ = slots[i].child.wait();
        match spawn_child(&self.inner.spec, i, next) {
            Ok(slot) => {
                slots[i] = slot;
                // ORDER: SeqCst — crash-recovery accounting (see
                // `respawns`).
                self.inner.respawns.fetch_add(1, Ordering::SeqCst);
            }
            Err(e) => {
                eprintln!("shard {i}: respawn failed: {e}");
            }
        }
        slots[i].epoch
    }

    /// Gracefully shuts down every shard (wire `Shutdown`, then kill
    /// stragglers) and stops the health thread. Idempotent.
    pub fn shutdown_all(&self) {
        // ORDER: SeqCst — one-shot shutdown latch (cold path); the
        // monitor and routers re-check it after every blocking step.
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.health.lock().unwrap().take() {
            let _ = h.join();
        }
        let mut slots = self.inner.slots.lock().unwrap();
        for slot in slots.iter_mut() {
            let polite = Client::connect(&slot.addr).ok().and_then(|mut c| {
                let _ = c.set_read_timeout(Some(Duration::from_secs(5)));
                c.shutdown().ok()
            });
            if polite.is_none() {
                let _ = slot.child.kill();
            }
            let _ = slot.child.wait();
            if let Addr::Uds(p) = &slot.addr {
                let _ = std::fs::remove_file(p);
            }
        }
    }
}

impl Drop for ShardSet {
    fn drop(&mut self) {
        self.shutdown_all();
    }
}

fn health_loop(inner: &Inner) {
    // ORDER: SeqCst ×3 — shutdown latch reads in the monitor loop
    // (cold; pairs with the `shutdown` store).
    while !inner.stop.load(Ordering::SeqCst) {
        thread::sleep(Duration::from_millis(100));
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let mut slots = inner.slots.lock().unwrap();
        for i in 0..slots.len() {
            let exited = matches!(slots[i].child.try_wait(), Ok(Some(_)));
            if !exited {
                continue;
            }
            // ORDER: SeqCst — re-check the shutdown latch before a
            // respawn (cold; pairs with the `shutdown` store).
            if inner.stop.load(Ordering::SeqCst) {
                return;
            }
            let next = slots[i].epoch + 1;
            match spawn_child(&inner.spec, i, next) {
                Ok(slot) => {
                    slots[i] = slot;
                    // ORDER: SeqCst — crash-recovery accounting
                    // (see `respawns`).
                    inner.respawns.fetch_add(1, Ordering::SeqCst);
                }
                Err(e) => {
                    eprintln!("shard {i}: health respawn failed: {e}");
                }
            }
        }
    }
}

/// The path of the `shardd` binary next to the currently running
/// executable (harnesses and `shardd` build into the same target dir).
pub fn sibling_shardd() -> io::Result<PathBuf> {
    let me = std::env::current_exe()?;
    let dir = me
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "current_exe has no parent dir"))?;
    let cand = dir.join("shardd");
    if cand.exists() {
        return Ok(cand);
    }
    // Integration tests run from target/<profile>/deps; the bins live
    // one level up.
    if let Some(up) = dir.parent() {
        let cand = up.join("shardd");
        if cand.exists() {
            return Ok(cand);
        }
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        format!("shardd binary not found near {}", me.display()),
    ))
}
