//! Sparse triangular solves with dense right-hand sides.
//!
//! These operate on *actually triangular* CSC matrices (as produced by the
//! factorization crates after pivot application). Lower-triangular columns
//! store the diagonal as their first entry; upper-triangular columns store
//! it as their last. The factorization crates' internal solves (which chase
//! fill patterns with DFS) live next to the factorizations; these kernels
//! serve the final `Ax = b` forward/backward substitution sweeps.

use crate::csc::CscMat;

/// Solves `L·x = b` in place (`b` becomes `x`).
///
/// `unit_diag`: when true the diagonal is implicitly 1 and any stored
/// diagonal entry is ignored.
pub fn lower_solve_in_place(l: &CscMat, b: &mut [f64], unit_diag: bool) {
    let n = l.ncols();
    assert_eq!(l.nrows(), n);
    assert_eq!(b.len(), n);
    let ks = basker_kernels::active();
    for j in 0..n {
        let rows = l.col_rows(j);
        let vals = l.col_values(j);
        if rows.is_empty() {
            continue;
        }
        debug_assert_eq!(rows[0], j, "L column {j} must start at the diagonal");
        let xj = if unit_diag { b[j] } else { b[j] / vals[0] };
        b[j] = xj;
        if xj != 0.0 {
            ks.scatter_axpy(b, &rows[1..], &vals[1..], -xj);
        }
    }
}

/// Solves `U·x = b` in place (backward substitution).
pub fn upper_solve_in_place(u: &CscMat, b: &mut [f64]) {
    let n = u.ncols();
    assert_eq!(u.nrows(), n);
    assert_eq!(b.len(), n);
    let ks = basker_kernels::active();
    for j in (0..n).rev() {
        let rows = u.col_rows(j);
        let vals = u.col_values(j);
        if rows.is_empty() {
            continue;
        }
        let last = rows.len() - 1;
        debug_assert_eq!(rows[last], j, "U column {j} must end at the diagonal");
        let xj = b[j] / vals[last];
        b[j] = xj;
        if xj != 0.0 {
            ks.scatter_axpy(b, &rows[..last], &vals[..last], -xj);
        }
    }
}

/// Solves `Lᵀ·x = b` in place (used by transpose solves).
pub fn lower_solve_t_in_place(l: &CscMat, b: &mut [f64], unit_diag: bool) {
    let n = l.ncols();
    assert_eq!(l.nrows(), n);
    assert_eq!(b.len(), n);
    let ks = basker_kernels::active();
    for j in (0..n).rev() {
        let rows = l.col_rows(j);
        let vals = l.col_values(j);
        if rows.is_empty() {
            continue;
        }
        debug_assert_eq!(rows[0], j);
        let acc = b[j] - ks.gather_dot(b, &rows[1..], &vals[1..]);
        b[j] = if unit_diag { acc } else { acc / vals[0] };
    }
}

/// Solves `Uᵀ·x = b` in place.
pub fn upper_solve_t_in_place(u: &CscMat, b: &mut [f64]) {
    let n = u.ncols();
    assert_eq!(u.nrows(), n);
    assert_eq!(b.len(), n);
    let ks = basker_kernels::active();
    for j in 0..n {
        let rows = u.col_rows(j);
        let vals = u.col_values(j);
        if rows.is_empty() {
            continue;
        }
        let last = rows.len() - 1;
        debug_assert_eq!(rows[last], j);
        let acc = b[j] - ks.gather_dot(b, &rows[..last], &vals[..last]);
        b[j] = acc / vals[last];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmv;

    fn lower() -> CscMat {
        CscMat::from_dense(&[
            vec![2.0, 0.0, 0.0],
            vec![1.0, 4.0, 0.0],
            vec![3.0, 5.0, 6.0],
        ])
    }

    fn upper() -> CscMat {
        CscMat::from_dense(&[
            vec![2.0, 1.0, 3.0],
            vec![0.0, 4.0, 5.0],
            vec![0.0, 0.0, 6.0],
        ])
    }

    #[test]
    fn lower_solve_matches_product() {
        let l = lower();
        let x = [1.0, -2.0, 0.5];
        let mut b = spmv(&l, &x);
        lower_solve_in_place(&l, &mut b, false);
        for (got, want) in b.iter().zip(x.iter()) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_lower_solve() {
        // L with implicit unit diagonal: stored diag values should be ignored.
        let l = CscMat::from_dense(&[
            vec![1.0, 0.0],
            vec![7.0, 1.0], // the 7 is the only meaningful off-diag
        ]);
        let mut b = vec![2.0, 15.0];
        lower_solve_in_place(&l, &mut b, true);
        assert_eq!(b, vec![2.0, 1.0]);
    }

    #[test]
    fn upper_solve_matches_product() {
        let u = upper();
        let x = [3.0, 0.0, -1.0];
        let mut b = spmv(&u, &x);
        upper_solve_in_place(&u, &mut b);
        for (got, want) in b.iter().zip(x.iter()) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_solves() {
        let l = lower();
        let u = upper();
        let x = [1.0, 2.0, 3.0];
        // Lᵀ x
        let bt = spmv(&l.transpose(), &x);
        let mut b = bt.clone();
        lower_solve_t_in_place(&l, &mut b, false);
        for (got, want) in b.iter().zip(x.iter()) {
            assert!((got - want).abs() < 1e-12);
        }
        // Uᵀ x
        let bt = spmv(&u.transpose(), &x);
        let mut b = bt.clone();
        upper_solve_t_in_place(&u, &mut b);
        for (got, want) in b.iter().zip(x.iter()) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_matrix_solves_trivially() {
        let l = CscMat::zero(0, 0);
        let mut b: Vec<f64> = vec![];
        lower_solve_in_place(&l, &mut b, false);
        upper_solve_in_place(&l, &mut b);
    }
}
