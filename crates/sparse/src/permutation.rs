//! Permutations and their application to vectors and matrices.

use crate::csc::CscMat;
use crate::{Result, SparseError};

/// A permutation of `0..n`.
///
/// Stored in "gather" convention: `perm[new] = old`, i.e. position `new` of
/// the permuted object is filled from position `old` of the original. With
/// this convention, applying a `Perm` `p` to a vector `x` yields
/// `y[k] = x[p[k]]`, and permuting the rows of a matrix `A` produces `P·A`
/// whose row `k` is row `p[k]` of `A`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Perm {
    perm: Vec<usize>,
}

impl Perm {
    /// Identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        Perm {
            perm: (0..n).collect(),
        }
    }

    /// Builds from a gather vector, validating it is a bijection on `0..n`.
    pub fn from_vec(perm: Vec<usize>) -> Result<Self> {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            if p >= n {
                return Err(SparseError::IndexOutOfBounds { index: p, bound: n });
            }
            if seen[p] {
                return Err(SparseError::InvalidStructure(format!(
                    "duplicate index {p} in permutation"
                )));
            }
            seen[p] = true;
        }
        Ok(Perm { perm })
    }

    /// Builds without validation (debug-asserted).
    pub fn from_vec_unchecked(perm: Vec<usize>) -> Self {
        debug_assert!(Perm::from_vec(perm.clone()).is_ok());
        Perm { perm }
    }

    /// Length of the permuted range.
    #[inline]
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True for the length-0 permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The gather vector: `as_slice()[new] = old`.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// `true` when this is the identity.
    pub fn is_identity(&self) -> bool {
        self.perm.iter().enumerate().all(|(i, &p)| i == p)
    }

    /// The inverse permutation (`inv[old] = new`).
    pub fn inverse(&self) -> Perm {
        let mut inv = vec![0usize; self.perm.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            inv[old] = new;
        }
        Perm { perm: inv }
    }

    /// Composition "apply `self` first, then `after`":
    /// `(self.then(after))[k] = self[after[k]]`.
    pub fn then(&self, after: &Perm) -> Perm {
        assert_eq!(self.len(), after.len());
        Perm {
            perm: after.perm.iter().map(|&k| self.perm[k]).collect(),
        }
    }

    /// Applies to a vector: `y[k] = x[perm[k]]`.
    pub fn apply_vec<T: Copy>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.perm.len());
        self.perm.iter().map(|&old| x[old]).collect()
    }

    /// Applies into a caller-provided buffer: `y[k] = x[perm[k]]`.
    /// Allocation-free counterpart of [`Perm::apply_vec`]; `x` and `y`
    /// must not alias.
    pub fn apply_vec_into<T: Copy>(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.perm.len());
        assert_eq!(y.len(), self.perm.len());
        for (yk, &old) in y.iter_mut().zip(self.perm.iter()) {
            *yk = x[old];
        }
    }

    /// Scatters into a caller-provided buffer: `y[perm[k]] = x[k]`, i.e.
    /// applies the inverse without allocating.
    pub fn apply_inv_vec_into<T: Copy>(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.perm.len());
        assert_eq!(y.len(), self.perm.len());
        for (new, &old) in self.perm.iter().enumerate() {
            y[old] = x[new];
        }
    }

    /// Scatters into a vector: `y[inv[k]] = x[k]`, i.e. applies the inverse.
    pub fn apply_inv_vec<T: Copy + Default>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.perm.len());
        let mut y = vec![T::default(); x.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            y[old] = x[new];
        }
        y
    }

    /// Row-permutes: returns `P·A` (row `k` of the result is row `perm[k]`
    /// of `A`).
    pub fn permute_rows(&self, a: &CscMat) -> CscMat {
        assert_eq!(self.len(), a.nrows(), "row permutation length mismatch");
        let inv = self.inverse();
        let inv = inv.as_slice();
        let mut colptr = Vec::with_capacity(a.ncols() + 1);
        let mut rowind = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        colptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..a.ncols() {
            scratch.clear();
            for (i, v) in a.col_iter(j) {
                scratch.push((inv[i], v));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            for &(r, v) in &scratch {
                rowind.push(r);
                values.push(v);
            }
            colptr.push(rowind.len());
        }
        // SAFETY: rows were remapped through a permutation (in-bounds,
        // unique) and re-sorted per column; `colptr` tracks `rowind.len()`.
        unsafe { CscMat::from_parts_unchecked(a.nrows(), a.ncols(), colptr, rowind, values) }
    }

    /// Column-permutes: returns `A·Pᵀ` in the sense that column `k` of the
    /// result is column `perm[k]` of `A`.
    pub fn permute_cols(&self, a: &CscMat) -> CscMat {
        assert_eq!(self.len(), a.ncols(), "column permutation length mismatch");
        let mut colptr = Vec::with_capacity(a.ncols() + 1);
        let mut rowind = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        colptr.push(0);
        for &old_j in &self.perm {
            rowind.extend_from_slice(a.col_rows(old_j));
            values.extend_from_slice(a.col_values(old_j));
            colptr.push(rowind.len());
        }
        // SAFETY: whole columns of the valid source are copied intact
        // (sorted, in-bounds); only the column order changes.
        unsafe { CscMat::from_parts_unchecked(a.nrows(), a.ncols(), colptr, rowind, values) }
    }

    /// Applies row and column permutations together: `P·A·Qᵀ` with
    /// `result[i, j] = A[prow[i], pcol[j]]`.
    pub fn permute_both(prow: &Perm, pcol: &Perm, a: &CscMat) -> CscMat {
        prow.permute_rows(&pcol.permute_cols(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Perm::from_vec(vec![2, 0, 1]).is_ok());
        assert!(Perm::from_vec(vec![0, 0, 1]).is_err());
        assert!(Perm::from_vec(vec![0, 3]).is_err());
    }

    #[test]
    fn inverse_and_compose() {
        let p = Perm::from_vec(vec![2, 0, 1]).unwrap();
        let inv = p.inverse();
        assert!(p.then(&inv).is_identity() || inv.then(&p).is_identity());
        // p then inv: (p.then(inv))[k] = p[inv[k]]; p[inv[old]=?]...
        // Both compositions must be identity for a bijection:
        assert!(p.then(&inv).is_identity());
        assert!(inv.then(&p).is_identity());
    }

    #[test]
    fn vector_application() {
        let p = Perm::from_vec(vec![2, 0, 1]).unwrap();
        let x = [10.0, 20.0, 30.0];
        assert_eq!(p.apply_vec(&x), vec![30.0, 10.0, 20.0]);
        let y = p.apply_vec(&x);
        assert_eq!(p.apply_inv_vec(&y), x.to_vec());
    }

    #[test]
    fn row_permutation_moves_rows() {
        // A = [1 2; 3 4], p = [1,0] -> PA = [3 4; 1 2]
        let a = CscMat::from_dense(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let p = Perm::from_vec(vec![1, 0]).unwrap();
        let pa = p.permute_rows(&a);
        assert_eq!(pa.to_dense(), vec![vec![3.0, 4.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn col_permutation_moves_cols() {
        let a = CscMat::from_dense(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let p = Perm::from_vec(vec![1, 0]).unwrap();
        let ap = p.permute_cols(&a);
        assert_eq!(ap.to_dense(), vec![vec![2.0, 1.0], vec![4.0, 3.0]]);
    }

    #[test]
    fn permute_both_matches_elementwise_rule() {
        let a = CscMat::from_dense(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let pr = Perm::from_vec(vec![2, 0, 1]).unwrap();
        let pc = Perm::from_vec(vec![1, 2, 0]).unwrap();
        let b = Perm::permute_both(&pr, &pc, &a);
        let ad = a.to_dense();
        let bd = b.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(bd[i][j], ad[pr.as_slice()[i]][pc.as_slice()[j]]);
            }
        }
    }
}
