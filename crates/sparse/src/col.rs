//! Single sparse columns — the hand-off unit of Basker's pipelined
//! separator factorization.
//!
//! The paper's numeric phase streams separator block columns through the
//! thread team *one column at a time*: a leaf publishes column `c` of its
//! `U` panel while the separator owner is still eliminating column
//! `c − 1`. [`SparseCol`] is the payload of that hand-off, and
//! [`cols_to_csc`] reassembles a published column sequence into the
//! [`CscMat`] the factor storage uses.

use crate::CscMat;

/// One sparse column: row indices sorted ascending and unique, with one
/// value per index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseCol {
    /// Sorted, unique row indices.
    pub rows: Vec<usize>,
    /// Values matching `rows`.
    pub vals: Vec<f64>,
}

impl SparseCol {
    /// Builds a column, debug-asserting the sorted/unique invariant.
    pub fn new(rows: Vec<usize>, vals: Vec<f64>) -> SparseCol {
        debug_assert_eq!(rows.len(), vals.len());
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows not sorted");
        SparseCol { rows, vals }
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Iterates `(row, value)` pairs in row order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.rows.iter().copied().zip(self.vals.iter().copied())
    }
}

/// Assembles a dense sequence of columns into an `nrows x cols.len()`
/// CSC matrix (the inverse of reading a [`CscMat`] column by column).
pub fn cols_to_csc(nrows: usize, cols: Vec<SparseCol>) -> CscMat {
    let ncols = cols.len();
    let nnz: usize = cols.iter().map(|c| c.nnz()).sum();
    let mut colptr = Vec::with_capacity(ncols + 1);
    let mut rowind = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    colptr.push(0);
    for col in cols {
        debug_assert!(col.rows.iter().all(|&r| r < nrows));
        rowind.extend_from_slice(&col.rows);
        values.extend_from_slice(&col.vals);
        colptr.push(rowind.len());
    }
    // SAFETY: every `SparseCol` holds sorted, unique rows (its documented
    // contract, debug-asserted in-bounds above) and `colptr` tracks
    // `rowind.len()`.
    unsafe { CscMat::from_parts_unchecked(nrows, ncols, colptr, rowind, values) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_columns() {
        let a = CscMat::from_dense(&[
            vec![1.0, 0.0, 2.0],
            vec![0.0, 3.0, 0.0],
            vec![4.0, 0.0, 5.0],
        ]);
        let cols: Vec<SparseCol> = (0..a.ncols())
            .map(|j| SparseCol::new(a.col_rows(j).to_vec(), a.col_values(j).to_vec()))
            .collect();
        assert_eq!(cols[0].nnz(), 2);
        assert_eq!(cols[0].iter().collect::<Vec<_>>(), vec![(0, 1.0), (2, 4.0)]);
        let b = cols_to_csc(a.nrows(), cols);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_columns_allowed() {
        let m = cols_to_csc(4, vec![SparseCol::default(), SparseCol::default()]);
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.nnz(), 0);
    }
}
