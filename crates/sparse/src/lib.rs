//! Sparse-matrix substrate for the Basker reproduction.
//!
//! This crate provides the storage formats and kernels every other crate in
//! the workspace builds on:
//!
//! * [`CscMat`] — compressed sparse column storage, the layout Basker's 2-D
//!   blocks use (paper §IV, "Data Layout").
//! * [`CsrMat`] — compressed sparse row storage, used by graph algorithms
//!   that need row-wise adjacency.
//! * [`TripletMat`] — coordinate-format builder with duplicate summing.
//! * [`Perm`] — permutations with forward and inverse views, composition and
//!   application to matrices and vectors.
//! * Block extraction ([`blocks`]), sparse matrix–vector products
//!   ([`spmv`]), sparse triangular solves ([`trisolve`]), Matrix Market I/O
//!   ([`io`]), norm/residual utilities ([`util`]) and pattern-level
//!   structure metrics + the shared pattern hash ([`metrics`]).
//!
//! All matrices hold `f64` values and use `usize` indices. Row indices
//! within each column are kept **sorted and unique** by every constructor;
//! algorithms that produce unsorted patterns (e.g. Gilbert–Peierls fills)
//! normalise before constructing a `CscMat`.

#![warn(missing_docs)]

pub mod blocks;
pub mod col;
pub mod csc;
pub mod csr;
pub mod io;
pub mod metrics;
pub mod permutation;
pub mod spmv;
pub mod triplet;
pub mod trisolve;
pub mod util;
pub mod workspace;

pub use col::SparseCol;
pub use csc::CscMat;
pub use csr::CsrMat;
pub use permutation::Perm;
pub use triplet::TripletMat;
pub use workspace::SolveWorkspace;

/// Errors shared across the workspace's sparse kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// Dimensions of operands do not line up.
    DimensionMismatch {
        /// The `(rows, cols)` the operation required.
        expected: (usize, usize),
        /// The `(rows, cols)` it was given.
        found: (usize, usize),
    },
    /// A structural invariant of a format was violated (message explains).
    InvalidStructure(String),
    /// Index out of bounds while building or slicing a matrix.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
    /// A numerically zero (or below-threshold) pivot was encountered at the
    /// given elimination step; the matrix is singular to working precision.
    ZeroPivot {
        /// Global (permuted) column index of the failed pivot.
        column: usize,
    },
    /// The matrix is structurally singular: no full transversal exists.
    StructurallySingular {
        /// The structural rank found (size of the maximum matching).
        rank: usize,
    },
    /// Parse or I/O failure while reading an external matrix file.
    Io(String),
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            SparseError::InvalidStructure(msg) => write!(f, "invalid structure: {msg}"),
            SparseError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (< {bound} required)")
            }
            SparseError::ZeroPivot { column } => {
                write!(f, "zero pivot encountered at column {column}")
            }
            SparseError::StructurallySingular { rank } => {
                write!(f, "structurally singular matrix (structural rank {rank})")
            }
            SparseError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SparseError>;
