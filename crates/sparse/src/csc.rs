//! Compressed sparse column matrices.

use crate::{Result, SparseError};

/// A sparse matrix in compressed sparse column (CSC) format.
///
/// Storage is the classic three-array layout: `colptr` has `ncols + 1`
/// entries, and for column `j` the row indices and values of its nonzeros
/// live in `rowind[colptr[j]..colptr[j+1]]` / `values[...]`. Constructors
/// enforce that row indices are in-bounds, strictly increasing within each
/// column (sorted, duplicate-free).
///
/// This is the element format of Basker's hierarchical 2-D layout: each
/// block of the hierarchy is one `CscMat` (paper §IV).
#[derive(Clone, PartialEq)]
pub struct CscMat {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowind: Vec<usize>,
    values: Vec<f64>,
}

impl std::fmt::Debug for CscMat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CscMat({}x{}, nnz={})",
            self.nrows,
            self.ncols,
            self.nnz()
        )
    }
}

impl CscMat {
    /// Builds a matrix from raw CSC arrays, validating every invariant.
    pub fn new(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowind: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if colptr.len() != ncols + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "colptr length {} != ncols + 1 = {}",
                colptr.len(),
                ncols + 1
            )));
        }
        if colptr[0] != 0 {
            return Err(SparseError::InvalidStructure(
                "colptr[0] must be 0".to_string(),
            ));
        }
        if rowind.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "rowind length {} != values length {}",
                rowind.len(),
                values.len()
            )));
        }
        if *colptr.last().unwrap() != rowind.len() {
            return Err(SparseError::InvalidStructure(format!(
                "colptr[ncols] = {} != nnz = {}",
                colptr[ncols],
                rowind.len()
            )));
        }
        for j in 0..ncols {
            if colptr[j] > colptr[j + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "colptr not monotone at column {j}"
                )));
            }
            let col = &rowind[colptr[j]..colptr[j + 1]];
            for (k, &r) in col.iter().enumerate() {
                if r >= nrows {
                    return Err(SparseError::IndexOutOfBounds {
                        index: r,
                        bound: nrows,
                    });
                }
                if k > 0 && col[k - 1] >= r {
                    return Err(SparseError::InvalidStructure(format!(
                        "row indices not strictly increasing in column {j}"
                    )));
                }
            }
        }
        Ok(CscMat {
            nrows,
            ncols,
            colptr,
            rowind,
            values,
        })
    }

    /// Builds a matrix from raw arrays **without** validation.
    ///
    /// This exists for hot paths that construct already-normalised data
    /// (factor assembly). Debug builds still assert the invariants.
    ///
    /// # Safety
    ///
    /// The arrays must satisfy every invariant [`CscMat::new`] checks:
    /// `colptr` has `ncols + 1` monotone entries starting at 0, `rowind`
    /// and `values` have `colptr[ncols]` entries, and each column's row
    /// indices are strictly increasing and below `nrows`. Downstream
    /// code indexes by these arrays without bounds re-checks, so a
    /// malformed matrix is undefined behavior, not just a wrong answer.
    pub unsafe fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowind: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert!(
            CscMat::new(nrows, ncols, colptr.clone(), rowind.clone(), values.clone()).is_ok(),
            "from_parts_unchecked given invalid CSC arrays"
        );
        CscMat {
            nrows,
            ncols,
            colptr,
            rowind,
            values,
        }
    }

    /// An `nrows x ncols` matrix with no stored entries.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        CscMat {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowind: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        CscMat {
            nrows: n,
            ncols: n,
            colptr: (0..=n).collect(),
            rowind: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of explicitly stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rowind.len()
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// The column-pointer array (`ncols + 1` entries).
    #[inline]
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// All row indices, concatenated column by column.
    #[inline]
    pub fn rowind(&self) -> &[usize] {
        &self.rowind
    }

    /// All values, concatenated column by column.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (pattern is fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Row indices of column `j`.
    #[inline]
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.rowind[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Values of column `j`.
    #[inline]
    pub fn col_values(&self, j: usize) -> &[f64] {
        &self.values[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Iterator over `(row, value)` pairs of column `j`.
    #[inline]
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.col_rows(j)
            .iter()
            .copied()
            .zip(self.col_values(j).iter().copied())
    }

    /// Iterator over all `(row, col, value)` triplets in column order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.ncols).flat_map(move |j| self.col_iter(j).map(move |(i, v)| (i, j, v)))
    }

    /// Looks up entry `(i, j)`, returning 0.0 when not stored.
    ///
    /// Binary search over the (sorted) column — O(log nnz(col)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.nrows && j < self.ncols,
            "get({i},{j}) out of bounds"
        );
        match self.col_rows(j).binary_search(&i) {
            Ok(k) => self.values[self.colptr[j] + k],
            Err(_) => 0.0,
        }
    }

    /// The transpose, produced with the classic counting pass; output
    /// columns are automatically sorted.
    pub fn transpose(&self) -> CscMat {
        let mut colptr = vec![0usize; self.nrows + 1];
        for &r in &self.rowind {
            colptr[r + 1] += 1;
        }
        for i in 0..self.nrows {
            colptr[i + 1] += colptr[i];
        }
        let mut rowind = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut next = colptr.clone();
        for j in 0..self.ncols {
            for (i, v) in self.col_iter(j) {
                let dst = next[i];
                rowind[dst] = j;
                values[dst] = v;
                next[i] += 1;
            }
        }
        CscMat {
            nrows: self.ncols,
            ncols: self.nrows,
            colptr,
            rowind,
            values,
        }
    }

    /// Structural pattern of `A + Aᵀ` (values are the sums; diagonal kept).
    ///
    /// Orderings on unsymmetric matrices operate on this symmetrisation
    /// (paper §II: ND uses `G(A + Aᵀ)` when `A` is unsymmetric).
    pub fn symmetrize(&self) -> CscMat {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        let t = self.transpose();
        add_patterns(self, &t)
    }

    /// Drops entries with `|value| <= tol`, returning the pruned matrix.
    pub fn drop_tolerance(&self, tol: f64) -> CscMat {
        let mut colptr = Vec::with_capacity(self.ncols + 1);
        let mut rowind = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        colptr.push(0);
        for j in 0..self.ncols {
            for (i, v) in self.col_iter(j) {
                if v.abs() > tol {
                    rowind.push(i);
                    values.push(v);
                }
            }
            colptr.push(rowind.len());
        }
        CscMat {
            nrows: self.nrows,
            ncols: self.ncols,
            colptr,
            rowind,
            values,
        }
    }

    /// Densifies into row-major storage. Intended for tests and tiny blocks.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for (i, j, v) in self.iter() {
            d[i][j] += v;
        }
        d
    }

    /// Builds from a dense row-major slice, dropping exact zeros.
    pub fn from_dense(rows: &[Vec<f64>]) -> CscMat {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut colptr = Vec::with_capacity(ncols + 1);
        let mut rowind = Vec::new();
        let mut values = Vec::new();
        colptr.push(0);
        for j in 0..ncols {
            for (i, row) in rows.iter().enumerate() {
                if row[j] != 0.0 {
                    rowind.push(i);
                    values.push(row[j]);
                }
            }
            colptr.push(rowind.len());
        }
        CscMat {
            nrows,
            ncols,
            colptr,
            rowind,
            values,
        }
    }

    /// Scales column `j` by `s`.
    pub fn scale_col(&mut self, j: usize, s: f64) {
        let (lo, hi) = (self.colptr[j], self.colptr[j + 1]);
        for v in &mut self.values[lo..hi] {
            *v *= s;
        }
    }

    /// Returns the value of the diagonal entry of column `j` (0.0 if absent).
    pub fn diag(&self, j: usize) -> f64 {
        self.get(j, j)
    }

    /// Checks structural symmetry (pattern only).
    pub fn is_pattern_symmetric(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        let t = self.transpose();
        self.colptr == t.colptr && self.rowind == t.rowind
    }
}

/// Pattern/value union of two equally sized matrices (`A + B`).
pub fn add_patterns(a: &CscMat, b: &CscMat) -> CscMat {
    assert_eq!(a.nrows, b.nrows);
    assert_eq!(a.ncols, b.ncols);
    let mut colptr = Vec::with_capacity(a.ncols + 1);
    let mut rowind = Vec::with_capacity(a.nnz() + b.nnz());
    let mut values = Vec::with_capacity(a.nnz() + b.nnz());
    colptr.push(0);
    for j in 0..a.ncols {
        // Merge two sorted runs.
        let (ar, av) = (a.col_rows(j), a.col_values(j));
        let (br, bv) = (b.col_rows(j), b.col_values(j));
        let (mut x, mut y) = (0usize, 0usize);
        while x < ar.len() || y < br.len() {
            if y >= br.len() || (x < ar.len() && ar[x] < br[y]) {
                rowind.push(ar[x]);
                values.push(av[x]);
                x += 1;
            } else if x >= ar.len() || br[y] < ar[x] {
                rowind.push(br[y]);
                values.push(bv[y]);
                y += 1;
            } else {
                rowind.push(ar[x]);
                values.push(av[x] + bv[y]);
                x += 1;
                y += 1;
            }
        }
        colptr.push(rowind.len());
    }
    CscMat {
        nrows: a.nrows,
        ncols: a.ncols,
        colptr,
        rowind,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CscMat {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        CscMat::new(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 2],
            vec![1.0, 4.0, 3.0, 2.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let a = small();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(2, 0), 4.0);
        assert_eq!(a.get(1, 1), 3.0);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(2, 2), 5.0);
        assert_eq!(a.get(1, 0), 0.0);
    }

    #[test]
    fn rejects_bad_colptr() {
        assert!(CscMat::new(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMat::new(2, 2, vec![1, 1, 1], vec![], vec![]).is_err());
        assert!(CscMat::new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn rejects_unsorted_rows() {
        assert!(CscMat::new(3, 1, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        assert!(CscMat::new(3, 1, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_row() {
        assert!(CscMat::new(2, 1, vec![0, 1], vec![5], vec![1.0]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = small();
        let t = a.transpose();
        assert_eq!(t.get(0, 2), 4.0);
        assert_eq!(t.get(2, 0), 2.0);
        let tt = t.transpose();
        assert_eq!(a, tt);
    }

    #[test]
    fn identity_and_zero() {
        let i = CscMat::identity(4);
        assert_eq!(i.nnz(), 4);
        for k in 0..4 {
            assert_eq!(i.get(k, k), 1.0);
        }
        let z = CscMat::zero(3, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.ncols(), 5);
    }

    #[test]
    fn dense_roundtrip() {
        let a = small();
        let d = a.to_dense();
        assert_eq!(d[2][2], 5.0);
        let b = CscMat::from_dense(&d);
        assert_eq!(a, b);
    }

    #[test]
    fn symmetrize_makes_symmetric_pattern() {
        let a = small();
        let s = a.symmetrize();
        assert!(s.is_pattern_symmetric());
        // a(0,2)=2, a(2,0)=4 -> s(0,2)=s(2,0)... values are sums: 2+4=6.
        assert_eq!(s.get(0, 2), 6.0);
        assert_eq!(s.get(2, 0), 6.0);
        assert_eq!(s.get(0, 0), 2.0);
    }

    #[test]
    fn drop_tolerance_prunes() {
        let a = small();
        let p = a.drop_tolerance(2.5);
        assert_eq!(p.nnz(), 3); // 4.0, 3.0 and 5.0 survive
        assert_eq!(p.get(2, 0), 4.0);
        assert_eq!(p.get(1, 1), 3.0);
        assert_eq!(p.get(2, 2), 5.0);
    }

    #[test]
    fn add_patterns_merges() {
        let a = small();
        let b = CscMat::identity(3);
        let c = add_patterns(&a, &b);
        assert_eq!(c.get(0, 0), 2.0);
        assert_eq!(c.get(1, 1), 4.0);
        assert_eq!(c.get(2, 2), 6.0);
        assert_eq!(c.get(2, 0), 4.0);
        assert_eq!(c.nnz(), 5); // diag of b overlaps a at (0,0),(1,1),(2,2): union = 5
    }

    #[test]
    fn pattern_symmetry_detection() {
        assert!(CscMat::identity(3).is_pattern_symmetric());
        // small() happens to be pattern symmetric: (0,2)/(2,0) both present.
        assert!(small().is_pattern_symmetric());
        // A strictly triangular pattern is not.
        let tri = CscMat::from_dense(&[vec![1.0, 2.0], vec![0.0, 3.0]]);
        assert!(!tri.is_pattern_symmetric());
        assert!(!CscMat::zero(2, 3).is_pattern_symmetric());
    }
}
