//! Sparse matrix–vector products.
//!
//! Basker's reduction phases (paper Alg. 4, lines 18 & 24) are sequences of
//! "y -= A·x" updates on block columns, so the subtracting variants are the
//! hot kernels here.

use crate::csc::CscMat;

/// `y = A·x`.
pub fn spmv(a: &CscMat, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.ncols());
    let mut y = vec![0.0; a.nrows()];
    spmv_acc(a, x, &mut y);
    y
}

/// `y += A·x` (accumulating).
pub fn spmv_acc(a: &CscMat, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols());
    assert_eq!(y.len(), a.nrows());
    let ks = basker_kernels::active();
    for j in 0..a.ncols() {
        let xj = x[j];
        if xj == 0.0 {
            continue;
        }
        ks.scatter_axpy(y, a.col_rows(j), a.col_values(j), xj);
    }
}

/// `y -= A·x` (the reduction update).
pub fn spmv_sub(a: &CscMat, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols());
    assert_eq!(y.len(), a.nrows());
    let ks = basker_kernels::active();
    for j in 0..a.ncols() {
        let xj = x[j];
        if xj == 0.0 {
            continue;
        }
        ks.scatter_axpy(y, a.col_rows(j), a.col_values(j), -xj);
    }
}

/// Sparse-input variant: `y -= A·x` where `x` is given as pattern +
/// values over the columns of `A`. Only touches columns in the pattern —
/// this is the inner loop of the block reductions, where `x` is one column
/// of a freshly factored `U` block.
pub fn spmv_sub_sparse(a: &CscMat, xpat: &[usize], xval: &[f64], y: &mut [f64]) {
    assert_eq!(xpat.len(), xval.len());
    assert_eq!(y.len(), a.nrows());
    let ks = basker_kernels::active();
    for (&j, &xj) in xpat.iter().zip(xval.iter()) {
        if xj == 0.0 {
            continue;
        }
        ks.scatter_axpy(y, a.col_rows(j), a.col_values(j), -xj);
    }
}

/// `y = Aᵀ·x` without forming the transpose.
pub fn spmv_t(a: &CscMat, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.nrows());
    let mut y = vec![0.0; a.ncols()];
    let ks = basker_kernels::active();
    for j in 0..a.ncols() {
        y[j] = ks.gather_dot(x, a.col_rows(j), a.col_values(j));
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> CscMat {
        CscMat::from_dense(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![0.0, 5.0]])
    }

    #[test]
    fn basic_product() {
        let y = spmv(&a(), &[1.0, 10.0]);
        assert_eq!(y, vec![21.0, 43.0, 50.0]);
    }

    #[test]
    fn accumulate_and_subtract_are_inverses() {
        let m = a();
        let x = [2.0, -1.0];
        let mut y = vec![5.0, 5.0, 5.0];
        spmv_acc(&m, &x, &mut y);
        spmv_sub(&m, &x, &mut y);
        assert_eq!(y, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn sparse_input_matches_dense_input() {
        let m = a();
        let mut y1 = vec![0.0; 3];
        spmv_sub(&m, &[0.0, 7.0], &mut y1);
        let mut y2 = vec![0.0; 3];
        spmv_sub_sparse(&m, &[1], &[7.0], &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn transpose_product() {
        let y = spmv_t(&a(), &[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![4.0, 11.0]);
    }
}
