//! Submatrix/block extraction.
//!
//! After the BTF and ND permutations, Basker's hierarchy is defined by
//! *contiguous* row/column ranges of the permuted matrix, so the hot path is
//! range extraction ([`extract_range`]). A general index-set extraction is
//! provided for tests and irregular uses.

use crate::csc::CscMat;
use std::ops::Range;

/// Extracts the dense-index block `A[rows, cols]` for contiguous ranges.
///
/// Row indices in the result are local (offset by `rows.start`). Cost is
/// O(sum of touched column lengths) using binary search to find the row
/// window of each column.
pub fn extract_range(a: &CscMat, rows: Range<usize>, cols: Range<usize>) -> CscMat {
    assert!(rows.end <= a.nrows() && cols.end <= a.ncols());
    let nr = rows.end - rows.start;
    let nc = cols.end - cols.start;
    let mut colptr = Vec::with_capacity(nc + 1);
    let mut rowind = Vec::new();
    let mut values = Vec::new();
    colptr.push(0);
    for j in cols {
        let col = a.col_rows(j);
        let vals = a.col_values(j);
        let lo = col.partition_point(|&r| r < rows.start);
        let hi = col.partition_point(|&r| r < rows.end);
        for k in lo..hi {
            rowind.push(col[k] - rows.start);
            values.push(vals[k]);
        }
        colptr.push(rowind.len());
    }
    // SAFETY: the source columns are sorted, so the `lo..hi` slice keeps
    // ascending rows, and the `- rows.start` shift keeps them `< nr`.
    unsafe { CscMat::from_parts_unchecked(nr, nc, colptr, rowind, values) }
}

/// Extracts `A[rows, cols]` for arbitrary index sets (must be duplicate
/// free); result entry `(i, j)` is `A[rows[i], cols[j]]`.
pub fn extract_general(a: &CscMat, rows: &[usize], cols: &[usize]) -> CscMat {
    // Map global row -> local row (usize::MAX = not selected).
    let mut rowmap = vec![usize::MAX; a.nrows()];
    for (local, &g) in rows.iter().enumerate() {
        assert!(g < a.nrows());
        assert!(rowmap[g] == usize::MAX, "duplicate row index {g}");
        rowmap[g] = local;
    }
    let mut colptr = Vec::with_capacity(cols.len() + 1);
    let mut rowind = Vec::new();
    let mut values = Vec::new();
    colptr.push(0);
    let mut scratch: Vec<(usize, f64)> = Vec::new();
    for &j in cols {
        assert!(j < a.ncols());
        scratch.clear();
        for (i, v) in a.col_iter(j) {
            let local = rowmap[i];
            if local != usize::MAX {
                scratch.push((local, v));
            }
        }
        scratch.sort_unstable_by_key(|&(r, _)| r);
        for &(r, v) in &scratch {
            rowind.push(r);
            values.push(v);
        }
        colptr.push(rowind.len());
    }
    // SAFETY: each output column was sorted via `scratch`, local rows are
    // `< rows.len()` by the `rowmap` construction, and `colptr` tracks
    // `rowind.len()`.
    unsafe { CscMat::from_parts_unchecked(rows.len(), cols.len(), colptr, rowind, values) }
}

/// Splits a square matrix into a 2-D grid of blocks along the given
/// boundaries (`bounds` = cumulative offsets, starting 0 and ending n).
/// Returns blocks in row-major block order: `result[bi * nblocks + bj]`.
pub fn partition_grid(a: &CscMat, bounds: &[usize]) -> Vec<CscMat> {
    assert!(a.is_square());
    assert_eq!(*bounds.first().unwrap(), 0);
    assert_eq!(*bounds.last().unwrap(), a.nrows());
    let nb = bounds.len() - 1;
    let mut out = Vec::with_capacity(nb * nb);
    for bi in 0..nb {
        for bj in 0..nb {
            out.push(extract_range(
                a,
                bounds[bi]..bounds[bi + 1],
                bounds[bj]..bounds[bj + 1],
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMat {
        CscMat::from_dense(&[
            vec![1.0, 0.0, 2.0, 0.0],
            vec![0.0, 3.0, 0.0, 4.0],
            vec![5.0, 0.0, 6.0, 0.0],
            vec![0.0, 7.0, 0.0, 8.0],
        ])
    }

    #[test]
    fn range_extraction() {
        let a = sample();
        let b = extract_range(&a, 1..3, 1..4);
        assert_eq!(b.nrows(), 2);
        assert_eq!(b.ncols(), 3);
        assert_eq!(b.get(0, 0), 3.0); // A[1,1]
        assert_eq!(b.get(0, 2), 4.0); // A[1,3]
        assert_eq!(b.get(1, 1), 6.0); // A[2,2]
    }

    #[test]
    fn empty_range_gives_empty_block() {
        let a = sample();
        let b = extract_range(&a, 2..2, 0..4);
        assert_eq!(b.nrows(), 0);
        assert_eq!(b.nnz(), 0);
    }

    #[test]
    fn general_extraction_reorders() {
        let a = sample();
        let b = extract_general(&a, &[3, 0], &[1, 0]);
        // b[0,0] = A[3,1] = 7, b[1,1] = A[0,0] = 1
        assert_eq!(b.get(0, 0), 7.0);
        assert_eq!(b.get(1, 1), 1.0);
        assert_eq!(b.nnz(), 2);
    }

    #[test]
    fn grid_partition_covers_all_entries() {
        let a = sample();
        let blocks = partition_grid(&a, &[0, 2, 4]);
        assert_eq!(blocks.len(), 4);
        let total: usize = blocks.iter().map(|b| b.nnz()).sum();
        assert_eq!(total, a.nnz());
        // diag block (0,0): entries A[0,0], A[1,1]
        assert_eq!(blocks[0].get(0, 0), 1.0);
        assert_eq!(blocks[0].get(1, 1), 3.0);
        // off-diag block (1,0): A[2,0]=5
        assert_eq!(blocks[2].get(0, 0), 5.0);
    }
}
