//! Pattern-level structure metrics and the pattern hash shared by the
//! routing layers.
//!
//! Two layers of the stack make decisions from the sparsity pattern
//! alone, never the values: the serving tier shards same-pattern
//! streams onto one process ([`pattern_hash`]), and the hybrid engine
//! routes each BTF diagonal block to a factorization strategy by its
//! local structure ([`BlockMetrics`]). Both live here so `api`, `core`
//! and `serve` agree on the measurements — and because values never
//! participate, every metric is stable across a transient sequence
//! (same pattern, drifting values).

use crate::CscMat;

/// FNV-1a over the sparsity pattern (dimensions + colptr + rowind),
/// ignoring values: two matrices of the same pattern hash identically.
///
/// This is the property both routing layers key on — the serving tier
/// co-locates same-pattern streams on one shard (shared symbolic
/// analysis and workspace pools), and the session layer's learned
/// block-routing cache lets sibling same-pattern streams inherit a
/// measured per-block plan without re-probing.
pub fn pattern_hash(m: &CscMat) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(m.nrows() as u64);
    eat(m.ncols() as u64);
    for &p in m.colptr() {
        eat(p as u64);
    }
    for &i in m.rowind() {
        eat(i as u64);
    }
    h
}

/// Structure metrics of one square (diagonal-block) matrix, computed
/// from the pattern alone.
///
/// These are the classifier inputs of the per-block hybrid router: a
/// tiny or ultra-sparse block wants fill-less Gilbert–Peierls, a dense
/// or supernode-rich block wants the supernodal engine's dense panels,
/// and a large block with a good separator wants the pipelined-ND
/// treatment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockMetrics {
    /// Matrix dimension (`nrows == ncols`).
    pub size: usize,
    /// Stored entries.
    pub nnz: usize,
    /// `nnz / size²` ∈ [0, 1]; 0 for an empty matrix.
    pub density: f64,
    /// Mean entries per column.
    pub avg_col_nnz: f64,
    /// Fraction of adjacent column pairs whose row patterns overlap by
    /// more than half (|common rows| / max(nnz_j, nnz_{j+1}) > ½) — a
    /// cheap proxy for how much of the block would merge into
    /// supernodes. Strictly more than half, so chain-like patterns
    /// (adjacent columns sharing a single row out of two) don't read as
    /// supernodal. 0 for matrices with fewer than two columns.
    pub supernodal_fraction: f64,
}

impl BlockMetrics {
    /// Computes the metrics of `m` in one pass over the pattern
    /// (`O(nnz)`: adjacent-column overlap is a sorted merge walk).
    pub fn compute(m: &CscMat) -> BlockMetrics {
        let n = m.ncols();
        let nnz = m.nnz();
        let density = if n == 0 {
            0.0
        } else {
            nnz as f64 / (n as f64 * n as f64)
        };
        let avg_col_nnz = if n == 0 { 0.0 } else { nnz as f64 / n as f64 };
        let mut similar_pairs = 0usize;
        for j in 0..n.saturating_sub(1) {
            let a = m.col_rows(j);
            let b = m.col_rows(j + 1);
            if a.is_empty() || b.is_empty() {
                continue;
            }
            // Row indices are sorted and unique per column (a CscMat
            // invariant), so the intersection is a linear merge.
            let mut common = 0usize;
            let (mut ia, mut ib) = (0usize, 0usize);
            while ia < a.len() && ib < b.len() {
                match a[ia].cmp(&b[ib]) {
                    std::cmp::Ordering::Less => ia += 1,
                    std::cmp::Ordering::Greater => ib += 1,
                    std::cmp::Ordering::Equal => {
                        common += 1;
                        ia += 1;
                        ib += 1;
                    }
                }
            }
            if 2 * common > a.len().max(b.len()) {
                similar_pairs += 1;
            }
        }
        let supernodal_fraction = if n >= 2 {
            similar_pairs as f64 / (n - 1) as f64
        } else {
            0.0
        };
        BlockMetrics {
            size: n,
            nnz,
            density,
            avg_col_nnz,
            supernodal_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMat;

    fn dense(n: usize) -> CscMat {
        let mut t = TripletMat::new(n, n);
        for i in 0..n {
            for j in 0..n {
                t.push(i, j, 1.0 + (i * n + j) as f64);
            }
        }
        t.to_csc()
    }

    fn tridiag(n: usize) -> CscMat {
        let mut t = TripletMat::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csc()
    }

    #[test]
    fn hash_ignores_values_and_sees_patterns() {
        let a = tridiag(12);
        // Same pattern, different values.
        // SAFETY: pattern arrays are copied from the valid matrix `a`;
        // the value vector matches its nnz.
        let b = unsafe {
            CscMat::from_parts_unchecked(
                a.nrows(),
                a.ncols(),
                a.colptr().to_vec(),
                a.rowind().to_vec(),
                a.values().iter().map(|v| v * 3.5).collect(),
            )
        };
        assert_eq!(pattern_hash(&a), pattern_hash(&b));
        assert_ne!(pattern_hash(&a), pattern_hash(&tridiag(13)));
        assert_ne!(pattern_hash(&a), pattern_hash(&dense(12)));
    }

    #[test]
    fn dense_block_metrics() {
        let m = BlockMetrics::compute(&dense(8));
        assert_eq!(m.size, 8);
        assert_eq!(m.nnz, 64);
        assert!((m.density - 1.0).abs() < 1e-12);
        assert!((m.avg_col_nnz - 8.0).abs() < 1e-12);
        // Every adjacent column pair is identical.
        assert!((m.supernodal_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_block_is_not_supernodal() {
        // A bidiagonal chain: adjacent columns share only one row.
        let n = 20;
        let mut t = TripletMat::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        let m = BlockMetrics::compute(&t.to_csc());
        assert!(m.density < 0.2, "density {}", m.density);
        assert!(
            m.supernodal_fraction < 0.2,
            "supernodal fraction {}",
            m.supernodal_fraction
        );
    }

    #[test]
    fn empty_and_single_are_safe() {
        let e = BlockMetrics::compute(&CscMat::from_dense(&[]));
        assert_eq!((e.size, e.nnz), (0, 0));
        assert_eq!(e.density, 0.0);
        let one = BlockMetrics::compute(&CscMat::from_dense(&[vec![3.0]]));
        assert_eq!(one.size, 1);
        assert_eq!(one.supernodal_fraction, 0.0);
    }
}
