//! Norms, residuals and comparison helpers used across the workspace.

use crate::csc::CscMat;
use crate::spmv::spmv;

/// Infinity norm of a vector.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// One norm of a vector.
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Matrix infinity norm (max absolute row sum).
pub fn mat_norm_inf(a: &CscMat) -> f64 {
    let mut rowsum = vec![0.0f64; a.nrows()];
    mat_norm_inf_with(a, &mut rowsum)
}

/// Allocation-free variant of [`mat_norm_inf`] for hot loops (e.g. a
/// session recomputing `‖A‖∞` per transient step): `rowsum` must be at
/// least `a.nrows()` long and is clobbered.
pub fn mat_norm_inf_with(a: &CscMat, rowsum: &mut [f64]) -> f64 {
    let rowsum = &mut rowsum[..a.nrows()];
    rowsum.fill(0.0);
    for (i, _, v) in a.iter() {
        rowsum[i] += v.abs();
    }
    norm_inf(rowsum)
}

/// Matrix one norm (max absolute column sum).
pub fn mat_norm1(a: &CscMat) -> f64 {
    (0..a.ncols())
        .map(|j| a.col_values(j).iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Relative residual `‖A·x − b‖∞ / (‖A‖∞ ‖x‖∞ + ‖b‖∞)`, the standard
/// backward-error style check used by the integration tests.
pub fn relative_residual(a: &CscMat, x: &[f64], b: &[f64]) -> f64 {
    let ax = spmv(a, x);
    let mut rmax = 0.0f64;
    for (axi, bi) in ax.iter().zip(b.iter()) {
        rmax = rmax.max((axi - bi).abs());
    }
    let denom = mat_norm_inf(a) * norm_inf(x) + norm_inf(b);
    if denom == 0.0 {
        rmax
    } else {
        rmax / denom
    }
}

/// `(min |u_jj|, max |u_jj|)` over the diagonal of an upper triangular
/// factor stored with sorted columns and the pivot (diagonal) entry
/// **last** in each column — the layout every engine's assembled `U`
/// uses. Returns `(∞, 0)` for a 0×0 matrix so callers can fold ranges
/// of several blocks with `min`/`max`.
pub fn u_diag_pivot_range(u: &CscMat) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for j in 0..u.ncols() {
        let vals = u.col_values(j);
        let p = vals[vals.len() - 1].abs();
        lo = lo.min(p);
        hi = hi.max(p);
    }
    (lo, hi)
}

/// Componentwise approximate equality with absolute + relative slack.
pub fn approx_eq_vec(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

/// `‖A − B‖∞` over the union pattern; matrices must be the same shape.
pub fn mat_diff_norm(a: &CscMat, b: &CscMat) -> f64 {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let mut max = 0.0f64;
    for j in 0..a.ncols() {
        let (ar, av) = (a.col_rows(j), a.col_values(j));
        let (br, bv) = (b.col_rows(j), b.col_values(j));
        let (mut x, mut y) = (0usize, 0usize);
        while x < ar.len() || y < br.len() {
            if y >= br.len() || (x < ar.len() && ar[x] < br[y]) {
                max = max.max(av[x].abs());
                x += 1;
            } else if x >= ar.len() || br[y] < ar[x] {
                max = max.max(bv[y].abs());
                y += 1;
            } else {
                max = max.max((av[x] - bv[y]).abs());
                x += 1;
                y += 1;
            }
        }
    }
    max
}

/// Fill-in density `|L+U| / |A|` as reported in the paper's Table I.
pub fn fill_density(nnz_lu: usize, nnz_a: usize) -> f64 {
    nnz_lu as f64 / nnz_a.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        assert_eq!(norm_inf(&[1.0, -3.0, 2.0]), 3.0);
        assert_eq!(norm1(&[1.0, -3.0, 2.0]), 6.0);
        let a = CscMat::from_dense(&[vec![1.0, -2.0], vec![3.0, 4.0]]);
        assert_eq!(mat_norm_inf(&a), 7.0); // row 1: 3+4
        assert_eq!(mat_norm1(&a), 6.0); // col 1: 2+4
    }

    #[test]
    fn residual_zero_for_exact_solution() {
        let a = CscMat::from_dense(&[vec![2.0, 0.0], vec![0.0, 4.0]]);
        let x = [1.0, 0.5];
        let b = [2.0, 2.0];
        assert!(relative_residual(&a, &x, &b) < 1e-16);
    }

    #[test]
    fn diff_norm_union_pattern() {
        let a = CscMat::from_dense(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
        let b = CscMat::from_dense(&[vec![1.0, 5.0], vec![0.0, 2.5]]);
        assert_eq!(mat_diff_norm(&a, &b), 5.0);
    }

    #[test]
    fn approx_eq() {
        assert!(approx_eq_vec(&[1.0, 2.0], &[1.0 + 1e-12, 2.0], 1e-9));
        assert!(!approx_eq_vec(&[1.0], &[1.1], 1e-9));
        assert!(!approx_eq_vec(&[1.0], &[1.0, 2.0], 1e-9));
    }

    #[test]
    fn fill_density_matches_definition() {
        assert_eq!(fill_density(40, 10), 4.0);
        assert_eq!(fill_density(5, 10), 0.5);
    }
}
