//! Caller-owned scratch buffers for allocation-free solves.
//!
//! Every engine's triangular solve needs a handful of length-`n` work
//! vectors (the permuted right-hand side, per-block pivot scratch, and —
//! for the refined supernodal solve — a residual). Allocating them per
//! call is what makes the classic `solve(&b) -> Vec<f64>` API unusable in
//! hot loops (a transient simulation solves thousands of times per
//! pattern). A [`SolveWorkspace`] owns those buffers and is reused across
//! calls: after the first solve at a given dimension, subsequent solves
//! perform **zero heap allocation**.
//!
//! The workspace is engine-agnostic: the same instance can be passed to
//! KLU, Basker and the supernodal solver interchangeably, and a workspace
//! grown for one dimension is reusable (without reallocation) for any
//! smaller system.

/// Reusable scratch memory for in-place solves.
///
/// ```
/// use basker_sparse::SolveWorkspace;
///
/// let mut ws = SolveWorkspace::new();
/// let (a, b, c) = ws.split3(4);
/// assert_eq!((a.len(), b.len(), c.len()), (4, 4, 4));
/// ```
#[derive(Debug, Default, Clone)]
pub struct SolveWorkspace {
    buf_a: Vec<f64>,
    buf_b: Vec<f64>,
    buf_c: Vec<f64>,
}

impl SolveWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        SolveWorkspace::default()
    }

    /// A workspace pre-sized for dimension `n`, so even the first solve
    /// allocates nothing.
    pub fn for_dim(n: usize) -> Self {
        SolveWorkspace {
            buf_a: vec![0.0; n],
            buf_b: vec![0.0; n],
            buf_c: vec![0.0; n],
        }
    }

    /// The dimension the two universally-used buffers accommodate. The
    /// third (refinement) buffer grows lazily, on first use by an engine
    /// that needs it.
    pub fn capacity(&self) -> usize {
        self.buf_a.len().min(self.buf_b.len())
    }

    /// Grows all three buffers to dimension `n` if needed (never
    /// shrinks) — a full pre-warm covering any engine.
    pub fn ensure(&mut self, n: usize) {
        grow(&mut self.buf_a, n);
        grow(&mut self.buf_b, n);
        grow(&mut self.buf_c, n);
    }

    /// Two disjoint length-`n` scratch slices. Grows only the two
    /// buffers it hands out, so two-buffer engines (KLU, Basker) never
    /// pay for the third.
    pub fn split2(&mut self, n: usize) -> (&mut [f64], &mut [f64]) {
        grow(&mut self.buf_a, n);
        grow(&mut self.buf_b, n);
        (&mut self.buf_a[..n], &mut self.buf_b[..n])
    }

    /// Three disjoint length-`n` scratch slices (grows if needed).
    pub fn split3(&mut self, n: usize) -> (&mut [f64], &mut [f64], &mut [f64]) {
        self.ensure(n);
        (
            &mut self.buf_a[..n],
            &mut self.buf_b[..n],
            &mut self.buf_c[..n],
        )
    }
}

#[inline]
fn grow(buf: &mut Vec<f64>, n: usize) {
    if buf.len() < n {
        buf.resize(n, 0.0);
    }
}

/// Splits `xs` into length-`n` right-hand sides (packed column-major)
/// and applies `solve_one` to each in place. The shared body of every
/// engine's `solve_multi_in_place`.
///
/// Panics when `xs.len()` is not a multiple of `n`; a zero-dimensional
/// system accepts only an empty `xs`.
pub fn for_each_rhs(n: usize, xs: &mut [f64], mut solve_one: impl FnMut(&mut [f64])) {
    if n == 0 {
        assert!(xs.is_empty(), "rhs block must be a multiple of n");
        return;
    }
    assert_eq!(xs.len() % n, 0, "rhs block must be a multiple of n");
    for rhs in xs.chunks_exact_mut(n) {
        solve_one(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_and_never_shrinks() {
        let mut ws = SolveWorkspace::new();
        assert_eq!(ws.capacity(), 0);
        {
            let (a, b) = ws.split2(10);
            assert_eq!(a.len(), 10);
            assert_eq!(b.len(), 10);
        }
        assert_eq!(ws.capacity(), 10);
        {
            let (a, _, c) = ws.split3(4);
            assert_eq!(a.len(), 4);
            assert_eq!(c.len(), 4);
        }
        assert_eq!(ws.capacity(), 10, "smaller request must not shrink");
    }

    #[test]
    fn presized_covers_dimension() {
        let mut ws = SolveWorkspace::for_dim(7);
        assert_eq!(ws.capacity(), 7);
        let (a, b, c) = ws.split3(7);
        assert_eq!(a.len() + b.len() + c.len(), 21);
    }
}
