//! Matrix Market (.mtx) reading and writing.
//!
//! The paper's test suite comes from the UF (SuiteSparse) collection, which
//! distributes Matrix Market files; this module lets users of the library
//! run the real matrices when they have them, even though the benchmark
//! harness ships synthetic analogues.

use crate::csc::CscMat;
use crate::triplet::TripletMat;
use crate::{Result, SparseError};
use std::io::{BufRead, BufReader, Read, Write};

/// Symmetry classes in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Lower triangle stored; `(j,i)` implied equal to `(i,j)`.
    Symmetric,
    /// Lower triangle stored; `(j,i)` implied equal to `-(i,j)`.
    SkewSymmetric,
}

/// Reads a real (or integer/pattern) coordinate Matrix Market stream.
///
/// Symmetric/skew-symmetric files are expanded to full storage. Pattern
/// files get value 1.0 on every entry.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CscMat> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::Io("empty file".into()))?
        .map_err(|e| SparseError::Io(e.to_string()))?;
    let header_lc = header.to_lowercase();
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::Io(format!("bad header: {header}")));
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::Io("only coordinate format supported".into()));
    }
    let pattern = tokens[3] == "pattern";
    if !matches!(tokens[3], "real" | "integer" | "pattern") {
        return Err(SparseError::Io(format!("unsupported field {}", tokens[3])));
    }
    let symmetry = match tokens[4] {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        "skew-symmetric" => MmSymmetry::SkewSymmetric,
        other => return Err(SparseError::Io(format!("unsupported symmetry {other}"))),
    };

    // Skip comments, find the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(|e| SparseError::Io(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::Io("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|s| {
            s.parse::<usize>()
                .map_err(|e| SparseError::Io(e.to_string()))
        })
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Io(format!("bad size line: {size_line}")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut t = TripletMat::with_capacity(nrows, ncols, nnz * 2);
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(|e| SparseError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| SparseError::Io("short entry line".into()))?
            .parse()
            .map_err(|e: std::num::ParseIntError| SparseError::Io(e.to_string()))?;
        let j: usize = it
            .next()
            .ok_or_else(|| SparseError::Io("short entry line".into()))?
            .parse()
            .map_err(|e: std::num::ParseIntError| SparseError::Io(e.to_string()))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| SparseError::Io("missing value".into()))?
                .parse()
                .map_err(|e: std::num::ParseFloatError| SparseError::Io(e.to_string()))?
        };
        if i == 0 || j == 0 {
            return Err(SparseError::Io("matrix market is 1-based".into()));
        }
        let (i, j) = (i - 1, j - 1);
        t.try_push(i, j, v)?;
        match symmetry {
            MmSymmetry::General => {}
            MmSymmetry::Symmetric => {
                if i != j {
                    t.try_push(j, i, v)?;
                }
            }
            MmSymmetry::SkewSymmetric => {
                if i != j {
                    t.try_push(j, i, -v)?;
                }
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Io(format!(
            "expected {nnz} entries, found {seen}"
        )));
    }
    Ok(t.to_csc())
}

/// Writes a general real coordinate Matrix Market stream.
pub fn write_matrix_market<W: Write>(a: &CscMat, mut w: W) -> Result<()> {
    let emit = |e: std::io::Error| SparseError::Io(e.to_string());
    writeln!(w, "%%MatrixMarket matrix coordinate real general").map_err(emit)?;
    writeln!(w, "% written by basker-sparse").map_err(emit)?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz()).map_err(emit)?;
    for (i, j, v) in a.iter() {
        writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v).map_err(emit)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let a = CscMat::from_dense(&[vec![1.5, 0.0], vec![-2.0, 3.25]]);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reads_symmetric_expansion() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment\n\
                    2 2 2\n\
                    1 1 4.0\n\
                    2 1 -1.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn reads_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 3 2\n\
                    1 3\n\
                    2 1\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 2), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(read_matrix_market("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix array real general\n1 1 1\n1.0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_entry_count_mismatch() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn skew_symmetric_negates() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    2 1 5.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(1, 0), 5.0);
        assert_eq!(a.get(0, 1), -5.0);
    }
}
