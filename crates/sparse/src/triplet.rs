//! Coordinate-format builder.

use crate::csc::CscMat;
use crate::{Result, SparseError};

/// A growable coordinate-format (COO) matrix used to assemble patterns
/// entry by entry; duplicates are **summed** on conversion, matching the
/// convention of circuit-simulation stamping (each device stamps its
/// conductance contributions independently).
#[derive(Clone, Debug, Default)]
pub struct TripletMat {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl TripletMat {
    /// An empty builder for an `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        TripletMat {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Pre-allocates space for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        TripletMat {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of accumulated (pre-dedup) entries.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no entry has been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Adds `v` at `(i, j)`. Panics on out-of-bounds indices.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.nrows && j < self.ncols,
            "triplet ({i},{j}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        self.rows.push(i);
        self.cols.push(j);
        self.vals.push(v);
    }

    /// Fallible variant of [`push`](Self::push).
    pub fn try_push(&mut self, i: usize, j: usize, v: f64) -> Result<()> {
        if i >= self.nrows {
            return Err(SparseError::IndexOutOfBounds {
                index: i,
                bound: self.nrows,
            });
        }
        if j >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                index: j,
                bound: self.ncols,
            });
        }
        self.rows.push(i);
        self.cols.push(j);
        self.vals.push(v);
        Ok(())
    }

    /// Converts to CSC, summing duplicates and dropping entries that sum to
    /// exactly zero is **not** done (pattern is kept, as solvers care about
    /// structure even when a value cancels to zero).
    pub fn to_csc(&self) -> CscMat {
        let nnz = self.rows.len();
        // Counting sort by column.
        let mut colcount = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            colcount[c + 1] += 1;
        }
        for j in 0..self.ncols {
            colcount[j + 1] += colcount[j];
        }
        let mut order = vec![0usize; nnz];
        let mut next = colcount.clone();
        for k in 0..nnz {
            let c = self.cols[k];
            order[next[c]] = k;
            next[c] += 1;
        }
        // Within each column, sort by row and fuse duplicates.
        let mut colptr = Vec::with_capacity(self.ncols + 1);
        let mut rowind: Vec<usize> = Vec::with_capacity(nnz);
        let mut values: Vec<f64> = Vec::with_capacity(nnz);
        colptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..self.ncols {
            scratch.clear();
            for &k in &order[colcount[j]..colcount[j + 1]] {
                scratch.push((self.rows[k], self.vals[k]));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut idx = 0;
            while idx < scratch.len() {
                let (r, mut v) = scratch[idx];
                idx += 1;
                while idx < scratch.len() && scratch[idx].0 == r {
                    v += scratch[idx].1;
                    idx += 1;
                }
                rowind.push(r);
                values.push(v);
            }
            colptr.push(rowind.len());
        }
        // SAFETY: each column was sorted and duplicate-merged via
        // `scratch`; rows were bounds-asserted by `push`, and `colptr`
        // tracks `rowind.len()`.
        unsafe { CscMat::from_parts_unchecked(self.nrows, self.ncols, colptr, rowind, values) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMat::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 0, 2.5);
        t.push(1, 1, -1.0);
        t.push(1, 0, 4.0);
        let a = t.to_csc();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.get(1, 1), -1.0);
        assert_eq!(a.get(1, 0), 4.0);
    }

    #[test]
    fn unsorted_input_comes_out_sorted() {
        let mut t = TripletMat::new(4, 1);
        t.push(3, 0, 3.0);
        t.push(0, 0, 0.5);
        t.push(2, 0, 2.0);
        let a = t.to_csc();
        assert_eq!(a.col_rows(0), &[0, 2, 3]);
        assert_eq!(a.col_values(0), &[0.5, 2.0, 3.0]);
    }

    #[test]
    fn try_push_bounds() {
        let mut t = TripletMat::new(2, 2);
        assert!(t.try_push(0, 0, 1.0).is_ok());
        assert!(t.try_push(2, 0, 1.0).is_err());
        assert!(t.try_push(0, 2, 1.0).is_err());
    }

    #[test]
    fn zero_sum_entry_keeps_pattern() {
        let mut t = TripletMat::new(1, 1);
        t.push(0, 0, 1.0);
        t.push(0, 0, -1.0);
        let a = t.to_csc();
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn empty_builder_yields_zero_matrix() {
        let t = TripletMat::new(3, 2);
        assert!(t.is_empty());
        let a = t.to_csc();
        assert_eq!(a.nnz(), 0);
        assert_eq!((a.nrows(), a.ncols()), (3, 2));
    }
}
