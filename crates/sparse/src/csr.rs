//! Compressed sparse row matrices (adjacency-style access for graph code).

use crate::csc::CscMat;

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// Used by the ordering algorithms (matching, SCC, dissection) that walk
/// out-neighbourhoods row by row. Conversions to/from [`CscMat`] are
/// O(nnz) counting-sort passes.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMat {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colind: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMat {
    /// Converts from CSC; column indices within each row come out sorted.
    pub fn from_csc(a: &CscMat) -> CsrMat {
        let t = a.transpose(); // transpose of CSC is CSR of the original
        CsrMat {
            nrows: a.nrows(),
            ncols: a.ncols(),
            rowptr: t.colptr().to_vec(),
            colind: t.rowind().to_vec(),
            values: t.values().to_vec(),
        }
    }

    /// Converts back to CSC.
    pub fn to_csc(&self) -> CscMat {
        // Interpret our arrays as a CSC matrix of the transpose, then
        // transpose it.
        // SAFETY: the private fields always hold a valid CSC image of the
        // transpose (they are only ever built from one in `from_csc`).
        unsafe {
            CscMat::from_parts_unchecked(
                self.ncols,
                self.nrows,
                self.rowptr.clone(),
                self.colind.clone(),
                self.values.clone(),
            )
        }
        .transpose()
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colind.len()
    }

    /// Row-pointer array.
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.colind[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Values of row `i`.
    #[inline]
    pub fn row_values(&self, i: usize) -> &[f64] {
        &self.values[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Iterator over `(col, value)` pairs of row `i`.
    #[inline]
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.row_cols(i)
            .iter()
            .copied()
            .zip(self.row_values(i).iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::CscMat;

    #[test]
    fn csc_csr_roundtrip() {
        let a = CscMat::new(
            3,
            4,
            vec![0, 2, 3, 5, 6],
            vec![0, 2, 1, 0, 2, 1],
            vec![1.0, 4.0, 3.0, 2.0, 5.0, 7.0],
        )
        .unwrap();
        let r = CsrMat::from_csc(&a);
        assert_eq!(r.nrows(), 3);
        assert_eq!(r.ncols(), 4);
        assert_eq!(r.nnz(), 6);
        assert_eq!(r.row_cols(0), &[0, 2]);
        assert_eq!(r.row_values(0), &[1.0, 2.0]);
        assert_eq!(r.row_cols(1), &[1, 3]);
        assert_eq!(r.row_cols(2), &[0, 2]);
        let back = r.to_csc();
        assert_eq!(a, back);
    }

    #[test]
    fn empty_rows_are_empty() {
        let a = CscMat::zero(3, 3);
        let r = CsrMat::from_csc(&a);
        for i in 0..3 {
            assert!(r.row_cols(i).is_empty());
        }
    }
}
