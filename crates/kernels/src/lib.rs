//! Runtime-dispatched dense micro-kernels for the sparse-LU engines.
//!
//! Sparse LU earns its speed by casting elimination into dense blocks —
//! supernode panels, separator fronts, dense accumulation tails — and
//! every engine in this workspace bottoms out in the same handful of
//! dense operations. This crate owns those operations behind a
//! [`Kernels`] vtable with three rungs:
//!
//! ```text
//!             ┌─ BASKER_KERNEL=scalar ──► scalar   (portable loops)
//!  active() ──┼─ BASKER_KERNEL=unrolled ► unrolled (4×-unrolled FMA)
//!             ├─ BASKER_KERNEL=simd ────► avx2+fma (x86-64) / neon (aarch64)
//!             └─ BASKER_KERNEL=auto ────► best rung the CPU supports
//!                 (selected once per process, at first use)
//! ```
//!
//! The selection happens exactly once (a [`std::sync::OnceLock`]), from
//! the `BASKER_KERNEL` environment variable or an explicit
//! [`request`] made before first use; the chosen rung's name is
//! surfaced through the solver stats so a production deployment can
//! verify what it is actually running.
//!
//! ## Core operations
//!
//! * [`Kernels::axpy`] — `y ← y + α·x` (the column update),
//! * [`Kernels::dot`] — `xᵀy`,
//! * [`Kernels::rank1_sub`] — `C ← C − x·yᵀ`,
//! * [`Kernels::gemm_sub`] — the cache-blocked rank-k panel update
//!   `C ← C − A·B` (column-major, arbitrary leading dimensions), tiled
//!   to L1/L2 and fed to the selected micro-kernel tile by tile,
//! * [`Kernels::gemv_sub`] — `y ← y − A·x`,
//! * [`Kernels::trsv_lower_unit`] — the small triangular solve
//!   `L⁻¹x` against a unit-lower panel block,
//! * [`Kernels::scatter_axpy`] / [`Kernels::gather_dot`] — indexed
//!   variants that detect runs of consecutive row indices (the dense
//!   accumulation tails of factor columns) and route those runs through
//!   the contiguous kernels.
//!
//! All matrices are column-major `f64` with an explicit leading
//! dimension, matching the supernode panel layout in `basker_snlu` and
//! the CSC column slices everywhere else.

mod scalar;
mod unrolled;

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

use std::sync::OnceLock;

/// One rung of the kernel ladder: a name plus the three primitive
/// operations every composite op is built from.
///
/// The composite drivers ([`gemm_sub`](Kernels::gemm_sub),
/// [`trsv_lower_unit`](Kernels::trsv_lower_unit), …) are shared; only
/// the innermost loops differ between rungs.
pub struct Kernels {
    name: &'static str,
    axpy: fn(y: &mut [f64], alpha: f64, x: &[f64]),
    dot: fn(x: &[f64], y: &[f64]) -> f64,
    /// Unblocked tile op: `C[i + j·ldc] -= Σ_l A[i + l·lda]·B[l + j·ldb]`
    /// for `i < m, j < n, l < k`.
    gemm_tile: fn(
        c: &mut [f64],
        ldc: usize,
        a: &[f64],
        lda: usize,
        b: &[f64],
        ldb: usize,
        m: usize,
        n: usize,
        k: usize,
    ),
}

/// Cache-blocking tile sizes for [`Kernels::gemm_sub`]: an `MC × KC`
/// panel of `A` is 128 KiB — L2-resident on anything this decade — and
/// each micro-tile streams through registers/L1.
const MC: usize = 128;
const KC: usize = 128;

/// Runs of at least this many consecutive row indices are routed
/// through the contiguous kernels by [`Kernels::scatter_axpy`] /
/// [`Kernels::gather_dot`]; shorter runs stay scalar (the kernel-call
/// and run-scan overhead would dominate).
const RUN_MIN: usize = 8;

/// Index slices shorter than this skip run detection entirely —
/// genuinely sparse columns never pay for the scan.
const SCAN_MIN: usize = 16;

impl Kernels {
    /// The rung's name: `"scalar"`, `"unrolled"`, `"avx2+fma"` or
    /// `"neon"`.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// `y ← y + α·x` over equal-length slices.
    #[inline]
    pub fn axpy(&self, y: &mut [f64], alpha: f64, x: &[f64]) {
        debug_assert_eq!(y.len(), x.len());
        (self.axpy)(y, alpha, x);
    }

    /// `xᵀ·y` over equal-length slices.
    #[inline]
    pub fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len());
        (self.dot)(x, y)
    }

    /// Rank-1 update `C ← C − x·yᵀ` on an `m × n` column-major block
    /// with leading dimension `ldc`.
    // basker-lint: deny-alloc
    #[inline]
    pub fn rank1_sub(&self, c: &mut [f64], ldc: usize, x: &[f64], y: &[f64]) {
        (self.gemm_tile)(c, ldc, x, x.len(), y, 1, x.len(), y.len(), 1);
    }

    /// `y ← y − A·x` for a column-major `y.len() × x.len()` block of
    /// `A` with leading dimension `lda`.
    // basker-lint: deny-alloc
    #[inline]
    pub fn gemv_sub(&self, y: &mut [f64], a: &[f64], lda: usize, x: &[f64]) {
        let m = y.len();
        let k = x.len();
        (self.gemm_tile)(y, m, a, lda, x, k, m, 1, k);
    }

    /// Cache-blocked rank-k panel update `C ← C − A·B`:
    /// `C` is `m × n` (ld `ldc`), `A` is `m × k` (ld `lda`), `B` is
    /// `k × n` (ld `ldb`), all column-major. Blocks over `k` then `m`
    /// so each `A` panel stays cache-resident, handing L2-sized tiles
    /// to the selected micro-kernel.
    // basker-lint: deny-alloc
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_sub(
        &self,
        c: &mut [f64],
        ldc: usize,
        a: &[f64],
        lda: usize,
        b: &[f64],
        ldb: usize,
        m: usize,
        n: usize,
        k: usize,
    ) {
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        if m <= MC && k <= KC {
            (self.gemm_tile)(c, ldc, a, lda, b, ldb, m, n, k);
            return;
        }
        let mut l0 = 0;
        while l0 < k {
            let kb = KC.min(k - l0);
            let mut i0 = 0;
            while i0 < m {
                let mb = MC.min(m - i0);
                (self.gemm_tile)(
                    &mut c[i0..],
                    ldc,
                    &a[i0 + l0 * lda..],
                    lda,
                    &b[l0..],
                    ldb,
                    mb,
                    n,
                    kb,
                );
                i0 += mb;
            }
            l0 += kb;
        }
    }

    /// Small triangular solve `x ← L⁻¹·x` where `L` is the `n × n`
    /// unit-lower triangle stored column-major in `a` with leading
    /// dimension `lda` (`n = x.len()`; the diagonal is implicit 1,
    /// entries above it are ignored). This is the supernode
    /// diagonal-block solve: each step is a tail `axpy` on the rung's
    /// contiguous kernel.
    // basker-lint: deny-alloc
    pub fn trsv_lower_unit(&self, x: &mut [f64], a: &[f64], lda: usize) {
        let n = x.len();
        for c in 0..n {
            let xc = x[c];
            if xc != 0.0 && c + 1 < n {
                let col = &a[c * lda + c + 1..c * lda + n];
                (self.axpy)(&mut x[c + 1..n], -xc, col);
            }
        }
    }

    /// Indexed update `x[rows[t]] += α·vals[t]`. Runs of consecutive
    /// row indices — the dense accumulation tails of factor columns —
    /// are detected and routed through the contiguous
    /// [`axpy`](Kernels::axpy); scattered heads stay scalar. Whether to scan at
    /// all is decided in O(1) from the index span, so genuinely sparse
    /// columns (the Gilbert–Peierls common case) pay nothing over the
    /// plain loop.
    // basker-lint: deny-alloc
    #[inline]
    pub fn scatter_axpy(&self, x: &mut [f64], rows: &[usize], vals: &[f64], alpha: f64) {
        debug_assert_eq!(rows.len(), vals.len());
        let len = rows.len();
        // A span much wider than the count means long consecutive runs
        // are unlikely: skip the scan, not just the axpy routing. Index
        // lists need not be sorted (Gilbert–Peierls hands topological
        // orders through here), so the span check must not underflow —
        // a descending list just takes the plain loop.
        if len < SCAN_MIN || rows[len - 1] < rows[0] || rows[len - 1] - rows[0] >= len + (len >> 1)
        {
            for t in 0..len {
                x[rows[t]] += alpha * vals[t];
            }
            return;
        }
        self.scatter_axpy_runs(x, rows, vals, alpha);
    }

    /// Run-detecting slow path of [`scatter_axpy`](Kernels::scatter_axpy),
    /// kept out of line so the sparse fast path stays small at call
    /// sites.
    fn scatter_axpy_runs(&self, x: &mut [f64], rows: &[usize], vals: &[f64], alpha: f64) {
        let len = rows.len();
        let mut t = 0;
        while t < len {
            let r0 = rows[t];
            let mut e = t + 1;
            while e < len && rows[e] == r0 + (e - t) {
                e += 1;
            }
            if e - t >= RUN_MIN {
                (self.axpy)(&mut x[r0..r0 + (e - t)], alpha, &vals[t..e]);
            } else {
                for q in t..e {
                    x[rows[q]] += alpha * vals[q];
                }
            }
            t = e;
        }
    }

    /// Indexed dot `Σ_t vals[t]·b[rows[t]]`, with the same
    /// consecutive-run routing (and O(1) span guard) as
    /// [`scatter_axpy`](Kernels::scatter_axpy).
    // basker-lint: deny-alloc
    #[inline]
    pub fn gather_dot(&self, b: &[f64], rows: &[usize], vals: &[f64]) -> f64 {
        debug_assert_eq!(rows.len(), vals.len());
        let len = rows.len();
        if len < SCAN_MIN || rows[len - 1] < rows[0] || rows[len - 1] - rows[0] >= len + (len >> 1)
        {
            let mut acc = 0.0;
            for t in 0..len {
                acc += vals[t] * b[rows[t]];
            }
            return acc;
        }
        self.gather_dot_runs(b, rows, vals)
    }

    /// Run-detecting slow path of [`gather_dot`](Kernels::gather_dot).
    fn gather_dot_runs(&self, b: &[f64], rows: &[usize], vals: &[f64]) -> f64 {
        let len = rows.len();
        let mut acc = 0.0;
        let mut t = 0;
        while t < len {
            let r0 = rows[t];
            let mut e = t + 1;
            while e < len && rows[e] == r0 + (e - t) {
                e += 1;
            }
            if e - t >= RUN_MIN {
                acc += (self.dot)(&vals[t..e], &b[r0..r0 + (e - t)]);
            } else {
                for q in t..e {
                    acc += vals[q] * b[rows[q]];
                }
            }
            t = e;
        }
        acc
    }
}

/// The portable scalar rung (always available; the differential-test
/// reference).
static SCALAR: Kernels = Kernels {
    name: "scalar",
    axpy: scalar::axpy,
    dot: scalar::dot,
    gemm_tile: scalar::gemm_tile,
};

/// The 4×-unrolled rung: independent accumulator chains and
/// `f64::mul_add` where the compile target has native FMA (without it,
/// `mul_add` lowers to a libm call, so the plain multiply-add form is
/// used instead).
static UNROLLED: Kernels = Kernels {
    name: "unrolled",
    axpy: unrolled::axpy,
    dot: unrolled::dot,
    gemm_tile: unrolled::gemm_tile,
};

#[cfg(target_arch = "x86_64")]
static SIMD: Kernels = Kernels {
    name: "avx2+fma",
    axpy: x86::axpy,
    dot: x86::dot,
    gemm_tile: x86::gemm_tile,
};

#[cfg(target_arch = "aarch64")]
static SIMD: Kernels = Kernels {
    name: "neon",
    axpy: neon::axpy,
    dot: neon::dot,
    gemm_tile: neon::gemm_tile,
};

/// The explicit SIMD rung, if this CPU supports it.
fn simd_rung() -> Option<&'static Kernels> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Some(&SIMD);
        }
        None
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON with 2×f64 lanes is part of the aarch64 baseline.
        Some(&SIMD)
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        None
    }
}

/// A requested rung of the ladder (`BASKER_KERNEL` values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Best rung the CPU supports (SIMD if detected, else unrolled).
    Auto,
    /// Portable scalar baseline.
    Scalar,
    /// 4×-unrolled portable variant.
    Unrolled,
    /// Explicit SIMD (AVX2+FMA / NEON); falls back to unrolled when
    /// the CPU lacks the features.
    Simd,
}

impl KernelChoice {
    /// Parses a `BASKER_KERNEL` value; unknown strings mean
    /// [`Auto`](Self::Auto).
    pub fn parse(s: &str) -> KernelChoice {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => KernelChoice::Scalar,
            "unrolled" => KernelChoice::Unrolled,
            "simd" => KernelChoice::Simd,
            _ => KernelChoice::Auto,
        }
    }

    fn resolve(self) -> &'static Kernels {
        match self {
            KernelChoice::Scalar => &SCALAR,
            KernelChoice::Unrolled => &UNROLLED,
            KernelChoice::Simd | KernelChoice::Auto => simd_rung().unwrap_or(&UNROLLED),
        }
    }
}

static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();

/// The process-wide selected kernel rung. Selected exactly once at
/// first use: from [`request`] if one was made earlier, else from the
/// `BASKER_KERNEL` environment variable, else [`KernelChoice::Auto`].
#[inline]
pub fn active() -> &'static Kernels {
    ACTIVE.get_or_init(|| {
        let choice = std::env::var("BASKER_KERNEL")
            .map(|v| KernelChoice::parse(&v))
            .unwrap_or(KernelChoice::Auto);
        choice.resolve()
    })
}

/// Requests a rung for the process-wide selection. Wins only if made
/// before the first [`active`] call (the selection is once-per-process
/// so hot loops pay no dispatch cost); afterwards it is a no-op.
/// Returns the rung actually active.
pub fn request(choice: KernelChoice) -> &'static Kernels {
    let _ = ACTIVE.set(choice.resolve());
    active()
}

/// Looks a rung up by name (`"scalar"`, `"unrolled"`, `"simd"`),
/// independent of the process-wide selection — the differential tests
/// and `kernel_bench` compare rungs side by side through this. Returns
/// `None` for `"simd"` on CPUs without the features, and for unknown
/// names.
pub fn by_name(name: &str) -> Option<&'static Kernels> {
    match name.trim().to_ascii_lowercase().as_str() {
        "scalar" => Some(&SCALAR),
        "unrolled" => Some(&UNROLLED),
        "simd" => simd_rung(),
        _ => None,
    }
}

/// Every rung this CPU supports, scalar first.
pub fn supported() -> Vec<&'static Kernels> {
    let mut v = vec![&SCALAR, &UNROLLED];
    if let Some(s) = simd_rung() {
        v.push(s);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, base: f64) -> Vec<f64> {
        (0..n).map(|i| base + 0.25 * i as f64).collect()
    }

    #[test]
    fn dispatch_is_stable_and_named() {
        let k = active();
        assert!(["scalar", "unrolled", "avx2+fma", "neon"].contains(&k.name()));
        // Second call returns the same rung (once-per-process).
        assert!(std::ptr::eq(k, active()));
    }

    #[test]
    fn by_name_round_trips_supported_rungs() {
        assert_eq!(by_name("scalar").unwrap().name(), "scalar");
        assert_eq!(by_name("unrolled").unwrap().name(), "unrolled");
        assert!(by_name("frobnicate").is_none());
        for k in supported() {
            // every supported rung is reachable by one of the knob values
            assert!(["scalar", "unrolled", "simd"]
                .iter()
                .any(|n| by_name(n).map(|r| r.name()) == Some(k.name())));
        }
    }

    #[test]
    fn choice_parse_is_permissive() {
        assert_eq!(KernelChoice::parse(" SIMD "), KernelChoice::Simd);
        assert_eq!(KernelChoice::parse("scalar"), KernelChoice::Scalar);
        assert_eq!(KernelChoice::parse("unrolled"), KernelChoice::Unrolled);
        assert_eq!(KernelChoice::parse("???"), KernelChoice::Auto);
    }

    #[test]
    fn axpy_dot_all_rungs() {
        for k in supported() {
            let x = seq(37, 1.0);
            let mut y = seq(37, -3.0);
            let expect: Vec<f64> = x.iter().zip(&y).map(|(a, b)| b + 2.5 * a).collect();
            k.axpy(&mut y, 2.5, &x);
            for i in 0..37 {
                assert!((y[i] - expect[i]).abs() < 1e-12, "{} axpy", k.name());
            }
            let d = k.dot(&x, &y);
            let dref: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!(
                (d - dref).abs() <= 1e-10 * dref.abs().max(1.0),
                "{} dot {d} vs {dref}",
                k.name()
            );
        }
    }

    #[test]
    fn gemm_sub_matches_reference_with_blocking() {
        // Big enough to exercise the MC/KC blocking loop.
        let (m, n, k) = (MC + 37, 5, KC + 19);
        let a = seq(m * k, 0.5)
            .iter()
            .map(|v| (v * 0.37).sin())
            .collect::<Vec<_>>();
        let b = seq(k * n, -0.5)
            .iter()
            .map(|v| (v * 0.61).cos())
            .collect::<Vec<_>>();
        let c0 = seq(m * n, 2.0);
        // reference: naive triple loop
        let mut cref = c0.clone();
        for j in 0..n {
            for l in 0..k {
                let blj = b[l + j * k];
                for i in 0..m {
                    cref[i + j * m] -= a[i + l * m] * blj;
                }
            }
        }
        for kr in supported() {
            let mut c = c0.clone();
            kr.gemm_sub(&mut c, m, &a, m, &b, k, m, n, k);
            for t in 0..m * n {
                assert!(
                    (c[t] - cref[t]).abs() <= 1e-9 * cref[t].abs().max(1.0),
                    "{} gemm at {t}: {} vs {}",
                    kr.name(),
                    c[t],
                    cref[t]
                );
            }
        }
    }

    #[test]
    fn trsv_and_rank1_and_gemv_consistent() {
        let n = 13;
        let lda = n + 3;
        let mut a = vec![0.0; lda * n];
        for c in 0..n {
            for r in c + 1..n {
                a[c * lda + r] = 0.1 + 0.01 * (r * 7 + c) as f64;
            }
        }
        for k in supported() {
            let mut x = seq(n, 1.0);
            // reference forward solve
            let mut xref = x.clone();
            for c in 0..n {
                let xc = xref[c];
                for r in c + 1..n {
                    xref[r] -= a[c * lda + r] * xc;
                }
            }
            k.trsv_lower_unit(&mut x, &a, lda);
            for i in 0..n {
                assert!((x[i] - xref[i]).abs() < 1e-10, "{} trsv", k.name());
            }

            let xv = seq(4, 0.3);
            let yv = seq(3, -0.2);
            let mut c1 = seq(4 * 3, 1.0);
            let mut c2 = c1.clone();
            k.rank1_sub(&mut c1, 4, &xv, &yv);
            // rank-1 as k=1 gemm reference
            for j in 0..3 {
                for i in 0..4 {
                    c2[i + j * 4] -= xv[i] * yv[j];
                }
            }
            for t in 0..12 {
                assert!((c1[t] - c2[t]).abs() < 1e-12, "{} rank1", k.name());
            }

            let mut y = seq(6, 0.0);
            let amat = seq(6 * 4, 0.1);
            let xs = seq(4, 0.7);
            let mut yref = y.clone();
            for l in 0..4 {
                for i in 0..6 {
                    yref[i] -= amat[i + l * 6] * xs[l];
                }
            }
            k.gemv_sub(&mut y, &amat, 6, &xs);
            for i in 0..6 {
                assert!((y[i] - yref[i]).abs() < 1e-12, "{} gemv", k.name());
            }
        }
    }

    #[test]
    fn scatter_and_gather_handle_runs_and_scattered_heads() {
        for k in supported() {
            // indices: scattered head, then a long consecutive run
            let mut rows: Vec<usize> = vec![3, 9, 1, 17];
            rows.extend(40..80);
            let vals: Vec<f64> = seq(rows.len(), 0.5);
            let mut x = vec![1.0; 100];
            let mut xref = x.clone();
            for t in 0..rows.len() {
                xref[rows[t]] += -1.5 * vals[t];
            }
            k.scatter_axpy(&mut x, &rows, &vals, -1.5);
            for i in 0..100 {
                assert!(
                    (x[i] - xref[i]).abs() < 1e-12,
                    "{} scatter at {i}",
                    k.name()
                );
            }
            let b = seq(100, -1.0);
            let g = k.gather_dot(&b, &rows, &vals);
            let gref: f64 = (0..rows.len()).map(|t| vals[t] * b[rows[t]]).sum();
            assert!(
                (g - gref).abs() <= 1e-10 * gref.abs().max(1.0),
                "{} gather",
                k.name()
            );
        }
    }
}
