//! NEON rung (aarch64). 2×f64 lanes are part of the aarch64 baseline,
//! so no runtime detection is needed; the dispatcher still labels it
//! `simd` so the knob behaves the same on both architectures.
//!
//! basker-lint: deny-alloc

#![allow(unsafe_code)]

use std::arch::aarch64::*;

pub(crate) fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    let n = y.len().min(x.len());
    // SAFETY: NEON is baseline on aarch64; pointers bounded by `n`.
    unsafe {
        let yp = y.as_mut_ptr();
        let xp = x.as_ptr();
        let va = vdupq_n_f64(alpha);
        let n4 = n - n % 4;
        let mut i = 0;
        while i < n4 {
            let y0 = vld1q_f64(yp.add(i));
            let y1 = vld1q_f64(yp.add(i + 2));
            let x0 = vld1q_f64(xp.add(i));
            let x1 = vld1q_f64(xp.add(i + 2));
            vst1q_f64(yp.add(i), vfmaq_f64(y0, va, x0));
            vst1q_f64(yp.add(i + 2), vfmaq_f64(y1, va, x1));
            i += 4;
        }
        while i < n {
            *yp.add(i) = alpha.mul_add(*xp.add(i), *yp.add(i));
            i += 1;
        }
    }
}

pub(crate) fn dot(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len().min(y.len());
    // SAFETY: NEON is baseline on aarch64; pointers bounded by `n`.
    unsafe {
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let mut a0 = vdupq_n_f64(0.0);
        let mut a1 = vdupq_n_f64(0.0);
        let n4 = n - n % 4;
        let mut i = 0;
        while i < n4 {
            a0 = vfmaq_f64(a0, vld1q_f64(xp.add(i)), vld1q_f64(yp.add(i)));
            a1 = vfmaq_f64(a1, vld1q_f64(xp.add(i + 2)), vld1q_f64(yp.add(i + 2)));
            i += 4;
        }
        let mut acc = vaddvq_f64(a0) + vaddvq_f64(a1);
        while i < n {
            acc = (*xp.add(i)).mul_add(*yp.add(i), acc);
            i += 1;
        }
        acc
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_tile(
    c: &mut [f64],
    ldc: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    assert!(a.len() >= (k - 1) * lda + m, "gemm_tile: A too short");
    assert!(b.len() >= (n - 1) * ldb + k, "gemm_tile: B too short");
    assert!(c.len() >= (n - 1) * ldc + m, "gemm_tile: C too short");
    // SAFETY: NEON is baseline on aarch64; bounds asserted above.
    unsafe {
        let cp = c.as_mut_ptr();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut j = 0;
        // 4-row × 2-column register block.
        while j + 2 <= n {
            let cj0 = cp.add(j * ldc);
            let cj1 = cp.add((j + 1) * ldc);
            let bj = bp.add(j * ldb);
            let mut i = 0;
            while i + 4 <= m {
                let mut c00 = vld1q_f64(cj0.add(i));
                let mut c10 = vld1q_f64(cj0.add(i + 2));
                let mut c01 = vld1q_f64(cj1.add(i));
                let mut c11 = vld1q_f64(cj1.add(i + 2));
                for l in 0..k {
                    let a0 = vld1q_f64(ap.add(i + l * lda));
                    let a1 = vld1q_f64(ap.add(i + 2 + l * lda));
                    let b0 = vdupq_n_f64(*bj.add(l));
                    let b1 = vdupq_n_f64(*bj.add(l + ldb));
                    c00 = vfmsq_f64(c00, a0, b0);
                    c10 = vfmsq_f64(c10, a1, b0);
                    c01 = vfmsq_f64(c01, a0, b1);
                    c11 = vfmsq_f64(c11, a1, b1);
                }
                vst1q_f64(cj0.add(i), c00);
                vst1q_f64(cj0.add(i + 2), c10);
                vst1q_f64(cj1.add(i), c01);
                vst1q_f64(cj1.add(i + 2), c11);
                i += 4;
            }
            while i < m {
                let mut acc0 = *cj0.add(i);
                let mut acc1 = *cj1.add(i);
                for l in 0..k {
                    let al = *ap.add(i + l * lda);
                    acc0 = (-al).mul_add(*bj.add(l), acc0);
                    acc1 = (-al).mul_add(*bj.add(l + ldb), acc1);
                }
                *cj0.add(i) = acc0;
                *cj1.add(i) = acc1;
                i += 1;
            }
            j += 2;
        }
        if j < n {
            let cj = cp.add(j * ldc);
            let bj = bp.add(j * ldb);
            for l in 0..k {
                let blj = *bj.add(l);
                if blj != 0.0 {
                    let al = ap.add(l * lda);
                    let mut i = 0;
                    while i + 2 <= m {
                        let cv = vld1q_f64(cj.add(i));
                        let av = vld1q_f64(al.add(i));
                        vst1q_f64(cj.add(i), vfmsq_f64(cv, av, vdupq_n_f64(blj)));
                        i += 2;
                    }
                    while i < m {
                        *cj.add(i) = (-blj).mul_add(*al.add(i), *cj.add(i));
                        i += 1;
                    }
                }
            }
        }
    }
}
