//! 4×-unrolled portable rung: independent accumulator chains give the
//! out-of-order core parallel FMA work without any `std::arch`. Uses
//! `f64::mul_add` when the compile target has native FMA; without the
//! target feature `mul_add` lowers to a libm call, so the plain
//! multiply-add form is used instead (same unrolling, one extra
//! rounding per term).
//!
//! basker-lint: deny-alloc

/// Fused multiply-add `a·b + c` when the target has hardware FMA,
/// plain `a*b + c` otherwise.
#[inline(always)]
fn fmad(a: f64, b: f64, c: f64) -> f64 {
    if cfg!(target_feature = "fma") || cfg!(target_arch = "aarch64") {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

pub(crate) fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    let n = y.len().min(x.len());
    let n4 = n - n % 4;
    let mut i = 0;
    while i < n4 {
        y[i] = fmad(alpha, x[i], y[i]);
        y[i + 1] = fmad(alpha, x[i + 1], y[i + 1]);
        y[i + 2] = fmad(alpha, x[i + 2], y[i + 2]);
        y[i + 3] = fmad(alpha, x[i + 3], y[i + 3]);
        i += 4;
    }
    while i < n {
        y[i] = fmad(alpha, x[i], y[i]);
        i += 1;
    }
}

pub(crate) fn dot(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len().min(y.len());
    let n4 = n - n % 4;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut i = 0;
    while i < n4 {
        a0 = fmad(x[i], y[i], a0);
        a1 = fmad(x[i + 1], y[i + 1], a1);
        a2 = fmad(x[i + 2], y[i + 2], a2);
        a3 = fmad(x[i + 3], y[i + 3], a3);
        i += 4;
    }
    let mut acc = (a0 + a1) + (a2 + a3);
    while i < n {
        acc = fmad(x[i], y[i], acc);
        i += 1;
    }
    acc
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_tile(
    c: &mut [f64],
    ldc: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    let m4 = m - m % 4;
    let mut j = 0;
    // Two columns of C at a time: each A load feeds two accumulator
    // chains, halving the load:fma ratio.
    while j + 2 <= n {
        let (cj0, rest) = c[j * ldc..].split_at_mut(ldc);
        let cj0 = &mut cj0[..m];
        let cj1 = &mut rest[..m];
        for l in 0..k {
            let b0 = b[l + j * ldb];
            let b1 = b[l + (j + 1) * ldb];
            if b0 == 0.0 && b1 == 0.0 {
                continue;
            }
            let al = &a[l * lda..l * lda + m];
            let mut i = 0;
            while i < m4 {
                cj0[i] = fmad(-b0, al[i], cj0[i]);
                cj0[i + 1] = fmad(-b0, al[i + 1], cj0[i + 1]);
                cj0[i + 2] = fmad(-b0, al[i + 2], cj0[i + 2]);
                cj0[i + 3] = fmad(-b0, al[i + 3], cj0[i + 3]);
                cj1[i] = fmad(-b1, al[i], cj1[i]);
                cj1[i + 1] = fmad(-b1, al[i + 1], cj1[i + 1]);
                cj1[i + 2] = fmad(-b1, al[i + 2], cj1[i + 2]);
                cj1[i + 3] = fmad(-b1, al[i + 3], cj1[i + 3]);
                i += 4;
            }
            while i < m {
                cj0[i] = fmad(-b0, al[i], cj0[i]);
                cj1[i] = fmad(-b1, al[i], cj1[i]);
                i += 1;
            }
        }
        j += 2;
    }
    if j < n {
        let cj = &mut c[j * ldc..j * ldc + m];
        for l in 0..k {
            let blj = b[l + j * ldb];
            if blj != 0.0 {
                axpy(cj, -blj, &a[l * lda..l * lda + m]);
            }
        }
    }
}
