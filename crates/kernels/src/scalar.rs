//! Portable scalar rung: the simplest correct loops, and the reference
//! the differential tests hold every other rung against. The compiler
//! may still auto-vectorize these with the baseline target features —
//! that is the honest "what you get for free" floor the ladder is
//! measured from.
//!
//! basker-lint: deny-alloc

pub(crate) fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

pub(crate) fn dot(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (xi, yi) in x.iter().zip(y) {
        acc += xi * yi;
    }
    acc
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_tile(
    c: &mut [f64],
    ldc: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    for j in 0..n {
        let cj = &mut c[j * ldc..j * ldc + m];
        for l in 0..k {
            let blj = b[l + j * ldb];
            if blj != 0.0 {
                let al = &a[l * lda..l * lda + m];
                for i in 0..m {
                    cj[i] -= al[i] * blj;
                }
            }
        }
    }
}
